//! Train a glucose forecaster on a mini campaign and run it online.
//!
//! The prediction pipeline end-to-end, at example scale: stream a
//! fault-injection campaign through the bounded-memory `TraceDataset`
//! sink, fit the streaming LSTM forecaster, then attach the resulting
//! `ForecastMonitor` to a live overdose session next to the
//! `RiskIndexMonitor` ground truth — one physics pass, two alert
//! streams, and the forecaster should fire first.
//!
//! (`repro train` is the full-scale version of the first half; it also
//! fits the MLP baseline and saves `results/forecast_model.json`.)

use aps_repro::prelude::*;

fn main() {
    // 1. Stream a small campaign into forecast training windows.
    let spec = CampaignSpec {
        patient_indices: vec![0, 1],
        initial_bgs: vec![120.0],
        steps: 80,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    };
    let horizon = 12; // 12 cycles x 5 min = one hour ahead
    let window = spec.steps as usize - horizon;
    let mut dataset = TraceDataset::with_cap(window, horizon, 200, 42);
    run_campaign_with(&spec, None, |_, trace| dataset.push_trace(&trace));
    println!(
        "dataset: {} windows of {} cycles from {} traces",
        dataset.len(),
        dataset.window(),
        dataset.traces()
    );

    // 2. Standardize and fit the streaming LSTM (and the MLP baseline).
    let raw = dataset.into_set();
    let scaler = StandardScaler::fit_sequences(&raw.x);
    let mut scaled = raw;
    scaled.standardize(&scaler);
    let config = ForecastConfig {
        hidden: vec![12],
        mlp_hidden: vec![12],
        learning_rate: 3e-3,
        max_epochs: 60,
        ..ForecastConfig::default()
    };
    let model = ForecastModel {
        window,
        horizon,
        lstm: LstmForecaster::fit(&scaled, &config),
        mlp: MlpForecaster::fit(&scaled, &config),
        scaler,
        config,
        lstm_val_rmse: 0.0,
        mlp_val_rmse: 0.0,
        persistence_val_rmse: 0.0,
        trained_pairs: scaled.len(),
    };
    println!(
        "trained LSTM forecaster: {} epochs, horizon {} min",
        model.lstm.epochs_trained(),
        model.horizon * 5
    );

    // 3. Run it online against an insulin-overdose attack, with the
    //    risk-index ground truth in the same monitor bank.
    let band = ForecastBand::default();
    println!(
        "alert band: predicted BG < {:.0} or > {:.0} mg/dL\n",
        band.low, band.high
    );
    let trace = Session::builder(Platform::GlucosymOref0)
        .patient(0)
        .monitor(Box::new(ForecastMonitor::from_model(&model, band)))
        .monitor_spec(MonitorSpec::RiskIndex)
        .inject(FaultScenario::new("rate", FaultKind::Max, Step(20), 36))
        .run()
        .expect("valid session");

    let onset = trace.hazard_onset();
    println!(
        "hazard onset : {}",
        onset.map_or("none".to_owned(), |s| format!(
            "cycle {} ({} min)",
            s.index(),
            s.index() * 5
        ))
    );
    for track in &trace.monitor_tracks {
        let first = track.first_alert();
        println!(
            "{:<12} first alert: {}",
            track.monitor,
            first.map_or("never".to_owned(), |s| {
                let lead = onset.map_or(String::new(), |o| {
                    format!(
                        " ({:+} min vs onset)",
                        (o.index() as i64 - s.index() as i64) * 5
                    )
                });
                format!("cycle {}{lead}", s.index())
            })
        );
    }
}
