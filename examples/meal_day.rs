//! A full day with meals: legitimate glucose excursions vs a real
//! attack.
//!
//! The paper's simulations assume an overnight, meal-free window. This
//! example runs 24 hours with three unannounced meals and an evening
//! walk — large, legitimate BG excursions in both directions — and an
//! insulin-overdose attack injected during the afternoon. A good
//! monitor must ride out the disturbances silently and still catch the
//! attack in time to mitigate it.
//!
//! ```text
//! cargo run --release --example meal_day
//! ```

use aps_repro::prelude::*;

const DAY_STEPS: u32 = 288; // 24 h of 5-minute cycles

fn meals() -> Vec<Meal> {
    vec![
        Meal::new(Step(24), 35.0),  // breakfast, 2 h in
        Meal::new(Step(120), 45.0), // lunch
        Meal::new(Step(216), 40.0), // dinner
    ]
}

fn evening_walk() -> Vec<ExerciseBout> {
    vec![ExerciseBout::new(Step(240), 0.5, 45.0)] // after dinner
}

/// One day-long run; returns the trace.
fn run_day(attack: bool, monitored: bool) -> SimTrace {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(0);
    let mut controller = platform.controller_for(patient.as_ref());
    let scs = Scs::with_default_thresholds(platform.target());
    let basal = platform.basal_for(patient.as_ref());
    let mut monitor = CawMonitor::new("cawot", scs, basal);

    // Insulin overdose during the post-lunch window, when IOB is
    // already elevated — the nastiest time.
    let mut injector = attack
        .then(|| FaultInjector::new(FaultScenario::new("rate", FaultKind::Max, Step(150), 30)));

    let config = LoopConfig {
        steps: DAY_STEPS,
        meals: meals(),
        exercise: evening_walk(),
        mitigator: monitored
            .then(|| Mitigator::paper_default(platform.max_mitigation_rate(patient.as_ref()))),
        ..LoopConfig::default()
    };
    aps_repro::sim::closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        monitored.then_some(&mut monitor as &mut dyn HazardMonitor),
        injector.as_mut(),
        &config,
    )
}

fn main() {
    println!("24-hour simulation: three unannounced meals (35/45/40 g), a 45-min evening walk\n");

    // 1. Quiet day: the monitor must not alarm on meals.
    let quiet = run_day(false, true);
    let false_alarms = quiet.records.iter().filter(|r| r.alert.is_some()).count();
    let peak = quiet
        .bg_true_series()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "quiet day : peak BG {peak:.0} mg/dL, monitor alerts on {false_alarms}/{DAY_STEPS} cycles"
    );

    // 2. Attacked day, no monitor.
    let exposed = run_day(true, false);
    let nadir = exposed
        .bg_true_series()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!(
        "attack, unprotected: min BG {nadir:.0} mg/dL, hazard {:?} at {:?}",
        exposed.meta.hazard_type,
        exposed.meta.hazard_onset.map(|s| s.minutes()),
    );

    // 3. Attacked day with monitor + Algorithm-1 mitigation.
    let defended = run_day(true, true);
    let nadir_def = defended
        .bg_true_series()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!(
        "attack, defended   : min BG {nadir_def:.0} mg/dL, hazard {:?}, first alert {:?}",
        defended.meta.hazard_type,
        defended.first_alert().map(|s| s.minutes()),
    );

    println!("\n  hour  quiet-BG  attacked-BG  defended-BG");
    for h in 0..24usize {
        let i = h * 12;
        println!(
            "  {:>4}  {:>8.0}  {:>11.0}  {:>11.0}",
            h,
            quiet.records[i].bg_true.value(),
            exposed.records[i].bg_true.value(),
            defended.records[i].bg_true.value(),
        );
    }

    if defended.meta.hazard_type.is_none() && exposed.meta.hazard_type.is_some() {
        println!("\n=> meals tolerated, attack mitigated: the hazard never materialized");
    } else if nadir_def > nadir + 10.0 {
        println!(
            "\n=> mitigation raised the nadir by {:.0} mg/dL",
            nadir_def - nadir
        );
    }
}
