//! Quickstart: compose a closed-loop session with `Session::builder`,
//! inject an insulin-overdose attack, and watch a bank of monitors —
//! the context-aware CAWOT and the online risk-index ground truth —
//! score one shared physics pass.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aps_repro::prelude::*;

fn main() {
    // 1. Pick a platform: OpenAPS-style controller on a Glucosym-style
    //    virtual patient. The builder resolves patient 0's controller
    //    and monitor context (basal, target) itself.
    let platform = Platform::GlucosymOref0;

    // 2. Compose the run: a "maximize insulin rate" attack on the
    //    controller's output starting 100 minutes in and lasting
    //    3 hours, watched by two monitors. `.monitor_spec` names the
    //    untrained zoo members as data; `.monitor(..)` accepts any
    //    hand-built `HazardMonitor` (see the `patient_tuning` example
    //    for learned, patient-specific thresholds). Every monitor gets
    //    its own alert stream; the physics runs once.
    let mut live_steps = 0u32;
    let trace = Session::builder(platform)
        .patient(0)
        .monitor_spec(MonitorSpec::Cawot)
        .monitor_spec(MonitorSpec::RiskIndex)
        .inject(FaultScenario::new("rate", FaultKind::Max, Step(20), 36))
        .observer(|_rec: &StepRecord| live_steps += 1) // live per-step sink
        .run()
        .expect("valid session");
    println!("patient    : {}", trace.meta.patient);
    println!("cycles     : {live_steps} (observer saw every step live)");

    // 3. Report what happened.
    let onset = trace.meta.hazard_onset;
    let alert = trace.track("cawot").and_then(|t| t.first_alert());
    println!("fault      : {}", trace.meta.fault_name);
    println!(
        "hazard     : {:?} at {:?}",
        trace.meta.hazard_type,
        onset.map(|s| s.minutes())
    );
    println!("first alert: {:?} (cawot)", alert.map(|s| s.minutes()));
    match (alert, onset) {
        (Some(a), Some(h)) if a < h => {
            let lead = (h - a) as f64 * 5.0;
            println!("=> the monitor predicted the hazard {lead:.0} minutes early");
        }
        (Some(_), None) => println!("=> alert raised; hazard never materialized"),
        (None, Some(_)) => println!("=> hazard occurred without warning (missed)"),
        _ => println!("=> uneventful run"),
    }
    if let Some(floor) = trace.track("risk-index").and_then(|t| t.first_alert()) {
        println!(
            "=> the risk-index detection floor confirmed it at {} min",
            floor.minutes().value()
        );
    }

    // 4. Print the glucose trajectory every hour.
    println!("\n  time   BG(true)  IOB     rate  alert");
    for rec in trace.iter().step_by(12) {
        println!(
            "  {:>5}  {:>7.1}  {:>5.2}  {:>6.2}  {}",
            format!("{}m", rec.step.minutes().value()),
            rec.bg_true.value(),
            rec.iob.value(),
            rec.delivered.value(),
            rec.alert.map(|h| h.to_string()).unwrap_or_default(),
        );
    }
}
