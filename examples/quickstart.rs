//! Quickstart: wrap an APS controller with a context-aware safety
//! monitor, inject an insulin-overdose attack, and watch the monitor
//! predict the hazard before it happens.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aps_repro::prelude::*;

fn main() {
    // 1. Pick a platform: OpenAPS-style controller on a Glucosym-style
    //    virtual patient.
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(0);
    let mut controller = platform.controller_for(patient.as_ref());
    println!("patient    : {}", patient.name());
    println!("controller : {}", controller.name());

    // 2. Build the context-aware monitor (guideline-default thresholds;
    //    see the `patient_tuning` example for learned, patient-specific
    //    thresholds).
    let scs = Scs::with_default_thresholds(platform.target());
    let basal = platform.basal_for(patient.as_ref());
    let mut monitor = CawMonitor::new("cawot", scs, basal);

    // 3. Simulate a "maximize insulin rate" attack on the controller's
    //    output, starting 100 minutes in and lasting 3 hours.
    let mut injector = FaultInjector::new(FaultScenario::new("rate", FaultKind::Max, Step(20), 36));

    let trace = closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        Some(&mut monitor),
        Some(&mut injector),
        &LoopConfig::default(),
    );

    // 4. Report what happened.
    let onset = trace.meta.hazard_onset;
    let alert = trace.first_alert();
    println!("fault      : {}", trace.meta.fault_name);
    println!(
        "hazard     : {:?} at {:?}",
        trace.meta.hazard_type,
        onset.map(|s| s.minutes())
    );
    println!("first alert: {:?}", alert.map(|s| s.minutes()));
    match (alert, onset) {
        (Some(a), Some(h)) if a < h => {
            let lead = (h - a) as f64 * 5.0;
            println!("=> the monitor predicted the hazard {lead:.0} minutes early");
        }
        (Some(_), None) => println!("=> alert raised; hazard never materialized"),
        (None, Some(_)) => println!("=> hazard occurred without warning (missed)"),
        _ => println!("=> uneventful run"),
    }

    // 5. Print the glucose trajectory every hour.
    println!("\n  time   BG(true)  IOB     rate  alert");
    for rec in trace.iter().step_by(12) {
        println!(
            "  {:>5}  {:>7.1}  {:>5.2}  {:>6.2}  {}",
            format!("{}m", rec.step.minutes().value()),
            rec.bg_true.value(),
            rec.iob.value(),
            rec.delivered.value(),
            rec.alert.map(|h| h.to_string()).unwrap_or_default(),
        );
    }
}
