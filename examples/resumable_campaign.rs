//! Fault-tolerant campaign execution: chaos, ledger, checkpoint,
//! resume.
//!
//! Runs a small campaign under deterministic chaos injection (seeded
//! worker panics, delays, poisoned specs) with retries and periodic
//! checkpoints, then "crashes" halfway (cooperative cancel), resumes
//! from the snapshot, and shows that the stitched-together run is
//! bit-identical to an uninterrupted one.
//!
//! ```text
//! cargo run --release --example resumable_campaign
//! ```

use aps_repro::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // Chaos-injected panics are expected; don't let the default hook
    // spray backtraces for them (real panics still report).
    aps_repro::sim::chaos::silence_injected_panics();
    let spec = CampaignSpec {
        patient_indices: vec![0, 1],
        initial_bgs: vec![120.0],
        steps: 60,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    };
    let ckpt_path = std::env::temp_dir().join("resumable_campaign_ckpt.json");
    let options = CampaignOptions {
        // Two attempts per job: transient chaos clears on retry.
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        // Deterministic executor-fault injection; same seed, same ledger.
        chaos: Some(ChaosConfig {
            max_delay_ms: 1,
            ..ChaosConfig::with_seed(9)
        }),
        checkpoint: Some(CheckpointPolicy {
            path: ckpt_path.clone(),
            every_jobs: 10,
        }),
        ..CampaignOptions::default()
    };

    // Reference: the same campaign, uninterrupted.
    let reference = run_campaign_ft(&spec, None, &options).expect("temp dir writable");
    println!(
        "uninterrupted: {} jobs, {} completed, {} failed (ledger below), digest {}",
        reference.report.total_jobs,
        reference.report.completed_jobs,
        reference.report.failed_jobs,
        reference.report.digest,
    );
    for e in &reference.report.ledger.entries {
        println!(
            "  ledger: job {} ({}) after {} attempts: {}",
            e.job_index, e.fault_name, e.attempts, e.error
        );
    }

    // "Crash" after 15 emitted jobs: cancel cooperatively; the last
    // checkpoint (and a final snapshot) stay on disk.
    let cancel = Arc::new(AtomicBool::new(false));
    let crashing = CampaignOptions {
        cancel: Some(Arc::clone(&cancel)),
        ..options.clone()
    };
    let mut emitted = 0usize;
    let partial = run_campaign_resumable(&spec, None, &crashing, None, |_i, _outcome| {
        emitted += 1;
        if emitted == 15 {
            cancel.store(true, Ordering::Release);
        }
    })
    .expect("temp dir writable");
    println!(
        "\n'crashed' run: cancelled={} after {} of {} jobs",
        partial.cancelled,
        partial.completed_jobs + partial.failed_jobs,
        partial.total_jobs
    );

    // Resume: completed jobs are skipped, the rest run, and the final
    // report is bit-identical to the uninterrupted reference.
    let snapshot = CampaignCheckpoint::load(&ckpt_path).expect("snapshot written");
    let resumed = run_campaign_resumable(&spec, None, &options, Some(&snapshot), |_i, _outcome| {})
        .expect("snapshot matches spec and chaos seed");
    println!(
        "resumed      : skipped {} already-done jobs, finished the rest",
        resumed.skipped_resumed
    );
    println!(
        "bit-identical: digest {} == {} -> {}",
        resumed.digest,
        reference.report.digest,
        resumed.digest == reference.report.digest
    );
    assert_eq!(resumed.digest, reference.report.digest);
    assert_eq!(resumed.ledger, reference.report.ledger);

    let _ = std::fs::remove_file(&ckpt_path);
}
