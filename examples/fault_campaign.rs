//! Fault-injection campaign: resilience of the bare controller.
//!
//! Reproduces the flavor of the paper's §V-E1 analysis (Fig. 7/8) at a
//! small scale: sweep fault scenarios over several patients, measure
//! hazard coverage per patient and per fault kind, and the
//! time-to-hazard distribution.
//!
//! ```text
//! cargo run --release --example fault_campaign
//! ```

use aps_repro::metrics::outcome::hazard_coverage;
use aps_repro::metrics::timing::{time_to_hazard, TimingStats};
use aps_repro::prelude::*;
use aps_repro::sim::campaign::{run_campaign, CampaignSpec};
use std::collections::BTreeMap;

fn main() {
    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![0, 1, 2, 3, 4],
        initial_bgs: vec![100.0, 140.0, 180.0],
        ..CampaignSpec::quick(platform)
    };
    println!("running campaign on {} ...", platform.name());
    let traces = run_campaign(&spec, None);
    println!("{} simulations finished\n", traces.len());

    // Hazard coverage per patient (paper Fig. 7a).
    println!("hazard coverage per patient:");
    let mut by_patient: BTreeMap<String, Vec<&SimTrace>> = BTreeMap::new();
    for t in &traces {
        by_patient
            .entry(t.meta.patient.clone())
            .or_default()
            .push(t);
    }
    for (patient, ts) in &by_patient {
        let cov = hazard_coverage(ts.iter().copied());
        let bars = "#".repeat((cov * 40.0) as usize);
        println!("  {patient:<22} {:>5.1}% {bars}", cov * 100.0);
    }

    // Hazard coverage per fault kind (paper Fig. 8).
    println!("\nhazard coverage per fault kind:");
    let mut by_kind: BTreeMap<String, Vec<&SimTrace>> = BTreeMap::new();
    for t in &traces {
        if let Some(kind) = t.meta.fault_name.split('@').next() {
            if !kind.is_empty() {
                by_kind.entry(kind.to_owned()).or_default().push(t);
            }
        }
    }
    for (kind, ts) in &by_kind {
        let cov = hazard_coverage(ts.iter().copied());
        println!("  {kind:<22} {:>5.1}%", cov * 100.0);
    }

    // Time-to-hazard distribution (paper Fig. 7b).
    let tths: Vec<f64> = traces.iter().filter_map(time_to_hazard).collect();
    let stats = TimingStats::from_values(&tths);
    println!(
        "\ntime-to-hazard: n={} mean={:.0} min sd={:.0} min range=[{:.0}, {:.0}]",
        stats.n, stats.mean, stats.sd, stats.min, stats.max
    );

    // Clinical outcome of the whole campaign, pooled.
    let glycemic = GlycemicSummary::from_traces(traces.iter());
    println!(
        "pooled outcome: TIR {:.1}%  TBR {:.1}%  TAR {:.1}%  GMI {:.1}%",
        glycemic.tir * 100.0,
        glycemic.tbr * 100.0,
        glycemic.tar * 100.0,
        glycemic.gmi,
    );

    // Persist the hazardous traces for external analysis.
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("skipping trace export: {e}");
        return;
    }
    let hazardous: Vec<SimTrace> = traces
        .iter()
        .filter(|t| t.is_hazardous())
        .cloned()
        .collect();
    match aps_repro::sim::io::save_jsonl(&hazardous, "results/hazardous_traces.jsonl") {
        Ok(()) => println!(
            "\nwrote {} hazardous traces to results/hazardous_traces.jsonl",
            hazardous.len()
        ),
        Err(e) => eprintln!("trace export failed: {e}"),
    }
}
