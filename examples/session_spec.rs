//! Sessions as data: load a serde `SessionSpec` from JSON, build the
//! `Session`, run it, and read every monitor's alert stream from the
//! trace. The same file drives `repro run --spec <file>`.
//!
//! ```text
//! cargo run --release --example session_spec [path/to/spec.json]
//! ```
//!
//! Without an argument, loads the checked-in
//! `examples/session_spec.json` (a max-rate actuator attack watched by
//! CAWOT, the guideline baseline, and the risk-index ground truth).

use aps_repro::prelude::*;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/examples/session_spec.json", env!("CARGO_MANIFEST_DIR")));
    let json =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read spec `{path}`: {e}"));
    let spec: SessionSpec =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("bad spec `{path}`: {e:?}"));
    println!(
        "spec       : {} patient {} with {} monitor(s)",
        spec.platform.name(),
        spec.patient,
        spec.monitors.len()
    );

    // `from_spec` validates everything the builder validates: cohort
    // index, and the fault target against the controller's injectable
    // surface — a typo'd target is an error here, not a silently
    // unbounded injection.
    let mut session = Session::from_spec(&spec).expect("spec describes a valid session");
    let trace = session.run();

    println!(
        "fault      : {}",
        if trace.meta.fault_name.is_empty() {
            "(fault-free)"
        } else {
            &trace.meta.fault_name
        }
    );
    match (trace.meta.hazard_type, trace.meta.hazard_onset) {
        (Some(h), Some(s)) => println!("hazard     : {h:?} at {} min", s.minutes().value()),
        _ => println!("hazard     : none"),
    }
    // One physics pass produced one alert stream per monitor.
    for track in &trace.monitor_tracks {
        let verdict = match track.first_alert() {
            Some(s) => format!("first alert at {} min", s.minutes().value()),
            None => "never alerted".to_owned(),
        };
        println!("monitor    : {:<11} {verdict}", track.monitor);
    }

    // Determinism: the same spec always produces the same trace.
    assert_eq!(session.run(), trace, "sessions must be reproducible");
    println!("re-run     : bit-identical (sessions are deterministic)");
}
