//! Sensor-path defense: a CGM spoofing attack caught by the change
//! detectors of `aps-detect`.
//!
//! The paper's monitor guards the *controller* and assumes the sensor
//! data is "fault-free or protected using existing methods" — naming
//! SPRT and CUSUM as those methods. This example builds that missing
//! layer: a compromised CGM feeds the controller readings 80 mg/dL
//! above truth (so it overdoses insulin), and a [`CgmGuard`] watches
//! the stream. When the guard alarms, the loop falls back to
//! trend-extrapolated readings, defusing the attack.
//!
//! ```text
//! cargo run --release --example sensor_attack
//! ```

use aps_repro::detect::{CgmGuard, Cusum, CusumConfig, GuardConfig};
use aps_repro::prelude::*;

/// Attack window (control cycles) and spoof offset (mg/dL).
const ATTACK_START: u32 = 40;
const ATTACK_END: u32 = 90;
const SPOOF_OFFSET: f64 = 80.0;

/// One closed-loop run with a spoofed sensor; `guarded` enables the
/// detector + last-good-trend fallback. Returns (min true BG, first
/// alarm step).
fn run(guarded: bool) -> (f64, Option<u32>) {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(0);
    let mut controller = platform.controller_for(patient.as_ref());
    patient.reset(MgDl(140.0));
    controller.reset();

    let mut guard = CgmGuard::new(Cusum::new(CusumConfig::default()), GuardConfig::default());
    let mut first_alarm: Option<u32> = None;
    let mut min_bg = f64::INFINITY;
    // Trend memory for the fallback estimate.
    let (mut last_good, mut last_slope) = (140.0f64, 0.0f64);

    for s in 0..150u32 {
        let true_bg = patient.bg().value();
        min_bg = min_bg.min(true_bg);

        // The attacker intercepts the sensor channel.
        let reading = if (ATTACK_START..ATTACK_END).contains(&s) {
            true_bg + SPOOF_OFFSET
        } else {
            true_bg
        };

        let alarmed = guard.observe(MgDl(reading)).is_anomalous();
        if alarmed && first_alarm.is_none() {
            first_alarm = Some(s);
        }

        // What the controller gets to see.
        let seen = if guarded && alarmed {
            // Fall back to the pre-alarm trend (held; the body is slow).
            last_good + last_slope
        } else {
            last_slope = reading - last_good;
            last_good = reading;
            reading
        };

        let commanded = controller.decide(Step(s), MgDl(seen));
        controller.observe_delivery(commanded);
        patient.step(commanded, 5.0);
    }
    (min_bg, first_alarm)
}

fn main() {
    println!(
        "CGM spoofing attack: +{SPOOF_OFFSET} mg/dL during cycles {ATTACK_START}..{ATTACK_END}\n"
    );

    let (min_unguarded, alarm) = run(false);
    let (min_guarded, _) = run(true);

    println!(
        "sensor guard alarm  : {:?} (attack starts at step {ATTACK_START})",
        alarm
    );
    println!("min true BG, unguarded: {min_unguarded:>6.1} mg/dL");
    println!("min true BG, guarded  : {min_guarded:>6.1} mg/dL");

    match alarm {
        Some(a) if (ATTACK_START..ATTACK_START + 3).contains(&a) => {
            println!(
                "\n=> the guard caught the spoof within {} cycles",
                a - ATTACK_START + 1
            )
        }
        Some(a) => println!("\n=> alarm at step {a}"),
        None => println!("\n=> attack was NOT detected"),
    }
    if min_guarded > min_unguarded + 5.0 {
        println!(
            "=> fallback kept glucose {:.0} mg/dL higher at the nadir",
            min_guarded - min_unguarded
        );
    }
}
