//! Patient-specific threshold learning (the CAWT pipeline).
//!
//! Runs a small fault-injection campaign on one patient, learns the
//! SCS thresholds β from the hazardous traces with TMEE + L-BFGS-B,
//! and compares the tuned monitor (CAWT) against the untuned one
//! (CAWOT) on a held-out campaign.
//!
//! ```text
//! cargo run --release --example patient_tuning
//! ```

use aps_repro::core::learning::{learn_thresholds, LearnConfig};
use aps_repro::metrics::tolerance::{trace_tolerance_counts, DEFAULT_TOLERANCE};
use aps_repro::prelude::*;
use aps_repro::sim::campaign::{run_campaign, CampaignSpec};

fn main() {
    let platform = Platform::GlucosymOref0;
    let patient_idx = 0;
    let probe = platform.patients().remove(patient_idx);
    let basal = platform.basal_for(probe.as_ref());
    let target = platform.target();

    // 1. Training campaign (no monitor): collect faulty traces.
    let train_spec = CampaignSpec {
        patient_indices: vec![patient_idx],
        initial_bgs: vec![100.0, 140.0, 180.0],
        ..CampaignSpec::quick(platform)
    };
    println!("running training campaign ...");
    let train_traces = run_campaign(&train_spec, None);
    let hazardous = train_traces.iter().filter(|t| t.is_hazardous()).count();
    println!(
        "  {} runs, {} hazardous ({:.0}%)",
        train_traces.len(),
        hazardous,
        100.0 * hazardous as f64 / train_traces.len() as f64
    );

    // 2. Learn patient-specific thresholds.
    let cawot_scs = Scs::with_default_thresholds(target);
    let (cawt_scs, fits) =
        learn_thresholds(&cawot_scs, &train_traces, basal, &LearnConfig::default());
    println!("\nlearned thresholds:");
    for fit in &fits {
        let default = cawot_scs.rule(fit.rule_id).unwrap().beta;
        println!(
            "  rule {:>2}: beta {:>8.3} (default {:>6.1}, {} samples, {} iters)",
            fit.rule_id, fit.beta, default, fit.n_samples, fit.iterations
        );
    }

    // 3. Evaluate both monitors on a differently-seeded test campaign.
    let test_spec = CampaignSpec {
        patient_indices: vec![patient_idx],
        initial_bgs: vec![120.0, 160.0],
        ..CampaignSpec::quick(platform)
    };
    for (name, scs) in [("CAWOT", cawot_scs), ("CAWT", cawt_scs)] {
        let scs_for_factory = scs.clone();
        let factory = move |ctx: &ScenarioCtx| {
            Box::new(CawMonitor::new("caw", scs_for_factory.clone(), ctx.basal))
                as Box<dyn HazardMonitor>
        };
        let traces = run_campaign(&test_spec, Some(&factory));
        let counts: ConfusionCounts = traces
            .iter()
            .map(|t| trace_tolerance_counts(t, DEFAULT_TOLERANCE))
            .sum();
        println!(
            "\n{name}: FPR {:.3}  FNR {:.3}  ACC {:.3}  F1 {:.3}",
            counts.fpr(),
            counts.fnr(),
            counts.accuracy(),
            counts.f1()
        );
    }
}
