//! Authoring a custom safety rule in STL and running it online.
//!
//! The monitor framework is not limited to Table I: any past-time STL
//! formula over the monitor's signals (`bg, bg', iob, iob', u`) can be
//! written in the textual syntax, checked offline against recorded
//! traces (with quantitative robustness), and executed online. This
//! example writes an impending-hypoglycemia rule ("glucose must not
//! fall fast below 110 mg/dL with insulin stacked up"), checks it against
//! a recorded overdose trace, and then runs the same formula online,
//! cycle by cycle.
//!
//! ```text
//! cargo run --release --example custom_stl_rule
//! ```

use aps_repro::prelude::*;
use aps_repro::stl::online::OnlineMonitor;
use aps_repro::stl::{parser::parse, Trace};
use std::collections::HashMap;

/// Record one insulin-overdose run and return it.
fn overdose_trace() -> SimTrace {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(0);
    let mut controller = platform.controller_for(patient.as_ref());
    let mut injector = FaultInjector::new(FaultScenario::new("rate", FaultKind::Max, Step(20), 36));
    closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        None,
        Some(&mut injector),
        &LoopConfig::default(),
    )
}

/// Converts a recorded run into an STL trace over the monitor signals.
fn to_stl_trace(sim: &SimTrace, basal: UnitsPerHour) -> Trace {
    let mut builder = ContextBuilder::new(basal);
    let mut trace = Trace::new(5.0);
    let mut prev = basal;
    for rec in sim.iter() {
        let ctx = builder.observe_bg(rec.bg);
        let action = ControlAction::classify(rec.commanded, prev);
        trace.append_sample(&[
            ("bg", ctx.bg),
            ("bg'", ctx.dbg),
            ("iob", ctx.iob),
            ("iob'", ctx.diob),
            ("u", action.paper_index() as f64),
        ]);
        builder.observe_delivery(rec.delivered);
        prev = rec.delivered;
    }
    trace
}

fn main() {
    let platform = Platform::GlucosymOref0;
    let basal = platform.basal_for(platform.patients().remove(0).as_ref());

    // 1. Author the rule: glucose falling fast below 110 mg/dL with β
    //    units of net insulin still pending is an impending-hypo
    //    context no control action can fully undo (insulin cannot be
    //    removed) — so the formula forbids the context itself.
    let spec = "not ((bg < 110.0 and bg' < -1.0) and iob > 0.5)";
    let phi = parse(spec).expect("spec is valid STL");
    println!("rule  : {phi}");
    println!("reads : {:?}\n", phi.signals());

    // 2. Check it offline against a recorded overdose, with robustness.
    let sim = overdose_trace();
    let trace = to_stl_trace(&sim, basal);
    let mut first_violation = None;
    let mut min_rob = f64::INFINITY;
    for t in 0..trace.len() {
        let rob = phi.robustness(&trace, t);
        min_rob = min_rob.min(rob);
        if rob < 0.0 && first_violation.is_none() {
            first_violation = Some(t);
        }
    }
    println!("offline check on a recorded max-rate overdose:");
    println!(
        "  hazard onset   : {:?}",
        sim.meta.hazard_onset.map(|s| s.minutes())
    );
    println!(
        "  first violation: {:?}",
        first_violation.map(|t| t as f64 * 5.0)
    );
    println!("  min robustness : {min_rob:.2}\n");

    // 3. Run the same formula online, cycle by cycle, as a monitor.
    let mut online = OnlineMonitor::new(phi).expect("past-time formula");
    let mut alerts = 0;
    let mut first_online = None;
    for t in 0..trace.len() {
        let sample: HashMap<String, f64> = ["bg", "bg'", "iob", "iob'", "u"]
            .iter()
            .map(|name| ((*name).to_owned(), trace.value(name, t).unwrap()))
            .collect();
        if !online.step_bool(&sample) {
            alerts += 1;
            first_online.get_or_insert(t);
        }
    }
    println!("online replay of the same formula:");
    println!("  alert cycles   : {alerts}/{}", trace.len());
    println!(
        "  first alert    : {:?}",
        first_online.map(|t| t as f64 * 5.0)
    );

    match (first_violation, sim.meta.hazard_onset) {
        (Some(v), Some(h)) if (v as f64) * 5.0 < h.minutes().value() => {
            println!(
                "\n=> the hand-written rule fires {:.0} minutes before the hazard",
                h.minutes().value() - v as f64 * 5.0
            );
        }
        _ => println!("\n=> tune the thresholds against more traces (see `patient_tuning`)"),
    }
}
