//! Overnight attack scenario with mitigation.
//!
//! The paper's motivating setting: the patient eats dinner, goes to
//! sleep, and the APS runs unattended for 12 hours. An attacker who has
//! compromised the controller forces the insulin command to maximum
//! while the patient sleeps. We run the same scenario three times —
//! unprotected, monitored (alerts only), and monitored with Algorithm-1
//! mitigation — and compare patient outcomes.
//!
//! ```text
//! cargo run --release --example overnight_attack
//! ```

use aps_repro::core::mitigation::Mitigator;
use aps_repro::prelude::*;
use aps_repro::risk;

fn run_variant(with_monitor: bool, mitigate: bool) -> SimTrace {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(4);
    let mut controller = platform.controller_for(patient.as_ref());
    let basal = platform.basal_for(patient.as_ref());
    let scs = Scs::with_default_thresholds(platform.target());
    let mut monitor = CawMonitor::new("cawot", scs, basal);
    // The attack: max insulin rate from 1 AM (step 60) for 2.5 hours.
    let mut injector = FaultInjector::new(FaultScenario::new("rate", FaultKind::Max, Step(60), 30));
    let config = LoopConfig {
        initial_bg: 140.0,
        mitigator: mitigate
            .then(|| Mitigator::paper_default(platform.max_mitigation_rate(patient.as_ref()))),
        ..LoopConfig::default()
    };
    closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        with_monitor.then_some(&mut monitor as &mut dyn HazardMonitor),
        Some(&mut injector),
        &config,
    )
}

fn summarize(label: &str, trace: &SimTrace) {
    let bgs = trace.bg_true_series();
    let min_bg = bgs.iter().cloned().fold(f64::INFINITY, f64::min);
    let risk = risk::mean_risk_index(&bgs);
    println!(
        "{label:<22} min BG {min_bg:>6.1} mg/dL | hazard {:?} | first alert {:?} | mean risk {risk:.2}",
        trace.meta.hazard_type,
        trace.first_alert().map(|s| s.minutes()),
    );
}

fn main() {
    println!("Overnight max-insulin attack at t=300 min (patient asleep)\n");
    let unprotected = run_variant(false, false);
    let monitored = run_variant(true, false);
    let mitigated = run_variant(true, true);

    summarize("unprotected", &unprotected);
    summarize("monitor (alerts only)", &monitored);
    summarize("monitor + mitigation", &mitigated);

    if unprotected.is_hazardous() && !mitigated.is_hazardous() {
        println!("\n=> mitigation prevented the hypoglycemia hazard");
    } else if unprotected.is_hazardous() {
        let onset_u = unprotected.meta.hazard_onset.map(|s| s.minutes().value());
        let onset_m = mitigated.meta.hazard_onset.map(|s| s.minutes().value());
        println!("\n=> hazard onset unprotected {onset_u:?} vs mitigated {onset_m:?} (delayed/attenuated)");
    }
}
