//! Integration tests of the extension layers working together:
//! sensor guard + context-aware monitor + mitigation (fixed and
//! context-dependent), HMS deadline auditing, meals, and noisy
//! sensors — the full defense-in-depth stack on live closed loops.

use aps_repro::core::hms::{Hms, TsLearnConfig};
use aps_repro::detect::{CgmGuard, Cusum, CusumConfig, GuardConfig};
use aps_repro::glucose::sensor::CgmConfig;
use aps_repro::glucose::sensor_error::ErrorModelConfig;
use aps_repro::prelude::*;
use aps_repro::sim::closed_loop::{self, LoopConfig, Meal};
use aps_repro::sim::platform::Platform;

fn overdose_scenario() -> FaultScenario {
    FaultScenario::new("rate", FaultKind::Max, Step(30), 30)
}

/// Fixed Algorithm-1 mitigation driven by the CAWOT monitor prevents
/// the overdose hazard that an unmonitored loop suffers.
#[test]
fn monitored_mitigation_prevents_overdose_hazard() {
    let platform = Platform::GlucosymOref0;

    let run_with = |monitored: bool| -> SimTrace {
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let scs = Scs::with_default_thresholds(platform.target());
        let mut monitor = CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
        let mut injector = FaultInjector::new(overdose_scenario());
        let config = LoopConfig {
            mitigator: monitored
                .then(|| Mitigator::paper_default(platform.max_mitigation_rate(patient.as_ref()))),
            ..LoopConfig::default()
        };
        closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            monitored.then_some(&mut monitor as &mut dyn HazardMonitor),
            Some(&mut injector),
            &config,
        )
    };

    let exposed = run_with(false);
    let defended = run_with(true);
    assert!(
        exposed.is_hazardous(),
        "baseline overdose must be hazardous"
    );
    let exposed_min = exposed
        .bg_true_series()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let defended_min = defended
        .bg_true_series()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(
        defended_min > exposed_min + 5.0,
        "mitigation did not raise the nadir ({exposed_min:.0} -> {defended_min:.0})"
    );
}

/// Context-dependent mitigation also defuses the hazard, and on the
/// H2 (under-insulinization) side it injects no more insulin than the
/// fixed maximum-rate policy.
#[test]
fn context_mitigation_defuses_with_less_insulin() {
    let platform = Platform::GlucosymOref0;
    // An under-insulinization fault: insulin output truncated to zero
    // for 3 hours while the patient runs high.
    let scenario = FaultScenario::new("rate", FaultKind::Truncate, Step(20), 36);

    let run_with = |context: bool| -> SimTrace {
        let mut patient = platform.patients().remove(1);
        let mut controller = platform.controller_for(patient.as_ref());
        let scs = Scs::with_default_thresholds(platform.target());
        let mut monitor = CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
        let mut injector = FaultInjector::new(scenario.clone());
        let max = platform.max_mitigation_rate(patient.as_ref());
        let config = LoopConfig {
            initial_bg: 180.0,
            mitigator: (!context).then(|| Mitigator::paper_default(max)),
            context_mitigation: context.then(|| {
                aps_repro::core::hms::ContextMitigatorConfig::for_run(
                    platform.target(),
                    platform.basal_for(patient.as_ref()),
                    max,
                )
            }),
            ..LoopConfig::default()
        };
        closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            Some(&mut monitor),
            Some(&mut injector),
            &config,
        )
    };

    let fixed = run_with(false);
    let contextual = run_with(true);

    let delivered =
        |t: &SimTrace| -> f64 { t.records.iter().map(|r| r.delivered.value() / 12.0).sum() };
    let (du_fixed, du_ctx) = (delivered(&fixed), delivered(&contextual));
    assert!(
        du_ctx <= du_fixed + 1e-9,
        "context policy should not out-dose the fixed-max policy \
         ({du_ctx:.2} U vs {du_fixed:.2} U)"
    );
    // Both policies keep the run out of the severe band.
    for t in [&fixed, &contextual] {
        let min = t
            .bg_true_series()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            min > 40.0,
            "mitigation itself caused severe hypoglycemia ({min:.0})"
        );
    }
}

/// HMS deadline compliance is higher on mitigated runs than on
/// unmitigated ones: mitigation is exactly what injects the safe
/// corrective actions the deadlines demand.
#[test]
fn hms_audit_improves_under_mitigation() {
    let platform = Platform::GlucosymOref0;
    let scs = Scs::with_default_thresholds(platform.target());
    let mut hms = Hms::for_scs(&scs);

    let run_with = |mitigate: bool| -> Vec<SimTrace> {
        [
            overdose_scenario(),
            FaultScenario::new("rate", FaultKind::Truncate, Step(20), 36),
        ]
        .into_iter()
        .map(|scenario| {
            let mut patient = platform.patients().remove(0);
            let mut controller = platform.controller_for(patient.as_ref());
            let mut monitor =
                CawMonitor::new("cawot", scs.clone(), platform.basal_for(patient.as_ref()));
            let mut injector = FaultInjector::new(scenario);
            let config = LoopConfig {
                mitigator: mitigate.then(|| {
                    Mitigator::paper_default(platform.max_mitigation_rate(patient.as_ref()))
                }),
                ..LoopConfig::default()
            };
            closed_loop::run(
                patient.as_mut(),
                controller.as_mut(),
                Some(&mut monitor),
                Some(&mut injector),
                &config,
            )
        })
        .collect()
    };

    let unmitigated = run_with(false);
    let mitigated = run_with(true);
    // Deadlines learned from the unmitigated (hazard-bearing) traces.
    hms.learn_ts(&unmitigated, &TsLearnConfig::default());

    let compliance = |traces: &[SimTrace]| -> (usize, usize) {
        let mut honored = 0;
        let mut violated = 0;
        for t in traces {
            let r = hms.check_trace(&scs, t);
            honored += r.honored;
            violated += r.violations.len();
        }
        (honored, violated)
    };
    let (h_un, v_un) = compliance(&unmitigated);
    let (h_mit, v_mit) = compliance(&mitigated);
    let rate = |h: usize, v: usize| h as f64 / (h + v).max(1) as f64;
    assert!(
        rate(h_mit, v_mit) >= rate(h_un, v_un),
        "mitigation should raise HMS compliance \
         ({h_mit}/{v_mit} vs {h_un}/{v_un})"
    );
}

/// The sensor guard composes with the hazard monitor: each layer sees
/// its own attack class. A controller fault never alarms the sensor
/// guard (readings stay genuine), while the hazard monitor alerts.
#[test]
fn layers_separate_sensor_and_controller_faults() {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(0);
    let mut controller = platform.controller_for(patient.as_ref());
    let scs = Scs::with_default_thresholds(platform.target());
    let mut monitor = CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
    let mut injector = FaultInjector::new(overdose_scenario());
    let trace = closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        Some(&mut monitor),
        Some(&mut injector),
        &LoopConfig::default(),
    );

    // Replay the recorded (genuine) readings through the sensor guard.
    let mut guard = CgmGuard::new(Cusum::new(CusumConfig::default()), GuardConfig::default());
    let sensor_alarms = trace
        .records
        .iter()
        .filter(|r| guard.observe(r.bg).is_anomalous())
        .count();
    assert_eq!(
        sensor_alarms, 0,
        "controller fault must not trip the sensor guard"
    );
    assert!(
        trace.first_alert().is_some(),
        "hazard monitor must flag the controller fault"
    );
}

/// A realistic (AR + calibration) sensor error model in the loop does
/// not destabilize fault-free regulation on either platform.
#[test]
fn noisy_sensor_keeps_fault_free_loop_safe() {
    for platform in Platform::ALL {
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let config = LoopConfig {
            cgm: CgmConfig {
                error_model: Some(ErrorModelConfig::dexcom_like()),
                ..CgmConfig::default()
            },
            ..LoopConfig::default()
        };
        let trace = closed_loop::run(patient.as_mut(), controller.as_mut(), None, None, &config);
        let min = trace
            .bg_true_series()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            min > 54.0,
            "{}: realistic sensor noise drove the loop to {min:.0} mg/dL",
            platform.name()
        );
    }
}

/// Meals + fault + monitor: the combination from the `meal_day`
/// example, pinned as a regression test — no false alarms before the
/// fault, alert raised after it.
#[test]
fn meals_do_not_mask_or_fake_hazards() {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(0);
    let mut controller = platform.controller_for(patient.as_ref());
    let scs = Scs::with_default_thresholds(platform.target());
    let mut monitor = CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
    let fault_start = 100u32;
    let mut injector = FaultInjector::new(FaultScenario::new(
        "rate",
        FaultKind::Max,
        Step(fault_start),
        24,
    ));
    let config = LoopConfig {
        steps: 200,
        meals: vec![Meal::new(Step(20), 35.0), Meal::new(Step(60), 40.0)],
        ..LoopConfig::default()
    };
    let trace = closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        Some(&mut monitor),
        Some(&mut injector),
        &config,
    );
    let pre_fault_alerts = trace
        .records
        .iter()
        .take(fault_start as usize)
        .filter(|r| r.alert.is_some())
        .count();
    assert_eq!(pre_fault_alerts, 0, "meal excursions raised false alarms");
    assert!(
        trace.records[fault_start as usize..]
            .iter()
            .any(|r| r.alert.is_some()),
        "fault during the meal day was never flagged"
    );
}

/// The STL-synthesized monitor and the native rule monitor produce the
/// same alert sequence across an entire fault campaign — the formulas
/// of Table I *are* the monitor, not documentation beside it.
#[test]
fn stl_synthesized_monitor_matches_native_on_campaigns() {
    use aps_repro::core::monitors::StlCawMonitor;
    use aps_repro::sim::replay::replay_monitor;

    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![0, 3],
        initial_bgs: vec![100.0, 160.0],
        ..CampaignSpec::quick(platform)
    };
    let traces = run_campaign(&spec, None);
    assert!(traces.len() > 50, "campaign too small to be meaningful");

    let scs = Scs::with_default_thresholds(platform.target());
    let basal = platform.basal_for(platform.patients().remove(0).as_ref());
    let mut disagreements = 0usize;
    for trace in &traces {
        let mut native = CawMonitor::new("native", scs.clone(), basal);
        let mut stl = StlCawMonitor::new("stl", scs.clone(), basal);
        let a = replay_monitor(trace, &mut native);
        let b = replay_monitor(trace, &mut stl);
        for (ra, rb) in a.records.iter().zip(&b.records) {
            if ra.alert != rb.alert {
                disagreements += 1;
            }
        }
    }
    assert_eq!(
        disagreements, 0,
        "native and STL-synthesized monitors diverged on {disagreements} cycles"
    );
}

/// Persisted traces are interchangeable with live ones: replaying a
/// monitor over a JSONL round-trip gives the identical alert stream.
#[test]
fn persisted_traces_replay_identically() {
    use aps_repro::sim::io::{read_jsonl, write_jsonl};
    use aps_repro::sim::replay::replay_monitor;

    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![2],
        initial_bgs: vec![140.0],
        steps: 80,
        ..CampaignSpec::quick(platform)
    };
    let traces = run_campaign(&spec, None);

    let mut buf = Vec::new();
    write_jsonl(&traces, &mut buf).unwrap();
    let reloaded = read_jsonl(buf.as_slice()).unwrap();
    assert_eq!(traces.len(), reloaded.len());

    let scs = Scs::with_default_thresholds(platform.target());
    let basal = platform.basal_for(platform.patients().remove(2).as_ref());
    for (live, stored) in traces.iter().zip(&reloaded) {
        let mut m1 = CawMonitor::new("cawot", scs.clone(), basal);
        let mut m2 = CawMonitor::new("cawot", scs.clone(), basal);
        let a = replay_monitor(live, &mut m1);
        let b = replay_monitor(stored, &mut m2);
        assert_eq!(a, b, "alert stream changed across persistence");
    }
}
