//! Equivalence guarantees behind the PR-1 performance work.
//!
//! The hot-path rewrites (scratch-buffer RK4, lock-free campaign
//! executor) are required to be *behavior-preserving*. These property
//! tests pin that down:
//!
//! * the scratch integrators produce bit-identical trajectories to the
//!   seed's allocating RK4 on randomized dynamics at the patient
//!   models' dimensions (Bergman: 6 states, Dalla Man: 13);
//! * both patient models are deterministic under randomized insulin
//!   schedules (the integrator swap introduced no hidden state);
//! * the parallel campaign executor returns exactly the serial
//!   executor's traces, in the same order.

use aps_repro::glucose::ode::{integrate, Dynamics, Rk4Scratch, Rk4ScratchDyn};
use aps_repro::prelude::*;
use aps_repro::sim::campaign::run_campaign_serial;
use proptest::prelude::*;

/// The seed's RK4 step, verbatim: five `Vec` allocations per step.
fn seed_rk4_step<D: Dynamics + ?Sized>(dyn_: &D, t: f64, x: &mut [f64], dt: f64) {
    let n = x.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    dyn_.derivative(t, x, &mut k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k1[i];
    }
    dyn_.derivative(t + 0.5 * dt, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k2[i];
    }
    dyn_.derivative(t + 0.5 * dt, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = x[i] + dt * k3[i];
    }
    dyn_.derivative(t + dt, &tmp, &mut k4);
    for i in 0..n {
        x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// The seed's `integrate`, verbatim: one allocating step per substep.
fn seed_integrate<D: Dynamics + ?Sized>(
    dyn_: &D,
    t0: f64,
    x: &mut [f64],
    duration: f64,
    max_dt: f64,
) {
    let steps = (duration / max_dt).ceil() as usize;
    let dt = duration / steps as f64;
    let mut t = t0;
    for _ in 0..steps {
        seed_rk4_step(dyn_, t, x, dt);
        t += dt;
    }
}

/// A randomized but bounded nonlinear system over `N` states: linear
/// leak per state plus saturated cross-coupling, the structural shape
/// of the glucose models (compartment leaks + bounded interactions).
fn coupled_dynamics<const N: usize>(coeffs: [f64; N]) -> impl Fn(f64, &[f64], &mut [f64]) {
    move |t: f64, x: &[f64], d: &mut [f64]| {
        for i in 0..N {
            let neighbor = x[(i + 1) % N];
            d[i] = -0.1 * (1.0 + coeffs[i].abs()) * x[i]
                + (0.05 * coeffs[i] * neighbor).tanh()
                + 0.001 * t;
        }
    }
}

fn to_array<const N: usize>(v: &[f64]) -> [f64; N] {
    let mut out = [0.0; N];
    for (o, &s) in out.iter_mut().zip(v) {
        *o = s;
    }
    out
}

/// Drives seed vs scratch integrators over a multi-window schedule and
/// asserts exact equality after every window. `N` is const-generic so
/// the fixed-size scratch path is exercised at the real model
/// dimensions.
fn check_bit_identical<const N: usize>(
    coeffs: [f64; N],
    x0: [f64; N],
    windows: &[f64],
) -> Result<(), String> {
    let f = coupled_dynamics::<N>(coeffs);
    let mut seed_x = x0.to_vec();
    let mut fixed_x = x0;
    let mut dyn_x = x0.to_vec();
    let mut wrapper_x = x0.to_vec();
    let mut fixed = Rk4Scratch::<N>::new();
    let mut dynamic = Rk4ScratchDyn::new();
    let mut t = 0.0;
    for &w in windows {
        seed_integrate(&f, t, &mut seed_x, w, 1.0);
        fixed.integrate(&f, t, &mut fixed_x, w, 1.0);
        dynamic.integrate(&f, t, &mut dyn_x, w, 1.0);
        integrate(&f, t, &mut wrapper_x, w, 1.0);
        t += w;
        if fixed_x.to_vec() != seed_x {
            return Err(format!("fixed scratch diverged: {fixed_x:?} vs {seed_x:?}"));
        }
        if dyn_x != seed_x {
            return Err(format!("dyn scratch diverged: {dyn_x:?} vs {seed_x:?}"));
        }
        if wrapper_x != seed_x {
            return Err(format!(
                "compat wrapper diverged: {wrapper_x:?} vs {seed_x:?}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bergman dimension (6 states): scratch RK4 == seed RK4, bitwise.
    #[test]
    fn rk4_bit_identical_at_bergman_dimension(
        coeffs in prop::collection::vec(-2.0f64..2.0, 6..7),
        x0 in prop::collection::vec(-50.0f64..200.0, 6..7),
        windows in prop::collection::vec(0.5f64..12.0, 1..6),
    ) {
        let r = check_bit_identical::<6>(to_array(&coeffs), to_array(&x0), &windows);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Dalla Man dimension (13 states): scratch RK4 == seed RK4, bitwise.
    #[test]
    fn rk4_bit_identical_at_dalla_man_dimension(
        coeffs in prop::collection::vec(-2.0f64..2.0, 13..14),
        x0 in prop::collection::vec(-50.0f64..200.0, 13..14),
        windows in prop::collection::vec(0.5f64..12.0, 1..6),
    ) {
        let r = check_bit_identical::<13>(to_array(&coeffs), to_array(&x0), &windows);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Both patient models stay deterministic under randomized insulin
    /// schedules: two identical replays produce identical trajectories
    /// (the scratch integrator carries no hidden state across steps).
    #[test]
    fn patient_models_are_deterministic_with_scratch_integrator(
        patient_idx in 0usize..10,
        rates in prop::collection::vec(0.0f64..6.0, 10..40),
        bg0 in 80.0f64..200.0,
    ) {
        for platform in Platform::ALL {
            let replay = || {
                let mut p = platform.patients().remove(patient_idx);
                p.reset(MgDl(bg0));
                let mut series = Vec::with_capacity(rates.len());
                for &r in &rates {
                    p.step(UnitsPerHour(r), 5.0);
                    series.push(p.bg().value());
                }
                series
            };
            let a = replay();
            prop_assert!(a.iter().all(|v| v.is_finite()), "non-finite BG");
            prop_assert_eq!(&a, &replay());
        }
    }
}

/// The parallel executor's output is exactly the serial executor's,
/// for several campaign shapes (including one smaller than the worker
/// count and one with a monitor factory).
#[test]
fn parallel_campaign_equals_serial_campaign() {
    let base = CampaignSpec::quick(Platform::GlucosymOref0);
    let specs = [
        CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![120.0],
            steps: 30,
            ..base.clone()
        },
        CampaignSpec {
            patient_indices: vec![0, 2],
            initial_bgs: vec![100.0, 160.0],
            steps: 25,
            ..base.clone()
        },
    ];
    for spec in specs {
        let serial = run_campaign_serial(&spec, None);
        let parallel = run_campaign(&spec, None);
        assert_eq!(serial, parallel, "executors diverged on {spec:?}");

        let factory: Box<MonitorFactory<'_>> = Box::new(|ctx: &ScenarioCtx| {
            Box::new(CawMonitor::new(
                "cawot",
                Scs::with_default_thresholds(MgDl(110.0)),
                ctx.basal,
            )) as Box<dyn HazardMonitor>
        });
        let serial_m = run_campaign_serial(&spec, Some(factory.as_ref()));
        let parallel_m = run_campaign(&spec, Some(factory.as_ref()));
        assert_eq!(serial_m, parallel_m, "monitored executors diverged");
    }
}
