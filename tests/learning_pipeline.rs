//! End-to-end test of the CAWT learning pipeline: campaign → threshold
//! learning → improved monitor on held-out scenarios.

use aps_repro::core::learning::{learn_thresholds, LearnConfig};
use aps_repro::metrics::tolerance::{trace_tolerance_counts, DEFAULT_TOLERANCE};
use aps_repro::prelude::*;
use aps_repro::sim::campaign::{run_campaign, CampaignSpec};

fn caw_factory(scs: Scs) -> impl Fn(&ScenarioCtx) -> Box<dyn HazardMonitor> + Sync {
    move |ctx: &ScenarioCtx| {
        Box::new(CawMonitor::new("caw", scs.clone(), ctx.basal)) as Box<dyn HazardMonitor>
    }
}

#[test]
fn cawt_learning_improves_over_cawot_on_held_out_traces() {
    let platform = Platform::GlucosymOref0;
    let train_spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![100.0, 140.0, 180.0],
        ..CampaignSpec::quick(platform)
    };
    let train = run_campaign(&train_spec, None);
    assert!(
        train.iter().any(|t| t.is_hazardous()),
        "training campaign produced no hazards"
    );

    let probe = platform.patients().remove(0);
    let basal = platform.basal_for(probe.as_ref());
    let cawot = Scs::with_default_thresholds(platform.target());
    let (cawt, fits) = learn_thresholds(&cawot, &train, basal, &LearnConfig::default());
    assert!(
        fits.iter().any(|f| f.n_samples > 0),
        "no rule collected any samples"
    );
    assert_ne!(cawt, cawot, "learning should move at least one threshold");

    // Held-out evaluation: different initial conditions.
    let test_spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0, 160.0],
        ..CampaignSpec::quick(platform)
    };
    let eval = |scs: Scs| {
        let factory = caw_factory(scs);
        let traces = run_campaign(&test_spec, Some(&factory));
        let counts: aps_repro::metrics::ConfusionCounts = traces
            .iter()
            .map(|t| trace_tolerance_counts(t, DEFAULT_TOLERANCE))
            .sum();
        counts
    };
    let c_cawot = eval(cawot);
    let c_cawt = eval(cawt);
    assert!(
        c_cawt.f1() >= c_cawot.f1() - 0.02,
        "CAWT F1 {:.3} should not regress below CAWOT {:.3}",
        c_cawt.f1(),
        c_cawot.f1()
    );
    assert!(
        c_cawt.fnr() <= c_cawot.fnr() + 1e-9,
        "CAWT FNR {:.3} should not exceed CAWOT {:.3}",
        c_cawt.fnr(),
        c_cawot.fnr()
    );
}

#[test]
fn ml_dataset_pipeline_trains_a_useful_tree() {
    use aps_repro::ml::data::StandardScaler;
    use aps_repro::ml::tree::{DecisionTree, TreeConfig};
    use aps_repro::ml::Classifier;
    use aps_repro::sim::dataset::{balance, build_dataset, LabelMode};

    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0, 180.0],
        ..CampaignSpec::quick(platform)
    };
    let traces = run_campaign(&spec, None);
    let probe = platform.patients().remove(0);
    let basal = platform.basal_for(probe.as_ref());
    let dataset = build_dataset(&traces, basal, LabelMode::Binary);
    assert!(dataset.y.contains(&1), "no positive samples");
    let balanced = balance(&dataset, 3);
    let scaler = StandardScaler::fit(&balanced);
    let scaled = scaler.transform_dataset(&balanced);
    let tree = DecisionTree::fit(&scaled, &TreeConfig::default());

    // In-sample accuracy must beat the majority-class baseline.
    let majority = {
        let pos = scaled.y.iter().filter(|&&y| y == 1).count();
        (scaled.len() - pos).max(pos) as f64 / scaled.len() as f64
    };
    let correct = scaled
        .x
        .iter()
        .zip(&scaled.y)
        .filter(|(x, &y)| tree.predict(x) == y)
        .count();
    let acc = correct as f64 / scaled.len() as f64;
    assert!(
        acc > majority,
        "tree accuracy {acc:.3} does not beat majority baseline {majority:.3}"
    );
}

#[test]
fn scs_stl_and_monitor_verdicts_agree_on_campaign_traces() {
    use aps_repro::core::context::ContextBuilder;
    use aps_repro::stl::Trace as StlTrace;

    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![140.0],
        ..CampaignSpec::quick(platform)
    };
    let traces = run_campaign(&spec, None);
    let probe = platform.patients().remove(0);
    let basal = platform.basal_for(probe.as_ref());
    let scs = Scs::with_default_thresholds(platform.target());

    for trace in traces.iter().take(5) {
        // Reconstruct the monitor-side signal view.
        let mut builder = ContextBuilder::new(basal);
        let (mut bgs, mut dbgs, mut iobs, mut diobs, mut us) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let mut native: Vec<bool> = Vec::new();
        for rec in trace.iter() {
            let ctx = builder.observe_bg(rec.bg);
            builder.observe_delivery(rec.delivered);
            bgs.push(ctx.bg);
            dbgs.push(ctx.dbg);
            iobs.push(ctx.iob);
            diobs.push(ctx.diob);
            us.push(rec.action.paper_index() as f64);
            native.push(scs.first_violation(&ctx, rec.action).is_some());
        }
        let mut stl_trace = StlTrace::new(5.0);
        stl_trace.push_signal("bg", bgs);
        stl_trace.push_signal("bg'", dbgs);
        stl_trace.push_signal("iob", iobs);
        stl_trace.push_signal("iob'", diobs);
        stl_trace.push_signal("u", us);
        for (t, &native_verdict) in native.iter().enumerate() {
            let stl_violation = scs
                .rules
                .iter()
                .any(|r| !r.to_stl(scs.target, 0).sat(&stl_trace, t));
            assert_eq!(
                native_verdict, stl_violation,
                "native/STL divergence at step {t} of {}",
                trace.meta.fault_name
            );
        }
    }
}
