//! Pinned equivalences of the Session API redesign: the composable
//! builder is a *re-surfacing* of the closed-loop engine, not a
//! reimplementation, so its traces must be bit-identical to the legacy
//! positional `closed_loop::run` — across random platforms, patients,
//! configurations, and fault scenarios — and every member of a
//! `MonitorBank` must produce exactly the alert stream it would
//! produce running solo.

use aps_repro::prelude::*;
use aps_repro::sim::closed_loop;
use proptest::prelude::*;

/// The full fault alphabet exercised by the equivalence properties.
fn fault_kind(sel: u8) -> FaultKind {
    match sel % 8 {
        0 => FaultKind::Max,
        1 => FaultKind::Min,
        2 => FaultKind::Truncate,
        3 => FaultKind::Hold,
        4 => FaultKind::Scale(0.5),
        5 => FaultKind::Drift { per_step: 0.8 },
        6 => FaultKind::Noise { amplitude: 15.0 },
        _ => FaultKind::Intermittent { period: 6, duty: 3 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Session::builder(..).run()` == legacy `closed_loop::run` for
    /// arbitrary monitor-less runs: same platform, patient, config,
    /// and fault scenario ⇒ the same trace, bit for bit.
    #[test]
    fn builder_runs_are_bit_identical_to_legacy(
        platform_sel in 0usize..2,
        patient_idx in 0usize..10,
        target_idx in 0usize..3,
        kind_sel in any::<u8>(),
        start in 5u32..80,
        duration in 1u32..40,
        initial_bg in 80.0f64..200.0,
        steps in 40u32..120,
    ) {
        let platform = Platform::ALL[platform_sel];
        let target = ["glucose", "iob", "rate"][target_idx];
        let scenario = FaultScenario::new(target, fault_kind(kind_sel), Step(start), duration);
        let config = LoopConfig { steps, initial_bg, ..LoopConfig::default() };

        let mut patient = platform.patients().remove(patient_idx);
        let mut controller = platform.controller_for(patient.as_ref());
        let mut injector = FaultInjector::new(scenario.clone());
        let legacy = closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            None,
            Some(&mut injector),
            &config,
        );

        let session = Session::builder(platform)
            .patient(patient_idx)
            .inject(scenario)
            .config(config)
            .run()
            .expect("valid session");
        prop_assert_eq!(session, legacy);
    }

    /// The same bit-identity with a live monitor in the loop: the
    /// legacy wrapper and the builder drive the identical engine, so
    /// the records, metadata, and the monitor's alert track all agree.
    #[test]
    fn builder_with_monitor_is_bit_identical_to_legacy(
        patient_idx in 0usize..10,
        kind_sel in any::<u8>(),
        start in 5u32..60,
        duration in 6u32..36,
        initial_bg in 90.0f64..180.0,
    ) {
        let platform = Platform::GlucosymOref0;
        let scenario = FaultScenario::new("rate", fault_kind(kind_sel), Step(start), duration);
        let config = LoopConfig { steps: 100, initial_bg, ..LoopConfig::default() };

        let mut patient = platform.patients().remove(patient_idx);
        let mut controller = platform.controller_for(patient.as_ref());
        let scs = Scs::with_default_thresholds(platform.target());
        let basal = platform.basal_for(patient.as_ref());
        let mut monitor = CawMonitor::new("cawot", scs.clone(), basal);
        let mut injector = FaultInjector::new(scenario.clone());
        let legacy = closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            Some(&mut monitor),
            Some(&mut injector),
            &config,
        );

        let session = Session::builder(platform)
            .patient(patient_idx)
            .monitor(Box::new(CawMonitor::new("cawot", scs, basal)))
            .inject(scenario)
            .config(config)
            .run()
            .expect("valid session");

        prop_assert_eq!(&session, &legacy);
        // The track is the alert column, stream-shaped.
        let column: Vec<_> = legacy.records.iter().map(|r| r.alert).collect();
        prop_assert_eq!(session.monitor_tracks.len(), 1);
        prop_assert_eq!(&session.monitor_tracks[0].alerts, &column);
    }
}

/// Every `MonitorBank` member's alert stream over the quick-campaign
/// corpus is bit-identical to that monitor running solo — the property
/// that makes 1×physics + M×monitor a legitimate replacement for
/// M×(physics + monitor).
#[test]
fn bank_members_match_solo_runs_across_quick_campaign() {
    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![140.0],
        steps: 60,
        ..CampaignSpec::quick(platform)
    };
    let members = [
        MonitorSpec::Guideline,
        MonitorSpec::Cawot,
        MonitorSpec::RiskIndex,
    ];
    let jobs = campaign_jobs(&spec);
    assert!(jobs.len() > 20, "corpus unexpectedly small: {}", jobs.len());
    for job in &jobs {
        let config = LoopConfig {
            steps: spec.steps,
            initial_bg: job.initial_bg,
            ..LoopConfig::default()
        };
        let mut builder = Session::builder(platform)
            .patient(job.patient_idx)
            .config(config.clone());
        for m in &members {
            builder = builder.monitor_spec(m.clone());
        }
        if let Some(s) = &job.scenario {
            builder = builder.inject(s.clone());
        }
        let banked = builder.run().expect("valid banked session");
        assert_eq!(banked.monitor_tracks.len(), members.len());

        for (i, member) in members.iter().enumerate() {
            let mut solo_builder = Session::builder(platform)
                .patient(job.patient_idx)
                .monitor_spec(member.clone())
                .config(config.clone());
            if let Some(s) = &job.scenario {
                solo_builder = solo_builder.inject(s.clone());
            }
            let solo = solo_builder.run().expect("valid solo session");
            let scenario_name = &banked.meta.fault_name;
            let member_name = &banked.monitor_tracks[i].monitor;
            // Observing monitors cannot perturb the loop. (The records'
            // `alert` column legitimately differs — it carries the
            // *primary* monitor's verdicts — so compare modulo it.)
            let strip = |t: &SimTrace| -> Vec<StepRecord> {
                t.records
                    .iter()
                    .map(|r| StepRecord { alert: None, ..*r })
                    .collect()
            };
            assert_eq!(
                strip(&solo),
                strip(&banked),
                "{member_name} perturbed the physics on {scenario_name}"
            );
            // …and the banked stream is exactly the solo stream.
            assert_eq!(
                banked.monitor_tracks[i].alerts, solo.monitor_tracks[0].alerts,
                "{member_name} diverged between bank and solo on {scenario_name}"
            );
        }
    }
}

/// The streaming executor and the pull-based stream agree with the
/// materializing executors on the integration corpus.
#[test]
fn streaming_campaign_matches_materialized_campaign() {
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0],
        steps: 40,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    };
    let materialized = run_campaign(&spec, None);
    let mut order = Vec::new();
    let mut streamed = Vec::new();
    run_campaign_with(&spec, None, |i, t| {
        order.push(i);
        streamed.push(t);
    });
    assert_eq!(order, (0..materialized.len()).collect::<Vec<_>>());
    assert_eq!(streamed, materialized);
    let pulled: Vec<SimTrace> = CampaignStream::new(&spec, None).collect();
    assert_eq!(pulled, materialized);
}

/// Fault-target validation: the builder rejects a typo'd target with a
/// descriptive error where the legacy path injected unbounded.
#[test]
fn builder_rejects_unknown_fault_targets() {
    for platform in Platform::ALL {
        let err = Session::builder(platform)
            .inject(FaultScenario::new("glucos", FaultKind::Max, Step(10), 10))
            .build()
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("glucos"), "{platform:?}: {msg}");
        assert!(msg.contains("glucose"), "{platform:?}: {msg}");
        match err {
            SessionError::UnknownFaultTarget { valid, .. } => {
                assert!(valid.iter().any(|v| v == "rate"));
            }
            other => panic!("wrong error variant: {other:?}"),
        }
    }
}
