//! Checkpoint persistence properties.
//!
//! * `CampaignCheckpoint` round-trips through the vendored serde shim
//!   for arbitrary contents (bitmaps, ledgers with every error kind,
//!   64-bit hex hashes — including values above 2^53 that would not
//!   survive as raw JSON numbers).
//! * Forward compatibility: a checkpoint written before new fields
//!   existed (missing `chaos_seed`, `partials`, …) still loads via the
//!   container-level `#[serde(default)]`.
//! * A checkpoint from a newer format version is rejected with
//!   `CheckpointError::Version`, not misread.

use aps_repro::sim::checkpoint::{
    from_hex, to_hex, AggregatePartials, CampaignCheckpoint, CheckpointError, JobBitmap,
    CHECKPOINT_VERSION,
};
use aps_repro::sim::outcome::{ErrorLedger, LedgerEntry, SimError};
use proptest::prelude::*;

fn error_from(pick: u8, detail: u64) -> SimError {
    match pick % 4 {
        0 => SimError::NonFinite {
            cycle: detail as u32,
        },
        1 => SimError::Panicked {
            message: format!("panic payload {detail}"),
        },
        2 => SimError::DeadlineExceeded {
            elapsed_ms: detail,
            budget_ms: detail / 2,
        },
        _ => SimError::InvalidSpec {
            detail: format!("bad field {detail}"),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checkpoint_roundtrips_through_the_shim(
        total in 0usize..200,
        done in prop::collection::vec(0usize..200, 0..64),
        failures in prop::collection::vec(0u8..255, 0..8),
        hash in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        with_seed in 0u8..2,
    ) {
        let mut bitmap = JobBitmap::new(total);
        for &i in done.iter().filter(|&&i| i < total) {
            bitmap.set(i);
        }
        let mut ledger = ErrorLedger::new();
        let mut partials = AggregatePartials::default();
        for (k, &pick) in failures.iter().enumerate() {
            let error = error_from(pick, u64::from(pick) * 977 + k as u64);
            partials.fold_failed(&error.to_string(), u32::from(pick) % 5 + 1);
            ledger.push(LedgerEntry {
                job_index: k,
                patient_idx: k % 10,
                initial_bg: 80.0 + f64::from(pick),
                fault_name: format!("fault_{pick}"),
                error,
                attempts: u32::from(pick) % 5 + 1,
            });
        }
        let ckpt = CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            spec_hash: to_hex(hash),
            chaos_seed: (with_seed == 1).then(|| to_hex(seed)),
            total_jobs: total,
            completed: bitmap,
            ledger,
            partials,
        };
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: CampaignCheckpoint = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &ckpt);
        // The 64-bit hashes survive exactly (stored as hex strings,
        // immune to the shim's f64 number representation).
        prop_assert_eq!(from_hex(&back.spec_hash), Some(hash));
        if with_seed == 1 {
            prop_assert_eq!(back.chaos_seed.as_deref().and_then(from_hex), Some(seed));
        }
    }
}

#[test]
fn hex_hashes_survive_beyond_f64_precision() {
    for x in [u64::MAX, (1u64 << 53) + 1, 0, 1] {
        assert_eq!(from_hex(&to_hex(x)), Some(x));
    }
}

#[test]
fn old_checkpoint_missing_new_fields_still_loads() {
    // A v1 snapshot from before `chaos_seed`/`partials`/`ledger`
    // existed: the container-level `#[serde(default)]` fills them.
    let old = r#"{
        "version": 1,
        "spec_hash": "00000000deadbeef",
        "total_jobs": 4,
        "completed": {"words": [5], "len": 4}
    }"#;
    let ckpt: CampaignCheckpoint = serde_json::from_str(old).unwrap();
    assert_eq!(ckpt.version, 1);
    assert_eq!(ckpt.spec_hash, "00000000deadbeef");
    assert_eq!(ckpt.total_jobs, 4);
    assert_eq!(ckpt.completed.count(), 2);
    assert!(ckpt.chaos_seed.is_none());
    assert!(ckpt.ledger.is_empty());
    assert_eq!(ckpt.partials, AggregatePartials::default());
}

#[test]
fn future_version_is_rejected_on_load() {
    let mut path = std::env::temp_dir();
    path.push(format!("aps_ckpt_future_{}.json", std::process::id()));
    let future = CampaignCheckpoint {
        version: CHECKPOINT_VERSION + 1,
        ..CampaignCheckpoint::fresh("abc".to_owned(), None, 3)
    };
    future.save(&path).unwrap();
    match CampaignCheckpoint::load(&path) {
        Err(CheckpointError::Version { found, supported }) => {
            assert_eq!(found, CHECKPOINT_VERSION + 1);
            assert_eq!(supported, CHECKPOINT_VERSION);
        }
        other => panic!("expected Version error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn load_reports_missing_file_as_io_error() {
    let err =
        CampaignCheckpoint::load(std::path::Path::new("/nonexistent/definitely/missing.json"))
            .unwrap_err();
    assert!(matches!(err, CheckpointError::Io { .. }), "{err}");
}
