//! Property-based tests for the extension layers: sensor-stream
//! change detectors, the CGM error model, the HMS mitigation
//! specification, and the context-dependent mitigator.

use aps_repro::core::context::ContextVector;
use aps_repro::core::hms::{
    context_series, ContextMitigator, ContextMitigatorConfig, Hms, TsLearnConfig, DEFAULT_TS_STEPS,
};
use aps_repro::detect::{
    CgmGuard, ChangeDetector, Cusum, CusumConfig, Ewma, EwmaConfig, GuardConfig, Sprt, SprtConfig,
};
use aps_repro::glucose::sensor_error::{mard, CgmErrorModel, ErrorModelConfig};
use aps_repro::prelude::*;
use aps_repro::types::{StepRecord, TraceMeta, CONTROL_CYCLE_MINUTES};
use proptest::prelude::*;

proptest! {
    /// CUSUM sums are non-negative and bounded by the accumulated
    /// positive drift-adjusted input; the detector never alarms while
    /// both sums stay at zero.
    #[test]
    fn cusum_sums_are_nonnegative_and_consistent(
        values in prop::collection::vec(-3.0f64..3.0, 1..200),
        drift in 0.0f64..2.0,
        threshold in 0.5f64..20.0,
    ) {
        let mut c = Cusum::new(CusumConfig { drift, threshold });
        for &v in &values {
            let decision = c.update(v);
            let (hi, lo) = c.sums();
            prop_assert!(hi >= 0.0 && lo >= 0.0);
            if decision.is_anomalous() {
                // The alarm state must persist.
                prop_assert!(c.update(0.0).is_anomalous());
                return Ok(());
            }
            prop_assert!(hi <= threshold && lo <= threshold);
        }
    }

    /// A CUSUM fed values whose magnitude never exceeds the drift
    /// allowance can never alarm, regardless of sequence.
    #[test]
    fn cusum_below_drift_never_alarms(
        values in prop::collection::vec(-1.0f64..1.0, 1..300),
        threshold in 0.1f64..50.0,
    ) {
        let mut c = Cusum::new(CusumConfig { drift: 1.0, threshold });
        for &v in &values {
            prop_assert!(!c.update(v).is_anomalous());
        }
        prop_assert_eq!(c.sums(), (0.0, 0.0));
    }

    /// EWMA statistic is a convex combination of inputs: it can never
    /// leave the [min, max] hull of the observed values (with 0 seed).
    #[test]
    fn ewma_statistic_stays_in_input_hull(
        values in prop::collection::vec(-50.0f64..50.0, 1..100),
        lambda in 0.01f64..1.0,
    ) {
        let mut e = Ewma::new(EwmaConfig { lambda, limit: 1e9, sigma: 1.0 });
        let lo = values.iter().cloned().fold(0.0f64, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        for &v in &values {
            e.update(v);
            prop_assert!(e.statistic() >= lo - 1e-9 && e.statistic() <= hi + 1e-9,
                "z = {} outside [{}, {}]", e.statistic(), lo, hi);
        }
    }

    /// SPRT decision boundaries are ordered (B < 0 < A) for any valid
    /// error-rate configuration, and both LLR branches reset below A
    /// while in control.
    #[test]
    fn sprt_boundaries_ordered(
        alpha in 0.0001f64..0.3,
        beta in 0.0001f64..0.3,
        mu1 in 0.5f64..10.0,
        sigma in 0.1f64..5.0,
    ) {
        let s = Sprt::new(SprtConfig { mu0: 0.0, mu1, sigma, alpha, beta });
        prop_assert!(s.boundary_b() < 0.0);
        prop_assert!(s.boundary_a() > 0.0);
    }

    /// Detector trait contract: reset always restores a non-alarming
    /// state, for every detector and any prior input stream.
    #[test]
    fn detectors_reset_contract(
        values in prop::collection::vec(-100.0f64..100.0, 0..100),
    ) {
        let detectors: Vec<Box<dyn ChangeDetector>> = vec![
            Box::new(Sprt::new(SprtConfig::default())),
            Box::new(Cusum::new(CusumConfig::default())),
            Box::new(Ewma::new(EwmaConfig::default())),
        ];
        for mut d in detectors {
            for &v in &values {
                d.update(v);
            }
            d.reset();
            prop_assert!(!d.update(0.0).is_anomalous(), "{} after reset", d.name());
        }
    }

    /// The CGM guard never alarms on a perfectly linear glucose ramp
    /// (innovation is identically zero) as long as the slope is
    /// non-zero (so the stuck-at check does not trip).
    #[test]
    fn guard_is_silent_on_linear_ramps(
        start in 150.0f64..250.0,
        slope_mag in 1.0f64..4.0,
        rising in any::<bool>(),
        n in 10usize..30,
    ) {
        // Parameters chosen so the ramp never leaves [30, 370]: a
        // clamped ramp goes flat, which the stuck-at check rightly
        // flags.
        let slope = if rising { slope_mag } else { -slope_mag };
        let mut g = CgmGuard::new(
            Cusum::new(CusumConfig::default()),
            GuardConfig::default(),
        );
        for i in 0..n {
            let bg = start + slope * i as f64;
            prop_assert!(!g.observe(MgDl(bg)).is_anomalous(), "alarm at sample {i}");
        }
    }

    /// CGM error model: distorted readings are always physiological
    /// and the process is deterministic per seed.
    #[test]
    fn error_model_is_bounded_and_deterministic(
        bg in 20.0f64..500.0,
        seed in any::<u64>(),
        n in 1usize..100,
    ) {
        let config = ErrorModelConfig { seed, ..ErrorModelConfig::degraded() };
        let run = || -> Vec<f64> {
            let mut m = CgmErrorModel::new(config);
            (0..n).map(|_| m.distort(MgDl(bg), 5.0).value()).collect()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        for v in a {
            prop_assert!((10.0..=600.0).contains(&v));
        }
    }

    /// MARD is scale-invariant: scaling truth and distorted series by
    /// the same positive factor leaves it unchanged.
    #[test]
    fn mard_is_scale_invariant(
        pairs in prop::collection::vec((50.0f64..400.0, -30.0f64..30.0), 1..50),
        k in 0.1f64..10.0,
    ) {
        let truth: Vec<f64> = pairs.iter().map(|(t, _)| *t).collect();
        let distorted: Vec<f64> = pairs.iter().map(|(t, e)| t + e).collect();
        let m1 = mard(&truth, &distorted);
        let ts: Vec<f64> = truth.iter().map(|t| t * k).collect();
        let ds: Vec<f64> = distorted.iter().map(|d| d * k).collect();
        let m2 = mard(&ts, &ds);
        prop_assert!((m1 - m2).abs() < 1e-9);
    }

    /// HMS deadline learning always lands inside the configured
    /// bounds, whatever the TTH distribution looks like.
    #[test]
    fn ts_learning_respects_bounds(
        tths in prop::collection::vec(0u32..150, 1..40),
        quantile in 0.0f64..1.0,
        fraction in 0.0f64..1.0,
    ) {
        let scs = Scs::with_default_thresholds(MgDl(110.0));
        let mut hms = Hms::for_scs(&scs);
        let traces: Vec<SimTrace> = tths.iter().map(|&dt| {
            let meta = TraceMeta {
                patient: "p".into(),
                initial_bg: 120.0,
                fault_name: "f".into(),
                fault_start: Some(Step(10)),
                hazard_onset: Some(Step(10 + dt)),
                hazard_type: Some(Hazard::H1),
            };
            let mut t = SimTrace::new(meta);
            for s in 0..(11 + dt) {
                t.records.push(StepRecord::blank(Step(s)));
            }
            t
        }).collect();
        let cfg = TsLearnConfig {
            quantile,
            safety_fraction: fraction,
            min_steps: 2,
            max_steps: 18,
        };
        hms.learn_ts(&traces, &cfg);
        for rule in &hms.rules {
            if rule.hazard == Hazard::H1 {
                prop_assert!((2..=18).contains(&rule.ts_steps));
            } else {
                prop_assert_eq!(rule.ts_steps, DEFAULT_TS_STEPS);
            }
        }
    }

    /// Context mitigation output is always inside [0, max_rate]; H2
    /// corrections are monotone in BG excess and antitone in IOB.
    #[test]
    fn context_mitigation_is_bounded_and_monotone(
        bg1 in 60.0f64..400.0,
        bg_delta in 0.0f64..100.0,
        iob1 in -1.0f64..6.0,
        iob_delta in 0.0f64..3.0,
        commanded in 0.0f64..8.0,
    ) {
        let m = ContextMitigator::new(ContextMitigatorConfig::for_run(
            MgDl(110.0),
            UnitsPerHour(1.0),
            UnitsPerHour(6.0),
        ));
        let ctx = |bg: f64, iob: f64| ContextVector { bg, dbg: 0.0, iob, diob: 0.0 };
        for hazard in [None, Some(Hazard::H1), Some(Hazard::H2)] {
            let out = m.mitigate(hazard, &ctx(bg1, iob1), UnitsPerHour(commanded));
            prop_assert!((0.0..=8.0).contains(&out.value()), "{hazard:?} -> {out:?}");
            if hazard.is_some() {
                prop_assert!(out.value() <= 6.0, "corrective rate above ceiling");
            }
        }
        // Monotonicity on the H2 side.
        let low = m.mitigate(Some(Hazard::H2), &ctx(bg1, iob1), UnitsPerHour(0.0));
        let high = m.mitigate(Some(Hazard::H2), &ctx(bg1 + bg_delta, iob1), UnitsPerHour(0.0));
        prop_assert!(high >= low, "correction not monotone in BG");
        let more_iob =
            m.mitigate(Some(Hazard::H2), &ctx(bg1, iob1 + iob_delta), UnitsPerHour(0.0));
        prop_assert!(more_iob <= low, "correction not antitone in IOB");
    }

    /// Context reconstruction from a trace matches exact finite
    /// differences for arbitrary BG/IOB series.
    #[test]
    fn context_series_is_exact_finite_differences(
        series in prop::collection::vec((40.0f64..400.0, 0.0f64..5.0), 1..60),
    ) {
        let mut trace = SimTrace::new(TraceMeta::default());
        for (i, (bg, iob)) in series.iter().enumerate() {
            let mut rec = StepRecord::blank(Step(i as u32));
            rec.bg = MgDl(*bg);
            rec.iob = Units(*iob);
            trace.records.push(rec);
        }
        let ctx = context_series(&trace);
        prop_assert_eq!(ctx.len(), series.len());
        for i in 1..series.len() {
            prop_assert!((ctx[i].dbg - (series[i].0 - series[i - 1].0)).abs() < 1e-12);
            let diob = (series[i].1 - series[i - 1].1) / CONTROL_CYCLE_MINUTES;
            prop_assert!((ctx[i].diob - diob).abs() < 1e-12);
        }
    }

    /// The HMS audit never reports more honored entries than total
    /// entries, and `entries = honored + truncated + violations`.
    #[test]
    fn hms_report_is_an_exact_partition(
        bgs in prop::collection::vec(40.0f64..300.0, 5..80),
        action_seed in any::<u8>(),
    ) {
        let scs = Scs::with_default_thresholds(MgDl(110.0));
        let hms = Hms::for_scs(&scs);
        let mut trace = SimTrace::new(TraceMeta::default());
        let actions = ControlAction::ALL;
        for (i, bg) in bgs.iter().enumerate() {
            let mut rec = StepRecord::blank(Step(i as u32));
            rec.bg = MgDl(*bg);
            rec.iob = Units(((i as u32 ^ u32::from(action_seed)) % 5) as f64 - 1.0);
            rec.action = actions[(i + action_seed as usize) % 4];
            trace.records.push(rec);
        }
        let report = hms.check_trace(&scs, &trace);
        prop_assert_eq!(
            report.entries,
            report.honored + report.truncated + report.violations.len()
        );
    }
}

/// The guard catches a spoof injected anywhere in a plausible trace —
/// a deterministic sweep rather than a proptest because the detector
/// needs a warm-up prefix.
#[test]
fn guard_catches_spoofs_at_any_onset() {
    for onset in [10usize, 25, 40] {
        let mut g = CgmGuard::new(Cusum::new(CusumConfig::default()), GuardConfig::default());
        let mut caught = false;
        for i in 0..onset + 6 {
            let bg = if i < onset { 120.0 + i as f64 } else { 320.0 };
            caught |= g.observe(MgDl(bg)).is_anomalous();
        }
        assert!(caught, "spoof at {onset} missed");
    }
}
