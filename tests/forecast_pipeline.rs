//! End-to-end guarantees of the prediction subsystem: campaign →
//! dataset → trained forecaster → serialized model → online monitor.
//!
//! * **Training determinism** — the same seed over the same campaign
//!   produces bit-identical weights (so the committed
//!   `results/forecast_model.json` is reproducible by rerunning
//!   `repro train`, and no opaque artifacts exist).
//! * **Serde round-trip** — a saved model reloads to an equal value
//!   with bit-identical predictions.
//! * **Incremental == batch** — stepping the `ForecastMonitor` through
//!   a live session one cycle at a time (carried hidden state, O(1)
//!   per step) produces exactly the prediction a batch forward pass
//!   over the same observed prefix produces.
//! * **Sessions as data** — `MonitorSpec::Forecast { path }` builds
//!   the monitor from the saved file inside `Session::from_spec`.

use aps_repro::prelude::*;

/// A small-but-real training campaign (one patient, short runs).
fn campaign_spec() -> CampaignSpec {
    CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0],
        steps: 60,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    }
}

const HORIZON: usize = 6;

/// The pipeline under test: stream the campaign into a bounded
/// TraceDataset, standardize, fit both forecasters, bundle.
fn train_bundle(seed: u64) -> ForecastModel {
    let spec = campaign_spec();
    let window = spec.steps as usize - HORIZON;
    let mut dataset = TraceDataset::with_cap(window, HORIZON, 40, seed);
    run_campaign_with(&spec, None, |_, trace| dataset.push_trace(&trace));
    assert_eq!(dataset.traces(), 31, "campaign changed size");
    let raw = dataset.into_set();
    let scaler = StandardScaler::fit_sequences(&raw.x);
    let mut scaled = raw;
    scaled.standardize(&scaler);
    let config = ForecastConfig {
        hidden: vec![6],
        mlp_hidden: vec![6],
        max_epochs: 3,
        seed,
        ..ForecastConfig::default()
    };
    ForecastModel {
        window,
        horizon: HORIZON,
        lstm: LstmForecaster::fit(&scaled, &config),
        mlp: MlpForecaster::fit(&scaled, &config),
        scaler,
        config,
        lstm_val_rmse: 0.0,
        mlp_val_rmse: 0.0,
        persistence_val_rmse: 0.0,
        trained_pairs: scaled.len(),
    }
}

#[test]
fn training_on_a_campaign_is_bit_deterministic() {
    let a = train_bundle(7);
    let b = train_bundle(7);
    assert_eq!(a, b, "same campaign + seed must reproduce the model");
    let c = train_bundle(8);
    assert_ne!(a.lstm, c.lstm, "different seeds should differ");
}

#[test]
fn saved_weights_roundtrip_through_serde() {
    let model = train_bundle(3);
    let json = serde_json::to_string(&model).expect("serialize");
    let back: ForecastModel = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(model, back);
    // Bit-identical inference from reloaded weights, streamed.
    let mut s1 = model.lstm.state();
    let mut s2 = back.lstm.state();
    for t in 0..20 {
        let x = [0.3 - 0.05 * t as f64, 0.1];
        assert_eq!(model.lstm.step(&mut s1, &x), back.lstm.step(&mut s2, &x));
    }
    // And a second serialization is byte-identical (stable format).
    assert_eq!(json, serde_json::to_string(&back).unwrap());
}

#[test]
fn monitor_stepping_matches_batch_forward_over_live_session() {
    let model = train_bundle(5);
    let mut monitor = ForecastMonitor::from_model(&model, ForecastBand::default());

    // Drive a real faulty session while replaying the monitor's inputs
    // into a parallel batch check: at every cycle the incremental
    // prediction must equal a cold-start batch pass over the full
    // observed prefix.
    let trace = Session::builder(Platform::GlucosymOref0)
        .patient(0)
        .inject(FaultScenario::new("rate", FaultKind::Max, Step(15), 30))
        .config(LoopConfig {
            steps: 50,
            ..LoopConfig::default()
        })
        .run()
        .expect("valid session");

    let mut prefix: Vec<Vec<f64>> = Vec::new();
    for rec in trace.iter() {
        let verdict = monitor.check(&MonitorInput {
            step: rec.step,
            bg: rec.bg,
            commanded: rec.commanded,
            previous_rate: UnitsPerHour(0.0),
        });
        prefix.push(
            model
                .scaler
                .transform(&[rec.bg.value(), rec.commanded.value()]),
        );
        let incremental = monitor.last_prediction().expect("checked at least once");
        let batch = model.lstm.predict_seq(&prefix);
        assert_eq!(
            incremental,
            batch,
            "incremental and batch forecasts diverged at step {}",
            rec.step.index()
        );
        // Warm-up cycles never alert.
        if rec.step.index() < 2 {
            assert_eq!(verdict, None);
        }
    }
    assert_eq!(prefix.len(), trace.len());
}

#[test]
fn forecast_monitor_runs_from_a_session_spec_file() {
    let model = train_bundle(2);
    let dir = std::env::temp_dir().join("aps_forecast_pipeline_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, serde_json::to_string(&model).unwrap()).expect("write model");

    let spec = SessionSpec {
        platform: Platform::GlucosymOref0,
        patient: 1,
        monitors: vec![
            MonitorSpec::Forecast {
                path: model_path.to_string_lossy().into_owned(),
            },
            MonitorSpec::RiskIndex,
        ],
        fault: Some(FaultScenario::new("rate", FaultKind::Max, Step(20), 36)),
        config: LoopConfig {
            steps: 60,
            ..LoopConfig::default()
        },
    };
    // The spec itself is serializable data, model path included.
    let spec_json = serde_json::to_string(&spec).unwrap();
    let spec_back: SessionSpec = serde_json::from_str(&spec_json).unwrap();
    assert_eq!(spec, spec_back);

    let trace = Session::from_spec(&spec_back)
        .expect("buildable spec")
        .run();
    assert_eq!(trace.monitor_tracks.len(), 2);
    assert!(trace.track("forecast").is_some(), "forecast track missing");
    assert_eq!(trace.track("forecast").unwrap().alerts.len(), trace.len());
}
