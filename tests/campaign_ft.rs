//! Fault-tolerant campaign execution: the tentpole equivalences.
//!
//! * The hardened executor's clean path is bit-identical to
//!   `run_campaign_serial` (the anchor all executors are defined
//!   against).
//! * Killing a checkpointed campaign at every checkpoint boundary and
//!   resuming from the snapshot reproduces the uninterrupted run —
//!   same emissions, same ledger, same rolling digest.
//! * A chaos-seeded run (injected panics, delays, poisoned specs) is
//!   deterministic: same seed ⇒ byte-identical serialized ledger; and
//!   it degrades gracefully — every non-failed job's trace equals the
//!   chaos-free reference.
//! * A diverging patient model surfaces as `SimError::NonFinite` from
//!   `Session::try_run` instead of poisoning the trace.

use aps_repro::prelude::*;
use aps_repro::sim::campaign::{
    run_campaign_ft, run_campaign_resumable, run_campaign_serial, CampaignOptions, CheckpointPolicy,
};
use aps_repro::sim::chaos::ChaosConfig;
use aps_repro::sim::checkpoint::{CampaignCheckpoint, CheckpointError};
use aps_repro::sim::outcome::{JobOutcome, RetryPolicy, SimError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0],
        steps: 40,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    }
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aps_ft_{}_{name}", std::process::id()));
    p
}

#[test]
fn ft_clean_path_is_bit_identical_to_serial() {
    let spec = tiny_spec();
    let serial = run_campaign_serial(&spec, None);
    // Force the parallel executor even on single-core machines, so the
    // reorder/run-ahead machinery is what this equivalence pins.
    let options = CampaignOptions {
        workers: Some(4),
        ..CampaignOptions::default()
    };
    let ft = run_campaign_ft(&spec, None, &options).unwrap();
    assert_eq!(ft.outcomes.len(), serial.len());
    for (i, (outcome, want)) in ft.outcomes.iter().zip(&serial).enumerate() {
        match outcome {
            JobOutcome::Completed(trace) => assert_eq!(trace, want, "job {i} diverged"),
            JobOutcome::Failed { error, .. } => panic!("job {i} failed on the clean path: {error}"),
        }
    }
    assert!(ft.report.ledger.is_empty());
    assert_eq!(ft.report.failed_jobs, 0);
}

#[test]
fn kill_at_every_checkpoint_boundary_then_resume_is_bit_identical() {
    let spec = tiny_spec();
    let ckpt_path = tmp_path("kill_resume.json");
    let every = 5usize;

    // Uninterrupted reference run (checkpointed, single worker so the
    // kill points below are exact).
    let base_options = CampaignOptions {
        checkpoint: Some(CheckpointPolicy {
            path: ckpt_path.clone(),
            every_jobs: every,
        }),
        workers: Some(1),
        ..CampaignOptions::default()
    };
    let mut reference = Vec::new();
    let ref_report = run_campaign_resumable(&spec, None, &base_options, None, |i, o| {
        reference.push((i, o));
    })
    .unwrap();
    let total = ref_report.total_jobs;
    assert!(total > every, "spec too small to exercise checkpoints");

    for kill_at in (every..total).step_by(every) {
        // Run until `kill_at` jobs have been emitted, then cancel.
        let cancel = Arc::new(AtomicBool::new(false));
        let options = CampaignOptions {
            cancel: Some(Arc::clone(&cancel)),
            ..base_options.clone()
        };
        let mut emissions = Vec::new();
        let killed = run_campaign_resumable(&spec, None, &options, None, |i, o| {
            emissions.push((i, o));
            if emissions.len() == kill_at {
                cancel.store(true, Ordering::Release);
            }
        })
        .unwrap();
        assert!(killed.cancelled, "kill at {kill_at} did not cancel");
        assert!(
            emissions.len() < total,
            "cancel at {kill_at} finished anyway"
        );

        // Resume from the snapshot on disk and let it finish.
        let snapshot = CampaignCheckpoint::load(&ckpt_path).unwrap();
        assert_eq!(snapshot.completed.count(), emissions.len());
        let resumed_report =
            run_campaign_resumable(&spec, None, &base_options, Some(&snapshot), |i, o| {
                emissions.push((i, o));
            })
            .unwrap();
        assert!(!resumed_report.cancelled);
        assert_eq!(resumed_report.skipped_resumed, kill_at);

        // The concatenation of both segments is the uninterrupted run.
        assert_eq!(emissions.len(), reference.len(), "kill at {kill_at}");
        for ((gi, go), (ri, ro)) in emissions.iter().zip(&reference) {
            assert_eq!(gi, ri, "kill at {kill_at}: emission order diverged");
            assert_eq!(go, ro, "kill at {kill_at}: job {gi} diverged after resume");
        }
        assert_eq!(
            resumed_report.digest, ref_report.digest,
            "kill at {kill_at}"
        );
        assert_eq!(
            resumed_report.ledger, ref_report.ledger,
            "kill at {kill_at}"
        );
        assert_eq!(
            resumed_report.completed_jobs, ref_report.completed_jobs,
            "kill at {kill_at}"
        );
    }
    let _ = std::fs::remove_file(&ckpt_path);
}

#[test]
fn chaos_is_deterministic_and_degrades_gracefully() {
    let spec = tiny_spec();
    let reference = run_campaign_serial(&spec, None);
    let options = CampaignOptions {
        chaos: Some(ChaosConfig {
            max_delay_ms: 1, // keep the test fast; delays still exercised
            ..ChaosConfig::with_seed(9)
        }),
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        // Multi-worker on purpose: chaos decisions are pure functions
        // of (seed, job, attempt), so thread interleaving must not
        // change the ledger.
        workers: Some(4),
        ..CampaignOptions::default()
    };
    let a = run_campaign_ft(&spec, None, &options).unwrap();
    let b = run_campaign_ft(&spec, None, &options).unwrap();

    // Same seed => same ledger, byte for byte, and same digest.
    let ledger_a = serde_json::to_string(&a.report.ledger).unwrap();
    let ledger_b = serde_json::to_string(&b.report.ledger).unwrap();
    assert_eq!(ledger_a, ledger_b);
    assert_eq!(a.report.digest, b.report.digest);
    assert_eq!(a.outcomes, b.outcomes);

    // The chaos parameters above make some failures and some
    // retry-rescues statistically certain over 31 jobs; if this seed
    // ever produces neither, pick another seed rather than weakening
    // the assertions.
    assert!(
        !a.report.ledger.is_empty(),
        "chaos seed 9 produced no permanent failures"
    );
    assert!(a.report.completed_jobs > 0, "chaos seed 9 failed every job");
    let retried_success = a.report.completed_jobs + a.report.failed_jobs == a.report.total_jobs;
    assert!(retried_success);

    // Graceful degradation: every completed job's trace is exactly the
    // chaos-free reference trace (chaos perturbs the executor, never
    // the physics).
    for (i, outcome) in a.outcomes.iter().enumerate() {
        if let JobOutcome::Completed(trace) = outcome {
            assert_eq!(trace, &reference[i], "chaos changed the physics of job {i}");
        }
    }

    // A different seed gives a different schedule (ledger differs).
    let other = run_campaign_ft(
        &spec,
        None,
        &CampaignOptions {
            chaos: Some(ChaosConfig {
                max_delay_ms: 1,
                ..ChaosConfig::with_seed(8)
            }),
            ..options.clone()
        },
    )
    .unwrap();
    assert_ne!(
        serde_json::to_string(&other.report.ledger).unwrap(),
        ledger_a,
        "seeds 9 and 8 produced identical ledgers"
    );
}

#[test]
fn chaos_failures_report_real_error_kinds() {
    // With one attempt, the ledger must contain the injected kinds.
    let spec = tiny_spec();
    let options = CampaignOptions {
        chaos: Some(ChaosConfig {
            max_delay_ms: 0,
            ..ChaosConfig::with_seed(3)
        }),
        ..CampaignOptions::default()
    };
    let ft = run_campaign_ft(&spec, None, &options).unwrap();
    let panicked = ft
        .report
        .ledger
        .entries
        .iter()
        .any(|e| matches!(e.error, SimError::Panicked { .. }));
    let poisoned = ft
        .report
        .ledger
        .entries
        .iter()
        .any(|e| matches!(e.error, SimError::InvalidSpec { .. }));
    assert!(
        panicked && poisoned,
        "chaos seed 3 exercised only some fault kinds: {:?}",
        ft.report.ledger
    );
}

#[test]
fn resume_rejects_foreign_checkpoints() {
    let spec = tiny_spec();
    let ckpt_path = tmp_path("foreign.json");
    let options = CampaignOptions {
        checkpoint: Some(CheckpointPolicy {
            path: ckpt_path.clone(),
            every_jobs: 10,
        }),
        ..CampaignOptions::default()
    };
    run_campaign_resumable(&spec, None, &options, None, |_, _| {}).unwrap();
    let snapshot = CampaignCheckpoint::load(&ckpt_path).unwrap();

    // Different spec (more steps) => spec-hash mismatch.
    let other_spec = CampaignSpec {
        steps: 41,
        ..tiny_spec()
    };
    let err = run_campaign_resumable(
        &other_spec,
        None,
        &CampaignOptions::default(),
        Some(&snapshot),
        |_, _| {},
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");

    // Same spec but a chaos seed the snapshot was not taken under.
    let err = run_campaign_resumable(
        &spec,
        None,
        &CampaignOptions {
            chaos: Some(ChaosConfig::with_seed(1)),
            ..CampaignOptions::default()
        },
        Some(&snapshot),
        |_, _| {},
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
    let _ = std::fs::remove_file(&ckpt_path);
}

/// A patient model that silently corrupts its internal state after a
/// fixed number of steps while still reporting a plausible BG — the
/// exact failure mode the `state_is_finite` harness check exists for.
struct ExplodingPatient {
    bg: f64,
    steps: u32,
    explode_at: u32,
}

impl PatientSim for ExplodingPatient {
    fn name(&self) -> &str {
        "test/exploding"
    }
    fn bg(&self) -> MgDl {
        MgDl(self.bg)
    }
    fn step(&mut self, _rate: UnitsPerHour, _minutes: f64) {
        self.steps += 1;
    }
    fn reset(&mut self, bg0: MgDl) {
        self.bg = bg0.0;
        self.steps = 0;
    }
    fn ingest(&mut self, _carbs_g: f64) {}
    fn equilibrium_basal(&self, _target: MgDl) -> UnitsPerHour {
        UnitsPerHour(1.0)
    }
    fn state_is_finite(&self) -> bool {
        self.steps < self.explode_at
    }
}

#[test]
fn diverging_patient_surfaces_as_typed_non_finite_error() {
    let patient = ExplodingPatient {
        bg: 120.0,
        steps: 0,
        explode_at: 13,
    };
    let mut session = Session::builder(Platform::GlucosymOref0)
        .patient_sim(Box::new(patient))
        .build()
        .unwrap();
    match session.try_run() {
        Err(SimError::NonFinite { cycle }) => assert_eq!(cycle, 12),
        other => panic!("expected NonFinite, got {other:?}"),
    }
}
