//! Equivalence of the streaming O(n) risk engine with the seed's
//! O(n·window) labeler.
//!
//! Two pins, per the PR contract:
//!
//! * a **proptest** that the online [`RiskTracker`] API produces
//!   byte-identical labels to the batch [`label_series`] on arbitrary
//!   BG series and window sizes;
//! * a **corpus test** that the O(n) [`label_series`] agrees label-for-
//!   label with the retained O(n·window) reference implementation
//!   ([`label_series_reference`]) on every trace of the quick fault
//!   campaign, for a range of window lengths.

use aps_repro::prelude::*;
use aps_repro::risk::{label_series, label_series_reference, LabelConfig, RiskTracker};
use proptest::prelude::*;

/// Drives the online tracker one sample at a time and reconstructs the
/// retro-marked label vector the way a live consumer would.
fn labels_via_streaming(series: &[f64], config: &LabelConfig) -> Vec<Option<Hazard>> {
    let mut tracker = RiskTracker::new(config.clone());
    let mut labels: Vec<Option<Hazard>> = vec![None; series.len()];
    for (t, &bg) in series.iter().enumerate() {
        let sample = tracker.push(bg);
        assert_eq!(sample.index, t);
        match sample.hazard {
            Some(Hazard::H1) => {
                for l in labels[sample.window_start..=t].iter_mut() {
                    *l = Some(Hazard::H1);
                }
            }
            Some(Hazard::H2) => {
                for l in labels[sample.window_start..=t].iter_mut() {
                    if *l != Some(Hazard::H1) {
                        *l = Some(Hazard::H2);
                    }
                }
            }
            None => {}
        }
    }
    labels
}

proptest! {
    /// Streaming tracker == batch labeler, byte for byte, on arbitrary
    /// series and windows.
    #[test]
    fn streaming_tracker_matches_batch_labeler(
        series in prop::collection::vec(20.0f64..600.0, 0..250),
        window in 1usize..40,
    ) {
        let config = LabelConfig { window, ..LabelConfig::default() };
        prop_assert_eq!(
            labels_via_streaming(&series, &config),
            label_series(&series, &config)
        );
    }

    /// The O(n) labeler == the seed O(n·window) reference on arbitrary
    /// series and windows.
    #[test]
    fn linear_labeler_matches_reference(
        series in prop::collection::vec(20.0f64..600.0, 0..250),
        window in 1usize..40,
    ) {
        let config = LabelConfig { window, ..LabelConfig::default() };
        prop_assert_eq!(
            label_series(&series, &config),
            label_series_reference(&series, &config)
        );
    }

    /// Adversarial shape for a rolling sum: long plateaus (where the
    /// indices must *not* look rising) joined by ramps.
    #[test]
    fn plateaus_and_ramps_match_reference(
        low in 30.0f64..90.0,
        high in 150.0f64..500.0,
        hold in 5usize..40,
        window in 1usize..25,
    ) {
        let mut series = Vec::new();
        for _ in 0..hold {
            series.push(high);
        }
        let ramp = 20;
        for i in 0..=ramp {
            series.push(high + (low - high) * i as f64 / ramp as f64);
        }
        for _ in 0..hold {
            series.push(low);
        }
        let config = LabelConfig { window, ..LabelConfig::default() };
        prop_assert_eq!(
            label_series(&series, &config),
            label_series_reference(&series, &config)
        );
        prop_assert_eq!(
            labels_via_streaming(&series, &config),
            label_series(&series, &config)
        );
    }
}

/// Label-for-label agreement on real closed-loop traces: every run of
/// the quick fault campaign (both platforms, extended fault alphabet
/// included), across the window lengths the experiments use.
#[test]
fn quick_campaign_corpus_labels_are_bit_identical() {
    for platform in Platform::ALL {
        let spec = CampaignSpec {
            patient_indices: vec![0],
            extended_faults: true,
            ..CampaignSpec::quick(platform)
        };
        let traces = run_campaign(&spec, None);
        assert!(!traces.is_empty());
        let mut labeled = 0usize;
        for trace in &traces {
            let series = trace.bg_true_series();
            for window in [4usize, 12, 24] {
                let config = LabelConfig {
                    window,
                    ..LabelConfig::default()
                };
                let fast = label_series(&series, &config);
                let reference = label_series_reference(&series, &config);
                assert_eq!(
                    fast,
                    reference,
                    "{}: labels diverged (window {window}, fault {})",
                    platform.name(),
                    trace.meta.fault_name
                );
                labeled += fast.iter().flatten().count();
            }
        }
        assert!(
            labeled > 0,
            "{}: corpus contains no hazardous window — equivalence vacuous",
            platform.name()
        );
    }
}
