//! Equivalence guarantees behind the batched lockstep campaign engine.
//!
//! The structure-of-arrays physics banks ([`BatchedBergman`],
//! [`BatchedDallaMan`] behind [`run_block`]) are required to be
//! *behavior-preserving*: a campaign stepped in lockstep blocks of
//! [`BATCH_LANES`] must emit exactly the traces the scalar serial
//! executor emits, bit for bit. These tests pin that down:
//!
//! * full quick-campaign corpora on **both** platforms (Bergman and
//!   Dalla Man), with and without a monitor factory;
//! * the **extended fault alphabet** (every injectable target ×
//!   fault kind the campaign generator knows);
//! * **ragged tails** — corpus sizes that are not a multiple of the
//!   lane width, so the final block runs with padding lanes;
//! * randomized campaign shapes under proptest;
//! * a **non-finite lane** fails with the same typed
//!   [`SimError::NonFinite`] (same cycle index) as the scalar
//!   executor, without perturbing its lane-mates.

use aps_repro::prelude::*;
use aps_repro::sim::campaign::run_campaign_serial;
use proptest::prelude::*;

/// A monitor factory mirroring the one used by the parallel-executor
/// equivalence suite: per-scenario CAW monitors carry basal context,
/// so any cross-lane state leak would show up in the alert streams.
fn caw_factory() -> Box<MonitorFactory<'static>> {
    Box::new(|ctx: &ScenarioCtx| {
        Box::new(CawMonitor::new(
            "cawot",
            Scs::with_default_thresholds(MgDl(110.0)),
            ctx.basal,
        )) as Box<dyn HazardMonitor>
    })
}

/// Quick corpus, both platforms, with and without monitors: the
/// batched engine's output equals the serial executor's exactly. The
/// quick corpus (62 jobs) is deliberately ragged at `BATCH_LANES = 8`
/// (62 = 7×8 + 6), so the padded tail block is always exercised.
#[test]
fn batched_campaign_equals_serial_on_both_platforms() {
    for platform in Platform::ALL {
        let spec = CampaignSpec {
            steps: 60,
            ..CampaignSpec::quick(platform)
        };
        let jobs = campaign_jobs(&spec);
        assert_ne!(
            jobs.len() % BATCH_LANES,
            0,
            "corpus must have a ragged tail to exercise padding"
        );

        let serial = run_campaign_serial(&spec, None);
        let batched = run_campaign_batched(&spec, None);
        assert_eq!(serial, batched, "batched engine diverged on {platform:?}");

        let factory = caw_factory();
        let serial_m = run_campaign_serial(&spec, Some(factory.as_ref()));
        let batched_m = run_campaign_batched(&spec, Some(factory.as_ref()));
        assert_eq!(serial_m, batched_m, "monitored engines diverged");
    }
}

/// The extended fault alphabet (every injectable target × fault kind)
/// through both platforms: per-lane fault injection in the lockstep
/// engine follows the scalar route/bounds logic exactly.
#[test]
fn batched_campaign_equals_serial_on_extended_fault_alphabet() {
    for platform in Platform::ALL {
        let spec = CampaignSpec {
            patient_indices: vec![0],
            steps: 40,
            ..CampaignSpec::extended(platform)
        };
        let serial = run_campaign_serial(&spec, None);
        let batched = run_campaign_batched(&spec, None);
        assert_eq!(
            serial, batched,
            "extended-fault batched engine diverged on {platform:?}"
        );
    }
}

/// The streaming entry point emits every trace in job order (the same
/// contract the scalar streaming executor has), independent of block
/// boundaries.
#[test]
fn batched_streaming_sink_preserves_job_order() {
    let spec = CampaignSpec {
        patient_indices: vec![0],
        steps: 30,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    };
    let serial = run_campaign_serial(&spec, None);
    let mut indices = Vec::new();
    let mut traces = Vec::new();
    run_campaign_batched_with(&spec, None, |i, trace| {
        indices.push(i);
        traces.push(trace);
    });
    assert_eq!(indices, (0..serial.len()).collect::<Vec<_>>());
    assert_eq!(traces, serial);
}

/// One lane going non-finite must surface as that job's typed
/// [`SimError::NonFinite`] at the same cycle the scalar executor
/// reports, and every lane-mate in the block must stay bit-identical
/// to its serial twin — a dead lane is isolated, not contagious.
#[test]
fn nonfinite_lane_is_isolated_and_matches_scalar_error() {
    // An initial BG of 1e308 overflows the Dalla Man plasma-glucose
    // compartment (Gp = BG × Vg) at reset, so those jobs diverge on
    // the very first finiteness check. It is finite, so job validation
    // accepts it and the engine (not the spec check) must catch it.
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0, 1e308, 140.0],
        steps: 30,
        ..CampaignSpec::quick(Platform::T1dsBasalBolus)
    };
    let jobs = campaign_jobs(&spec);
    assert!(jobs.iter().any(|j| j.initial_bg == 1e308));

    // Scalar reference: the fault-tolerant executor reports per-job
    // outcomes (trace or typed error) without tearing down.
    let options = CampaignOptions::default();
    let mut scalar: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    run_campaign_resumable(&spec, None, &options, None, |i, outcome| {
        scalar[i] = Some(outcome);
    })
    .expect("no checkpointing configured");

    // Batched: run the same corpus block by block through run_block,
    // which exposes per-lane Results.
    let mut batched = Vec::with_capacity(jobs.len());
    for block in jobs.chunks(BATCH_LANES) {
        batched.extend(run_block::<BATCH_LANES>(&spec, block, None));
    }

    let mut nonfinite_seen = 0;
    for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
        match (s.as_ref().expect("sink covered every job"), b) {
            (JobOutcome::Completed(st), Ok(bt)) => {
                assert_eq!(st, bt, "lane-mate {i} diverged from serial");
            }
            (JobOutcome::Failed { error, .. }, Err(be)) => {
                assert_eq!(error, be, "job {i} failed differently");
                assert!(
                    matches!(be, SimError::NonFinite { .. }),
                    "job {i}: expected NonFinite, got {be:?}"
                );
                nonfinite_seen += 1;
            }
            (s, b) => panic!("job {i}: scalar {s:?} vs batched {b:?}"),
        }
    }
    assert!(nonfinite_seen > 0, "the poison BG produced no failures");
    assert!(
        nonfinite_seen < jobs.len(),
        "healthy lane-mates must survive"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized campaign shapes (patient subset, BG grid, step
    /// count) on both platforms: batched == serial, bit for bit.
    #[test]
    fn batched_equals_serial_on_random_campaign_shapes(
        patient_a in 0usize..10,
        patient_b in 0usize..10,
        bg in 90.0f64..200.0,
        steps in 10u32..45,
    ) {
        for platform in Platform::ALL {
            let spec = CampaignSpec {
                patient_indices: if patient_a == patient_b {
                    vec![patient_a]
                } else {
                    vec![patient_a, patient_b]
                },
                initial_bgs: vec![bg],
                steps,
                ..CampaignSpec::quick(platform)
            };
            let serial = run_campaign_serial(&spec, None);
            let batched = run_campaign_batched(&spec, None);
            prop_assert_eq!(&serial, &batched, "diverged on {:?}", platform);
        }
    }

    /// Every block occupancy from one lane to a full block: direct
    /// `run_block` calls over corpus prefixes equal the serial traces
    /// regardless of how many padding lanes ride along.
    #[test]
    fn every_ragged_block_size_matches_serial(occupancy in 1usize..BATCH_LANES + 1) {
        let spec = CampaignSpec {
            patient_indices: vec![0, 1],
            steps: 25,
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        };
        let jobs = campaign_jobs(&spec);
        prop_assert!(jobs.len() >= BATCH_LANES);
        let serial = run_campaign_serial(&spec, None);
        let block = run_block::<BATCH_LANES>(&spec, &jobs[..occupancy], None);
        prop_assert_eq!(block.len(), occupancy);
        for (i, r) in block.into_iter().enumerate() {
            match r {
                Ok(trace) => prop_assert_eq!(&trace, &serial[i], "lane {} diverged", i),
                Err(e) => prop_assert!(false, "lane {} failed: {:?}", i, e),
            }
        }
    }
}
