//! Integration tests spanning the whole stack: patient models,
//! controllers, fault injection, labeling, and monitors in one loop.

use aps_repro::prelude::*;

fn min_bg(trace: &SimTrace) -> f64 {
    trace
        .bg_true_series()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
}

fn max_bg(trace: &SimTrace) -> f64 {
    trace
        .bg_true_series()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Every patient on both platforms survives a fault-free 12-hour run
/// inside a broad physiological band, regardless of starting glucose.
#[test]
fn fault_free_runs_are_stable_for_all_patients() {
    for platform in Platform::ALL {
        for (i, mut patient) in platform.patients().into_iter().enumerate() {
            for bg0 in [80.0, 140.0, 200.0] {
                let mut controller = platform.controller_for(patient.as_ref());
                let config = LoopConfig {
                    initial_bg: bg0,
                    ..LoopConfig::default()
                };
                let trace =
                    closed_loop::run(patient.as_mut(), controller.as_mut(), None, None, &config);
                let (lo, hi) = (min_bg(&trace), max_bg(&trace));
                assert!(
                    lo > 45.0 && hi < 420.0,
                    "{} patient {i} from {bg0}: BG range [{lo:.0}, {hi:.0}]",
                    platform.name()
                );
            }
        }
    }
}

/// A sustained max-rate fault produces an H1 hazard, and the CAWOT
/// monitor raises its first alert before hazard onset.
#[test]
fn cawot_predicts_overdose_hazard_early() {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(0);
    let mut controller = platform.controller_for(patient.as_ref());
    let scs = Scs::with_default_thresholds(platform.target());
    let mut monitor = CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
    let mut injector = FaultInjector::new(FaultScenario::new("rate", FaultKind::Max, Step(20), 36));
    let trace = closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        Some(&mut monitor),
        Some(&mut injector),
        &LoopConfig::default(),
    );
    let onset = trace
        .meta
        .hazard_onset
        .expect("fault should cause a hazard");
    let alert = trace.first_alert().expect("monitor should alert");
    assert!(
        alert < onset,
        "alert at {alert:?} should precede hazard onset at {onset:?}"
    );
}

/// Mitigation turns a hazardous overdose scenario into a survivable
/// one (or at least raises the glucose floor).
#[test]
fn mitigation_raises_the_glucose_floor() {
    use aps_repro::core::mitigation::Mitigator;
    let platform = Platform::GlucosymOref0;
    let scenario = FaultScenario::new("rate", FaultKind::Max, Step(20), 36);

    let run_with = |mitigate: bool| {
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let scs = Scs::with_default_thresholds(platform.target());
        let mut monitor = CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
        let mut injector = FaultInjector::new(scenario.clone());
        let config = LoopConfig {
            mitigator: mitigate
                .then(|| Mitigator::paper_default(platform.max_mitigation_rate(patient.as_ref()))),
            ..LoopConfig::default()
        };
        closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            Some(&mut monitor),
            Some(&mut injector),
            &config,
        )
    };

    let unmitigated = run_with(false);
    let mitigated = run_with(true);
    assert!(
        unmitigated.is_hazardous(),
        "baseline scenario must be hazardous"
    );
    assert!(
        min_bg(&mitigated) > min_bg(&unmitigated) + 5.0,
        "mitigation floor {:.1} vs baseline {:.1}",
        min_bg(&mitigated),
        min_bg(&unmitigated)
    );
}

/// The glucose-input fault path: a max_glucose attack makes the
/// controller overdose even though the patient's true BG is normal.
#[test]
fn glucose_input_fault_causes_overdose() {
    let platform = Platform::GlucosymOref0;
    let mut patient = platform.patients().remove(1);
    let mut controller = platform.controller_for(patient.as_ref());
    let mut injector =
        FaultInjector::new(FaultScenario::new("glucose", FaultKind::Max, Step(20), 30));
    let trace = closed_loop::run(
        patient.as_mut(),
        controller.as_mut(),
        None,
        Some(&mut injector),
        &LoopConfig::default(),
    );
    // The true glucose must end lower than a fault-free run would.
    assert!(
        min_bg(&trace) < 85.0,
        "spoofed-high glucose should cause an overdose dip, floor {:.1}",
        min_bg(&trace)
    );
    // The recorded CGM column holds the *clean* reading (the monitor's
    // view), so it must stay physiological even during the fault.
    let max_reading = trace
        .records
        .iter()
        .map(|r| r.bg.value())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max_reading < 390.0, "clean reading column was corrupted");
}

/// Suppressing insulin (truncate-rate DoS) drives BG meaningfully
/// higher than the fault-free trajectory on both platforms (the
/// Padova-style model responds more slowly — hours of insulin washout
/// — so the comparison is against its own baseline, not a fixed bar).
#[test]
fn truncate_rate_fault_raises_bg_on_both_platforms() {
    for platform in Platform::ALL {
        let run_with = |faulty: bool| {
            let mut patient = platform.patients().remove(0);
            let mut controller = platform.controller_for(patient.as_ref());
            let mut injector = FaultInjector::new(FaultScenario::new(
                "rate",
                FaultKind::Truncate,
                Step(10),
                60,
            ));
            let config = LoopConfig {
                initial_bg: 160.0,
                ..LoopConfig::default()
            };
            let trace = closed_loop::run(
                patient.as_mut(),
                controller.as_mut(),
                None,
                faulty.then_some(&mut injector),
                &config,
            );
            max_bg(&trace)
        };
        let clean = run_with(false);
        let faulty = run_with(true);
        assert!(
            faulty > clean + 8.0,
            "{}: 5 h without insulin peaked {faulty:.0} vs clean {clean:.0}",
            platform.name()
        );
    }
}

/// The monitor wrapper must never change the trajectory when it only
/// observes (no mitigation): monitored and unmonitored runs of the
/// same scenario are identical.
#[test]
fn observation_only_monitor_does_not_perturb_the_loop() {
    let platform = Platform::GlucosymOref0;
    let scenario = FaultScenario::new("iob", FaultKind::Max, Step(30), 24);
    let run_with_monitor = |with: bool| {
        let mut patient = platform.patients().remove(3);
        let mut controller = platform.controller_for(patient.as_ref());
        let scs = Scs::with_default_thresholds(platform.target());
        let mut monitor = CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
        let mut injector = FaultInjector::new(scenario.clone());
        let trace = closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            with.then_some(&mut monitor as &mut dyn HazardMonitor),
            Some(&mut injector),
            &LoopConfig::default(),
        );
        trace.bg_true_series()
    };
    assert_eq!(run_with_monitor(true), run_with_monitor(false));
}
