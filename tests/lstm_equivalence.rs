//! Equivalence and allocation guarantees behind the LSTM scratch-buffer
//! training rework (the last open hot-path item from the ROADMAP).
//!
//! Mirrors `tests/perf_equivalence.rs`: the optimized path must be
//! *behavior-preserving*, so the pre-scratch allocating implementation
//! is retained verbatim ([`Lstm::fit_reference`]) and the scratch path
//! ([`Lstm::fit`]) is pinned bit-identical to it — full training runs,
//! including Xavier init, shuffling, BPTT, gradient clipping, Adam and
//! early stopping, must produce byte-for-byte equal weights.

use aps_repro::ml::lstm::{Lstm, LstmConfig, SeqDataset};
use rand_chacha::rand_core::SeedableRng;

/// Deterministic synthetic sequence task (sign of a decayed sum).
fn task(n: usize, t: usize, d: usize, seed: u64) -> SeqDataset {
    use rand::Rng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let seq: Vec<Vec<f64>> = (0..t)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let score: f64 = seq
            .iter()
            .enumerate()
            .map(|(i, row)| row[0] * 0.8f64.powi(i as i32))
            .sum();
        x.push(seq);
        y.push(usize::from(score > 0.0));
    }
    SeqDataset::new(x, y)
}

#[test]
fn scratch_fit_is_bit_identical_to_allocating_reference() {
    // Several shapes: single layer, stacked, multi-feature, batch
    // sizes that do and do not divide the training set, and enough
    // epochs for clipping + early stopping + best-model restore to
    // all participate.
    let shapes: &[(usize, usize, usize, LstmConfig)] = &[
        (
            40,
            5,
            1,
            LstmConfig {
                hidden: vec![9],
                max_epochs: 6,
                batch_size: 8,
                ..LstmConfig::default()
            },
        ),
        (
            36,
            6,
            3,
            LstmConfig {
                hidden: vec![8, 5],
                max_epochs: 5,
                batch_size: 7,
                seed: 9,
                ..LstmConfig::default()
            },
        ),
        (
            24,
            4,
            2,
            LstmConfig {
                hidden: vec![6, 4, 3],
                max_epochs: 4,
                batch_size: 24,
                clip_norm: 0.5, // force the clipping branch
                seed: 11,
                ..LstmConfig::default()
            },
        ),
    ];
    for (i, (n, t, d, config)) in shapes.iter().enumerate() {
        let data = task(*n, *t, *d, 100 + i as u64);
        let scratch = Lstm::fit(&data, config);
        let reference = Lstm::fit_reference(&data, config);
        assert_eq!(
            scratch, reference,
            "scratch and reference training diverged on shape {i}"
        );
        // And the trained predictor behaves identically.
        for xs in data.x.iter().take(5) {
            assert_eq!(
                aps_repro::ml::SequenceClassifier::predict_proba_seq(&scratch, xs),
                aps_repro::ml::SequenceClassifier::predict_proba_seq(&reference, xs),
            );
        }
    }
}
