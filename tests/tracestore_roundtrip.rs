//! Trace-store round-trip properties.
//!
//! * Arbitrary corpora — empty campaigns, empty traces, traces with and
//!   without monitor banks, ragged alert tracks, exotic f64 bit
//!   patterns — survive `write_store` → `TraceStoreReader` →
//!   `read_all` **bit-identical**.
//! * Header hashes are exact u64s (including values above 2^53 that a
//!   JSON number would mangle).
//! * A store truncated at *any* byte is rejected with a typed error,
//!   never misread; a store from a newer format version is rejected
//!   with `StoreError::Version`.
//! * The columnar paths match the JSONL paths exactly: a
//!   `TraceDataset` streamed off store columns equals one built from
//!   JSONL-loaded traces, and `replay_store` equals `replay_campaign`
//!   on a real quick-campaign corpus.

use aps_repro::ml::data::TraceDataset;
use aps_repro::prelude::*;
use aps_repro::sim::io::{read_jsonl, write_jsonl};
use aps_repro::tracestore::{
    code_version_hash, read_store, write_store, StoreError, TraceStoreReader,
};
use aps_repro::types::{
    AlertTrack, ControlAction, Hazard, MgDl, SimTrace, Step, StepRecord, TraceMeta, Units,
    UnitsPerHour,
};
use proptest::prelude::*;

/// splitmix64: cheap, deterministic stream of u64s from one seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gen_f64(state: &mut u64) -> f64 {
    // Mix ordinary magnitudes with exact-bit hostile values: negative
    // zero, subnormals, and full-precision mantissas all have to
    // round-trip bit-for-bit through the column encoding.
    match splitmix64(state) % 6 {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MIN_POSITIVE / 2.0, // subnormal
        3 => (splitmix64(state) % 600) as f64 / 3.0,
        4 => f64::from_bits(splitmix64(state) >> 12 | 0x3FF0_0000_0000_0000),
        _ => -((splitmix64(state) % 1000) as f64) * 0.125,
    }
}

fn gen_hazard(state: &mut u64) -> Option<Hazard> {
    match splitmix64(state) % 3 {
        0 => None,
        1 => Some(Hazard::H1),
        _ => Some(Hazard::H2),
    }
}

fn gen_trace(state: &mut u64, len: usize, with_tracks: bool) -> SimTrace {
    let mut t = SimTrace::new(TraceMeta {
        patient: format!("patient#{}", splitmix64(state) % 100),
        initial_bg: gen_f64(state),
        fault_name: if splitmix64(state).is_multiple_of(2) {
            String::new()
        } else {
            format!("fault_{}", splitmix64(state) % 8)
        },
        fault_start: (splitmix64(state).is_multiple_of(2))
            .then(|| Step((splitmix64(state) % 500) as u32)),
        hazard_onset: (splitmix64(state).is_multiple_of(3))
            .then(|| Step((splitmix64(state) % 500) as u32)),
        hazard_type: gen_hazard(state),
    });
    for i in 0..len {
        t.push(StepRecord {
            step: Step(i as u32),
            bg: MgDl(gen_f64(state)),
            bg_true: MgDl(gen_f64(state)),
            iob: Units(gen_f64(state)),
            commanded: UnitsPerHour(gen_f64(state)),
            delivered: UnitsPerHour(gen_f64(state)),
            action: ControlAction::ALL[(splitmix64(state) % 4) as usize],
            fault_active: splitmix64(state).is_multiple_of(2),
            hazard: gen_hazard(state),
            alert: gen_hazard(state),
        });
    }
    if with_tracks {
        // Ragged on purpose: different monitors, different stream
        // lengths, including an empty one.
        let n_tracks = (splitmix64(state) % 3) as usize + 1;
        for k in 0..n_tracks {
            let track_len = (splitmix64(state) as usize) % (len + 2);
            t.monitor_tracks.push(AlertTrack {
                monitor: format!("monitor_{k}"),
                alerts: (0..track_len).map(|_| gen_hazard(state)).collect(),
            });
        }
    }
    t
}

fn gen_corpus(seed: u64, n_traces: usize) -> Vec<SimTrace> {
    let mut state = seed;
    (0..n_traces)
        .map(|i| {
            let len = if i == 0 {
                0
            } else {
                (splitmix64(&mut state) % 120) as usize
            };
            let with_tracks = splitmix64(&mut state).is_multiple_of(2);
            gen_trace(&mut state, len, with_tracks)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any corpus — including the empty one and empty traces — reads
    /// back bit-identical, and the u64 header hashes survive exactly
    /// even above 2^53.
    #[test]
    fn store_roundtrip_is_bit_identical(
        seed in any::<u64>(),
        spec_hash in any::<u64>(),
        n_traces in 0usize..6,
    ) {
        let traces = gen_corpus(seed, n_traces);
        let bytes = write_store(&traces, spec_hash).unwrap();
        let reader = TraceStoreReader::from_bytes(bytes).unwrap();
        prop_assert_eq!(reader.header().spec_hash, spec_hash);
        prop_assert_eq!(reader.header().code_version_hash, code_version_hash());
        prop_assert_eq!(reader.len(), traces.len());
        let back = read_store(&reader);
        // PartialEq on f64 treats -0.0 == 0.0; compare the raw bits of
        // every column as well as the structural equality.
        prop_assert_eq!(&back, &traces);
        for (a, b) in back.iter().zip(&traces) {
            for (ra, rb) in a.records.iter().zip(&b.records) {
                prop_assert_eq!(ra.bg.value().to_bits(), rb.bg.value().to_bits());
                prop_assert_eq!(ra.bg_true.value().to_bits(), rb.bg_true.value().to_bits());
                prop_assert_eq!(ra.iob.value().to_bits(), rb.iob.value().to_bits());
                prop_assert_eq!(ra.commanded.value().to_bits(), rb.commanded.value().to_bits());
                prop_assert_eq!(ra.delivered.value().to_bits(), rb.delivered.value().to_bits());
            }
            prop_assert_eq!(
                a.meta.initial_bg.to_bits(),
                b.meta.initial_bg.to_bits()
            );
        }
    }

    /// A store cut short at any byte must fail validation with a typed
    /// error — `from_bytes` never yields a reader over a torn file.
    #[test]
    fn any_truncation_is_rejected(
        seed in any::<u64>(),
        cut_sel in any::<u64>(),
    ) {
        let traces = gen_corpus(seed, 3);
        let bytes = write_store(&traces, 7).unwrap();
        let cut = (cut_sel as usize) % bytes.len(); // strictly short
        let err = TraceStoreReader::from_bytes(bytes[..cut].to_vec())
            .expect_err("torn store must not validate");
        prop_assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::BadMagic
            ),
            "unexpected error for cut at {}: {:?}", cut, err
        );
    }

    /// Flipping the version field to anything newer than this build
    /// supports yields the typed `Version` error, exact fields intact.
    #[test]
    fn future_versions_are_rejected(bump in 1u32..1000) {
        let bytes = write_store(&gen_corpus(1, 1), 0).unwrap();
        let mut future = bytes;
        let v = aps_repro::tracestore::FORMAT_VERSION + bump;
        future[8..12].copy_from_slice(&v.to_le_bytes());
        match TraceStoreReader::from_bytes(future) {
            Err(StoreError::Version { found, supported }) => {
                prop_assert_eq!(found, v);
                prop_assert_eq!(supported, aps_repro::tracestore::FORMAT_VERSION);
            }
            other => prop_assert!(false, "expected Version error, got {:?}", other),
        }
    }

    /// Forecast windows streamed off store columns are bit-identical
    /// to windows built from traces that went through JSONL: same
    /// reservoir decisions, same window contents.
    #[test]
    fn dataset_from_store_matches_dataset_from_jsonl(
        seed in any::<u64>(),
        cap_sel in 0usize..3,
    ) {
        let traces = gen_corpus(seed, 4);

        let mut jsonl = Vec::new();
        write_jsonl(&traces, &mut jsonl).unwrap();
        let from_jsonl = read_jsonl(&jsonl[..]).unwrap();
        let reader = TraceStoreReader::from_bytes(write_store(&traces, 0).unwrap()).unwrap();

        let cap = [0, 7, 100][cap_sel];
        let mut via_jsonl = TraceDataset::with_cap(12, 6, cap, seed ^ 0xA5A5);
        for t in &from_jsonl {
            via_jsonl.push_trace(t);
        }
        let mut via_store = TraceDataset::with_cap(12, 6, cap, seed ^ 0xA5A5);
        push_store_traces(&mut via_store, &reader);
        prop_assert_eq!(via_store, via_jsonl);
    }
}

/// A real campaign corpus (physics, faults, hazard labels, monitor
/// bank) survives the store, and replaying monitors straight out of
/// the store matches the in-memory replay exactly.
#[test]
fn quick_campaign_survives_store_and_replays_identically() {
    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0],
        ..CampaignSpec::quick(platform)
    };
    let recorded = run_campaign(&spec, None);
    assert!(!recorded.is_empty(), "quick campaign produced no traces");

    let reader = TraceStoreReader::from_bytes(write_store(&recorded, 0).unwrap()).unwrap();
    assert_eq!(
        read_store(&reader),
        recorded,
        "campaign corpus must round-trip"
    );

    let scs = Scs::with_default_thresholds(platform.target());
    let probe = platform.patients().remove(0);
    let basal = platform.basal_for(probe.as_ref());
    let from_memory = replay_campaign(&recorded, |_t| {
        Box::new(CawMonitor::new("cawot", scs.clone(), basal))
    });
    let from_store = replay_store(&reader, |_t| {
        Box::new(CawMonitor::new("cawot", scs.clone(), basal))
    });
    assert_eq!(
        from_store, from_memory,
        "store replay must match in-memory replay"
    );
}

/// The file writer streams a campaign to disk as a `run_campaign_with`
/// sink and the result equals the in-memory encoding.
#[test]
fn file_writer_sink_matches_in_memory_encoding() {
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![140.0],
        steps: 40,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    };
    let traces = run_campaign(&spec, None);

    let path = std::env::temp_dir().join(format!("aps-store-sink-{}.apst", std::process::id()));
    let mut writer = FileTraceWriter::create(&path, 42).unwrap();
    let mut sink_err = None;
    aps_repro::sim::campaign::run_campaign_with(&spec, None, |_i, t| {
        if let Err(e) = writer.push(&t) {
            sink_err.get_or_insert(e);
        }
    });
    assert!(sink_err.is_none(), "sink write failed: {sink_err:?}");
    let stats = writer.finalize().unwrap();
    assert_eq!(stats.traces as usize, traces.len());

    let reader = TraceStoreReader::open(&path).unwrap();
    assert_eq!(reader.header().spec_hash, 42);
    assert_eq!(read_store(&reader), traces);
    let _ = std::fs::remove_file(&path);
}
