//! Zero-allocation pinning for the LSTM training hot path.
//!
//! ISSUE/ROADMAP item: "LSTM training still allocates per-gate `Vec`s
//! per timestep". The scratch rework retires that — after one warm-up
//! batch has sized the reusable buffers, further same-shaped
//! `train_batch`/`mean_ce`/`mse` calls must not touch the heap at all.
//! A counting global allocator asserts exactly that, for both the
//! classifier trainer ([`LstmTrainer`]) and the forecaster trainer
//! ([`ForecastTrainer`]), plus the O(1) streaming inference step the
//! online `ForecastMonitor` runs every control cycle.
//!
//! This file holds a single test on purpose: the allocator counter is
//! process-global, and a sibling test running on another thread would
//! pollute the count.

use aps_repro::ml::forecast::{ForecastConfig, ForecastTrainer};
use aps_repro::ml::lstm::{LstmConfig, LstmTrainer, SeqDataset};
use aps_repro::prelude::ForecastSet;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Counting is scoped to the measuring thread: harness/runtime
    /// threads allocating concurrently must not pollute the count.
    /// `const`-initialized so reading it never allocates.
    static COUNTING_HERE: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING_HERE.try_with(|c| c.get()).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled on this thread only;
/// returns the count.
fn count_allocations(f: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING_HERE.with(|c| c.set(true));
    f();
    COUNTING_HERE.with(|c| c.set(false));
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn classifier_data() -> SeqDataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..24 {
        let v = (i % 7) as f64 / 3.0 - 1.0;
        x.push((0..6).map(|t| vec![v + 0.1 * t as f64, -v]).collect());
        y.push(usize::from(v > 0.0));
    }
    SeqDataset::new(x, y)
}

fn forecast_data() -> ForecastSet {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..16 {
        let base = 80.0 + 10.0 * (i as f64);
        let series: Vec<f64> = (0..14).map(|t| base + 2.0 * t as f64).collect();
        x.push(series[..10].iter().map(|&bg| vec![bg, 1.0]).collect());
        y.push((0..10).map(|t| series[t + 4]).collect());
    }
    ForecastSet::new(x, y)
}

#[test]
fn steady_state_lstm_training_performs_zero_heap_allocations() {
    // --- Classifier trainer -------------------------------------------------
    let data = classifier_data();
    let config = LstmConfig {
        hidden: vec![8, 5],
        batch_size: 8,
        ..LstmConfig::default()
    };
    let mut trainer = LstmTrainer::new(&data, &config);
    let idx: Vec<usize> = (0..data.len()).collect();
    // Warm-up sizes every scratch buffer.
    trainer.train_batch(&data, &idx[..8]);
    trainer.mean_ce(&data, &idx);

    let during_batches = count_allocations(|| {
        for _ in 0..5 {
            trainer.train_batch(&data, &idx[..8]);
            trainer.train_batch(&data, &idx[8..16]);
        }
    });
    assert_eq!(
        during_batches, 0,
        "classifier train_batch allocated {during_batches} times in steady state"
    );
    let during_eval = count_allocations(|| {
        trainer.mean_ce(&data, &idx);
    });
    assert_eq!(
        during_eval, 0,
        "classifier mean_ce allocated {during_eval} times in steady state"
    );

    // --- Forecaster trainer -------------------------------------------------
    let fdata = forecast_data();
    let fconfig = ForecastConfig {
        hidden: vec![7, 4],
        ..ForecastConfig::default()
    };
    let mut ftrainer = ForecastTrainer::new(&fdata, &fconfig);
    let fidx: Vec<usize> = (0..fdata.len()).collect();
    ftrainer.train_batch(&fdata, &fidx[..8]);
    ftrainer.mse(&fdata, &fidx);

    let during_fbatches = count_allocations(|| {
        for _ in 0..5 {
            ftrainer.train_batch(&fdata, &fidx[..8]);
            ftrainer.train_batch(&fdata, &fidx[8..]);
        }
        ftrainer.mse(&fdata, &fidx);
    });
    assert_eq!(
        during_fbatches, 0,
        "forecast trainer allocated {during_fbatches} times in steady state"
    );

    // --- O(1) streaming inference (the online monitor's per-cycle op) ------
    let model = ftrainer.model().clone();
    let mut state = model.state();
    let sample = [0.25_f64, -0.5];
    let _ = model.step(&mut state, &sample); // warm (no-op: state preallocated)
    let during_stream = count_allocations(|| {
        for _ in 0..100 {
            let _ = model.step(&mut state, &sample);
        }
    });
    assert_eq!(
        during_stream, 0,
        "streaming step allocated {during_stream} times across 100 cycles"
    );
}
