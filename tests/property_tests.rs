//! Property-based tests of cross-crate invariants.

use aps_repro::metrics::tolerance::tolerance_counts;
use aps_repro::optim::{Loss, LossKind, Tmee};
use aps_repro::prelude::*;
use aps_repro::risk;
use aps_repro::stl::{parser::parse, CmpOp, Formula, Trace};
use proptest::prelude::*;

proptest! {
    /// STL: robustness sign agrees with boolean satisfaction for a
    /// family of random formulas over random traces.
    #[test]
    fn stl_robustness_sign_matches_sat(
        values in prop::collection::vec(-50.0f64..50.0, 3..40),
        threshold in -40.0f64..40.0,
        lo in 0usize..5,
        span in 0usize..8,
    ) {
        let mut trace = Trace::new(5.0);
        trace.push_signal("x", values.clone());
        let formulas = vec![
            Formula::pred("x", CmpOp::Gt, threshold),
            Formula::pred("x", CmpOp::Lt, threshold)
                .or(Formula::pred("x", CmpOp::Ge, threshold + 5.0)),
            Formula::pred("x", CmpOp::Gt, threshold).globally(lo, lo + span),
            Formula::pred("x", CmpOp::Gt, threshold).eventually(lo, lo + span),
            Formula::pred("x", CmpOp::Le, threshold).not(),
        ];
        for f in formulas {
            for t in 0..values.len() {
                let rob = f.robustness(&trace, t);
                if rob != 0.0 {
                    prop_assert_eq!(f.sat(&trace, t), rob > 0.0, "{} at {}", f, t);
                }
            }
        }
    }

    /// STL: `G φ ≡ ¬F ¬φ` on finite traces.
    #[test]
    fn stl_globally_eventually_duality(
        values in prop::collection::vec(-10.0f64..10.0, 2..30),
        threshold in -8.0f64..8.0,
        hi in 0usize..12,
    ) {
        let mut trace = Trace::new(5.0);
        trace.push_signal("x", values.clone());
        let phi = Formula::pred("x", CmpOp::Gt, threshold);
        let g = phi.clone().globally(0, hi);
        let not_f_not = phi.not().eventually(0, hi).not();
        for t in 0..values.len() {
            prop_assert_eq!(g.sat(&trace, t), not_f_not.sat(&trace, t), "t={}", t);
        }
    }

    /// Parser round-trip: Display output re-parses to the same AST.
    #[test]
    fn stl_display_parse_roundtrip(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        lo in 0usize..10,
        span in 0usize..10,
    ) {
        let f = Formula::pred("bg", CmpOp::Gt, a)
            .and(Formula::pred("iob", CmpOp::Le, b))
            .implies(Formula::pred("u", CmpOp::Eq, 1.0).not())
            .globally(lo, lo + span);
        let reparsed = parse(&f.to_string()).unwrap();
        prop_assert_eq!(f, reparsed);
    }

    /// TMEE: always non-negative-ish near the origin, strictly convex
    /// wall on the violation side: loss(-r) > loss(r) for r >= 1.
    #[test]
    fn tmee_violation_side_dominates(r in 1.0f64..20.0) {
        prop_assert!(Tmee.value(-r) > Tmee.value(r));
    }

    /// All losses are finite over a wide range, and their gradients
    /// match central differences.
    #[test]
    fn loss_gradients_match_numerical(r in -30.0f64..30.0) {
        for kind in [LossKind::Mse, LossKind::Telex, LossKind::Tmee] {
            let v = kind.value(r);
            prop_assert!(v.is_finite(), "{}({r})", kind.name());
            let h = 1e-5;
            let num = (kind.value(r + h) - kind.value(r - h)) / (2.0 * h);
            let ana = kind.grad(r);
            prop_assert!(
                (num - ana).abs() <= 1e-4 * (1.0 + ana.abs()),
                "{}: r={} num={} ana={}", kind.name(), r, num, ana
            );
        }
    }

    /// Risk index: non-negative everywhere, zero only near 112.5,
    /// low/high branches partition the total.
    #[test]
    fn risk_branches_partition(bg in 20.0f64..600.0) {
        let total = risk::risk_bg(bg);
        let low = risk::risk_low(bg);
        let high = risk::risk_high(bg);
        prop_assert!(total >= 0.0);
        prop_assert!((low + high - total).abs() < 1e-9);
        prop_assert!(low == 0.0 || high == 0.0);
        if (bg - 112.5).abs() > 20.0 {
            prop_assert!(total > 0.1, "risk({bg}) = {total}");
        }
    }

    /// Tolerance-window confusion counts always partition the samples.
    #[test]
    fn tolerance_counts_partition(
        pred in prop::collection::vec(any::<bool>(), 1..80),
        seed in any::<u64>(),
        delta in 0usize..20,
    ) {
        // Derive ground truth deterministically from the seed.
        let gt: Vec<bool> = (0..pred.len())
            .map(|i| {
                let mixed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                mixed % 7 == 0
            })
            .collect();
        let c = tolerance_counts(&pred, &gt, delta);
        prop_assert_eq!(c.total() as usize, pred.len());
    }

    /// Wider tolerance windows can only help (F1 non-decreasing) when
    /// alerts precede hazards.
    #[test]
    fn earlier_alerts_never_hurt_with_wider_window(
        onset in 20usize..40,
        lead in 1usize..15,
    ) {
        let n = 60;
        let mut pred = vec![false; n];
        pred[onset - lead] = true;
        let mut gt = vec![false; n];
        for g in gt.iter_mut().skip(onset) {
            *g = true;
        }
        let narrow = tolerance_counts(&pred, &gt, lead.saturating_sub(1));
        let wide = tolerance_counts(&pred, &gt, lead + 5);
        prop_assert!(wide.f1() >= narrow.f1());
    }

    /// Pump actuation is idempotent and always within hardware limits.
    #[test]
    fn pump_actuation_idempotent(rate in -5.0f64..50.0) {
        use aps_repro::glucose::pump::Pump;
        let pump = Pump::default();
        let once = pump.actuate(UnitsPerHour(rate));
        prop_assert!(once.value() >= 0.0 && once.value() <= 10.0);
        prop_assert_eq!(pump.actuate(once), once);
    }

    /// IOB estimator: never NaN; IOB falls (weakly) under suspension.
    #[test]
    fn iob_falls_under_suspension(
        basal in 0.2f64..3.0,
        boost in 0.0f64..8.0,
    ) {
        use aps_repro::glucose::iob::{IobCurve, IobEstimator};
        let mut est = IobEstimator::new(IobCurve::default_exponential(), 5.0);
        est.set_basal_baseline(UnitsPerHour(basal));
        est.prefill_basal(UnitsPerHour(basal));
        for _ in 0..6 {
            est.record(UnitsPerHour(basal + boost));
        }
        let peak = est.iob().value();
        prop_assert!(peak.is_finite());
        let mut last = peak;
        for _ in 0..24 {
            est.record(UnitsPerHour(0.0));
            let now = est.iob().value();
            prop_assert!(now <= last + 1e-9, "IOB rose during suspension");
            last = now;
        }
    }

    /// Bergman patient: BG stays within the physiological floor/ceiling
    /// for arbitrary constant infusion rates.
    #[test]
    fn bergman_bg_bounded(rate in 0.0f64..20.0, bg0 in 60.0f64..250.0) {
        use aps_repro::glucose::bergman::{BergmanParams, BergmanPatient};
        let mut p = BergmanPatient::new(BergmanParams::population_average());
        p.reset(MgDl(bg0));
        for _ in 0..48 {
            p.step(UnitsPerHour(rate), 5.0);
            let bg = p.bg().value();
            prop_assert!((10.0..=600.0).contains(&bg), "BG escaped to {bg}");
        }
    }

    /// Fault kinds always produce values inside the legitimate range
    /// (except Truncate's hard zero).
    #[test]
    fn fault_kinds_respect_ranges(
        value in -10.0f64..500.0,
        lo in 0.0f64..50.0,
        width in 1.0f64..400.0,
        held in -10.0f64..500.0,
        bit in 0u8..64,
        offset in -100.0f64..100.0,
        elapsed in 0u32..48,
    ) {
        let hi = lo + width;
        let kinds = [
            FaultKind::Hold,
            FaultKind::Max,
            FaultKind::Min,
            FaultKind::Add(offset),
            FaultKind::Sub(offset),
            FaultKind::Scale(offset / 25.0),
            FaultKind::Drift { per_step: offset / 10.0 },
            FaultKind::Noise { amplitude: offset.abs() },
            FaultKind::BitFlip(bit),
        ];
        for kind in kinds {
            let out = kind.apply(value, lo, hi, held.clamp(lo, hi), elapsed);
            prop_assert!(
                (lo..=hi).contains(&out),
                "{kind:?}({value}) -> {out} outside [{lo}, {hi}]"
            );
        }
        prop_assert_eq!(FaultKind::Truncate.apply(value, lo, hi, held, elapsed), 0.0);
        // The availability faults emit a hard zero or the untouched value.
        let flap = FaultKind::Intermittent { period: 6, duty: 3 }
            .apply(value, lo, hi, held, elapsed);
        prop_assert!(flap == 0.0 || flap == value, "flap -> {flap}");
    }
}
