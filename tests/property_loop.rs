//! Property-based tests of the closed-loop harness itself: for
//! arbitrary fault scenarios, disturbances, and sensor conditions, the
//! loop must stay deterministic, produce well-formed traces, and keep
//! every physiological quantity finite and in range.

use aps_repro::glucose::sensor::CgmConfig;
use aps_repro::prelude::*;
use aps_repro::sim::closed_loop;
use proptest::prelude::*;

fn fault_kind(which: u8) -> FaultKind {
    match which % 5 {
        0 => FaultKind::Max,
        1 => FaultKind::Min,
        2 => FaultKind::Truncate,
        3 => FaultKind::Hold,
        _ => FaultKind::Max,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-fault run on the main platform yields a trace of the
    /// requested length whose every recorded quantity is finite and
    /// physiological, with consistent hazard metadata.
    #[test]
    fn loop_traces_are_well_formed(
        target_idx in 0usize..3,
        kind_sel in any::<u8>(),
        start in 5u32..80,
        duration in 1u32..40,
        initial_bg in 80.0f64..200.0,
        patient_idx in 0usize..10,
    ) {
        let platform = Platform::GlucosymOref0;
        let mut patient = platform.patients().remove(patient_idx);
        let mut controller = platform.controller_for(patient.as_ref());
        let target = ["glucose", "iob", "rate"][target_idx];
        let mut injector = FaultInjector::new(FaultScenario::new(
            target,
            fault_kind(kind_sel),
            Step(start),
            duration,
        ));
        let config = LoopConfig { steps: 100, initial_bg, ..LoopConfig::default() };
        let trace = closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            None,
            Some(&mut injector),
            &config,
        );

        prop_assert_eq!(trace.len(), 100);
        for rec in trace.iter() {
            prop_assert!(rec.bg.value().is_finite());
            prop_assert!((10.0..=600.0).contains(&rec.bg.value()));
            prop_assert!(rec.bg_true.value().is_finite());
            prop_assert!(rec.iob.value().is_finite());
            prop_assert!(rec.delivered.value().is_finite());
            prop_assert!(rec.delivered.value() >= 0.0, "pump delivered negative insulin");
        }
        // Hazard metadata must agree with the per-record labels.
        let first_marked = trace.records.iter().position(|r| r.hazard.is_some());
        prop_assert_eq!(
            trace.meta.hazard_onset.map(|s| s.0 as usize),
            first_marked,
            "meta onset disagrees with record labels"
        );
        prop_assert_eq!(trace.meta.hazard_type.is_some(), first_marked.is_some());
    }

    /// The whole loop — fault injection, meals, exercise, noisy CGM —
    /// is a pure function of its configuration: two identical runs
    /// produce identical traces.
    #[test]
    fn loop_is_deterministic_under_all_disturbances(
        kind_sel in any::<u8>(),
        start in 5u32..60,
        meal_step in 5u32..70,
        carbs in 10.0f64..60.0,
        bout_step in 5u32..70,
        intensity in 0.1f64..1.0,
        noise_sd in 0.0f64..6.0,
    ) {
        let platform = Platform::GlucosymOref0;
        let config = LoopConfig {
            steps: 80,
            meals: vec![Meal::new(Step(meal_step), carbs)],
            exercise: vec![ExerciseBout::new(Step(bout_step), intensity, 45.0)],
            cgm: CgmConfig { noise_sd, ..CgmConfig::default() },
            ..LoopConfig::default()
        };
        let scenario =
            FaultScenario::new("rate", fault_kind(kind_sel), Step(start), 12);
        let mk = || {
            let mut patient = platform.patients().remove(1);
            let mut controller = platform.controller_for(patient.as_ref());
            let mut injector = FaultInjector::new(scenario.clone());
            closed_loop::run(
                patient.as_mut(),
                controller.as_mut(),
                None,
                Some(&mut injector),
                &config,
            )
        };
        prop_assert_eq!(mk(), mk());
    }

    /// Mitigation monotonicity: enabling the fixed mitigator with a
    /// monitor can only change deliveries on or after the first alert.
    #[test]
    fn mitigation_only_acts_after_the_first_alert(
        start in 10u32..60,
        duration in 6u32..30,
        initial_bg in 100.0f64..180.0,
    ) {
        let platform = Platform::GlucosymOref0;
        let scenario = FaultScenario::new("rate", FaultKind::Max, Step(start), duration);
        let run_with = |mitigate: bool| -> SimTrace {
            let mut patient = platform.patients().remove(0);
            let mut controller = platform.controller_for(patient.as_ref());
            let scs = Scs::with_default_thresholds(platform.target());
            let mut monitor =
                CawMonitor::new("cawot", scs, platform.basal_for(patient.as_ref()));
            let mut injector = FaultInjector::new(scenario.clone());
            let config = LoopConfig {
                steps: 100,
                initial_bg,
                mitigator: mitigate.then(|| {
                    Mitigator::paper_default(
                        platform.max_mitigation_rate(patient.as_ref()),
                    )
                }),
                ..LoopConfig::default()
            };
            closed_loop::run(
                patient.as_mut(),
                controller.as_mut(),
                Some(&mut monitor),
                Some(&mut injector),
                &config,
            )
        };
        let plain = run_with(false);
        let mitigated = run_with(true);
        let first_alert = match mitigated.first_alert() {
            Some(s) => s.0 as usize,
            None => {
                // No alert -> the two runs must be identical.
                prop_assert_eq!(plain, mitigated);
                return Ok(());
            }
        };
        for i in 0..first_alert {
            prop_assert_eq!(
                plain.records[i].delivered,
                mitigated.records[i].delivered,
                "delivery diverged at step {} before the first alert at {}",
                i,
                first_alert
            );
        }
    }
}
