//! Discrete simulation time.
//!
//! The APS control loop runs every five minutes (one CGM sample); a
//! 12-hour overnight experiment is 150 steps, matching the paper's
//! simulation length.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Length of one control cycle in minutes (CGM sampling period).
pub const CONTROL_CYCLE_MINUTES: f64 = 5.0;

/// A discrete control-cycle index (one step = 5 minutes).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Step(pub u32);

impl Step {
    /// The step index as `usize` for trace indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Wall-clock minutes since the start of the simulation.
    ///
    /// ```
    /// use aps_types::Step;
    /// assert_eq!(Step(12).minutes().value(), 60.0);
    /// ```
    #[inline]
    pub fn minutes(self) -> Minutes {
        Minutes(self.0 as f64 * CONTROL_CYCLE_MINUTES)
    }

    /// The next step.
    #[inline]
    pub fn next(self) -> Step {
        Step(self.0 + 1)
    }

    /// Saturating distance in steps (`self - other`, at least zero).
    #[inline]
    pub fn saturating_since(self, other: Step) -> u32 {
        self.0.saturating_sub(other.0)
    }
}

impl Add<u32> for Step {
    type Output = Step;
    #[inline]
    fn add(self, rhs: u32) -> Step {
        Step(self.0 + rhs)
    }
}

impl AddAssign<u32> for Step {
    #[inline]
    fn add_assign(&mut self, rhs: u32) {
        self.0 += rhs;
    }
}

impl Sub for Step {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: Step) -> i64 {
        self.0 as i64 - rhs.0 as i64
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Wall-clock duration in minutes (continuous).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Minutes(pub f64);

impl Minutes {
    /// Raw minutes.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 60.0
    }

    /// Number of whole control cycles this duration covers (floor).
    #[inline]
    pub fn steps(self) -> u32 {
        (self.0 / CONTROL_CYCLE_MINUTES).floor() as u32
    }
}

impl fmt::Display for Minutes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} min", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_to_minutes() {
        assert_eq!(Step(0).minutes(), Minutes(0.0));
        assert_eq!(Step(150).minutes().hours(), 12.5);
    }

    #[test]
    fn step_arithmetic() {
        let mut s = Step(3);
        s += 2;
        assert_eq!(s, Step(5));
        assert_eq!(s + 1, Step(6));
        assert_eq!(Step(5) - Step(8), -3);
        assert_eq!(Step(5).saturating_since(Step(8)), 0);
        assert_eq!(Step(8).saturating_since(Step(5)), 3);
        assert_eq!(Step(7).next(), Step(8));
    }

    #[test]
    fn minutes_to_steps_floors() {
        assert_eq!(Minutes(14.9).steps(), 2);
        assert_eq!(Minutes(15.0).steps(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Step(4)), "t4");
        assert_eq!(format!("{}", Minutes(30.0)), "30.0 min");
    }
}
