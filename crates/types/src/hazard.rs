//! Hazard taxonomy.
//!
//! The paper's hazard analysis for Type-1 diabetes identifies two system
//! hazards: too much insulin (H1, leading toward hypoglycemia / accident
//! A1) and too little insulin (H2, leading toward hyperglycemia / A2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Safety hazard type under the control of the APS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hazard {
    /// H1: too much insulin infused → BG falls → hypoglycemia risk.
    H1,
    /// H2: too little insulin infused → BG rises → hyperglycemia risk.
    H2,
}

impl Hazard {
    /// Both hazards in paper order.
    pub const ALL: [Hazard; 2] = [Hazard::H1, Hazard::H2];

    /// The accident this hazard can lead to, as free text from the paper
    /// (A1 = complications from hypoglycemia, A2 = from hyperglycemia).
    pub fn accident(self) -> &'static str {
        match self {
            Hazard::H1 => "A1: complications from hypoglycemia",
            Hazard::H2 => "A2: complications from hyperglycemia",
        }
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::H1 => f.write_str("H1"),
            Hazard::H2 => f.write_str("H2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accidents() {
        assert_eq!(Hazard::H1.to_string(), "H1");
        assert!(Hazard::H1.accident().contains("hypoglycemia"));
        assert!(Hazard::H2.accident().contains("hyperglycemia"));
    }

    #[test]
    fn serde_roundtrip() {
        for h in Hazard::ALL {
            let s = serde_json::to_string(&h).unwrap();
            let back: Hazard = serde_json::from_str(&s).unwrap();
            assert_eq!(h, back);
        }
    }
}
