//! Physical-quantity newtypes.
//!
//! Following the newtype guidance of the Rust API guidelines
//! (C-NEWTYPE), glucose concentrations and insulin amounts are distinct
//! types so that a basal rate can never be passed where a glucose value
//! is expected.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Blood-glucose concentration in mg/dL.
///
/// The clinically normal range used throughout the paper is
/// `[70, 180]` mg/dL; severe hypoglycemia is below 40 mg/dL.
///
/// ```
/// use aps_types::MgDl;
/// assert!(MgDl(100.0).is_normal_range());
/// assert!(MgDl(39.0).is_severe_hypoglycemia());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MgDl(pub f64);

/// Lower bound of the clinically normal glucose range (mg/dL).
pub const NORMAL_RANGE_LOW: f64 = 70.0;
/// Upper bound of the clinically normal glucose range (mg/dL).
pub const NORMAL_RANGE_HIGH: f64 = 180.0;
/// Threshold below which the patient is unable to function (mg/dL).
pub const SEVERE_HYPOGLYCEMIA: f64 = 40.0;

impl MgDl {
    /// Returns the raw value in mg/dL.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `true` if the value lies in the clinically normal range
    /// `[70, 180]` mg/dL used by the paper's guideline monitor.
    #[inline]
    pub fn is_normal_range(self) -> bool {
        (NORMAL_RANGE_LOW..=NORMAL_RANGE_HIGH).contains(&self.0)
    }

    /// `true` below 70 mg/dL (hypoglycemia).
    #[inline]
    pub fn is_hypoglycemia(self) -> bool {
        self.0 < NORMAL_RANGE_LOW
    }

    /// `true` above 180 mg/dL (hyperglycemia).
    #[inline]
    pub fn is_hyperglycemia(self) -> bool {
        self.0 > NORMAL_RANGE_HIGH
    }

    /// `true` below 40 mg/dL — the paper's severe-hypoglycemia marker.
    #[inline]
    pub fn is_severe_hypoglycemia(self) -> bool {
        self.0 < SEVERE_HYPOGLYCEMIA
    }

    /// Clamps to a physiologically plausible sensor range
    /// (CGM devices report 10–600 mg/dL; values outside indicate a
    /// modelling escape, not physiology).
    #[inline]
    pub fn clamp_physiological(self) -> MgDl {
        MgDl(self.0.clamp(10.0, 600.0))
    }
}

/// Insulin amount in international units (U).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Units(pub f64);

impl Units {
    /// Returns the raw value in units.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Non-negative clamp: insulin on board and doses cannot be negative.
    #[inline]
    pub fn max_zero(self) -> Units {
        Units(self.0.max(0.0))
    }
}

/// Insulin delivery rate in U/h (temp-basal rates, pump commands).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct UnitsPerHour(pub f64);

impl UnitsPerHour {
    /// Returns the raw value in U/h.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Insulin delivered over `minutes` at this rate.
    ///
    /// ```
    /// use aps_types::UnitsPerHour;
    /// let delivered = UnitsPerHour(2.0).over_minutes(30.0);
    /// assert!((delivered.value() - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn over_minutes(self, minutes: f64) -> Units {
        Units(self.0 * minutes / 60.0)
    }

    /// Non-negative clamp; pumps cannot withdraw insulin.
    #[inline]
    pub fn max_zero(self) -> UnitsPerHour {
        UnitsPerHour(self.0.max(0.0))
    }
}

macro_rules! impl_arith {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.2}", self.0)
            }
        }
        impl From<f64> for $ty {
            #[inline]
            fn from(v: f64) -> $ty {
                $ty(v)
            }
        }
        impl From<$ty> for f64 {
            #[inline]
            fn from(v: $ty) -> f64 {
                v.0
            }
        }
    };
}

impl_arith!(MgDl);
impl_arith!(Units);
impl_arith!(UnitsPerHour);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_range_bounds_are_inclusive() {
        assert!(MgDl(70.0).is_normal_range());
        assert!(MgDl(180.0).is_normal_range());
        assert!(!MgDl(69.99).is_normal_range());
        assert!(!MgDl(180.01).is_normal_range());
    }

    #[test]
    fn hypo_hyper_are_exclusive() {
        let cases = [35.0, 69.0, 70.0, 120.0, 180.0, 181.0, 400.0];
        for v in cases {
            let bg = MgDl(v);
            let flags = [
                bg.is_hypoglycemia(),
                bg.is_normal_range(),
                bg.is_hyperglycemia(),
            ];
            assert_eq!(flags.iter().filter(|&&f| f).count(), 1, "bg={v}");
        }
    }

    #[test]
    fn severe_hypoglycemia_threshold() {
        assert!(MgDl(39.9).is_severe_hypoglycemia());
        assert!(!MgDl(40.0).is_severe_hypoglycemia());
    }

    #[test]
    fn rate_integrates_to_units() {
        let u = UnitsPerHour(1.5).over_minutes(5.0);
        assert!((u.value() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn clamp_physiological_bounds() {
        assert_eq!(MgDl(-5.0).clamp_physiological(), MgDl(10.0));
        assert_eq!(MgDl(900.0).clamp_physiological(), MgDl(600.0));
        assert_eq!(MgDl(120.0).clamp_physiological(), MgDl(120.0));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Units(2.0) + Units(3.0) - Units(1.0);
        assert_eq!(a, Units(4.0));
        let b = a * 2.0 / 4.0;
        assert_eq!(b, Units(2.0));
        assert_eq!(-b, Units(-2.0));
        assert_eq!((-b).max_zero(), Units(0.0));
    }

    #[test]
    fn sum_and_display() {
        let total: Units = vec![Units(0.5), Units(1.5)].into_iter().sum();
        assert_eq!(total, Units(2.0));
        assert_eq!(format!("{}", MgDl(123.456)), "123.46");
    }

    #[test]
    fn serde_roundtrip() {
        let bg = MgDl(101.5);
        let s = serde_json::to_string(&bg).unwrap();
        let back: MgDl = serde_json::from_str(&s).unwrap();
        assert_eq!(bg, back);
    }
}
