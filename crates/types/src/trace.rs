//! Simulation traces.
//!
//! A [`SimTrace`] is the canonical record of one closed-loop run: one
//! [`StepRecord`] per control cycle plus [`TraceMeta`] describing the
//! scenario (patient, initial BG, fault activity, hazard labels). Every
//! downstream consumer — threshold learning, ML dataset building,
//! metric computation — reads this structure.

use crate::{ControlAction, Hazard, MgDl, Step, Units, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// One control cycle's worth of observable system state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Control-cycle index.
    pub step: Step,
    /// CGM glucose reading delivered to the controller (possibly faulty
    /// if the fault targets the controller's glucose input variable).
    pub bg: MgDl,
    /// True plasma/interstitial glucose from the patient model (ground
    /// truth used for hazard labeling; the monitor never sees this
    /// directly unless it equals `bg`).
    pub bg_true: MgDl,
    /// Controller's insulin-on-board estimate.
    pub iob: Units,
    /// Rate commanded by the controller this cycle (pre-mitigation).
    pub commanded: UnitsPerHour,
    /// Rate actually delivered to the pump (post-mitigation; equals
    /// `commanded` when no monitor intervenes).
    pub delivered: UnitsPerHour,
    /// Abstract action classification of `commanded`.
    pub action: ControlAction,
    /// Whether a fault was actively perturbing the controller at this step.
    pub fault_active: bool,
    /// Hazard label assigned post-hoc by the risk-index labeler
    /// (`None` = safe at this step).
    pub hazard: Option<Hazard>,
    /// Whether the monitor raised an alert at this step (and for which
    /// predicted hazard).
    pub alert: Option<Hazard>,
}

impl StepRecord {
    /// A blank record for `step` with everything zeroed/safe; used by
    /// builders that fill fields incrementally.
    pub fn blank(step: Step) -> StepRecord {
        StepRecord {
            step,
            bg: MgDl(0.0),
            bg_true: MgDl(0.0),
            iob: Units(0.0),
            commanded: UnitsPerHour(0.0),
            delivered: UnitsPerHour(0.0),
            action: ControlAction::KeepInsulin,
            fault_active: false,
            hazard: None,
            alert: None,
        }
    }
}

/// Metadata describing the scenario a trace came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TraceMeta {
    /// Patient identifier (e.g. "glucosym/patientA").
    pub patient: String,
    /// Initial true glucose at step 0.
    pub initial_bg: f64,
    /// Name of the injected fault scenario, empty if fault-free.
    pub fault_name: String,
    /// First step at which the fault was active (`None` = fault-free run).
    pub fault_start: Option<Step>,
    /// First step labeled hazardous (`None` = no hazard occurred).
    pub hazard_onset: Option<Step>,
    /// Hazard type at onset, if any.
    pub hazard_type: Option<Hazard>,
}

/// The alert stream one member of a monitor bank produced over a run.
///
/// When a simulation carries several monitors against a single physics
/// pass, the *primary* (first) monitor's verdicts land in
/// [`StepRecord::alert`] as before, and every monitor — primary
/// included — gets its full per-step stream recorded here. A monitor
/// that only observes (no mitigation) produces exactly the stream it
/// would produce running solo, so one simulation scores a whole zoo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AlertTrack {
    /// Monitor identifier (e.g. `"cawot"`).
    pub monitor: String,
    /// One verdict per control cycle, indexed by step.
    pub alerts: Vec<Option<Hazard>>,
}

impl AlertTrack {
    /// First step with an alert raised, if any.
    pub fn first_alert(&self) -> Option<Step> {
        self.alerts
            .iter()
            .position(|a| a.is_some())
            .map(|i| Step(i as u32))
    }
}

/// A complete closed-loop simulation trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTrace {
    /// Scenario metadata.
    pub meta: TraceMeta,
    /// Per-cycle records, indexed by step.
    pub records: Vec<StepRecord>,
    /// Per-monitor alert streams when the run carried a monitor bank
    /// (empty for monitor-less runs and for traces recorded before this
    /// field existed).
    #[serde(default)]
    pub monitor_tracks: Vec<AlertTrack>,
}

impl SimTrace {
    /// Creates an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> SimTrace {
        SimTrace {
            meta,
            records: Vec::new(),
            monitor_tracks: Vec::new(),
        }
    }

    /// Creates an empty trace preallocated for `steps` records, so the
    /// simulation hot loop never reallocates while recording.
    pub fn with_capacity(meta: TraceMeta, steps: usize) -> SimTrace {
        SimTrace {
            meta,
            records: Vec::with_capacity(steps),
            monitor_tracks: Vec::new(),
        }
    }

    /// The alert stream of the monitor named `name`, when the run
    /// carried a bank containing it.
    pub fn track(&self, name: &str) -> Option<&AlertTrack> {
        self.monitor_tracks.iter().find(|t| t.monitor == name)
    }

    /// Number of steps recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record; panics in debug builds if steps are not
    /// consecutive from zero (trace invariant).
    pub fn push(&mut self, rec: StepRecord) {
        debug_assert_eq!(rec.step.index(), self.records.len(), "non-consecutive step");
        self.records.push(rec);
    }

    /// Iterator over records.
    pub fn iter(&self) -> std::slice::Iter<'_, StepRecord> {
        self.records.iter()
    }

    /// `true` if any step carries a hazard label.
    pub fn is_hazardous(&self) -> bool {
        self.records.iter().any(|r| r.hazard.is_some())
    }

    /// First hazardous step, if any.
    pub fn hazard_onset(&self) -> Option<Step> {
        self.records
            .iter()
            .find(|r| r.hazard.is_some())
            .map(|r| r.step)
    }

    /// First step with an alert raised, if any.
    pub fn first_alert(&self) -> Option<Step> {
        self.records
            .iter()
            .find(|r| r.alert.is_some())
            .map(|r| r.step)
    }

    /// The BG series as raw f64 (CGM view).
    pub fn bg_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.bg.value()).collect()
    }

    /// The ground-truth BG series as raw f64.
    pub fn bg_true_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.bg_true.value()).collect()
    }

    /// Recomputes `meta.hazard_onset` / `meta.hazard_type` from labels.
    pub fn refresh_meta(&mut self) {
        self.meta.hazard_onset = self.hazard_onset();
        self.meta.hazard_type = self
            .meta
            .hazard_onset
            .and_then(|s| self.records[s.index()].hazard);
    }
}

impl<'a> IntoIterator for &'a SimTrace {
    type Item = &'a StepRecord;
    type IntoIter = std::slice::Iter<'a, StepRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl FromIterator<StepRecord> for SimTrace {
    fn from_iter<I: IntoIterator<Item = StepRecord>>(iter: I) -> SimTrace {
        SimTrace {
            meta: TraceMeta::default(),
            records: iter.into_iter().collect(),
            monitor_tracks: Vec::new(),
        }
    }
}

impl Extend<StepRecord> for SimTrace {
    fn extend<I: IntoIterator<Item = StepRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with_hazard_at(onset: usize, len: usize) -> SimTrace {
        let mut t = SimTrace::new(TraceMeta::default());
        for i in 0..len {
            let mut r = StepRecord::blank(Step(i as u32));
            if i >= onset {
                r.hazard = Some(Hazard::H1);
            }
            t.push(r);
        }
        t
    }

    #[test]
    fn empty_trace_has_no_hazard() {
        let t = SimTrace::new(TraceMeta::default());
        assert!(t.is_empty());
        assert!(!t.is_hazardous());
        assert_eq!(t.hazard_onset(), None);
        assert_eq!(t.first_alert(), None);
    }

    #[test]
    fn hazard_onset_is_first_labeled_step() {
        let t = trace_with_hazard_at(7, 20);
        assert!(t.is_hazardous());
        assert_eq!(t.hazard_onset(), Some(Step(7)));
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn refresh_meta_populates_onset_and_type() {
        let mut t = trace_with_hazard_at(3, 10);
        t.refresh_meta();
        assert_eq!(t.meta.hazard_onset, Some(Step(3)));
        assert_eq!(t.meta.hazard_type, Some(Hazard::H1));
    }

    #[test]
    fn first_alert_found() {
        let mut t = trace_with_hazard_at(9, 12);
        t.records[4].alert = Some(Hazard::H1);
        assert_eq!(t.first_alert(), Some(Step(4)));
    }

    #[test]
    fn collect_and_extend() {
        let recs: Vec<StepRecord> = (0..5).map(|i| StepRecord::blank(Step(i))).collect();
        let mut t: SimTrace = recs.clone().into_iter().collect();
        assert_eq!(t.len(), 5);
        t.extend(vec![StepRecord::blank(Step(5))]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn bg_series_extraction() {
        let mut t = SimTrace::new(TraceMeta::default());
        for i in 0..3u32 {
            let mut r = StepRecord::blank(Step(i));
            r.bg = MgDl(100.0 + i as f64);
            r.bg_true = MgDl(99.0 + i as f64);
            t.push(r);
        }
        assert_eq!(t.bg_series(), vec![100.0, 101.0, 102.0]);
        assert_eq!(t.bg_true_series(), vec![99.0, 100.0, 101.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = trace_with_hazard_at(2, 4);
        let s = serde_json::to_string(&t).unwrap();
        let back: SimTrace = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn monitor_tracks_roundtrip_and_lookup() {
        let mut t = trace_with_hazard_at(2, 4);
        t.monitor_tracks.push(AlertTrack {
            monitor: "cawot".to_owned(),
            alerts: vec![None, Some(Hazard::H1), None, None],
        });
        t.monitor_tracks.push(AlertTrack {
            monitor: "guideline".to_owned(),
            alerts: vec![None; 4],
        });
        assert_eq!(t.track("cawot").unwrap().first_alert(), Some(Step(1)));
        assert_eq!(t.track("guideline").unwrap().first_alert(), None);
        assert!(t.track("missing").is_none());
        let s = serde_json::to_string(&t).unwrap();
        let back: SimTrace = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn traces_without_tracks_still_deserialize() {
        // Pre-bank recordings carry no `monitor_tracks` key at all.
        let t = trace_with_hazard_at(1, 3);
        let s = serde_json::to_string(&t).unwrap();
        let stripped = s.replace(",\"monitor_tracks\":[]", "");
        assert_ne!(s, stripped, "field not serialized where expected");
        let back: SimTrace = serde_json::from_str(&stripped).unwrap();
        assert_eq!(t, back);
    }
}
