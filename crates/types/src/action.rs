//! The controller's abstract action alphabet.
//!
//! The paper abstracts concrete insulin commands into four actions
//! `u1..u4` (`decrease_insulin`, `increase_insulin`, `stop_insulin`,
//! `keep_insulin`) by comparing the commanded rate with the previously
//! commanded rate. The safety-context rules of Table I are phrased over
//! this alphabet.

use crate::UnitsPerHour;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tolerance (U/h) below which two rates are considered equal when
/// classifying an action. CGM-driven controllers jitter by tiny amounts
/// every cycle; treating those as "keep" matches the paper's intent.
pub const RATE_EPSILON: f64 = 1e-3;

/// Abstract control action, the paper's `u1..u4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlAction {
    /// `u1`: commanded insulin rate is lower than the previous one.
    DecreaseInsulin,
    /// `u2`: commanded insulin rate is higher than the previous one.
    IncreaseInsulin,
    /// `u3`: insulin delivery is stopped (rate commanded to zero).
    StopInsulin,
    /// `u4`: commanded rate equals the previous one.
    KeepInsulin,
}

impl ControlAction {
    /// Classifies a concrete rate command into the abstract alphabet by
    /// comparing with the previously commanded rate.
    ///
    /// A command of (approximately) zero is [`StopInsulin`] regardless
    /// of the previous rate, mirroring the paper's `u3`; otherwise the
    /// sign of the change decides between decrease / increase / keep.
    ///
    /// ```
    /// use aps_types::{ControlAction, UnitsPerHour};
    /// let prev = UnitsPerHour(1.0);
    /// assert_eq!(ControlAction::classify(UnitsPerHour(0.0), prev), ControlAction::StopInsulin);
    /// assert_eq!(ControlAction::classify(UnitsPerHour(0.5), prev), ControlAction::DecreaseInsulin);
    /// assert_eq!(ControlAction::classify(UnitsPerHour(1.5), prev), ControlAction::IncreaseInsulin);
    /// assert_eq!(ControlAction::classify(UnitsPerHour(1.0), prev), ControlAction::KeepInsulin);
    /// ```
    ///
    /// [`StopInsulin`]: ControlAction::StopInsulin
    pub fn classify(commanded: UnitsPerHour, previous: UnitsPerHour) -> ControlAction {
        let c = commanded.value();
        let p = previous.value();
        if c.abs() <= RATE_EPSILON {
            ControlAction::StopInsulin
        } else if c < p - RATE_EPSILON {
            ControlAction::DecreaseInsulin
        } else if c > p + RATE_EPSILON {
            ControlAction::IncreaseInsulin
        } else {
            ControlAction::KeepInsulin
        }
    }

    /// All four actions, in `u1..u4` order.
    pub const ALL: [ControlAction; 4] = [
        ControlAction::DecreaseInsulin,
        ControlAction::IncreaseInsulin,
        ControlAction::StopInsulin,
        ControlAction::KeepInsulin,
    ];

    /// The paper's index (1-based: `u1` → 1, …, `u4` → 4).
    pub fn paper_index(self) -> u8 {
        match self {
            ControlAction::DecreaseInsulin => 1,
            ControlAction::IncreaseInsulin => 2,
            ControlAction::StopInsulin => 3,
            ControlAction::KeepInsulin => 4,
        }
    }
}

impl fmt::Display for ControlAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ControlAction::DecreaseInsulin => "decrease_insulin",
            ControlAction::IncreaseInsulin => "increase_insulin",
            ControlAction::StopInsulin => "stop_insulin",
            ControlAction::KeepInsulin => "keep_insulin",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_takes_priority_over_decrease() {
        // Going from 1 U/h to 0 U/h is a stop, not merely a decrease.
        let a = ControlAction::classify(UnitsPerHour(0.0), UnitsPerHour(1.0));
        assert_eq!(a, ControlAction::StopInsulin);
    }

    #[test]
    fn stop_from_zero_is_still_stop() {
        let a = ControlAction::classify(UnitsPerHour(0.0), UnitsPerHour(0.0));
        assert_eq!(a, ControlAction::StopInsulin);
    }

    #[test]
    fn epsilon_jitter_is_keep() {
        let a = ControlAction::classify(UnitsPerHour(1.0004), UnitsPerHour(1.0));
        assert_eq!(a, ControlAction::KeepInsulin);
    }

    #[test]
    fn paper_indices_are_distinct_and_ordered() {
        let idx: Vec<u8> = ControlAction::ALL.iter().map(|a| a.paper_index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4]);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(ControlAction::StopInsulin.to_string(), "stop_insulin");
        assert_eq!(ControlAction::KeepInsulin.to_string(), "keep_insulin");
    }
}
