//! Shared domain types for the artificial-pancreas safety-monitor
//! reproduction.
//!
//! This crate defines the vocabulary used by every other crate in the
//! workspace: physical quantities ([`MgDl`], [`Units`], [`UnitsPerHour`]),
//! simulation time ([`Step`], [`Minutes`]), the controller's abstract
//! action alphabet ([`ControlAction`]), the hazard taxonomy ([`Hazard`]),
//! and the per-step simulation record ([`StepRecord`] / [`SimTrace`]).
//!
//! The paper (Zhou et al., DSN 2021) models the artificial pancreas as a
//! discrete-time control loop with a 5-minute cycle; all types here
//! assume that cadence unless stated otherwise.
//!
//! # Example
//!
//! ```
//! use aps_types::{MgDl, ControlAction, UnitsPerHour};
//!
//! let bg = MgDl(145.0);
//! assert!(bg.is_normal_range());
//! let action = ControlAction::classify(UnitsPerHour(1.2), UnitsPerHour(0.9));
//! assert_eq!(action, ControlAction::IncreaseInsulin);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod hazard;
mod time;
mod trace;
mod units;

pub use action::ControlAction;
pub use hazard::Hazard;
pub use time::{Minutes, Step, CONTROL_CYCLE_MINUTES};
pub use trace::{AlertTrack, SimTrace, StepRecord, TraceMeta};
pub use units::{MgDl, Units, UnitsPerHour};
