//! Fault-injection campaign grids.
//!
//! The paper sweeps fault kind × target variable × injected value ×
//! (9 start-time/duration combinations), yielding 882 scenarios per
//! patient configuration. [`campaign_grid`] generates the analogous
//! deterministic grid for our controllers; [`CampaignConfig`] scales it
//! down for single-core runs (`--full` restores paper scale).

use crate::{FaultKind, FaultScenario};
use aps_types::Step;
use serde::{Deserialize, Serialize};

/// A variable that scenarios may target, with its legitimate range and
/// a characteristic offset magnitude for `Add`/`Sub` faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionTarget {
    /// Controller state-variable name.
    pub name: String,
    /// Offset magnitudes used for `Add`/`Sub` scenarios.
    pub offsets: Vec<f64>,
    /// Mantissa/exponent bits used for `BitFlip` scenarios.
    pub bits: Vec<u8>,
}

impl InjectionTarget {
    /// A target with sensible default offsets scaled to `span`
    /// (the width of the variable's legitimate range).
    pub fn with_span(name: &str, span: f64) -> InjectionTarget {
        InjectionTarget {
            name: name.to_owned(),
            offsets: vec![span * 0.25, span * 0.5],
            bits: vec![51, 62],
        }
    }
}

/// Scale controls for a campaign grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Fault activation start steps.
    pub starts: Vec<u32>,
    /// Fault durations in steps.
    pub durations: Vec<u32>,
}

impl CampaignConfig {
    /// The paper-scale grid: 9 start/duration combinations (3 starts ×
    /// 3 durations across the 150-step run).
    pub fn paper() -> CampaignConfig {
        CampaignConfig {
            starts: vec![20, 50, 90],
            durations: vec![6, 18, 36],
        }
    }

    /// A reduced grid for quick single-core experiments.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            starts: vec![30],
            durations: vec![24],
        }
    }
}

/// Generates the full deterministic scenario grid for the given
/// injection targets.
pub fn campaign_grid(targets: &[InjectionTarget], config: &CampaignConfig) -> Vec<FaultScenario> {
    let mut out = Vec::new();
    for target in targets {
        let mut kinds = vec![
            FaultKind::Truncate,
            FaultKind::Hold,
            FaultKind::Max,
            FaultKind::Min,
        ];
        for &d in &target.offsets {
            kinds.push(FaultKind::Add(d));
            kinds.push(FaultKind::Sub(d));
        }
        for &b in &target.bits {
            kinds.push(FaultKind::BitFlip(b));
        }
        for kind in kinds {
            for &start in &config.starts {
                for &duration in &config.durations {
                    out.push(FaultScenario::new(
                        &target.name,
                        kind,
                        Step(start),
                        duration,
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> Vec<InjectionTarget> {
        vec![
            InjectionTarget::with_span("glucose", 360.0),
            InjectionTarget::with_span("rate", 4.0),
            InjectionTarget::with_span("iob", 7.0),
        ]
    }

    #[test]
    fn grid_size_is_product_of_dimensions() {
        let grid = campaign_grid(&targets(), &CampaignConfig::paper());
        // Per target: 4 base kinds + 2*2 add/sub + 2 bitflips = 10 kinds;
        // 10 kinds * 9 time combos * 3 targets = 270.
        assert_eq!(grid.len(), 270);
    }

    #[test]
    fn quick_grid_is_small() {
        let grid = campaign_grid(&targets(), &CampaignConfig::quick());
        assert_eq!(grid.len(), 30);
    }

    #[test]
    fn scenario_names_are_unique() {
        let grid = campaign_grid(&targets(), &CampaignConfig::paper());
        let names: std::collections::HashSet<String> = grid.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), grid.len());
    }

    #[test]
    fn grid_is_deterministic() {
        let a = campaign_grid(&targets(), &CampaignConfig::paper());
        let b = campaign_grid(&targets(), &CampaignConfig::paper());
        assert_eq!(a, b);
    }

    #[test]
    fn all_scenarios_activate_within_run() {
        for s in campaign_grid(&targets(), &CampaignConfig::paper()) {
            assert!(s.start.0 < 150, "{}", s.name());
            assert!(s.duration > 0);
        }
    }
}
