//! Fault-injection campaign grids.
//!
//! The paper sweeps fault kind × target variable × injected value ×
//! (9 start-time/duration combinations), yielding 882 scenarios per
//! patient configuration. [`campaign_grid`] generates the analogous
//! deterministic grid for our controllers; [`CampaignConfig`] scales it
//! down for single-core runs (`--full` restores paper scale).

use crate::{FaultKind, FaultScenario};
use aps_types::Step;
use serde::{Deserialize, Serialize};

/// A variable that scenarios may target, with its legitimate range and
/// the parameter magnitudes its scenarios sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionTarget {
    /// Controller state-variable name.
    pub name: String,
    /// Offset magnitudes used for `Add`/`Sub` scenarios.
    pub offsets: Vec<f64>,
    /// Mantissa/exponent bits used for `BitFlip` scenarios.
    pub bits: Vec<u8>,
    /// Gain factors for `Scale` scenarios (empty = none).
    #[serde(default)]
    pub scales: Vec<f64>,
    /// Per-cycle slopes for `Drift` scenarios (empty = none).
    #[serde(default)]
    pub drifts: Vec<f64>,
    /// Jitter half-widths for `Noise` scenarios (empty = none).
    #[serde(default)]
    pub noise_amps: Vec<f64>,
    /// `(period, duty)` patterns for `Intermittent` scenarios
    /// (empty = none).
    #[serde(default)]
    pub intermittents: Vec<(u32, u32)>,
}

impl InjectionTarget {
    /// A target with sensible default offsets scaled to `span`
    /// (the width of the variable's legitimate range). Covers the
    /// paper's original kind alphabet only; see
    /// [`with_span_extended`](InjectionTarget::with_span_extended).
    pub fn with_span(name: &str, span: f64) -> InjectionTarget {
        InjectionTarget {
            name: name.to_owned(),
            offsets: vec![span * 0.25, span * 0.5],
            bits: vec![51, 62],
            scales: Vec::new(),
            drifts: Vec::new(),
            noise_amps: Vec::new(),
            intermittents: Vec::new(),
        }
    }

    /// [`with_span`](InjectionTarget::with_span) plus the extended
    /// kind alphabet: under/over-reading gain errors, a slow drift
    /// that crosses a quarter of the range over a 36-cycle fault,
    /// ±10 %-of-range jitter, and a 50 %-duty flapping dropout.
    pub fn with_span_extended(name: &str, span: f64) -> InjectionTarget {
        InjectionTarget {
            scales: vec![0.5, 1.5],
            drifts: vec![span / 144.0],
            noise_amps: vec![span * 0.1],
            intermittents: vec![(6, 3)],
            ..InjectionTarget::with_span(name, span)
        }
    }
}

/// Scale controls for a campaign grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Fault activation start steps.
    pub starts: Vec<u32>,
    /// Fault durations in steps.
    pub durations: Vec<u32>,
}

impl CampaignConfig {
    /// The paper-scale grid: 9 start/duration combinations (3 starts ×
    /// 3 durations across the 150-step run).
    pub fn paper() -> CampaignConfig {
        CampaignConfig {
            starts: vec![20, 50, 90],
            durations: vec![6, 18, 36],
        }
    }

    /// A reduced grid for quick single-core experiments.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            starts: vec![30],
            durations: vec![24],
        }
    }
}

/// Generates the full deterministic scenario grid for the given
/// injection targets.
pub fn campaign_grid(targets: &[InjectionTarget], config: &CampaignConfig) -> Vec<FaultScenario> {
    let mut out = Vec::new();
    for target in targets {
        let mut kinds = vec![
            FaultKind::Truncate,
            FaultKind::Hold,
            FaultKind::Max,
            FaultKind::Min,
        ];
        for &d in &target.offsets {
            kinds.push(FaultKind::Add(d));
            kinds.push(FaultKind::Sub(d));
        }
        for &g in &target.scales {
            kinds.push(FaultKind::Scale(g));
        }
        for &per_step in &target.drifts {
            kinds.push(FaultKind::Drift { per_step });
            kinds.push(FaultKind::Drift {
                per_step: -per_step,
            });
        }
        for &amplitude in &target.noise_amps {
            kinds.push(FaultKind::Noise { amplitude });
        }
        for &(period, duty) in &target.intermittents {
            kinds.push(FaultKind::Intermittent { period, duty });
        }
        for &b in &target.bits {
            kinds.push(FaultKind::BitFlip(b));
        }
        for kind in kinds {
            for &start in &config.starts {
                for &duration in &config.durations {
                    out.push(FaultScenario::new(
                        &target.name,
                        kind,
                        Step(start),
                        duration,
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> Vec<InjectionTarget> {
        vec![
            InjectionTarget::with_span("glucose", 360.0),
            InjectionTarget::with_span("rate", 4.0),
            InjectionTarget::with_span("iob", 7.0),
        ]
    }

    #[test]
    fn grid_size_is_product_of_dimensions() {
        let grid = campaign_grid(&targets(), &CampaignConfig::paper());
        // Per target: 4 base kinds + 2*2 add/sub + 2 bitflips = 10 kinds;
        // 10 kinds * 9 time combos * 3 targets = 270.
        assert_eq!(grid.len(), 270);
    }

    #[test]
    fn quick_grid_is_small() {
        let grid = campaign_grid(&targets(), &CampaignConfig::quick());
        assert_eq!(grid.len(), 30);
    }

    #[test]
    fn scenario_names_are_unique() {
        let grid = campaign_grid(&targets(), &CampaignConfig::paper());
        let names: std::collections::HashSet<String> = grid.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), grid.len());
    }

    #[test]
    fn grid_is_deterministic() {
        let a = campaign_grid(&targets(), &CampaignConfig::paper());
        let b = campaign_grid(&targets(), &CampaignConfig::paper());
        assert_eq!(a, b);
    }

    #[test]
    fn all_scenarios_activate_within_run() {
        for s in campaign_grid(&targets(), &CampaignConfig::paper()) {
            assert!(s.start.0 < 150, "{}", s.name());
            assert!(s.duration > 0);
        }
    }

    #[test]
    fn extended_targets_widen_the_kind_alphabet() {
        let extended = vec![InjectionTarget::with_span_extended("glucose", 360.0)];
        let grid = campaign_grid(&extended, &CampaignConfig::quick());
        // 10 original kinds + 2 scales + 2 drifts (±) + 1 noise + 1
        // intermittent = 16 kinds x 1 time combo.
        assert_eq!(grid.len(), 16);
        let names: std::collections::HashSet<String> = grid.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), grid.len(), "extended names collide");
        for kind in [
            FaultKind::Scale(0.5),
            FaultKind::Scale(1.5),
            FaultKind::Drift { per_step: 2.5 },
            FaultKind::Drift { per_step: -2.5 },
            FaultKind::Noise { amplitude: 36.0 },
            FaultKind::Intermittent { period: 6, duty: 3 },
        ] {
            assert!(
                grid.iter().any(|s| s.kind == kind),
                "missing {} from the extended grid",
                kind.label()
            );
        }
    }

    #[test]
    fn plain_targets_keep_the_seed_grid() {
        // The extended parameters default to empty, so pre-existing
        // campaigns (and their committed sizes) are unchanged.
        let t = InjectionTarget::with_span("rate", 4.0);
        assert!(t.scales.is_empty() && t.drifts.is_empty());
        assert!(t.noise_amps.is_empty() && t.intermittents.is_empty());
        // And a serialized seed-era target (no extended fields)
        // still deserializes.
        let json = r#"{"name":"rate","offsets":[1.0],"bits":[51]}"#;
        let back: InjectionTarget = serde_json::from_str(json).unwrap();
        assert_eq!(back.name, "rate");
        assert!(back.intermittents.is_empty());
    }
}
