//! Fault scenario description.

use aps_types::Step;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The perturbation a fault applies to a variable while active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Force the variable to zero (availability attack).
    Truncate,
    /// Freeze the variable at its value when the fault activated (DoS).
    Hold,
    /// Force the variable to its maximum legitimate value.
    Max,
    /// Force the variable to its minimum legitimate value.
    Min,
    /// Add a constant offset.
    Add(f64),
    /// Subtract a constant offset.
    Sub(f64),
    /// Multiply by a constant gain (sensor scale / calibration error).
    Scale(f64),
    /// Linear sensor drift: the perturbation grows by `per_step` every
    /// active cycle (`value + per_step · cycles-since-activation`).
    Drift {
        /// Offset added per active cycle.
        per_step: f64,
    },
    /// Deterministic, seed-free jitter in `value ± amplitude` (a hash
    /// of the cycles-since-activation — identical on every run, so
    /// campaigns and replays stay reproducible).
    Noise {
        /// Half-width of the jitter band.
        amplitude: f64,
    },
    /// Flapping availability fault: within each `period`-cycle window
    /// the first `duty` cycles force a hard zero (like
    /// [`Truncate`](FaultKind::Truncate)); the rest pass the value
    /// through untouched.
    Intermittent {
        /// Cycle length of one on/off pattern repetition.
        period: u32,
        /// Leading cycles of each period that are forced to zero.
        duty: u32,
    },
    /// Flip one bit of the IEEE-754 representation (result clamped to
    /// the variable's legitimate range).
    BitFlip(u8),
}

/// Deterministic jitter in `[-1, 1]` for [`FaultKind::Noise`]
/// (SplitMix64 finalizer over the active-cycle index).
fn unit_jitter(elapsed: u32) -> f64 {
    let mut z = u64::from(elapsed).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
}

impl FaultKind {
    /// Short, stable name used in scenario identifiers and reports.
    ///
    /// Numeric parameters render with Rust's shortest round-trip float
    /// formatting and *no* forced sign — `Add(30.0)` is `add30`,
    /// `Add(-30.0)` is `add-30`, `Sub(30.0)` is `sub30`. (The seed
    /// used `{:+.0}`, which rendered `Sub(30.0)` as the bewildering
    /// `sub+30`.) [`FaultKind::from_label`] parses these back.
    pub fn label(&self) -> String {
        match self {
            FaultKind::Truncate => "truncate".to_owned(),
            FaultKind::Hold => "hold".to_owned(),
            FaultKind::Max => "max".to_owned(),
            FaultKind::Min => "min".to_owned(),
            FaultKind::Add(d) => format!("add{d}"),
            FaultKind::Sub(d) => format!("sub{d}"),
            FaultKind::Scale(g) => format!("scale{g}"),
            FaultKind::Drift { per_step } => format!("drift{per_step}"),
            FaultKind::Noise { amplitude } => format!("noise{amplitude}"),
            FaultKind::Intermittent { period, duty } => format!("int{period}d{duty}"),
            FaultKind::BitFlip(b) => format!("bitflip{b}"),
        }
    }

    /// Parses a [`label`](FaultKind::label) back into the kind it came
    /// from (labels round-trip exactly).
    pub fn from_label(label: &str) -> Option<FaultKind> {
        match label {
            "truncate" => return Some(FaultKind::Truncate),
            "hold" => return Some(FaultKind::Hold),
            "max" => return Some(FaultKind::Max),
            "min" => return Some(FaultKind::Min),
            _ => {}
        }
        if let Some(rest) = label.strip_prefix("bitflip") {
            return rest.parse().ok().map(FaultKind::BitFlip);
        }
        if let Some(rest) = label.strip_prefix("int") {
            let (period, duty) = rest.split_once('d')?;
            return Some(FaultKind::Intermittent {
                period: period.parse().ok()?,
                duty: duty.parse().ok()?,
            });
        }
        if let Some(rest) = label.strip_prefix("add") {
            return rest.parse().ok().map(FaultKind::Add);
        }
        if let Some(rest) = label.strip_prefix("sub") {
            return rest.parse().ok().map(FaultKind::Sub);
        }
        if let Some(rest) = label.strip_prefix("scale") {
            return rest.parse().ok().map(FaultKind::Scale);
        }
        if let Some(rest) = label.strip_prefix("drift") {
            return rest
                .parse()
                .ok()
                .map(|per_step| FaultKind::Drift { per_step });
        }
        if let Some(rest) = label.strip_prefix("noise") {
            return rest
                .parse()
                .ok()
                .map(|amplitude| FaultKind::Noise { amplitude });
        }
        None
    }

    /// Applies the perturbation to `value`, given the variable's
    /// legitimate `[min, max]` range, the value captured at fault
    /// activation (`held`, used by [`FaultKind::Hold`]), and the
    /// number of cycles the fault has been active (`elapsed`, 0 on the
    /// activation cycle — drives [`Drift`](FaultKind::Drift),
    /// [`Noise`](FaultKind::Noise), and
    /// [`Intermittent`](FaultKind::Intermittent)).
    pub fn apply(&self, value: f64, min: f64, max: f64, held: f64, elapsed: u32) -> f64 {
        let out = match *self {
            FaultKind::Truncate => 0.0,
            FaultKind::Hold => held,
            FaultKind::Max => max,
            FaultKind::Min => min,
            FaultKind::Add(d) => value + d,
            FaultKind::Sub(d) => value - d,
            FaultKind::Scale(g) => value * g,
            FaultKind::Drift { per_step } => value + per_step * f64::from(elapsed),
            FaultKind::Noise { amplitude } => value + amplitude * unit_jitter(elapsed),
            FaultKind::Intermittent { period, duty } => {
                if elapsed % period.max(1) < duty {
                    0.0
                } else {
                    value
                }
            }
            FaultKind::BitFlip(bit) => {
                let bits = value.to_bits() ^ (1u64 << (bit % 64));
                let flipped = f64::from_bits(bits);
                if flipped.is_finite() {
                    flipped
                } else {
                    max
                }
            }
        };
        // All faults manifest within the acceptable variable range per
        // the paper's threat model ("perturbs the values ... within the
        // acceptable range"), except the availability faults: Truncate
        // forces a hard zero, and Intermittent alternates between a
        // hard zero and the untouched value.
        if matches!(self, FaultKind::Truncate | FaultKind::Intermittent { .. }) {
            out
        } else {
            out.clamp(min, max)
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A structurally invalid fault specification.
///
/// Scenarios arrive from JSON spec files, CLI flags, and (in tests)
/// chaos injection; validation catches nonsense *before* it reaches a
/// worker, so a bad spec becomes a ledger entry instead of a poisoned
/// simulation or a panic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecError {
    /// The field that failed validation.
    pub field: String,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for SpecError {}

impl SpecError {
    fn new(field: &str, reason: impl Into<String>) -> SpecError {
        SpecError {
            field: field.to_owned(),
            reason: reason.into(),
        }
    }
}

/// One injectable fault scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Name of the targeted controller state variable.
    pub target: String,
    /// Perturbation kind.
    pub kind: FaultKind,
    /// First control cycle at which the fault is active.
    pub start: Step,
    /// Number of consecutive cycles the fault stays active.
    pub duration: u32,
}

impl FaultScenario {
    /// Creates a scenario.
    pub fn new(target: &str, kind: FaultKind, start: Step, duration: u32) -> FaultScenario {
        FaultScenario {
            target: target.to_owned(),
            kind,
            start,
            duration,
        }
    }

    /// `true` while the fault perturbs the system at `step`.
    pub fn is_active(&self, step: Step) -> bool {
        step >= self.start && step.saturating_since(self.start) < self.duration
    }

    /// Checks the scenario for structural validity: a non-empty
    /// target, finite numeric parameters, and non-degenerate kind
    /// parameters (a bit index < 64, intermittent `duty <= period`
    /// with `period > 0`).
    ///
    /// A zero `duration` is *valid* (a never-active fault is the
    /// fault-free control arm); the checks here reject only specs that
    /// can never mean anything.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.target.trim().is_empty() {
            return Err(SpecError::new("target", "must not be empty"));
        }
        let check_finite = |field: &str, v: f64| -> Result<(), SpecError> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(SpecError::new(field, format!("must be finite, got {v}")))
            }
        };
        match self.kind {
            FaultKind::Truncate | FaultKind::Hold | FaultKind::Max | FaultKind::Min => {}
            FaultKind::Add(d) => check_finite("kind.Add", d)?,
            FaultKind::Sub(d) => check_finite("kind.Sub", d)?,
            FaultKind::Scale(g) => check_finite("kind.Scale", g)?,
            FaultKind::Drift { per_step } => check_finite("kind.Drift.per_step", per_step)?,
            FaultKind::Noise { amplitude } => {
                check_finite("kind.Noise.amplitude", amplitude)?;
                if amplitude < 0.0 {
                    return Err(SpecError::new(
                        "kind.Noise.amplitude",
                        "must be non-negative",
                    ));
                }
            }
            FaultKind::Intermittent { period, duty } => {
                if period == 0 {
                    return Err(SpecError::new("kind.Intermittent.period", "must be > 0"));
                }
                if duty > period {
                    return Err(SpecError::new(
                        "kind.Intermittent.duty",
                        format!("duty {duty} exceeds period {period}"),
                    ));
                }
            }
            FaultKind::BitFlip(bit) => {
                if bit >= 64 {
                    return Err(SpecError::new(
                        "kind.BitFlip",
                        format!("bit index {bit} out of range for f64 (0..=63)"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Stable scenario identifier, e.g. `"max_rate@t30x12"`.
    pub fn name(&self) -> String {
        format!(
            "{}_{}@t{}x{}",
            self.kind.label(),
            self.target,
            self.start.0,
            self.duration
        )
    }
}

impl fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_window() {
        let s = FaultScenario::new("rate", FaultKind::Max, Step(10), 3);
        assert!(!s.is_active(Step(9)));
        assert!(s.is_active(Step(10)));
        assert!(s.is_active(Step(12)));
        assert!(!s.is_active(Step(13)));
    }

    #[test]
    fn zero_duration_never_active() {
        let s = FaultScenario::new("rate", FaultKind::Max, Step(5), 0);
        for t in 0..20 {
            assert!(!s.is_active(Step(t)));
        }
    }

    #[test]
    fn kinds_apply_correctly() {
        assert_eq!(FaultKind::Truncate.apply(3.0, 0.0, 10.0, 9.9, 0), 0.0);
        assert_eq!(FaultKind::Hold.apply(3.0, 0.0, 10.0, 7.0, 0), 7.0);
        assert_eq!(FaultKind::Max.apply(3.0, 0.0, 10.0, 0.0, 0), 10.0);
        assert_eq!(FaultKind::Min.apply(3.0, 0.0, 10.0, 0.0, 0), 0.0);
        assert_eq!(FaultKind::Add(4.0).apply(3.0, 0.0, 10.0, 0.0, 0), 7.0);
        assert_eq!(FaultKind::Sub(4.0).apply(3.0, 0.0, 10.0, 0.0, 0), 0.0); // clamped
        assert_eq!(FaultKind::Scale(2.0).apply(3.0, 0.0, 10.0, 0.0, 0), 6.0);
    }

    #[test]
    fn add_clamps_to_range() {
        assert_eq!(FaultKind::Add(100.0).apply(3.0, 0.0, 10.0, 0.0, 0), 10.0);
    }

    #[test]
    fn scale_clamps_to_range() {
        assert_eq!(FaultKind::Scale(10.0).apply(3.0, 0.0, 10.0, 0.0, 0), 10.0);
        assert_eq!(FaultKind::Scale(-1.0).apply(3.0, 0.5, 10.0, 0.0, 0), 0.5);
    }

    #[test]
    fn drift_grows_with_elapsed_cycles() {
        let k = FaultKind::Drift { per_step: 0.5 };
        assert_eq!(k.apply(3.0, 0.0, 10.0, 0.0, 0), 3.0);
        assert_eq!(k.apply(3.0, 0.0, 10.0, 0.0, 4), 5.0);
        // Long drifts saturate at the range edge.
        assert_eq!(k.apply(3.0, 0.0, 10.0, 0.0, 100), 10.0);
    }

    #[test]
    fn noise_is_deterministic_bounded_and_varying() {
        let k = FaultKind::Noise { amplitude: 2.0 };
        let a: Vec<f64> = (0..50).map(|e| k.apply(5.0, 0.0, 10.0, 0.0, e)).collect();
        let b: Vec<f64> = (0..50).map(|e| k.apply(5.0, 0.0, 10.0, 0.0, e)).collect();
        assert_eq!(a, b, "jitter must be reproducible");
        assert!(a.iter().all(|v| (3.0..=7.0).contains(v)), "out of band");
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "jitter never changed value"
        );
    }

    #[test]
    fn intermittent_flaps_between_zero_and_passthrough() {
        let k = FaultKind::Intermittent { period: 4, duty: 2 };
        let outs: Vec<f64> = (0..8).map(|e| k.apply(3.0, 1.0, 10.0, 0.0, e)).collect();
        assert_eq!(outs, vec![0.0, 0.0, 3.0, 3.0, 0.0, 0.0, 3.0, 3.0]);
        // Degenerate period never divides by zero.
        let k = FaultKind::Intermittent { period: 0, duty: 1 };
        assert_eq!(k.apply(3.0, 0.0, 10.0, 0.0, 7), 0.0);
    }

    #[test]
    fn bitflip_stays_in_range_and_changes_value() {
        let v = 120.0;
        for bit in [51u8, 52, 55, 60, 62] {
            let out = FaultKind::BitFlip(bit).apply(v, 40.0, 400.0, 0.0, 0);
            assert!((40.0..=400.0).contains(&out), "bit {bit} -> {out}");
        }
        // A mantissa-flip actually changes the value.
        let out = FaultKind::BitFlip(51).apply(v, 40.0, 400.0, 0.0, 0);
        assert_ne!(out, v);
    }

    #[test]
    fn bitflip_nan_falls_back_to_max() {
        // Flipping an exponent bit of a large number can produce inf.
        let v = f64::MAX / 2.0;
        let out = FaultKind::BitFlip(62).apply(v, 0.0, 10.0, 0.0, 0);
        assert!((0.0..=10.0).contains(&out));
    }

    #[test]
    fn names_are_stable() {
        let s = FaultScenario::new("glucose", FaultKind::Add(50.0), Step(30), 12);
        assert_eq!(s.name(), "add50_glucose@t30x12");
        assert_eq!(s.to_string(), s.name());
        // Regression: Sub rendered through `{:+.0}` as `sub+30`.
        assert_eq!(FaultKind::Sub(30.0).label(), "sub30");
        assert_eq!(FaultKind::Add(30.0).label(), "add30");
        assert_eq!(FaultKind::Add(-30.0).label(), "add-30");
        assert_eq!(FaultKind::Scale(1.5).label(), "scale1.5");
        assert_eq!(
            FaultKind::Intermittent { period: 6, duty: 3 }.label(),
            "int6d3"
        );
    }

    #[test]
    fn labels_round_trip() {
        let kinds = [
            FaultKind::Truncate,
            FaultKind::Hold,
            FaultKind::Max,
            FaultKind::Min,
            FaultKind::Add(30.0),
            FaultKind::Add(-30.0),
            FaultKind::Sub(30.0),
            FaultKind::Sub(1.75),
            FaultKind::Scale(0.5),
            FaultKind::Scale(1.5),
            FaultKind::Drift { per_step: 0.25 },
            FaultKind::Noise { amplitude: 36.0 },
            FaultKind::Intermittent { period: 6, duty: 3 },
            FaultKind::BitFlip(51),
        ];
        for kind in kinds {
            assert_eq!(
                FaultKind::from_label(&kind.label()),
                Some(kind),
                "label `{}` does not round-trip",
                kind.label()
            );
        }
        assert_eq!(FaultKind::from_label("bogus"), None);
        assert_eq!(FaultKind::from_label("int6"), None, "missing duty");
    }

    #[test]
    fn validate_accepts_every_campaign_kind() {
        for kind in [
            FaultKind::Truncate,
            FaultKind::Hold,
            FaultKind::Max,
            FaultKind::Min,
            FaultKind::Add(30.0),
            FaultKind::Sub(30.0),
            FaultKind::Scale(0.5),
            FaultKind::Drift { per_step: 0.25 },
            FaultKind::Noise { amplitude: 18.0 },
            FaultKind::Intermittent { period: 6, duty: 3 },
            FaultKind::BitFlip(51),
        ] {
            let s = FaultScenario::new("rate", kind, Step(10), 12);
            assert_eq!(s.validate(), Ok(()), "{}", s.name());
        }
        // Zero duration is the fault-free control arm, not an error.
        assert_eq!(
            FaultScenario::new("rate", FaultKind::Max, Step(0), 0).validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let bad = [
            FaultScenario::new("", FaultKind::Max, Step(0), 5),
            FaultScenario::new("rate", FaultKind::Scale(f64::NAN), Step(0), 5),
            FaultScenario::new("rate", FaultKind::Add(f64::INFINITY), Step(0), 5),
            FaultScenario::new(
                "rate",
                FaultKind::Drift {
                    per_step: f64::NEG_INFINITY,
                },
                Step(0),
                5,
            ),
            FaultScenario::new("rate", FaultKind::Noise { amplitude: -1.0 }, Step(0), 5),
            FaultScenario::new(
                "rate",
                FaultKind::Intermittent { period: 0, duty: 0 },
                Step(0),
                5,
            ),
            FaultScenario::new(
                "rate",
                FaultKind::Intermittent { period: 2, duty: 3 },
                Step(0),
                5,
            ),
            FaultScenario::new("rate", FaultKind::BitFlip(64), Step(0), 5),
        ];
        for s in bad {
            let err = s.validate().unwrap_err();
            assert!(!err.field.is_empty(), "{err}");
            assert!(err.to_string().contains("invalid fault spec"), "{err}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        for kind in [
            FaultKind::BitFlip(52),
            FaultKind::Scale(1.5),
            FaultKind::Drift { per_step: 0.5 },
            FaultKind::Noise { amplitude: 18.0 },
            FaultKind::Intermittent { period: 6, duty: 3 },
        ] {
            let s = FaultScenario::new("iob", kind, Step(3), 6);
            let j = serde_json::to_string(&s).unwrap();
            let back: FaultScenario = serde_json::from_str(&j).unwrap();
            assert_eq!(s, back);
        }
    }
}
