//! Fault scenario description.

use aps_types::Step;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The perturbation a fault applies to a variable while active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Force the variable to zero (availability attack).
    Truncate,
    /// Freeze the variable at its value when the fault activated (DoS).
    Hold,
    /// Force the variable to its maximum legitimate value.
    Max,
    /// Force the variable to its minimum legitimate value.
    Min,
    /// Add a constant offset.
    Add(f64),
    /// Subtract a constant offset.
    Sub(f64),
    /// Flip one bit of the IEEE-754 representation (result clamped to
    /// the variable's legitimate range).
    BitFlip(u8),
}

impl FaultKind {
    /// Short, stable name used in scenario identifiers and reports.
    pub fn label(&self) -> String {
        match self {
            FaultKind::Truncate => "truncate".to_owned(),
            FaultKind::Hold => "hold".to_owned(),
            FaultKind::Max => "max".to_owned(),
            FaultKind::Min => "min".to_owned(),
            FaultKind::Add(d) => format!("add{d:+.0}"),
            FaultKind::Sub(d) => format!("sub{d:+.0}"),
            FaultKind::BitFlip(b) => format!("bitflip{b}"),
        }
    }

    /// Applies the perturbation to `value`, given the variable's
    /// legitimate `[min, max]` range and the value captured at fault
    /// activation (`held`, used by [`FaultKind::Hold`]).
    pub fn apply(&self, value: f64, min: f64, max: f64, held: f64) -> f64 {
        let out = match *self {
            FaultKind::Truncate => 0.0,
            FaultKind::Hold => held,
            FaultKind::Max => max,
            FaultKind::Min => min,
            FaultKind::Add(d) => value + d,
            FaultKind::Sub(d) => value - d,
            FaultKind::BitFlip(bit) => {
                let bits = value.to_bits() ^ (1u64 << (bit % 64));
                let flipped = f64::from_bits(bits);
                if flipped.is_finite() {
                    flipped
                } else {
                    max
                }
            }
        };
        // All faults manifest within the acceptable variable range per
        // the paper's threat model ("perturbs the values ... within the
        // acceptable range"), except Truncate which forces a hard zero.
        if matches!(self, FaultKind::Truncate) {
            out
        } else {
            out.clamp(min, max)
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One injectable fault scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Name of the targeted controller state variable.
    pub target: String,
    /// Perturbation kind.
    pub kind: FaultKind,
    /// First control cycle at which the fault is active.
    pub start: Step,
    /// Number of consecutive cycles the fault stays active.
    pub duration: u32,
}

impl FaultScenario {
    /// Creates a scenario.
    pub fn new(target: &str, kind: FaultKind, start: Step, duration: u32) -> FaultScenario {
        FaultScenario {
            target: target.to_owned(),
            kind,
            start,
            duration,
        }
    }

    /// `true` while the fault perturbs the system at `step`.
    pub fn is_active(&self, step: Step) -> bool {
        step >= self.start && step.saturating_since(self.start) < self.duration
    }

    /// Stable scenario identifier, e.g. `"max_rate@t30x12"`.
    pub fn name(&self) -> String {
        format!(
            "{}_{}@t{}x{}",
            self.kind.label(),
            self.target,
            self.start.0,
            self.duration
        )
    }
}

impl fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_window() {
        let s = FaultScenario::new("rate", FaultKind::Max, Step(10), 3);
        assert!(!s.is_active(Step(9)));
        assert!(s.is_active(Step(10)));
        assert!(s.is_active(Step(12)));
        assert!(!s.is_active(Step(13)));
    }

    #[test]
    fn zero_duration_never_active() {
        let s = FaultScenario::new("rate", FaultKind::Max, Step(5), 0);
        for t in 0..20 {
            assert!(!s.is_active(Step(t)));
        }
    }

    #[test]
    fn kinds_apply_correctly() {
        assert_eq!(FaultKind::Truncate.apply(3.0, 0.0, 10.0, 9.9), 0.0);
        assert_eq!(FaultKind::Hold.apply(3.0, 0.0, 10.0, 7.0), 7.0);
        assert_eq!(FaultKind::Max.apply(3.0, 0.0, 10.0, 0.0), 10.0);
        assert_eq!(FaultKind::Min.apply(3.0, 0.0, 10.0, 0.0), 0.0);
        assert_eq!(FaultKind::Add(4.0).apply(3.0, 0.0, 10.0, 0.0), 7.0);
        assert_eq!(FaultKind::Sub(4.0).apply(3.0, 0.0, 10.0, 0.0), 0.0); // clamped
    }

    #[test]
    fn add_clamps_to_range() {
        assert_eq!(FaultKind::Add(100.0).apply(3.0, 0.0, 10.0, 0.0), 10.0);
    }

    #[test]
    fn bitflip_stays_in_range_and_changes_value() {
        let v = 120.0;
        for bit in [51u8, 52, 55, 60, 62] {
            let out = FaultKind::BitFlip(bit).apply(v, 40.0, 400.0, 0.0);
            assert!((40.0..=400.0).contains(&out), "bit {bit} -> {out}");
        }
        // A mantissa-flip actually changes the value.
        let out = FaultKind::BitFlip(51).apply(v, 40.0, 400.0, 0.0);
        assert_ne!(out, v);
    }

    #[test]
    fn bitflip_nan_falls_back_to_max() {
        // Flipping an exponent bit of a large number can produce inf.
        let v = f64::MAX / 2.0;
        let out = FaultKind::BitFlip(62).apply(v, 0.0, 10.0, 0.0);
        assert!((0.0..=10.0).contains(&out));
    }

    #[test]
    fn names_are_stable() {
        let s = FaultScenario::new("glucose", FaultKind::Add(50.0), Step(30), 12);
        assert_eq!(s.name(), "add+50_glucose@t30x12");
        assert_eq!(s.to_string(), s.name());
    }

    #[test]
    fn serde_roundtrip() {
        let s = FaultScenario::new("iob", FaultKind::BitFlip(52), Step(3), 6);
        let j = serde_json::to_string(&s).unwrap();
        let back: FaultScenario = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
