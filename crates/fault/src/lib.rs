//! Software fault-injection engine.
//!
//! Reproduces the paper's source-level FI (Table II): faults and
//! attacks manifest as perturbations of the controller's input, output,
//! and internal state variables, activated by a trigger (start step)
//! and lasting a bounded duration. Scenario kinds:
//!
//! | Kind       | Simulates                                   |
//! |------------|---------------------------------------------|
//! | `Truncate` | availability attack — value forced to zero  |
//! | `Hold`     | DoS — variable stops refreshing              |
//! | `Max`/`Min`| integrity attack — forced to range extreme   |
//! | `Add`/`Sub`| memory fault — offset by a constant          |
//! | `BitFlip`  | transient hardware fault in an f64 register  |
//!
//! Faults are transient: one activation per simulation, per the
//! paper's threat model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod injector;
mod scenario;

pub use campaign::{campaign_grid, CampaignConfig, InjectionTarget};
pub use injector::FaultInjector;
pub use scenario::{FaultKind, FaultScenario, SpecError};
