//! Run-time fault injector.

use crate::{FaultKind, FaultScenario};
use aps_types::Step;
use serde::{Deserialize, Serialize};

/// Applies one [`FaultScenario`] to a named controller variable during
/// a closed-loop run.
///
/// The harness calls [`perturb`](FaultInjector::perturb) once per cycle
/// for the variable the scenario targets; the injector handles the
/// activation window and the `Hold` capture semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    scenario: FaultScenario,
    held: Option<f64>,
    activations: u32,
}

impl FaultInjector {
    /// Creates an injector for a scenario.
    pub fn new(scenario: FaultScenario) -> FaultInjector {
        FaultInjector {
            scenario,
            held: None,
            activations: 0,
        }
    }

    /// The scenario being injected.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// `true` while the fault is perturbing the system at `step`.
    pub fn is_active(&self, step: Step) -> bool {
        self.scenario.is_active(step)
    }

    /// Number of cycles the fault has actually perturbed so far.
    pub fn activations(&self) -> u32 {
        self.activations
    }

    /// Perturbs `value` of variable `var` at `step` if the scenario
    /// targets it and is active; otherwise returns `value` unchanged.
    /// `min`/`max` give the variable's legitimate range.
    pub fn perturb(&mut self, step: Step, var: &str, value: f64, min: f64, max: f64) -> f64 {
        if var != self.scenario.target {
            return value;
        }
        self.perturb_target(step, value, min, max)
    }

    /// Perturbs `value` of the scenario's *own* target variable at
    /// `step`. Identical to [`perturb`](FaultInjector::perturb) with a
    /// matching `var`, but skips the name comparison — the harness
    /// resolves the target once per run, so the hot loop passes no
    /// string and holds no borrow of the scenario.
    pub fn perturb_target(&mut self, step: Step, value: f64, min: f64, max: f64) -> f64 {
        if !self.scenario.is_active(step) {
            // Track the last clean value for a future Hold activation.
            if step < self.scenario.start {
                self.held = Some(value);
            } else {
                // Fault window over: stop holding.
                self.held = None;
            }
            return value;
        }
        self.activations += 1;
        let held = match self.scenario.kind {
            FaultKind::Hold => *self.held.get_or_insert(value),
            _ => value,
        };
        let elapsed = step.saturating_since(self.scenario.start);
        self.scenario.kind.apply(value, min, max, held, elapsed)
    }

    /// Resets activation bookkeeping for a fresh run.
    pub fn reset(&mut self) {
        self.held = None;
        self.activations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(kind: FaultKind) -> FaultInjector {
        FaultInjector::new(FaultScenario::new("rate", kind, Step(5), 3))
    }

    #[test]
    fn inactive_outside_window() {
        let mut inj = injector(FaultKind::Max);
        assert_eq!(inj.perturb(Step(4), "rate", 1.0, 0.0, 4.0), 1.0);
        assert_eq!(inj.perturb(Step(8), "rate", 1.0, 0.0, 4.0), 1.0);
        assert_eq!(inj.activations(), 0);
    }

    #[test]
    fn wrong_variable_untouched() {
        let mut inj = injector(FaultKind::Max);
        assert_eq!(inj.perturb(Step(6), "glucose", 120.0, 40.0, 400.0), 120.0);
    }

    #[test]
    fn max_fault_inside_window() {
        let mut inj = injector(FaultKind::Max);
        assert_eq!(inj.perturb(Step(5), "rate", 1.0, 0.0, 4.0), 4.0);
        assert_eq!(inj.perturb(Step(7), "rate", 1.0, 0.0, 4.0), 4.0);
        assert_eq!(inj.activations(), 2);
    }

    #[test]
    fn hold_freezes_pre_fault_value() {
        let mut inj = injector(FaultKind::Hold);
        // Clean cycles record the latest value.
        inj.perturb(Step(3), "rate", 2.5, 0.0, 4.0);
        inj.perturb(Step(4), "rate", 3.0, 0.0, 4.0);
        // Fault window: stays at the last clean value.
        assert_eq!(inj.perturb(Step(5), "rate", 0.5, 0.0, 4.0), 3.0);
        assert_eq!(inj.perturb(Step(6), "rate", 0.1, 0.0, 4.0), 3.0);
    }

    #[test]
    fn hold_without_history_freezes_first_faulty_value() {
        let mut inj = injector(FaultKind::Hold);
        assert_eq!(inj.perturb(Step(5), "rate", 1.7, 0.0, 4.0), 1.7);
        assert_eq!(inj.perturb(Step(6), "rate", 0.2, 0.0, 4.0), 1.7);
    }

    #[test]
    fn reset_clears_state() {
        let mut inj = injector(FaultKind::Hold);
        inj.perturb(Step(5), "rate", 2.0, 0.0, 4.0);
        assert_eq!(inj.activations(), 1);
        inj.reset();
        assert_eq!(inj.activations(), 0);
        assert_eq!(inj.perturb(Step(5), "rate", 0.9, 0.0, 4.0), 0.9);
    }
}
