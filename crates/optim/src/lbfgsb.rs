//! Box-constrained limited-memory BFGS (the practical projected variant
//! of L-BFGS-B).
//!
//! The paper uses L-BFGS-B with two-loop recursion to estimate the
//! inverse Hessian; we implement the same limited-memory machinery with
//! gradient projection onto the box and a projected-Armijo backtracking
//! line search. For the paper's workload — a handful of scalar STL
//! thresholds, each with simple bounds — this variant converges to the
//! same solutions as the full Byrd–Lu–Nocedal–Zhu algorithm.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Box constraints `lo[i] <= x[i] <= hi[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Bounds {
    /// Per-coordinate bounds.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Bounds {
        assert_eq!(lo.len(), hi.len(), "bounds length mismatch");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "bounds inverted at coordinate {i}: {l} > {h}");
        }
        Bounds { lo, hi }
    }

    /// The same `[lo, hi]` interval for all `n` coordinates.
    pub fn uniform(n: usize, lo: f64, hi: f64) -> Bounds {
        Bounds::new(vec![lo; n], vec![hi; n])
    }

    /// Unbounded in all `n` coordinates.
    pub fn unbounded(n: usize) -> Bounds {
        Bounds::uniform(n, f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// `true` if zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Projects `x` onto the box, in place.
    pub fn project(&self, x: &mut [f64]) {
        for ((xi, &l), &h) in x.iter_mut().zip(&self.lo).zip(&self.hi) {
            *xi = xi.clamp(l, h);
        }
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.hi
    }
}

/// Tunable knobs for [`minimize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Options {
    /// History size for the two-loop recursion (default 10).
    pub memory: usize,
    /// Maximum outer iterations (default 200).
    pub max_iters: usize,
    /// Convergence tolerance on the infinity norm of the projected
    /// gradient (default 1e-8).
    pub tol: f64,
    /// Armijo sufficient-decrease constant (default 1e-4).
    pub armijo_c: f64,
    /// Backtracking shrink factor (default 0.5).
    pub backtrack: f64,
    /// Maximum line-search trials per iteration (default 40).
    pub max_ls: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            memory: 10,
            max_iters: 200,
            tol: 1e-8,
            armijo_c: 1e-4,
            backtrack: 0.5,
            max_ls: 40,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Projected-gradient norm fell below tolerance.
    Converged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// Line search could not find a decreasing step (flat or
    /// non-descent direction); the best iterate so far is returned.
    LineSearchFailed,
}

/// Result of a successful [`minimize`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Final iterate (always feasible).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Infinity norm of the projected gradient at `x`.
    pub grad_norm: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Objective/gradient evaluations performed.
    pub evaluations: usize,
    /// Why iteration stopped.
    pub stop: StopReason,
}

/// Error for invalid [`minimize`] inputs or non-finite objectives.
#[derive(Debug, Clone, PartialEq)]
pub enum MinimizeError {
    /// `x0` length differs from the bounds' dimension.
    DimensionMismatch {
        /// Length of the starting point.
        x0: usize,
        /// Dimension of the bounds.
        bounds: usize,
    },
    /// The objective returned NaN at the (projected) starting point.
    NonFiniteStart,
}

impl fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizeError::DimensionMismatch { x0, bounds } => {
                write!(
                    f,
                    "starting point has {x0} coordinates but bounds have {bounds}"
                )
            }
            MinimizeError::NonFiniteStart => f.write_str("objective is NaN at the starting point"),
        }
    }
}

impl std::error::Error for MinimizeError {}

/// Minimizes `f` subject to box constraints, starting from `x0`.
///
/// `f(x, grad)` must write the gradient into `grad` and return the
/// objective value.
///
/// # Errors
///
/// Returns [`MinimizeError`] if dimensions are inconsistent or the
/// objective is NaN at the starting point.
pub fn minimize<F>(
    mut f: F,
    x0: &[f64],
    bounds: &Bounds,
    opts: &Options,
) -> Result<Solution, MinimizeError>
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x0.len();
    if n != bounds.len() {
        return Err(MinimizeError::DimensionMismatch {
            x0: n,
            bounds: bounds.len(),
        });
    }

    let mut x = x0.to_vec();
    bounds.project(&mut x);
    let mut g = vec![0.0; n];
    let mut fx = f(&x, &mut g);
    let mut evals = 1;
    if fx.is_nan() {
        return Err(MinimizeError::NonFiniteStart);
    }

    // (s, y, rho) history, newest at the back.
    let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
    let mut stop = StopReason::MaxIterations;
    let mut iter = 0;

    while iter < opts.max_iters {
        let pg = projected_gradient_norm(&x, &g, bounds);
        if pg < opts.tol {
            stop = StopReason::Converged;
            break;
        }
        iter += 1;

        // Two-loop recursion for d = -H g.
        let mut d = two_loop(&g, &history);
        for v in &mut d {
            *v = -*v;
        }
        // Fall back to steepest descent if not a descent direction.
        let descent: f64 = d.iter().zip(&g).map(|(di, gi)| di * gi).sum();
        if !descent.is_finite() || descent >= 0.0 {
            for (di, gi) in d.iter_mut().zip(&g) {
                *di = -*gi;
            }
        }
        let descent: f64 = d.iter().zip(&g).map(|(di, gi)| di * gi).sum();

        // Projected-Armijo backtracking.
        let mut alpha = 1.0;
        let mut accepted = false;
        let mut x_new = vec![0.0; n];
        let mut g_new = vec![0.0; n];
        let mut f_new = fx;
        for _ in 0..opts.max_ls {
            for i in 0..n {
                x_new[i] = x[i] + alpha * d[i];
            }
            bounds.project(&mut x_new);
            // Measure actual displacement after projection.
            let disp_dot_g: f64 = x_new
                .iter()
                .zip(&x)
                .zip(&g)
                .map(|((xn, xo), gi)| (xn - xo) * gi)
                .sum();
            f_new = f(&x_new, &mut g_new);
            evals += 1;
            let sufficient = if disp_dot_g < 0.0 {
                fx + opts.armijo_c * disp_dot_g
            } else {
                fx + opts.armijo_c * alpha * descent
            };
            if f_new.is_finite() && f_new <= sufficient {
                accepted = true;
                break;
            }
            alpha *= opts.backtrack;
        }
        if !accepted {
            stop = StopReason::LineSearchFailed;
            break;
        }

        // Curvature update.
        let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = g_new.iter().zip(&g).map(|(a, b)| a - b).collect();
        let sy: f64 = s.iter().zip(&y).map(|(a, b)| a * b).sum();
        if sy > 1e-12 {
            if history.len() == opts.memory {
                history.pop_front();
            }
            history.push_back((s, y, 1.0 / sy));
        }

        x = x_new;
        g = g_new;
        fx = f_new;
    }

    let grad_norm = projected_gradient_norm(&x, &g, bounds);
    if grad_norm < opts.tol {
        stop = StopReason::Converged;
    }
    Ok(Solution {
        x,
        value: fx,
        grad_norm,
        iterations: iter,
        evaluations: evals,
        stop,
    })
}

/// Infinity norm of `P(x − g) − x`, the standard first-order optimality
/// measure for box-constrained problems.
fn projected_gradient_norm(x: &[f64], g: &[f64], bounds: &Bounds) -> f64 {
    let mut norm: f64 = 0.0;
    for i in 0..x.len() {
        let stepped = (x[i] - g[i]).clamp(bounds.lower()[i], bounds.upper()[i]);
        norm = norm.max((stepped - x[i]).abs());
    }
    norm
}

/// Two-loop recursion computing `H g` with the limited-memory inverse
/// Hessian approximation (Nocedal & Wright, Alg. 7.4).
fn two_loop(g: &[f64], history: &VecDeque<(Vec<f64>, Vec<f64>, f64)>) -> Vec<f64> {
    let mut q = g.to_vec();
    let mut alphas = Vec::with_capacity(history.len());
    for (s, y, rho) in history.iter().rev() {
        let alpha = rho * s.iter().zip(&q).map(|(a, b)| a * b).sum::<f64>();
        for (qi, yi) in q.iter_mut().zip(y) {
            *qi -= alpha * yi;
        }
        alphas.push(alpha);
    }
    // Initial Hessian scaling gamma = s'y / y'y of the newest pair.
    if let Some((s, y, _)) = history.back() {
        let sy: f64 = s.iter().zip(y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|v| v * v).sum();
        if yy > 0.0 {
            let gamma = sy / yy;
            for qi in &mut q {
                *qi *= gamma;
            }
        }
    }
    for ((s, y, rho), alpha) in history.iter().zip(alphas.into_iter().rev()) {
        let beta = rho * y.iter().zip(&q).map(|(a, b)| a * b).sum::<f64>();
        for (qi, si) in q.iter_mut().zip(s) {
            *qi += (alpha - beta) * si;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_quadratic() {
        let sol = minimize(
            |x, g| {
                g[0] = 2.0 * (x[0] - 1.0);
                g[1] = 2.0 * (x[1] + 2.0);
                (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2)
            },
            &[10.0, -10.0],
            &Bounds::unbounded(2),
            &Options::default(),
        )
        .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-6, "{sol:?}");
        assert!((sol.x[1] + 2.0).abs() < 1e-6, "{sol:?}");
        assert_eq!(sol.stop, StopReason::Converged);
    }

    #[test]
    fn active_bound_is_respected() {
        // Minimum at x=3 but box is [0,2] -> solution x=2.
        let sol = minimize(
            |x, g| {
                g[0] = 2.0 * (x[0] - 3.0);
                (x[0] - 3.0).powi(2)
            },
            &[0.1],
            &Bounds::uniform(1, 0.0, 2.0),
            &Options::default(),
        )
        .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8, "{sol:?}");
    }

    #[test]
    fn rosenbrock_with_bounds() {
        let rosen = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (x[0], x[1]);
            g[0] = -400.0 * a * (b - a * a) - 2.0 * (1.0 - a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let sol = minimize(
            rosen,
            &[-1.2, 1.0],
            &Bounds::uniform(2, -5.0, 5.0),
            &Options {
                max_iters: 2000,
                ..Options::default()
            },
        )
        .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "{sol:?}");
        assert!((sol.x[1] - 1.0).abs() < 1e-4, "{sol:?}");
    }

    #[test]
    fn starting_point_is_projected() {
        let sol = minimize(
            |x, g| {
                g[0] = 2.0 * x[0];
                x[0] * x[0]
            },
            &[100.0],
            &Bounds::uniform(1, -1.0, 1.0),
            &Options::default(),
        )
        .unwrap();
        assert!(sol.x[0].abs() < 1e-7);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err = minimize(
            |_x, _g| 0.0,
            &[0.0, 0.0],
            &Bounds::uniform(1, 0.0, 1.0),
            &Options::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MinimizeError::DimensionMismatch { .. }));
    }

    #[test]
    fn nan_start_rejected() {
        let err = minimize(
            |_x, g| {
                g[0] = 0.0;
                f64::NAN
            },
            &[0.0],
            &Bounds::uniform(1, -1.0, 1.0),
            &Options::default(),
        )
        .unwrap_err();
        assert_eq!(err, MinimizeError::NonFiniteStart);
    }

    #[test]
    fn tmee_threshold_fitting_converges_tightly() {
        // Learn beta so that residuals (mu - beta) of hazardous samples
        // are tight: samples at [2.2, 2.5, 3.0] -> beta just below 2.2.
        use crate::{Loss, Tmee};
        let samples = [2.2, 2.5, 3.0];
        let sol = minimize(
            |x, g| {
                let beta = x[0];
                let rs: Vec<f64> = samples.iter().map(|m| m - beta).collect();
                // dr/dbeta = -1.
                g[0] = -Tmee.mean_grad(&rs);
                Tmee.mean(&rs)
            },
            &[0.0],
            &Bounds::uniform(1, 0.0, 10.0),
            &Options::default(),
        )
        .unwrap();
        let beta = sol.x[0];
        // Tight: within ~0.7 below the smallest hazardous sample but not above it.
        assert!(beta <= 2.2 + 1e-6, "beta = {beta}");
        assert!(beta > 1.2, "beta = {beta} too loose");
    }

    #[test]
    fn converges_in_reported_iterations() {
        let sol = minimize(
            |x, g| {
                g[0] = 2.0 * x[0];
                x[0] * x[0]
            },
            &[5.0],
            &Bounds::unbounded(1),
            &Options::default(),
        )
        .unwrap();
        assert!(sol.iterations <= 10);
        assert!(sol.evaluations >= sol.iterations);
    }

    #[test]
    fn bounds_constructors() {
        let b = Bounds::uniform(3, -1.0, 1.0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let mut x = vec![-5.0, 0.5, 5.0];
        b.project(&mut x);
        assert_eq!(x, vec![-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_panic() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }
}
