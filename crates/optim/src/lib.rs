//! Box-constrained quasi-Newton optimization and STL-tightness losses.
//!
//! The paper learns unknown STL thresholds βᵢ by minimizing a *Tight
//! Mean Exponential Error* (TMEE) loss of the robustness residual
//! `r = µᵢ(d(t)) − βᵢ` with the L-BFGS-B algorithm. This crate provides:
//!
//! * the [`Loss`] trait with the paper's [`Tmee`] loss (Eq. 4), the
//!   [`Telex`] tightness loss it compares against, and the classic
//!   [`Mse`]/[`Mae`] references of Fig. 3a;
//! * [`lbfgsb::minimize`] — a limited-memory BFGS with box constraints
//!   (two-loop recursion, gradient projection, Armijo backtracking);
//! * [`numgrad::central_difference`] for validating analytic gradients.
//!
//! # Example
//!
//! ```
//! use aps_optim::{lbfgsb, Bounds};
//!
//! // Minimize (x-3)^2 subject to x in [0, 2].
//! let sol = lbfgsb::minimize(
//!     |x, g| {
//!         g[0] = 2.0 * (x[0] - 3.0);
//!         (x[0] - 3.0).powi(2)
//!     },
//!     &[0.5],
//!     &Bounds::uniform(1, 0.0, 2.0),
//!     &lbfgsb::Options::default(),
//! ).unwrap();
//! assert!((sol.x[0] - 2.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lbfgsb;
mod loss;
pub mod numgrad;

pub use lbfgsb::{Bounds, Options, Solution};
pub use loss::{Loss, LossKind, Mae, Mse, Telex, Tmee};
