//! Loss functions over the robustness residual `r = µ(d(t)) − β`.
//!
//! The design goal (paper §III-C2, Fig. 3) is a loss whose minimizer
//! leaves `r` *slightly positive*: the learned threshold β should sit
//! tight against the hazardous data while never being violated by it.
//! Symmetric losses (MSE/MAE) are minimized at `r = 0` and routinely
//! overshoot into small negative robustness; the TeLEx tightness loss
//! is safe but too flat near its minimum (thresholds come out loose);
//! TMEE adds an exponential wall on the violation side with near-linear
//! growth on the slack side.
//!
//! # TMEE transcription note
//!
//! Eq. 4 of the paper typesets as `E[e^{−r} + r − 1 / (1 + e^{−2r})]`.
//! We read it as `e^{−r} + (r − 1)/(1 + e^{−2r})`, which produces
//! exactly the curve of Fig. 3b: an exponential barrier for `r < 0`, a
//! unique minimum at small positive `r` (≈ 0.6), and asymptotically
//! linear growth `≈ r − 1` for large `r`. The alternative grouping
//! `(e^{−r} + r − 1)/(1 + e^{−2r})` vanishes as `r → −∞`, i.e. it would
//! *reward* violations, contradicting the paper's stated intent.

use serde::{Deserialize, Serialize};

/// A differentiable scalar loss over a robustness residual.
pub trait Loss {
    /// Loss value at residual `r`.
    fn value(&self, r: f64) -> f64;

    /// Derivative `d loss / d r`.
    fn grad(&self, r: f64) -> f64;

    /// Mean loss over a batch of residuals.
    fn mean(&self, rs: &[f64]) -> f64 {
        if rs.is_empty() {
            return 0.0;
        }
        rs.iter().map(|&r| self.value(r)).sum::<f64>() / rs.len() as f64
    }

    /// Mean gradient over a batch of residuals.
    fn mean_grad(&self, rs: &[f64]) -> f64 {
        if rs.is_empty() {
            return 0.0;
        }
        rs.iter().map(|&r| self.grad(r)).sum::<f64>() / rs.len() as f64
    }
}

/// Mean squared error `r²` (Fig. 3a reference).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mse;

impl Loss for Mse {
    fn value(&self, r: f64) -> f64 {
        r * r
    }
    fn grad(&self, r: f64) -> f64 {
        2.0 * r
    }
}

/// Mean absolute error `|r|` (Fig. 3a reference).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mae;

impl Loss for Mae {
    fn value(&self, r: f64) -> f64 {
        r.abs()
    }
    fn grad(&self, r: f64) -> f64 {
        if r > 0.0 {
            1.0
        } else if r < 0.0 {
            -1.0
        } else {
            0.0
        }
    }
}

/// The TeLEx tightness loss (Jha et al.), in softplus form:
/// `loss(r) = −r + (2/σ)·ln(1 + e^{σ r}) − (2/σ)·ln 2`.
///
/// A smooth surrogate of `|r|` whose curvature near the minimum is
/// controlled by `sigma`; the paper observes that thresholds learned
/// with it "are not tight enough without manual adjusting", which this
/// flat valley reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Telex {
    /// Sharpness parameter σ > 0 (default 1).
    pub sigma: f64,
}

impl Default for Telex {
    fn default() -> Telex {
        Telex { sigma: 1.0 }
    }
}

impl Loss for Telex {
    fn value(&self, r: f64) -> f64 {
        let s = self.sigma;
        // Numerically stable softplus: ln(1+e^x) = max(x,0) + ln(1+e^-|x|).
        let x = s * r;
        let softplus = x.max(0.0) + (-x.abs()).exp().ln_1p();
        -r + (2.0 / s) * softplus - (2.0 / s) * std::f64::consts::LN_2
    }

    fn grad(&self, r: f64) -> f64 {
        let x = self.sigma * r;
        -1.0 + 2.0 / (1.0 + (-x).exp())
    }
}

/// The paper's Tight Mean Exponential Error (Eq. 4):
/// `loss(r) = e^{−r} + (r − 1)/(1 + e^{−2r})`.
///
/// Exponential barrier on the violation side (`r < 0`), unique minimum
/// at a small positive residual, asymptotically `r − 1` on the slack
/// side — learned thresholds are tight but never violated by the
/// hazardous training traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tmee;

impl Loss for Tmee {
    fn value(&self, r: f64) -> f64 {
        // Guard the exponential against overflow for very negative r:
        // beyond r = -700, e^{-r} is inf and the optimizer's line search
        // will back off anyway; clamp to f64::MAX.
        let e = (-r).exp();
        if !e.is_finite() {
            return f64::MAX;
        }
        let denom = 1.0 + (-2.0 * r).exp();
        if !denom.is_finite() {
            // r very negative: (r-1)/denom → 0.
            return e;
        }
        e + (r - 1.0) / denom
    }

    fn grad(&self, r: f64) -> f64 {
        let e = (-r).exp();
        if !e.is_finite() {
            return -f64::MAX;
        }
        let q = (-2.0 * r).exp();
        if !q.is_finite() {
            return -e;
        }
        let denom = 1.0 + q;
        -e + (denom + (r - 1.0) * 2.0 * q) / (denom * denom)
    }
}

/// Enumeration of the available losses, for configuration and CLI use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossKind {
    /// [`Mse`]
    Mse,
    /// [`Mae`]
    Mae,
    /// [`Telex`] with default σ
    Telex,
    /// [`Tmee`]
    Tmee,
}

impl LossKind {
    /// All loss kinds, in Fig. 3 order.
    pub const ALL: [LossKind; 4] = [
        LossKind::Mse,
        LossKind::Mae,
        LossKind::Telex,
        LossKind::Tmee,
    ];

    /// Loss value for a residual (dynamic dispatch convenience).
    pub fn value(self, r: f64) -> f64 {
        match self {
            LossKind::Mse => Mse.value(r),
            LossKind::Mae => Mae.value(r),
            LossKind::Telex => Telex::default().value(r),
            LossKind::Tmee => Tmee.value(r),
        }
    }

    /// Gradient for a residual.
    pub fn grad(self, r: f64) -> f64 {
        match self {
            LossKind::Mse => Mse.grad(r),
            LossKind::Mae => Mae.grad(r),
            LossKind::Telex => Telex::default().grad(r),
            LossKind::Tmee => Tmee.grad(r),
        }
    }

    /// Short lowercase name (CLI / report labels).
    pub fn name(self) -> &'static str {
        match self {
            LossKind::Mse => "mse",
            LossKind::Mae => "mae",
            LossKind::Telex => "telex",
            LossKind::Tmee => "tmee",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numgrad::central_difference;

    #[test]
    fn mse_mae_basics() {
        assert_eq!(Mse.value(2.0), 4.0);
        assert_eq!(Mse.grad(-1.5), -3.0);
        assert_eq!(Mae.value(-2.0), 2.0);
        assert_eq!(Mae.grad(-2.0), -1.0);
        assert_eq!(Mae.grad(0.0), 0.0);
    }

    #[test]
    fn tmee_has_exponential_wall_on_violation_side() {
        // Violations must cost far more than equal-magnitude slack.
        for r in [0.5, 1.0, 2.0, 3.0] {
            assert!(
                Tmee.value(-r) > 2.0 * Tmee.value(r),
                "TMEE(-{r}) = {} vs TMEE({r}) = {}",
                Tmee.value(-r),
                Tmee.value(r)
            );
        }
    }

    #[test]
    fn tmee_minimum_is_at_small_positive_r() {
        let mut best_r = f64::NAN;
        let mut best_v = f64::INFINITY;
        let mut r = -2.0;
        while r <= 3.0 {
            let v = Tmee.value(r);
            if v < best_v {
                best_v = v;
                best_r = r;
            }
            r += 1e-3;
        }
        assert!(best_r > 0.0 && best_r < 1.0, "minimum at r = {best_r}");
    }

    #[test]
    fn tmee_asymptotically_linear_for_large_r() {
        let v = Tmee.value(50.0);
        assert!((v - 49.0).abs() < 1e-6, "TMEE(50) = {v}");
    }

    #[test]
    fn telex_minimum_at_zero_and_flatter_than_tmee() {
        let t = Telex::default();
        assert!(t.value(0.0).abs() < 1e-12);
        assert!(t.value(0.5) > 0.0 && t.value(-0.5) > 0.0);
        // TeLEx is symmetric-ish and flat: near the minimum its barrier
        // against violation is much weaker than TMEE's.
        assert!(Tmee.value(-1.0) > 4.0 * t.value(-1.0));
    }

    #[test]
    fn analytic_gradients_match_numerical() {
        let kinds = [LossKind::Mse, LossKind::Telex, LossKind::Tmee];
        for kind in kinds {
            for r in [-2.0, -0.7, -0.1, 0.1, 0.9, 2.5] {
                let num = central_difference(|x| kind.value(x[0]), &[r], 0, 1e-6);
                let ana = kind.grad(r);
                assert!(
                    (num - ana).abs() < 1e-5,
                    "{}: r={r} numerical {num} vs analytic {ana}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn batch_mean_and_grad() {
        let rs = [1.0, -1.0, 2.0];
        let m = Mse.mean(&rs);
        assert!((m - 2.0).abs() < 1e-12);
        let g = Mse.mean_grad(&rs);
        assert!((g - (2.0 - 2.0 + 4.0) / 3.0).abs() < 1e-12);
        assert_eq!(Mse.mean(&[]), 0.0);
        assert_eq!(Mse.mean_grad(&[]), 0.0);
    }

    #[test]
    fn tmee_handles_extreme_residuals() {
        assert!(Tmee.value(-1000.0).is_finite());
        assert!(Tmee.value(1000.0).is_finite());
        assert!(Tmee.grad(-1000.0).is_finite());
        assert!(Tmee.grad(1000.0).is_finite());
    }

    #[test]
    fn loss_kind_roundtrip() {
        for k in LossKind::ALL {
            assert!(!k.name().is_empty());
            assert!(k.value(0.5).is_finite());
        }
    }
}
