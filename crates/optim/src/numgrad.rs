//! Numerical differentiation helpers for gradient checking.

/// Central-difference partial derivative of `f` with respect to
/// coordinate `i` at point `x`, with half-step `h`.
///
/// ```
/// use aps_optim::numgrad::central_difference;
/// let d = central_difference(|x| x[0] * x[0], &[3.0], 0, 1e-6);
/// assert!((d - 6.0).abs() < 1e-5);
/// ```
pub fn central_difference<F: Fn(&[f64]) -> f64>(f: F, x: &[f64], i: usize, h: f64) -> f64 {
    assert!(i < x.len(), "coordinate index out of range");
    assert!(h > 0.0, "step must be positive");
    let mut xp = x.to_vec();
    let mut xm = x.to_vec();
    xp[i] += h;
    xm[i] -= h;
    (f(&xp) - f(&xm)) / (2.0 * h)
}

/// Full numerical gradient via central differences.
pub fn gradient<F: Fn(&[f64]) -> f64>(f: F, x: &[f64], h: f64) -> Vec<f64> {
    (0..x.len())
        .map(|i| central_difference(&f, x, i, h))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = gradient(f, &[2.0, 5.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-5);
        assert!((g[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = central_difference(|x| x[0], &[1.0], 3, 1e-6);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn bad_step_panics() {
        let _ = central_difference(|x| x[0], &[1.0], 0, 0.0);
    }
}
