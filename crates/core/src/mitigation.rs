//! Hazard mitigation (Algorithm 1).
//!
//! When the monitor predicts a hazard, the mitigator replaces the
//! controller's command before it reaches the pump: a predicted H1 (too
//! much insulin) suspends delivery; a predicted H2 (too little) forces
//! a fixed corrective rate. The paper deliberately uses this fixed,
//! non-context-dependent policy so that mitigation comparisons across
//! monitors are fair; context-dependent `f(ρ(µ(x)), u)` selection is
//! future work there and here.

use aps_types::{Hazard, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// The fixed mitigation policy of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mitigator {
    /// Rate commanded on a predicted H1 (default: suspend, 0 U/h).
    pub h1_rate: UnitsPerHour,
    /// Rate commanded on a predicted H2 (default: a fixed maximum
    /// corrective rate).
    pub h2_rate: UnitsPerHour,
}

impl Mitigator {
    /// The paper's configuration: suspend on H1, maximum insulin on H2.
    pub fn paper_default(max_rate: UnitsPerHour) -> Mitigator {
        Mitigator {
            h1_rate: UnitsPerHour(0.0),
            h2_rate: max_rate,
        }
    }

    /// Applies Algorithm 1: corrects `commanded` if a hazard is
    /// predicted, otherwise passes it through.
    pub fn mitigate(&self, predicted: Option<Hazard>, commanded: UnitsPerHour) -> UnitsPerHour {
        match predicted {
            Some(Hazard::H1) => self.h1_rate,
            Some(Hazard::H2) => self.h2_rate,
            None => commanded,
        }
    }
}

impl Default for Mitigator {
    fn default() -> Mitigator {
        Mitigator::paper_default(UnitsPerHour(4.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_suspends() {
        let m = Mitigator::default();
        assert_eq!(
            m.mitigate(Some(Hazard::H1), UnitsPerHour(3.0)),
            UnitsPerHour(0.0)
        );
    }

    #[test]
    fn h2_forces_max() {
        let m = Mitigator::paper_default(UnitsPerHour(6.0));
        assert_eq!(
            m.mitigate(Some(Hazard::H2), UnitsPerHour(0.0)),
            UnitsPerHour(6.0)
        );
    }

    #[test]
    fn no_alert_passes_through() {
        let m = Mitigator::default();
        assert_eq!(m.mitigate(None, UnitsPerHour(1.3)), UnitsPerHour(1.3));
    }

    #[test]
    fn correction_applies_even_in_range_commands() {
        // The paper corrects a UCA "regardless of its value being
        // out-of-the-range or not".
        let m = Mitigator::default();
        let corrected = m.mitigate(Some(Hazard::H2), UnitsPerHour(1.0));
        assert_eq!(corrected, UnitsPerHour(4.0));
    }
}
