//! The context-aware monitor synthesized from its STL formulas.
//!
//! The paper frames the contribution as "synthesize the generated STL
//! formulas as an online context-aware monitor". [`CawMonitor`] hard-
//! codes the Table I rules as native Rust checks for speed;
//! [`StlCawMonitor`] instead *executes the formulas themselves*: each
//! rule's `G`-body (an instantaneous past-time formula over
//! `bg, bg', iob, iob', u`) is compiled into an
//! [`OnlineMonitor`](aps_stl::online::OnlineMonitor) and stepped once
//! per control cycle. Equivalence of the two (on quantized CGM traces,
//! away from measure-zero robustness ties) is pinned by unit tests
//! here and by replay tests against live campaigns — which is what
//! makes the native monitor a faithful *synthesis* of the
//! specification rather than a reimplementation beside it.
//!
//! [`CawMonitor`]: crate::monitors::CawMonitor

use crate::context::ContextBuilder;
use crate::monitors::caw::SafeRegion;
use crate::monitors::{HazardMonitor, MonitorInput};
use crate::scs::Scs;
use aps_stl::online::OnlineMonitor;
use aps_stl::Formula;
use aps_types::{ControlAction, Hazard, UnitsPerHour};
use std::collections::HashMap;

/// A compiled SCS rule: the online evaluator for its `G`-body plus the
/// verdict metadata.
#[derive(Debug, Clone)]
struct CompiledRule {
    monitor: OnlineMonitor,
    hazard: Hazard,
    id: u8,
}

/// Context-aware monitor that runs the SCS *as STL* (see module docs).
#[derive(Debug, Clone)]
pub struct StlCawMonitor {
    name: String,
    rules: Vec<CompiledRule>,
    context: ContextBuilder,
    safe: SafeRegion,
    latched: Option<Hazard>,
    last_rule: Option<u8>,
}

impl StlCawMonitor {
    /// Compiles every rule of `scs` into an online STL evaluator.
    ///
    /// # Panics
    ///
    /// Panics if a rule's formula body is not past-time — impossible
    /// for formulas produced by [`UcaRule::to_stl`], whose bodies are
    /// instantaneous.
    ///
    /// [`UcaRule::to_stl`]: crate::scs::UcaRule::to_stl
    pub fn new(name: &str, scs: Scs, basal: UnitsPerHour) -> StlCawMonitor {
        let rules = scs
            .rules
            .iter()
            .map(|rule| {
                let formula = rule.to_stl(scs.target, 0);
                let body = match formula {
                    Formula::Globally(_, inner) => *inner,
                    other => other,
                };
                CompiledRule {
                    monitor: OnlineMonitor::new(body).expect("SCS rule bodies are past-time"),
                    hazard: rule.hazard,
                    id: rule.id,
                }
            })
            .collect();
        StlCawMonitor {
            name: name.to_owned(),
            rules,
            context: ContextBuilder::new(basal),
            safe: SafeRegion::default(),
            latched: None,
            last_rule: None,
        }
    }

    /// The Table I rule id behind the most recent alert.
    pub fn last_rule(&self) -> Option<u8> {
        self.last_rule
    }
}

impl HazardMonitor for StlCawMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        let ctx = self.context.observe_bg(input.bg);
        let action = ControlAction::classify(input.commanded, input.previous_rate);
        let sample: HashMap<String, f64> = [
            ("bg".to_owned(), ctx.bg),
            ("bg'".to_owned(), ctx.dbg),
            ("iob".to_owned(), ctx.iob),
            ("iob'".to_owned(), ctx.diob),
            ("u".to_owned(), action.paper_index() as f64),
        ]
        .into_iter()
        .collect();

        // Step every compiled rule (keeping all their internal states
        // in lockstep); the first strictly violated one decides.
        let mut fired: Option<(u8, Hazard)> = None;
        for rule in &mut self.rules {
            let rob = rule.monitor.step(&sample);
            // Strictly negative robustness = definite violation; a tie
            // at 0 means a context conjunct sits exactly on its
            // boundary, where the native strict comparisons do not
            // match either.
            if rob < 0.0 && fired.is_none() {
                fired = Some((rule.id, rule.hazard));
            }
        }
        if let Some((id, hazard)) = fired {
            self.last_rule = Some(id);
            self.latched = Some(hazard);
            return Some(hazard);
        }
        if let Some(h) = self.latched {
            if self.safe.clears(&ctx, h) {
                self.latched = None;
            } else {
                return Some(h);
            }
        }
        None
    }

    fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.context.observe_delivery(delivered);
    }

    fn reset(&mut self) {
        self.context.reset();
        for rule in &mut self.rules {
            rule.monitor.reset();
        }
        self.latched = None;
        self.last_rule = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitors::CawMonitor;
    use aps_types::{MgDl, Step};

    fn scs() -> Scs {
        Scs::with_default_thresholds(MgDl(110.0))
    }

    fn pair() -> (CawMonitor, StlCawMonitor) {
        (
            CawMonitor::new("native", scs(), UnitsPerHour(1.0)),
            StlCawMonitor::new("stl", scs(), UnitsPerHour(1.0)),
        )
    }

    fn input(step: u32, bg: f64, commanded: f64, prev: f64) -> MonitorInput {
        MonitorInput {
            step: Step(step),
            bg: MgDl(bg),
            commanded: UnitsPerHour(commanded),
            previous_rate: UnitsPerHour(prev),
        }
    }

    #[test]
    fn flags_rule_10_like_the_native_monitor() {
        let (mut native, mut stl) = pair();
        // BG below the 70 floor while insulin keeps running.
        let inp = input(0, 60.0, 1.0, 1.0);
        assert_eq!(native.check(&inp), Some(Hazard::H1));
        assert_eq!(stl.check(&inp), Some(Hazard::H1));
        assert_eq!(stl.last_rule(), Some(10));
    }

    #[test]
    fn agrees_with_native_on_a_synthetic_stream() {
        let (mut native, mut stl) = pair();
        // A stream that wanders through hyper, hypo, and safe contexts
        // with varying commands (quantized BG like a real CGM).
        let bgs = [
            120.0, 150.0, 190.0, 220.0, 240.0, 230.0, 200.0, 160.0, 120.0, 90.0, 70.0, 62.0, 58.0,
            64.0, 72.0, 85.0, 100.0, 115.0, 125.0, 130.0,
        ];
        let rates = [
            1.0, 1.2, 1.6, 2.0, 2.0, 1.6, 1.2, 1.0, 0.8, 0.5, 0.5, 0.8, 0.0, 0.0, 0.3, 0.6, 0.9,
            1.0, 1.0, 1.0,
        ];
        let mut prev = 1.0;
        for (i, (&bg, &rate)) in bgs.iter().zip(&rates).enumerate() {
            let inp = input(i as u32, bg, rate, prev);
            let a = native.check(&inp);
            let b = stl.check(&inp);
            assert_eq!(a, b, "divergence at step {i} (bg {bg}, rate {rate})");
            native.observe_delivery(UnitsPerHour(rate));
            stl.observe_delivery(UnitsPerHour(rate));
            prev = rate;
        }
    }

    #[test]
    fn reset_clears_latch_and_formula_state() {
        let (_, mut stl) = pair();
        assert!(stl.check(&input(0, 60.0, 1.0, 1.0)).is_some());
        stl.reset();
        assert_eq!(stl.last_rule(), None);
        assert_eq!(stl.check(&input(0, 120.0, 1.0, 1.0)), None);
    }

    #[test]
    fn latch_persists_until_safe_region() {
        let (_, mut stl) = pair();
        // Fire rule 10, then feed a still-falling low BG with the pump
        // stopped: no fresh violation, but the latch must hold.
        assert_eq!(stl.check(&input(0, 60.0, 1.0, 1.0)), Some(Hazard::H1));
        stl.observe_delivery(UnitsPerHour(0.0));
        assert_eq!(stl.check(&input(1, 58.0, 0.0, 0.0)), Some(Hazard::H1));
        stl.observe_delivery(UnitsPerHour(0.0));
        // Recovered and rising above the floor: latch clears.
        assert_eq!(stl.check(&input(2, 101.0, 0.0, 0.0)), None);
    }
}
