//! A bank of hazard monitors stepped against one physics pass.
//!
//! The paper's evaluation pits a *zoo* of competing monitors against
//! the same fault scenarios. Simulating the patient once per monitor
//! multiplies the dominant cost (the ODE integration) by the zoo size
//! for no reason: a monitor that only observes cannot perturb the
//! loop, so every member sees the identical input stream. A
//! [`MonitorBank`] exploits that — it is the *ordered collection* a
//! simulation engine fans each cycle's [`MonitorInput`] out to,
//! recording one alert stream per member (the stepping itself lives in
//! the engine, `aps_sim`'s session module, which consumes the bank via
//! [`as_dyn_mut`](MonitorBank::as_dyn_mut)).
//!
//! The bank's *primary* member (index 0) is the one whose verdicts
//! drive mitigation when the harness has mitigation enabled; under
//! active mitigation the non-primary streams describe how each monitor
//! judges the *mitigated* loop, not the loop it would itself have
//! produced.
//!
//! [`MonitorInput`]: crate::monitors::MonitorInput

use crate::monitors::HazardMonitor;

/// An ordered collection of stateful monitors sharing one closed loop.
#[derive(Default)]
pub struct MonitorBank {
    monitors: Vec<Box<dyn HazardMonitor>>,
}

impl MonitorBank {
    /// An empty bank.
    pub fn new() -> MonitorBank {
        MonitorBank::default()
    }

    /// Builds a bank from monitors in priority order (index 0 is the
    /// primary).
    pub fn from_monitors(monitors: Vec<Box<dyn HazardMonitor>>) -> MonitorBank {
        MonitorBank { monitors }
    }

    /// Appends a monitor (later members never drive mitigation).
    pub fn push(&mut self, monitor: Box<dyn HazardMonitor>) {
        self.monitors.push(monitor);
    }

    /// Number of monitors in the bank.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// `true` when the bank holds no monitors.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// The members' names, in bank order.
    pub fn names(&self) -> Vec<String> {
        self.monitors.iter().map(|m| m.name().to_owned()).collect()
    }

    /// Consumes the bank, yielding the owned members in bank order.
    pub fn into_monitors(self) -> Vec<Box<dyn HazardMonitor>> {
        self.monitors
    }

    /// Mutable trait-object views of the members, in bank order (the
    /// shape the simulation engine consumes).
    pub fn as_dyn_mut(&mut self) -> Vec<&mut dyn HazardMonitor> {
        self.monitors
            .iter_mut()
            .map(|m| m.as_mut() as &mut dyn HazardMonitor)
            .collect()
    }
}

impl std::fmt::Debug for MonitorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorBank")
            .field("monitors", &self.names())
            .finish()
    }
}

impl FromIterator<Box<dyn HazardMonitor>> for MonitorBank {
    fn from_iter<I: IntoIterator<Item = Box<dyn HazardMonitor>>>(iter: I) -> MonitorBank {
        MonitorBank::from_monitors(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitors::{MonitorInput, NullMonitor};
    use aps_types::{Hazard, MgDl, Step, UnitsPerHour};

    /// Alerts on every check with a fixed hazard (test double).
    struct Always(Hazard);

    impl HazardMonitor for Always {
        fn name(&self) -> &str {
            "always"
        }
        fn check(&mut self, _input: &MonitorInput) -> Option<Hazard> {
            Some(self.0)
        }
        fn observe_delivery(&mut self, _delivered: UnitsPerHour) {}
        fn reset(&mut self) {}
    }

    #[test]
    fn bank_preserves_member_order() {
        let mut bank =
            MonitorBank::from_monitors(vec![Box::new(NullMonitor), Box::new(Always(Hazard::H1))]);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.names(), vec!["none", "always"]);
        bank.push(Box::new(NullMonitor));
        assert_eq!(bank.names(), vec!["none", "always", "none"]);
        // The engine-facing views keep the same order.
        let input = MonitorInput {
            step: Step(0),
            bg: MgDl(120.0),
            commanded: UnitsPerHour(1.0),
            previous_rate: UnitsPerHour(1.0),
        };
        let verdicts: Vec<_> = bank
            .as_dyn_mut()
            .iter_mut()
            .map(|m| m.check(&input))
            .collect();
        assert_eq!(verdicts, vec![None, Some(Hazard::H1), None]);
        let owned = bank.into_monitors();
        assert_eq!(owned.len(), 3);
    }

    #[test]
    fn collected_bank_round_trips() {
        let bank: MonitorBank = vec![
            Box::new(Always(Hazard::H2)) as Box<dyn HazardMonitor>,
            Box::new(NullMonitor),
        ]
        .into_iter()
        .collect();
        assert_eq!(bank.names(), vec!["always", "none"]);
        assert!(!bank.is_empty());
        assert!(format!("{bank:?}").contains("always"));
    }

    #[test]
    fn empty_bank_is_harmless() {
        let mut bank = MonitorBank::new();
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
        assert!(bank.as_dyn_mut().is_empty());
        assert!(bank.into_monitors().is_empty());
    }
}
