//! Run-time hazard-prediction monitors.
//!
//! All monitors — the proposed [`CawMonitor`] (CAWT/CAWOT), the
//! baselines ([`GuidelineMonitor`], [`MpcMonitor`], [`MlMonitor`],
//! [`LstmMonitor`]), the streaming ground-truth [`RiskIndexMonitor`],
//! and the learned predictive [`ForecastMonitor`] (an incremental
//! LSTM glucose forecaster) — implement [`HazardMonitor`]: one `check` per
//! control cycle over the controller's I/O interface, plus an
//! `observe_delivery` callback so the monitor's own context tracks what
//! actually reached the pump. A [`MonitorBank`] steps any number of
//! monitors against a single closed-loop pass, which is how campaign
//! tooling scores a whole zoo for the price of one simulation.

mod bank;
pub(crate) mod caw;
mod forecast;
mod guideline;
mod ml;
mod mpc;
mod risk;
mod stl_caw;

pub use bank::MonitorBank;
pub use caw::{CawMonitor, SafeRegion};
pub use forecast::{ForecastBand, ForecastMonitor};
pub use guideline::{GuidelineConfig, GuidelineMonitor};
pub use ml::{LstmMonitor, MlFeatures, MlMonitor};
pub use mpc::{MpcConfig, MpcMonitor};
pub use risk::RiskIndexMonitor;
pub use stl_caw::StlCawMonitor;

use aps_types::{Hazard, MgDl, Step, UnitsPerHour};

/// What the monitor observes each control cycle (the controller's
/// input/output interface only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorInput {
    /// Control-cycle index.
    pub step: Step,
    /// CGM reading (assumed fault-free per the paper's threat model).
    pub bg: MgDl,
    /// Rate the controller just commanded.
    pub commanded: UnitsPerHour,
    /// Rate commanded on the previous cycle (for action
    /// classification).
    pub previous_rate: UnitsPerHour,
}

/// A run-time hazard predictor wrapping an APS controller.
pub trait HazardMonitor: Send {
    /// Monitor identifier (e.g. `"cawt"`).
    fn name(&self) -> &str;

    /// Checks the current cycle; returns the predicted hazard if the
    /// commanded action is unsafe in the inferred context.
    fn check(&mut self, input: &MonitorInput) -> Option<Hazard>;

    /// Informs the monitor what was actually delivered this cycle
    /// (post-mitigation), so its internal context stays truthful.
    fn observe_delivery(&mut self, delivered: UnitsPerHour);

    /// Resets internal state for a fresh simulation.
    fn reset(&mut self);
}

/// A monitor that never alerts (the "no monitor" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl HazardMonitor for NullMonitor {
    fn name(&self) -> &str {
        "none"
    }

    fn check(&mut self, _input: &MonitorInput) -> Option<Hazard> {
        None
    }

    fn observe_delivery(&mut self, _delivered: UnitsPerHour) {}

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_monitor_never_alerts() {
        let mut m = NullMonitor;
        assert_eq!(m.name(), "none");
        for step in 0..10u32 {
            let verdict = m.check(&MonitorInput {
                step: Step(step),
                bg: MgDl(40.0),
                commanded: UnitsPerHour(10.0),
                previous_rate: UnitsPerHour(0.0),
            });
            assert_eq!(verdict, None);
        }
    }
}
