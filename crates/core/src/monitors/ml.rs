//! ML-based baseline monitors (DT / MLP / LSTM adapters).
//!
//! The ML monitors model UCA detection as a conditional classification
//! (Eq. 7/8): input = current state and issued action, output = safe /
//! unsafe (binary) or safe / H1 / H2 (multi-class). The feature vector
//! is shared with the dataset builder through [`MlFeatures`] so train
//! and inference views cannot drift apart.

use crate::context::{ContextBuilder, ContextVector};
use crate::monitors::{HazardMonitor, MonitorInput};
use aps_ml::data::StandardScaler;
use aps_ml::{Classifier, SequenceClassifier};
use aps_types::{ControlAction, Hazard, MgDl, UnitsPerHour};
use std::collections::VecDeque;

/// The shared feature encoding: `[bg, bg', iob, iob', rate, action]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlFeatures;

impl MlFeatures {
    /// Feature dimension.
    pub const DIM: usize = 6;

    /// Encodes one cycle's observation.
    pub fn vector(ctx: &ContextVector, commanded: UnitsPerHour, action: ControlAction) -> Vec<f64> {
        vec![
            ctx.bg,
            ctx.dbg,
            ctx.iob,
            ctx.diob,
            commanded.value(),
            action.paper_index() as f64,
        ]
    }
}

/// How an ML classifier's classes map to hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClassMap {
    /// Class 1 = unsafe; hazard type inferred from context.
    Binary,
    /// Class 1 = H1, class 2 = H2.
    MultiClass,
}

fn hazard_from_context(ctx: &ContextVector, target: MgDl) -> Hazard {
    if ctx.bg < target.value() || ctx.dbg < 0.0 {
        Hazard::H1
    } else {
        Hazard::H2
    }
}

/// Feature-vector ML monitor (Decision Tree or MLP).
pub struct MlMonitor {
    name: String,
    model: Box<dyn Classifier>,
    scaler: StandardScaler,
    context: ContextBuilder,
    target: MgDl,
    map: ClassMap,
}

impl MlMonitor {
    /// Wraps a trained binary classifier (class 1 = unsafe).
    pub fn binary(
        name: &str,
        model: Box<dyn Classifier>,
        scaler: StandardScaler,
        basal: UnitsPerHour,
        target: MgDl,
    ) -> MlMonitor {
        MlMonitor {
            name: name.to_owned(),
            model,
            scaler,
            context: ContextBuilder::new(basal),
            target,
            map: ClassMap::Binary,
        }
    }

    /// Wraps a trained 3-class classifier (0 = safe, 1 = H1, 2 = H2).
    pub fn multiclass(
        name: &str,
        model: Box<dyn Classifier>,
        scaler: StandardScaler,
        basal: UnitsPerHour,
        target: MgDl,
    ) -> MlMonitor {
        MlMonitor {
            name: name.to_owned(),
            model,
            scaler,
            context: ContextBuilder::new(basal),
            target,
            map: ClassMap::MultiClass,
        }
    }

    fn verdict(&self, class: usize, ctx: &ContextVector) -> Option<Hazard> {
        match (self.map, class) {
            (_, 0) => None,
            (ClassMap::Binary, _) => Some(hazard_from_context(ctx, self.target)),
            (ClassMap::MultiClass, 1) => Some(Hazard::H1),
            (ClassMap::MultiClass, _) => Some(Hazard::H2),
        }
    }
}

impl HazardMonitor for MlMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        let ctx = self.context.observe_bg(input.bg);
        let action = ControlAction::classify(input.commanded, input.previous_rate);
        let features = self
            .scaler
            .transform(&MlFeatures::vector(&ctx, input.commanded, action));
        let class = self.model.predict(&features);
        self.verdict(class, &ctx)
    }

    fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.context.observe_delivery(delivered);
    }

    fn reset(&mut self) {
        self.context.reset();
    }
}

/// Sliding-window sequence monitor (the LSTM baseline, k = 6 cycles).
pub struct LstmMonitor {
    name: String,
    model: Box<dyn SequenceClassifier>,
    scaler: StandardScaler,
    context: ContextBuilder,
    target: MgDl,
    window: usize,
    buffer: VecDeque<Vec<f64>>,
    map: ClassMap,
}

impl LstmMonitor {
    /// Wraps a trained binary sequence classifier with window length
    /// `window` (paper: 6 cycles = 30 minutes).
    pub fn binary(
        name: &str,
        model: Box<dyn SequenceClassifier>,
        scaler: StandardScaler,
        basal: UnitsPerHour,
        target: MgDl,
        window: usize,
    ) -> LstmMonitor {
        LstmMonitor {
            name: name.to_owned(),
            model,
            scaler,
            context: ContextBuilder::new(basal),
            target,
            window,
            buffer: VecDeque::new(),
            map: ClassMap::Binary,
        }
    }

    /// Multi-class variant (0 = safe, 1 = H1, 2 = H2).
    pub fn multiclass(
        name: &str,
        model: Box<dyn SequenceClassifier>,
        scaler: StandardScaler,
        basal: UnitsPerHour,
        target: MgDl,
        window: usize,
    ) -> LstmMonitor {
        let mut m = LstmMonitor::binary(name, model, scaler, basal, target, window);
        m.map = ClassMap::MultiClass;
        m
    }
}

impl HazardMonitor for LstmMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        let ctx = self.context.observe_bg(input.bg);
        let action = ControlAction::classify(input.commanded, input.previous_rate);
        let features = self
            .scaler
            .transform(&MlFeatures::vector(&ctx, input.commanded, action));
        self.buffer.push_back(features);
        if self.buffer.len() > self.window {
            self.buffer.pop_front();
        }
        if self.buffer.len() < self.window {
            return None; // warm-up
        }
        let seq: Vec<Vec<f64>> = self.buffer.iter().cloned().collect();
        let class = self.model.predict_seq(&seq);
        match (self.map, class) {
            (_, 0) => None,
            (ClassMap::Binary, _) => Some(hazard_from_context(&ctx, self.target)),
            (ClassMap::MultiClass, 1) => Some(Hazard::H1),
            (ClassMap::MultiClass, _) => Some(Hazard::H2),
        }
    }

    fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.context.observe_delivery(delivered);
    }

    fn reset(&mut self) {
        self.context.reset();
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_ml::data::Dataset;
    use aps_types::Step;

    /// A stub classifier flagging "unsafe" when the (standardized)
    /// commanded-rate feature is extreme.
    struct StubClassifier;
    impl Classifier for StubClassifier {
        fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
            if x[4].abs() > 1.0 {
                vec![0.0, 1.0]
            } else {
                vec![1.0, 0.0]
            }
        }
        fn n_classes(&self) -> usize {
            2
        }
    }

    struct StubSeq;
    impl SequenceClassifier for StubSeq {
        fn predict_proba_seq(&self, xs: &[Vec<f64>]) -> Vec<f64> {
            if xs.iter().any(|x| x[4].abs() > 1.0) {
                vec![0.0, 1.0]
            } else {
                vec![1.0, 0.0]
            }
        }
        fn n_classes(&self) -> usize {
            2
        }
    }

    fn scaler() -> StandardScaler {
        // Fit on a spread of feature vectors so rate=10 standardizes to
        // an extreme value.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                vec![
                    100.0 + i as f64,
                    0.0,
                    0.5,
                    0.0,
                    0.8 + (i % 5) as f64 * 0.1,
                    4.0,
                ]
            })
            .collect();
        let n = rows.len();
        StandardScaler::fit(&Dataset::new(rows, vec![0; n]))
    }

    fn input(step: u32, bg: f64, commanded: f64) -> MonitorInput {
        MonitorInput {
            step: Step(step),
            bg: MgDl(bg),
            commanded: UnitsPerHour(commanded),
            previous_rate: UnitsPerHour(1.0),
        }
    }

    #[test]
    fn binary_monitor_maps_hazard_from_context() {
        let mut m = MlMonitor::binary(
            "dt",
            Box::new(StubClassifier),
            scaler(),
            UnitsPerHour(1.0),
            MgDl(110.0),
        );
        // Extreme rate + hyperglycemic rising context -> H2.
        m.check(&input(0, 200.0, 1.0));
        m.observe_delivery(UnitsPerHour(1.0));
        let v = m.check(&input(1, 220.0, 10.0));
        assert_eq!(v, Some(Hazard::H2));
        // Extreme rate + low BG -> H1.
        m.reset();
        m.check(&input(0, 100.0, 1.0));
        m.observe_delivery(UnitsPerHour(1.0));
        let v = m.check(&input(1, 90.0, 10.0));
        assert_eq!(v, Some(Hazard::H1));
        // Normal rate -> quiet.
        let v = m.check(&input(2, 90.0, 1.0));
        assert_eq!(v, None);
    }

    #[test]
    fn multiclass_monitor_uses_class_directly() {
        struct AlwaysH2;
        impl Classifier for AlwaysH2 {
            fn predict_proba(&self, _x: &[f64]) -> Vec<f64> {
                vec![0.0, 0.0, 1.0]
            }
            fn n_classes(&self) -> usize {
                3
            }
        }
        let mut m = MlMonitor::multiclass(
            "mlp3",
            Box::new(AlwaysH2),
            scaler(),
            UnitsPerHour(1.0),
            MgDl(110.0),
        );
        assert_eq!(m.check(&input(0, 80.0, 1.0)), Some(Hazard::H2));
    }

    #[test]
    fn lstm_monitor_warms_up_before_predicting() {
        let mut m = LstmMonitor::binary(
            "lstm",
            Box::new(StubSeq),
            scaler(),
            UnitsPerHour(1.0),
            MgDl(110.0),
            3,
        );
        assert_eq!(m.check(&input(0, 200.0, 10.0)), None, "warm-up cycle 1");
        assert_eq!(m.check(&input(1, 205.0, 10.0)), None, "warm-up cycle 2");
        let v = m.check(&input(2, 210.0, 10.0));
        assert_eq!(v, Some(Hazard::H2), "window full: prediction starts");
    }

    #[test]
    fn lstm_reset_clears_window() {
        let mut m = LstmMonitor::binary(
            "lstm",
            Box::new(StubSeq),
            scaler(),
            UnitsPerHour(1.0),
            MgDl(110.0),
            2,
        );
        m.check(&input(0, 200.0, 10.0));
        m.check(&input(1, 200.0, 10.0));
        m.reset();
        assert_eq!(m.check(&input(2, 200.0, 10.0)), None);
    }
}
