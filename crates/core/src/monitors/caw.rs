//! The context-aware monitor (CAWT when thresholds are learned, CAWOT
//! with guideline defaults).

use crate::context::{ContextBuilder, ContextVector, Trend};
use crate::monitors::{HazardMonitor, MonitorInput};
use crate::scs::Scs;
use aps_types::{ControlAction, Hazard, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// The safe-region `X*` used by the alert latch: once a UCA fires, the
/// alert persists until the context returns here (Algorithm 1 clears
/// its `Mitigate` flag only when `ρ(µ(x)) ∈ X*`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafeRegion {
    /// Lower glucose bound of the safe region (mg/dL).
    pub bg_low: f64,
    /// Upper glucose bound of the safe region (mg/dL).
    pub bg_high: f64,
}

impl Default for SafeRegion {
    fn default() -> SafeRegion {
        SafeRegion {
            bg_low: 100.0,
            bg_high: 160.0,
        }
    }
}

impl SafeRegion {
    /// `true` when a latched alert for `hazard` may clear: the glucose
    /// has stopped moving toward the hazard (mirroring the labeler's
    /// "risk index kept increasing" condition), with an extra hold
    /// below `bg_low` where a recovering hypoglycemia is still acute.
    pub fn clears(&self, ctx: &ContextVector, hazard: Hazard) -> bool {
        match hazard {
            Hazard::H1 => ctx.bg_trend() != Trend::Falling && ctx.bg >= self.bg_low.min(80.0),
            Hazard::H2 => ctx.bg_trend() != Trend::Rising,
        }
    }
}

/// The paper's context-aware monitor: per cycle, infer the context
/// `µ(x)`, classify the commanded action, and flag the first violated
/// SCS rule. A fired alert latches until the context returns to the
/// safe region (Algorithm 1 semantics).
#[derive(Debug, Clone)]
pub struct CawMonitor {
    name: String,
    scs: Scs,
    context: ContextBuilder,
    safe: SafeRegion,
    latched: Option<Hazard>,
    /// Id of the rule that fired on the last alert (for transparency /
    /// explainability reports).
    last_rule: Option<u8>,
}

impl CawMonitor {
    /// Creates a monitor from an SCS; `basal` is the wrapped
    /// controller's basal rate (reference point of the net-IOB
    /// estimate).
    pub fn new(name: &str, scs: Scs, basal: UnitsPerHour) -> CawMonitor {
        CawMonitor {
            name: name.to_owned(),
            scs,
            context: ContextBuilder::new(basal),
            safe: SafeRegion::default(),
            latched: None,
            last_rule: None,
        }
    }

    /// Overrides the safe region used by the alert latch.
    pub fn with_safe_region(mut self, safe: SafeRegion) -> CawMonitor {
        self.safe = safe;
        self
    }

    /// The SCS the monitor enforces.
    pub fn scs(&self) -> &Scs {
        &self.scs
    }

    /// The Table I rule id behind the most recent alert.
    pub fn last_rule(&self) -> Option<u8> {
        self.last_rule
    }
}

impl HazardMonitor for CawMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        let ctx = self.context.observe_bg(input.bg);
        let action = ControlAction::classify(input.commanded, input.previous_rate);
        if let Some(rule) = self.scs.first_violation(&ctx, action) {
            self.last_rule = Some(rule.id);
            self.latched = Some(rule.hazard);
            return Some(rule.hazard);
        }
        // No fresh violation: a latched alert persists until the
        // context returns to the safe region.
        if let Some(h) = self.latched {
            if self.safe.clears(&ctx, h) {
                self.latched = None;
            } else {
                return Some(h);
            }
        }
        None
    }

    fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.context.observe_delivery(delivered);
    }

    fn reset(&mut self) {
        self.context.reset();
        self.latched = None;
        self.last_rule = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{MgDl, Step};

    fn monitor() -> CawMonitor {
        CawMonitor::new(
            "cawot",
            Scs::with_default_thresholds(MgDl(110.0)),
            UnitsPerHour(1.0),
        )
    }

    fn input(step: u32, bg: f64, commanded: f64, prev: f64) -> MonitorInput {
        MonitorInput {
            step: Step(step),
            bg: MgDl(bg),
            commanded: UnitsPerHour(commanded),
            previous_rate: UnitsPerHour(prev),
        }
    }

    #[test]
    fn flags_stop_during_hyperglycemia() {
        let mut m = monitor();
        // A stuck-at-zero rate fault: the stop executes for ~an hour,
        // so the monitor's net IOB falls clearly below basal while BG
        // climbs. Rule 9's default -0.5 U ceiling then flags the stop.
        let mut verdict = None;
        for i in 0..12u32 {
            verdict = m.check(&input(i, 180.0 + 5.0 * i as f64, 0.0, 1.0));
            m.observe_delivery(UnitsPerHour(0.0));
            if verdict.is_some() {
                break;
            }
        }
        assert_eq!(verdict, Some(Hazard::H2));
        assert_eq!(m.last_rule(), Some(9));
    }

    #[test]
    fn flags_missing_suspend_below_floor() {
        let mut m = monitor();
        m.check(&input(0, 75.0, 1.0, 1.0));
        m.observe_delivery(UnitsPerHour(1.0));
        let verdict = m.check(&input(1, 60.0, 1.0, 1.0));
        assert_eq!(verdict, Some(Hazard::H1));
        assert_eq!(m.last_rule(), Some(10));
    }

    #[test]
    fn quiet_in_normal_operation() {
        let mut m = monitor();
        for (i, bg) in [112.0, 114.0, 111.0, 113.0, 112.0].iter().enumerate() {
            let verdict = m.check(&input(i as u32, *bg, 1.0, 1.0));
            assert_eq!(verdict, None, "false alarm at cycle {i}");
            m.observe_delivery(UnitsPerHour(1.0));
        }
    }

    #[test]
    fn alert_latches_until_safe_region() {
        let mut m = monitor();
        // Rule 10 fires: BG 60, insulin kept running.
        m.check(&input(0, 75.0, 1.0, 1.0));
        m.observe_delivery(UnitsPerHour(1.0));
        assert_eq!(m.check(&input(1, 60.0, 1.0, 1.0)), Some(Hazard::H1));
        m.observe_delivery(UnitsPerHour(0.0));
        // Controller now suspends (the *safe* action) but BG is still
        // low and falling: the latch keeps the alert raised.
        assert_eq!(m.check(&input(2, 55.0, 0.0, 0.0)), Some(Hazard::H1));
        m.observe_delivery(UnitsPerHour(0.0));
        // Recovery begins but BG is still acutely low: latch holds.
        assert_eq!(m.check(&input(3, 72.0, 0.0, 0.0)), Some(Hazard::H1));
        m.observe_delivery(UnitsPerHour(0.0));
        // Rising and back above the acute floor: latch clears.
        assert_eq!(m.check(&input(4, 88.0, 0.0, 0.0)), None);
    }

    #[test]
    fn safe_region_clearing_logic() {
        let safe = SafeRegion::default();
        let falling = ContextVector {
            bg: 110.0,
            dbg: -3.0,
            iob: 0.0,
            diob: 0.0,
        };
        assert!(!safe.clears(&falling, Hazard::H1), "still falling in band");
        let recovered = ContextVector {
            bg: 110.0,
            dbg: 1.0,
            iob: 0.0,
            diob: 0.0,
        };
        assert!(safe.clears(&recovered, Hazard::H1));
        let high_rising = ContextVector {
            bg: 200.0,
            dbg: 4.0,
            iob: 0.0,
            diob: 0.0,
        };
        assert!(!safe.clears(&high_rising, Hazard::H2));
        let high_falling = ContextVector {
            bg: 150.0,
            dbg: -4.0,
            iob: 0.0,
            diob: 0.0,
        };
        assert!(safe.clears(&high_falling, Hazard::H2));
    }

    #[test]
    fn reset_clears_rule_memory() {
        let mut m = monitor();
        m.check(&input(0, 60.0, 1.0, 1.0));
        assert!(m.last_rule().is_some());
        m.reset();
        assert_eq!(m.last_rule(), None);
    }

    #[test]
    fn learned_scs_changes_behavior() {
        // A CAWT monitor whose rule-9 ceiling was *loosened* to +0.5 U
        // flags a stop command immediately (IOB ~0 < 0.5), while the
        // default (-0.5) monitor stays quiet at basal equilibrium.
        let mut learned = Scs::with_default_thresholds(MgDl(110.0));
        learned.rule_mut(9).unwrap().beta = 0.5;
        let mut cawt = CawMonitor::new("cawt", learned, UnitsPerHour(1.0));
        let mut cawot = monitor();
        for m in [&mut cawt, &mut cawot] {
            m.check(&input(0, 200.0, 1.0, 1.0));
            m.observe_delivery(UnitsPerHour(1.0));
        }
        let v_learned = cawt.check(&input(1, 210.0, 0.0, 1.0));
        let v_default = cawot.check(&input(1, 210.0, 0.0, 1.0));
        assert_eq!(v_learned, Some(Hazard::H2));
        assert_eq!(cawt.last_rule(), Some(9));
        assert_eq!(
            v_default, None,
            "default ceiling should not fire at basal IOB"
        );
    }
}
