//! The model-predictive-control baseline monitor.
//!
//! Uses the Bergman/Sherwin model of Eq. 6,
//! `dBG/dt = −(GEZI + IEFF)·BG + EGP + RA(t)`, to predict where the
//! commanded insulin rate will take the patient's glucose over a short
//! horizon; alarms when the prediction leaves the normal range.
//! Configured with the population-average model (patient-specific
//! parameters can be supplied for a stronger variant).

use crate::monitors::{HazardMonitor, MonitorInput};
use aps_glucose::bergman::BergmanParams;
use aps_types::{Hazard, UnitsPerHour, CONTROL_CYCLE_MINUTES};
use serde::{Deserialize, Serialize};

/// MPC-monitor parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Prediction horizon (minutes).
    pub horizon_minutes: f64,
    /// Alarm floor (mg/dL).
    pub bg_low: f64,
    /// Alarm ceiling (mg/dL).
    pub bg_high: f64,
}

impl Default for MpcConfig {
    fn default() -> MpcConfig {
        MpcConfig {
            horizon_minutes: 30.0,
            bg_low: 70.0,
            bg_high: 180.0,
        }
    }
}

/// The MPC baseline monitor.
#[derive(Debug, Clone)]
pub struct MpcMonitor {
    config: MpcConfig,
    model: BergmanParams,
    /// Internal insulin states (Isc, Ip, Ieff), driven by deliveries.
    isc: f64,
    ip: f64,
    ieff: f64,
}

impl MpcMonitor {
    /// Creates the monitor with the given model parameters.
    pub fn new(config: MpcConfig, model: BergmanParams) -> MpcMonitor {
        let mut m = MpcMonitor {
            config,
            model,
            isc: 0.0,
            ip: 0.0,
            ieff: 0.0,
        };
        m.reset();
        m
    }

    /// Population-average configuration (the paper's default).
    pub fn population() -> MpcMonitor {
        MpcMonitor::new(MpcConfig::default(), BergmanParams::population_average())
    }

    /// One Euler step of the insulin subsystem at rate `uu_per_min`.
    fn advance_insulin(&mut self, uu_per_min: f64, dt: f64) {
        let p = &self.model;
        let d_isc = uu_per_min / (p.tau1 * p.ci) - self.isc / p.tau1;
        let d_ip = (self.isc - self.ip) / p.tau2;
        let d_ieff = -p.p2 * self.ieff + p.p2 * p.si * self.ip;
        self.isc += dt * d_isc;
        self.ip += dt * d_ip;
        self.ieff += dt * d_ieff;
    }

    /// Predicted BG after the horizon if `rate` is held, starting from
    /// the current reading and internal insulin state.
    pub fn predict(&self, bg0: f64, rate: UnitsPerHour) -> f64 {
        let p = self.model.clone();
        let uu_per_min = rate.max_zero().value() * 1e6 / 60.0;
        let mut sim = self.clone();
        let mut bg = bg0;
        let dt = 1.0;
        let steps = (self.config.horizon_minutes / dt) as usize;
        for _ in 0..steps {
            sim.advance_insulin(uu_per_min, dt);
            bg += dt * (-(p.gezi + sim.ieff) * bg + p.egp);
        }
        bg
    }
}

impl HazardMonitor for MpcMonitor {
    fn name(&self) -> &str {
        "mpc"
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        let predicted = self.predict(input.bg.value(), input.commanded);
        if predicted < self.config.bg_low {
            Some(Hazard::H1)
        } else if predicted > self.config.bg_high {
            Some(Hazard::H2)
        } else {
            None
        }
    }

    fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        // Track the true delivery so the internal insulin state stays
        // aligned with reality between predictions.
        let uu_per_min = delivered.max_zero().value() * 1e6 / 60.0;
        let mut remaining = CONTROL_CYCLE_MINUTES;
        while remaining > 0.0 {
            let dt = remaining.min(1.0);
            self.advance_insulin(uu_per_min, dt);
            remaining -= dt;
        }
    }

    fn reset(&mut self) {
        // Start at the steady state of the 120 mg/dL equilibrium basal.
        let basal = self.model.equilibrium_basal(aps_types::MgDl(120.0));
        let uu_per_min = basal.value() * 1e6 / 60.0;
        let ip = uu_per_min / self.model.ci;
        self.isc = ip;
        self.ip = ip;
        self.ieff = self.model.si * ip;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{MgDl, Step};

    fn input(bg: f64, commanded: f64) -> MonitorInput {
        MonitorInput {
            step: Step(0),
            bg: MgDl(bg),
            commanded: UnitsPerHour(commanded),
            previous_rate: UnitsPerHour(1.0),
        }
    }

    #[test]
    fn quiet_at_equilibrium() {
        let mut m = MpcMonitor::population();
        let basal = m.model.equilibrium_basal(MgDl(120.0)).value();
        assert_eq!(m.check(&input(120.0, basal)), None);
    }

    #[test]
    fn predicts_hypoglycemia_from_overdose_near_range_edge() {
        let mut m = MpcMonitor::population();
        // Pile on insulin state as if a max-rate fault ran 90 minutes.
        for _ in 0..18 {
            m.observe_delivery(UnitsPerHour(10.0));
        }
        let verdict = m.check(&input(85.0, 10.0));
        assert_eq!(verdict, Some(Hazard::H1));
    }

    #[test]
    fn predicts_hyperglycemia_when_rising_unchecked() {
        let mut m = MpcMonitor::population();
        // Zero insulin for hours: internal insulin state decays.
        for _ in 0..36 {
            m.observe_delivery(UnitsPerHour(0.0));
        }
        let verdict = m.check(&input(175.0, 0.0));
        assert_eq!(verdict, Some(Hazard::H2));
    }

    #[test]
    fn prediction_monotone_in_insulin() {
        let m = MpcMonitor::population();
        let low = m.predict(150.0, UnitsPerHour(0.0));
        let high = m.predict(150.0, UnitsPerHour(8.0));
        assert!(
            high < low,
            "more insulin must predict lower BG: {high} vs {low}"
        );
    }

    #[test]
    fn reset_restores_equilibrium_state() {
        let mut m = MpcMonitor::population();
        for _ in 0..24 {
            m.observe_delivery(UnitsPerHour(10.0));
        }
        let drifted = m.ieff;
        m.reset();
        assert!(m.ieff < drifted);
    }
}
