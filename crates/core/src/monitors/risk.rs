//! Streaming BG-risk-index monitor.
//!
//! The paper computes the Kovatchev risk indices only *post hoc*, to
//! label recorded traces. [`RiskIndexMonitor`] runs the same
//! trailing-window LBGI/HBGI computation **online**, via the O(1)
//! [`RiskTracker`]: each control cycle it folds the CGM reading into
//! the rolling indices and alerts the moment the current window
//! satisfies the hazard condition (index above threshold and still
//! rising) — the exact condition the offline labeler uses, so an alert
//! at cycle `t` means "the labeler will mark this window hazardous".
//!
//! This is not a *predictive* monitor like CAWT (it fires at hazard
//! onset, not ahead of it); its role is ground-truth hazard awareness
//! inside the loop — a floor every predictive monitor should beat on
//! reaction time, and a trigger of last resort for the mitigation /
//! HMS layer when the predictive monitors stay silent.

use crate::monitors::{HazardMonitor, MonitorInput};
use aps_risk::{LabelConfig, RiskSample, RiskTracker};
use aps_types::{Hazard, UnitsPerHour};

/// Online hazard detector over the streaming BG risk indices.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskIndexMonitor {
    tracker: RiskTracker,
    last: Option<RiskSample>,
}

impl RiskIndexMonitor {
    /// Creates the monitor with the given labeling configuration
    /// (window length and LBGI/HBGI thresholds).
    pub fn new(config: LabelConfig) -> RiskIndexMonitor {
        RiskIndexMonitor {
            tracker: RiskTracker::new(config),
            last: None,
        }
    }

    /// The most recent window state, if a cycle has been checked.
    pub fn last_sample(&self) -> Option<&RiskSample> {
        self.last.as_ref()
    }
}

impl Default for RiskIndexMonitor {
    fn default() -> RiskIndexMonitor {
        RiskIndexMonitor::new(LabelConfig::default())
    }
}

impl HazardMonitor for RiskIndexMonitor {
    fn name(&self) -> &str {
        "risk-index"
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        let sample = self.tracker.push(input.bg.value());
        let hazard = sample.hazard;
        self.last = Some(sample);
        hazard
    }

    fn observe_delivery(&mut self, _delivered: UnitsPerHour) {}

    fn reset(&mut self) {
        self.tracker.reset();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{MgDl, Step};

    fn input(step: u32, bg: f64) -> MonitorInput {
        MonitorInput {
            step: Step(step),
            bg: MgDl(bg),
            commanded: UnitsPerHour(1.0),
            previous_rate: UnitsPerHour(1.0),
        }
    }

    #[test]
    fn alerts_during_hypoglycemic_descent() {
        let mut m = RiskIndexMonitor::default();
        let mut first = None;
        for s in 0..60u32 {
            let bg = (120.0 - 2.0 * f64::from(s)).max(40.0);
            if m.check(&input(s, bg)).is_some() && first.is_none() {
                first = Some(s);
            }
        }
        let onset = first.expect("descent to 40 never alerted");
        assert_eq!(
            m.last_sample().map(|s| s.index),
            Some(59),
            "tracker out of sync with checks"
        );
        assert!(onset < 40, "alert after the floor was reached: {onset}");
    }

    #[test]
    fn silent_on_normal_glycemia() {
        let mut m = RiskIndexMonitor::default();
        for s in 0..150u32 {
            let bg = 110.0 + 15.0 * (f64::from(s) * 0.1).sin();
            assert_eq!(m.check(&input(s, bg)), None, "false alarm at {s}");
        }
    }

    #[test]
    fn alert_agrees_with_offline_labeler() {
        // The monitor's alert at cycle t must equal the hazard the
        // batch labeler assigns to the window ending at t.
        let series: Vec<f64> = (0..80)
            .map(|i| 120.0 + 5.0 * i as f64 * if i < 40 { 1.0 } else { 0.0 })
            .collect();
        let config = LabelConfig::default();
        let mut m = RiskIndexMonitor::new(config.clone());
        let mut tracker = RiskTracker::new(config);
        for (s, &bg) in series.iter().enumerate() {
            let alert = m.check(&input(s as u32, bg));
            assert_eq!(alert, tracker.push(bg).hazard, "cycle {s}");
        }
    }

    #[test]
    fn reset_forgets_history() {
        let mut m = RiskIndexMonitor::default();
        for s in 0..30u32 {
            m.check(&input(s, 40.0 + f64::from(s)));
        }
        m.reset();
        assert!(m.last_sample().is_none());
        // After reset the first cycle can never alert (it seeds the
        // rising comparison).
        assert_eq!(m.check(&input(0, 40.0)), None);
    }
}
