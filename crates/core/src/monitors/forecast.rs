//! Predictive glucose-forecast monitor.
//!
//! The paper's context-aware monitors (CAWT/CAWOT) alert when the
//! *current* action is unsafe in the inferred context; the streaming
//! [`RiskIndexMonitor`](crate::monitors::RiskIndexMonitor) confirms a
//! hazard once the rolling risk window crosses its threshold. The
//! [`ForecastMonitor`] closes the remaining gap with a *learned
//! predictive* arm: a trained [`LstmForecaster`] runs **incrementally**
//! inside the loop — hidden state carried across cycles, one O(1)
//! [`LstmForecaster::step`] per sample, zero per-step heap allocation —
//! and raises as soon as the predicted BG at the forecast horizon
//! crosses the hazard band.
//!
//! The band itself is not an ad-hoc constant: it is the labeler's own
//! LBGI/HBGI thresholds inverted through the Kovatchev risk transform
//! ([`ForecastBand::from_label_config`]), i.e. "the predicted BG
//! would, if sustained, satisfy the offline hazard condition".
//!
//! Feeding samples one-by-one with carried state is bit-identical to a
//! batch forward pass over the same prefix (pinned in
//! `tests/forecast_pipeline.rs`), so the online monitor scores exactly
//! the function `repro train` validated offline.

use crate::monitors::{HazardMonitor, MonitorInput};
use aps_ml::data::{StandardScaler, TraceDataset};
use aps_ml::forecast::{ForecastModel, LstmForecaster, LstmState};
use aps_risk::{risk_high, risk_low, LabelConfig};
use aps_types::{Hazard, UnitsPerHour};

/// Predicted-BG alert band: alert H1 below `low`, H2 above `high`
/// (mg/dL).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastBand {
    /// Hypoglycemia bound (mg/dL).
    pub low: f64,
    /// Hyperglycemia bound (mg/dL).
    pub high: f64,
}

impl ForecastBand {
    /// Inverts the labeler's risk thresholds through the Kovatchev
    /// transform: `low` is the BG whose low-side risk equals the LBGI
    /// threshold, `high` the BG whose high-side risk equals the HBGI
    /// threshold. A constant BG at either bound makes the rolling
    /// window exactly threshold-critical.
    pub fn from_label_config(config: &LabelConfig) -> ForecastBand {
        // risk_low is monotone decreasing in BG below the zero point
        // (≈112.5 mg/dL); risk_high monotone increasing above it.
        let mut lo = 1.0;
        let mut hi = 112.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if risk_low(mid) > config.lbgi_threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let low = 0.5 * (lo + hi);
        let mut lo = 113.0;
        let mut hi = 1000.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if risk_high(mid) < config.hbgi_threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let high = 0.5 * (lo + hi);
        ForecastBand { low, high }
    }
}

impl Default for ForecastBand {
    fn default() -> ForecastBand {
        ForecastBand::from_label_config(&LabelConfig::default())
    }
}

/// Online learned glucose forecaster: a trained [`LstmForecaster`]
/// streamed incrementally, alerting when the horizon-BG prediction
/// crosses the risk-derived [`ForecastBand`].
pub struct ForecastMonitor {
    name: String,
    model: LstmForecaster,
    scaler: StandardScaler,
    state: LstmState,
    features: [f64; TraceDataset::DIM],
    scaled: [f64; TraceDataset::DIM],
    band: ForecastBand,
    /// Cycles before predictions are trusted. Cold-start predictions
    /// are *supervised* (the trainer targets every timestep of every
    /// subsequence), so only the first cycles — where no trend exists
    /// yet — are muted.
    warmup: usize,
    seen: usize,
    last: Option<f64>,
}

/// Cycles muted after reset: one sample carries no trend information.
const WARMUP_CYCLES: usize = 2;

impl ForecastMonitor {
    /// Builds the monitor from a trained model bundle, alerting on the
    /// given predicted-BG band.
    ///
    /// # Panics
    ///
    /// Panics when the model's input dimension is not the
    /// [`TraceDataset`] feature encoding the monitor feeds it.
    pub fn from_model(model: &ForecastModel, band: ForecastBand) -> ForecastMonitor {
        assert_eq!(
            model.lstm.input_dim(),
            TraceDataset::DIM,
            "forecaster was not trained on the [bg, commanded] encoding"
        );
        ForecastMonitor {
            name: "forecast".to_owned(),
            state: model.lstm.state(),
            model: model.lstm.clone(),
            scaler: model.scaler.clone(),
            features: [0.0; TraceDataset::DIM],
            scaled: [0.0; TraceDataset::DIM],
            band,
            warmup: WARMUP_CYCLES,
            seen: 0,
            last: None,
        }
    }

    /// The monitor's alert band (mg/dL).
    pub fn band(&self) -> ForecastBand {
        self.band
    }

    /// The latest horizon-BG prediction (mg/dL), if a cycle has been
    /// checked.
    pub fn last_prediction(&self) -> Option<f64> {
        self.last
    }
}

impl HazardMonitor for ForecastMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        self.features = [input.bg.value(), input.commanded.value()];
        self.scaler.transform_into(&self.features, &mut self.scaled);
        let yhat = self.model.step(&mut self.state, &self.scaled);
        self.seen += 1;
        self.last = Some(yhat);
        // `seen` counts this cycle already, so cycles 0..warmup are
        // muted (matching the offline evaluation's warm-up skip).
        if self.seen <= self.warmup {
            return None;
        }
        if yhat <= self.band.low {
            Some(Hazard::H1)
        } else if yhat >= self.band.high {
            Some(Hazard::H2)
        } else {
            None
        }
    }

    fn observe_delivery(&mut self, _delivered: UnitsPerHour) {}

    fn reset(&mut self) {
        self.state.reset();
        self.seen = 0;
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_ml::data::ForecastSet;
    use aps_ml::forecast::{ForecastConfig, MlpForecaster};
    use aps_types::{MgDl, Step};

    fn input(step: u32, bg: f64, commanded: f64) -> MonitorInput {
        MonitorInput {
            step: Step(step),
            bg: MgDl(bg),
            commanded: UnitsPerHour(commanded),
            previous_rate: UnitsPerHour(1.0),
        }
    }

    /// A tiny trained bundle over a linear-trend task (constant slope
    /// per sequence, so the horizon target is BG + 5 × slope). The
    /// training windows are *long* (24 steps) on purpose: streaming
    /// inference carries its hidden state far past any short window,
    /// and only long supervised sequences pin the state's steady
    /// behavior (a short-window forecaster's carried state drifts).
    /// Trained once and shared across tests.
    fn tiny_model() -> &'static ForecastModel {
        use std::sync::OnceLock;
        static MODEL: OnceLock<ForecastModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            const W: usize = 24;
            const H: usize = 5;
            let mut x: Vec<Vec<Vec<f64>>> = Vec::new();
            let mut y: Vec<Vec<f64>> = Vec::new();
            for i in 0..80 {
                let start = 50.0 + 3.1 * i as f64;
                let slope = ((i % 5) as f64 - 2.0) * 2.0; // -4, -2, 0, 2, 4
                let series: Vec<f64> = (0..W + H)
                    .map(|t| (start + slope * t as f64).clamp(35.0, 380.0))
                    .collect();
                x.push(series[..W].iter().map(|&bg| vec![bg, 1.0]).collect());
                y.push((0..W).map(|t| series[t + H]).collect());
            }
            let mut set = ForecastSet::new(x, y);
            let scaler = StandardScaler::fit_sequences(&set.x);
            set.standardize(&scaler);
            let config = ForecastConfig {
                hidden: vec![16],
                mlp_hidden: vec![8],
                learning_rate: 3e-3,
                max_epochs: 90,
                patience: 15,
                seed: 5,
                ..ForecastConfig::default()
            };
            ForecastModel {
                window: W,
                horizon: H,
                lstm: LstmForecaster::fit(&set, &config),
                mlp: MlpForecaster::fit(&set, &config),
                scaler,
                config,
                lstm_val_rmse: 0.0,
                mlp_val_rmse: 0.0,
                persistence_val_rmse: 0.0,
                trained_pairs: set.len(),
            }
        })
    }

    #[test]
    fn band_inverts_the_risk_thresholds() {
        let band = ForecastBand::default();
        // Kovatchev: LBGI 5 ≈ 77 mg/dL, HBGI 9 ≈ 187 mg/dL.
        assert!((risk_low(band.low) - 5.0).abs() < 1e-9, "low {}", band.low);
        assert!(
            (risk_high(band.high) - 9.0).abs() < 1e-9,
            "high {}",
            band.high
        );
        assert!(band.low > 60.0 && band.low < 90.0, "low {}", band.low);
        assert!(band.high > 150.0 && band.high < 220.0, "high {}", band.high);
    }

    #[test]
    fn warmup_then_alerts_on_predicted_descent() {
        let model = tiny_model();
        let mut m = ForecastMonitor::from_model(model, ForecastBand::default());
        assert_eq!(m.name(), "forecast");
        // A steep descent toward hypoglycemia: the 40-min-ahead
        // prediction crosses the band while BG is still above it.
        let mut first_alert = None;
        let mut bg_at_alert = None;
        for s in 0..40u32 {
            let bg = 160.0 - 4.0 * f64::from(s);
            let verdict = m.check(&input(s, bg, 1.0));
            if s < 2 {
                assert_eq!(verdict, None, "warm-up cycle {s}");
            }
            if let (Some(h), None) = (verdict, first_alert) {
                first_alert = Some((s, h));
                bg_at_alert = Some(bg);
            }
        }
        let (s, hazard) = first_alert.expect("descent never alerted");
        assert_eq!(hazard, Hazard::H1);
        let bg = bg_at_alert.unwrap();
        assert!(
            bg > m.band().low,
            "alert at cycle {s} should PRECEDE the band crossing (bg {bg:.0} vs band {:.0})",
            m.band().low
        );
    }

    #[test]
    fn silent_on_steady_normoglycemia() {
        let model = tiny_model();
        let mut m = ForecastMonitor::from_model(model, ForecastBand::default());
        for s in 0..60u32 {
            let verdict = m.check(&input(s, 115.0, 1.0));
            assert_eq!(verdict, None, "false alarm at cycle {s}");
        }
    }

    #[test]
    fn reset_clears_the_carried_state() {
        let model = tiny_model();
        let mut m = ForecastMonitor::from_model(model, ForecastBand::default());
        for s in 0..20u32 {
            m.check(&input(s, 60.0 - f64::from(s), 1.0));
        }
        m.reset();
        assert_eq!(m.last_prediction(), None);
        // Post-reset the monitor warms up again from a cold state.
        assert_eq!(m.check(&input(0, 115.0, 1.0)), None);
        // And the first prediction equals a fresh monitor's.
        let mut fresh = ForecastMonitor::from_model(model, ForecastBand::default());
        fresh.check(&input(0, 115.0, 1.0));
        assert_eq!(m.last_prediction(), fresh.last_prediction());
    }
}
