//! The medical-guidelines baseline monitor (Table III).
//!
//! Generic safety rules with no knowledge of the controller or the
//! patient: BG must stay in `[70, 180]` mg/dL, per-cycle changes must
//! stay in `(−5, 3)` mg/dL, and excursions past the patient's 10th/90th
//! BG percentiles must return within α minutes.

use crate::monitors::{HazardMonitor, MonitorInput};
use aps_types::{Hazard, UnitsPerHour, CONTROL_CYCLE_MINUTES};
use serde::{Deserialize, Serialize};

/// Guideline-monitor parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidelineConfig {
    /// Lower bound of the normal range (mg/dL).
    pub bg_low: f64,
    /// Upper bound of the normal range (mg/dL).
    pub bg_high: f64,
    /// Largest allowed per-cycle BG drop (mg/dL, positive number).
    pub max_drop: f64,
    /// Largest allowed per-cycle BG rise (mg/dL).
    pub max_rise: f64,
    /// 10th-percentile excursion floor λ₁₀ (mg/dL).
    pub lambda10: f64,
    /// 90th-percentile excursion ceiling λ₉₀ (mg/dL).
    pub lambda90: f64,
    /// Excursions must return within α minutes.
    pub alpha_minutes: f64,
}

impl Default for GuidelineConfig {
    fn default() -> GuidelineConfig {
        GuidelineConfig {
            bg_low: 70.0,
            bg_high: 180.0,
            max_drop: 5.0,
            max_rise: 3.0,
            lambda10: 85.0,
            lambda90: 190.0,
            alpha_minutes: 25.0,
        }
    }
}

/// The guideline monitor.
#[derive(Debug, Clone)]
pub struct GuidelineMonitor {
    config: GuidelineConfig,
    prev_bg: Option<f64>,
    below_lambda10_cycles: u32,
    above_lambda90_cycles: u32,
}

impl GuidelineMonitor {
    /// Creates the monitor.
    pub fn new(config: GuidelineConfig) -> GuidelineMonitor {
        GuidelineMonitor {
            config,
            prev_bg: None,
            below_lambda10_cycles: 0,
            above_lambda90_cycles: 0,
        }
    }

    fn alpha_cycles(&self) -> u32 {
        (self.config.alpha_minutes / CONTROL_CYCLE_MINUTES).ceil() as u32
    }
}

impl Default for GuidelineMonitor {
    fn default() -> GuidelineMonitor {
        GuidelineMonitor::new(GuidelineConfig::default())
    }
}

impl HazardMonitor for GuidelineMonitor {
    fn name(&self) -> &str {
        "guideline"
    }

    fn check(&mut self, input: &MonitorInput) -> Option<Hazard> {
        let bg = input.bg.value();
        let c = &self.config;
        let delta = self.prev_bg.map(|p| bg - p);
        self.prev_bg = Some(bg);

        // Rules 3/4 bookkeeping: how long has BG been past the
        // percentile bounds.
        if bg < c.lambda10 {
            self.below_lambda10_cycles += 1;
        } else {
            self.below_lambda10_cycles = 0;
        }
        if bg > c.lambda90 {
            self.above_lambda90_cycles += 1;
        } else {
            self.above_lambda90_cycles = 0;
        }

        // Rule 1: normal range.
        if bg <= c.bg_low {
            return Some(Hazard::H1);
        }
        if bg >= c.bg_high {
            return Some(Hazard::H2);
        }
        // Rule 2: rate limits.
        if let Some(d) = delta {
            if d <= -c.max_drop {
                return Some(Hazard::H1);
            }
            if d >= c.max_rise {
                return Some(Hazard::H2);
            }
        }
        // Rules 3/4: percentile excursions not corrected within alpha.
        if self.below_lambda10_cycles > self.alpha_cycles() {
            return Some(Hazard::H1);
        }
        if self.above_lambda90_cycles > self.alpha_cycles() {
            return Some(Hazard::H2);
        }
        None
    }

    fn observe_delivery(&mut self, _delivered: UnitsPerHour) {}

    fn reset(&mut self) {
        self.prev_bg = None;
        self.below_lambda10_cycles = 0;
        self.above_lambda90_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{MgDl, Step};

    fn input(step: u32, bg: f64) -> MonitorInput {
        MonitorInput {
            step: Step(step),
            bg: MgDl(bg),
            commanded: UnitsPerHour(1.0),
            previous_rate: UnitsPerHour(1.0),
        }
    }

    #[test]
    fn range_violations() {
        let mut m = GuidelineMonitor::default();
        assert_eq!(m.check(&input(0, 65.0)), Some(Hazard::H1));
        m.reset();
        assert_eq!(m.check(&input(0, 200.0)), Some(Hazard::H2));
        m.reset();
        assert_eq!(m.check(&input(0, 120.0)), None);
    }

    #[test]
    fn rate_violations() {
        let mut m = GuidelineMonitor::default();
        assert_eq!(m.check(&input(0, 120.0)), None);
        assert_eq!(m.check(&input(1, 114.0)), Some(Hazard::H1)); // drop 6
        m.reset();
        m.check(&input(0, 120.0));
        assert_eq!(m.check(&input(1, 124.0)), Some(Hazard::H2)); // rise 4
        m.reset();
        m.check(&input(0, 120.0));
        assert_eq!(m.check(&input(1, 122.0)), None); // rise 2 ok
    }

    #[test]
    fn percentile_excursion_needs_persistence() {
        let mut m = GuidelineMonitor::default();
        // 84 mg/dL is below lambda10 but inside [70,180]; only persistent
        // excursions alarm. alpha = 25 min = 5 cycles.
        let mut verdicts = Vec::new();
        for i in 0..8 {
            verdicts.push(m.check(&input(i, 84.0)));
        }
        assert!(verdicts[..5].iter().all(|v| v.is_none()), "{verdicts:?}");
        assert_eq!(verdicts[6], Some(Hazard::H1));
    }

    #[test]
    fn excursion_counter_resets_on_recovery() {
        let mut m = GuidelineMonitor::default();
        for i in 0..4 {
            m.check(&input(i, 84.0));
        }
        // Recovery above lambda10 (small enough step not to trip the
        // rate rule) resets the persistence counter.
        m.check(&input(4, 86.0));
        for i in 5..9 {
            assert_eq!(m.check(&input(i, 84.0)), None, "counter should restart");
        }
    }

    #[test]
    fn reset_forgets_history() {
        let mut m = GuidelineMonitor::default();
        m.check(&input(0, 120.0));
        m.reset();
        // No delta on the first post-reset cycle.
        assert_eq!(m.check(&input(1, 100.0)), None);
    }
}
