//! Monitor-side context inference.
//!
//! The monitor only sees the controller's input/output interface: CGM
//! readings in, (delivered) insulin rates out. From that it maintains
//! the paper's context transformation `µ(x) = (BG, BG′, IOB, IOB′)`,
//! estimating IOB from the delivery history exactly as the controller
//! does (same insulin-activity curve), and trend signs with a small
//! dead-band so sensor jitter does not flip them.

use aps_glucose::iob::{IobCurve, IobEstimator};
use aps_types::{MgDl, UnitsPerHour, CONTROL_CYCLE_MINUTES};
use serde::{Deserialize, Serialize};

/// Dead-band on BG′ (mg/dL per 5-min cycle) below which the trend is
/// considered flat.
pub const BG_TREND_EPS: f64 = 0.5;
/// Dead-band on IOB′ (U per minute) below which the trend is flat.
pub const IOB_TREND_EPS: f64 = 5e-4;

/// Sign of a rate of change, with a dead-band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trend {
    /// Strictly increasing (beyond the dead-band).
    Rising,
    /// Strictly decreasing.
    Falling,
    /// Within the dead-band.
    Flat,
}

impl Trend {
    /// Classifies a derivative with the given dead-band.
    pub fn of(derivative: f64, eps: f64) -> Trend {
        if derivative > eps {
            Trend::Rising
        } else if derivative < -eps {
            Trend::Falling
        } else {
            Trend::Flat
        }
    }
}

/// The context vector `µ(x_t)` at one control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextVector {
    /// Glucose reading (mg/dL).
    pub bg: f64,
    /// Glucose rate of change (mg/dL per cycle).
    pub dbg: f64,
    /// Estimated insulin on board above basal (U).
    pub iob: f64,
    /// IOB rate of change (U/min).
    pub diob: f64,
}

impl ContextVector {
    /// BG trend with the standard dead-band.
    pub fn bg_trend(&self) -> Trend {
        Trend::of(self.dbg, BG_TREND_EPS)
    }

    /// IOB trend with the standard dead-band.
    pub fn iob_trend(&self) -> Trend {
        Trend::of(self.diob, IOB_TREND_EPS)
    }
}

/// Incrementally builds [`ContextVector`]s from the monitor's two
/// observation streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextBuilder {
    estimator: IobEstimator,
    prev_bg: Option<f64>,
    basal: UnitsPerHour,
}

impl ContextBuilder {
    /// Creates a builder whose IOB estimate is relative to the given
    /// basal rate (net IOB, matching the SCS rules' semantics).
    pub fn new(basal: UnitsPerHour) -> ContextBuilder {
        let mut estimator =
            IobEstimator::new(IobCurve::default_exponential(), CONTROL_CYCLE_MINUTES);
        estimator.set_basal_baseline(basal);
        estimator.prefill_basal(basal);
        ContextBuilder {
            estimator,
            prev_bg: None,
            basal,
        }
    }

    /// Builds the context for the current cycle from the latest CGM
    /// reading (call once per cycle, *before*
    /// [`observe_delivery`](Self::observe_delivery)).
    pub fn observe_bg(&mut self, bg: MgDl) -> ContextVector {
        let bg = bg.value();
        let dbg = self.prev_bg.map(|p| bg - p).unwrap_or(0.0);
        self.prev_bg = Some(bg);
        ContextVector {
            bg,
            dbg,
            iob: self.estimator.iob().value(),
            diob: self.estimator.diob_per_min(),
        }
    }

    /// Records what was actually delivered this cycle, updating IOB.
    pub fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.estimator.record(delivered);
    }

    /// Resets to basal equilibrium for a fresh run.
    pub fn reset(&mut self) {
        self.estimator.set_basal_baseline(self.basal);
        self.estimator.prefill_basal(self.basal);
        self.prev_bg = None;
    }

    /// Current IOB estimate (U above basal).
    pub fn iob(&self) -> f64 {
        self.estimator.iob().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_deadband() {
        assert_eq!(Trend::of(1.0, 0.5), Trend::Rising);
        assert_eq!(Trend::of(-1.0, 0.5), Trend::Falling);
        assert_eq!(Trend::of(0.3, 0.5), Trend::Flat);
        assert_eq!(Trend::of(-0.3, 0.5), Trend::Flat);
    }

    #[test]
    fn first_observation_has_flat_bg_trend() {
        let mut cb = ContextBuilder::new(UnitsPerHour(1.0));
        let ctx = cb.observe_bg(MgDl(140.0));
        assert_eq!(ctx.dbg, 0.0);
        assert_eq!(ctx.bg_trend(), Trend::Flat);
    }

    #[test]
    fn dbg_tracks_consecutive_readings() {
        let mut cb = ContextBuilder::new(UnitsPerHour(1.0));
        cb.observe_bg(MgDl(140.0));
        cb.observe_delivery(UnitsPerHour(1.0));
        let ctx = cb.observe_bg(MgDl(130.0));
        assert_eq!(ctx.dbg, -10.0);
        assert_eq!(ctx.bg_trend(), Trend::Falling);
    }

    #[test]
    fn iob_rises_with_extra_insulin_and_falls_on_suspend() {
        let mut cb = ContextBuilder::new(UnitsPerHour(1.0));
        cb.observe_bg(MgDl(120.0));
        for _ in 0..6 {
            cb.observe_delivery(UnitsPerHour(4.0));
        }
        let ctx = cb.observe_bg(MgDl(120.0));
        assert!(ctx.iob > 0.5, "iob = {}", ctx.iob);
        assert_eq!(ctx.iob_trend(), Trend::Rising);
        for _ in 0..6 {
            cb.observe_delivery(UnitsPerHour(0.0));
        }
        let ctx = cb.observe_bg(MgDl(120.0));
        assert_eq!(ctx.iob_trend(), Trend::Falling);
    }

    #[test]
    fn basal_equilibrium_is_flat_near_zero() {
        let mut cb = ContextBuilder::new(UnitsPerHour(1.0));
        cb.observe_bg(MgDl(120.0));
        for _ in 0..5 {
            cb.observe_delivery(UnitsPerHour(1.0));
        }
        let ctx = cb.observe_bg(MgDl(120.0));
        assert!(ctx.iob < 0.1, "net IOB at basal = {}", ctx.iob);
        assert_eq!(ctx.iob_trend(), Trend::Flat);
    }

    #[test]
    fn reset_clears_history() {
        let mut cb = ContextBuilder::new(UnitsPerHour(1.0));
        cb.observe_bg(MgDl(300.0));
        for _ in 0..5 {
            cb.observe_delivery(UnitsPerHour(4.0));
        }
        cb.reset();
        let ctx = cb.observe_bg(MgDl(120.0));
        assert_eq!(ctx.dbg, 0.0);
        assert!(ctx.iob < 0.1);
    }
}
