//! Data-driven refinement of the SCS thresholds (§III-C2).
//!
//! Fault-injection campaigns produce hazardous traces; for each rule we
//! collect the `µ` values (IOB, or BG for rule 10) at the pre-hazard
//! steps whose context and action match the rule, then fit the rule's β
//! by minimizing a tightness loss (TMEE by default) of the robustness
//! residual with box-constrained L-BFGS. Patient-specific monitors
//! learn from one patient's traces; population monitors from all.

use crate::context::ContextBuilder;
use crate::scs::{ActionCond, BgCond, IobCond, Scs, UcaRule};
use aps_optim::{lbfgsb, Bounds, LossKind, Options};
use aps_types::{SimTrace, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// Threshold-learning configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnConfig {
    /// Tightness loss (paper default: TMEE).
    pub loss: LossKind,
    /// Bounds for IOB thresholds (U).
    pub iob_bounds: (f64, f64),
    /// Bounds for the rule-10 glucose floor (mg/dL).
    pub bg_bounds: (f64, f64),
    /// Only steps at or before hazard onset are used as negative
    /// examples when `true` (the paper's pre-hazard UCA samples).
    pub pre_hazard_only: bool,
    /// Only steps within this many cycles *before* onset contribute —
    /// the UCA definition's "period T that u_t can affect the state
    /// space". Steps hours before the hazard carry no causal signal
    /// and would dilute the fit.
    pub lead_window: u32,
    /// Minimum number of trace extremes a rule must collect before its
    /// β moves off the guideline default. A threshold fitted from a
    /// couple of samples is statistical noise and can easily *relax*
    /// the monitor below guideline sensitivity; paper-scale campaigns
    /// clear this floor comfortably. (No `#[serde(default)]`: that
    /// would silently deserialize to 0 and disable the guard.)
    pub min_samples: usize,
}

impl Default for LearnConfig {
    fn default() -> LearnConfig {
        LearnConfig {
            loss: LossKind::Tmee,
            iob_bounds: (-5.0, 10.0),
            // The mandatory-suspend glucose floor may not be learned
            // above 80 mg/dL: a higher floor would flag routine dips
            // (clinically, <80 is the boundary of biochemical
            // hypoglycemia).
            bg_bounds: (45.0, 80.0),
            pre_hazard_only: true,
            lead_window: 36,
            min_samples: 4,
        }
    }
}

/// Outcome of fitting one rule's threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleFit {
    /// Table I rule id.
    pub rule_id: u8,
    /// Learned β (or the default if no samples matched).
    pub beta: f64,
    /// Number of hazardous samples the fit used.
    pub n_samples: usize,
    /// Optimizer iterations (0 if skipped).
    pub iterations: usize,
}

/// Extracts one `µ` value per matching hazardous trace — the trace's
/// *extreme* over the pre-hazard window (Eq. 3 sums the loss over
/// traces in `H`, so each trace contributes one robustness residual).
///
/// For a `µ < β` predicate the extreme is the trace's **minimum** µ
/// (the tightest witness that the unsafe context occurred: any β above
/// it catches the trace); for `µ > β` it is the **maximum**.
///
/// `basal` is the basal rate the monitor-side IOB estimate is relative
/// to (the wrapped controller's configured basal).
pub fn extract_rule_samples(
    scs: &Scs,
    rule: &UcaRule,
    traces: &[SimTrace],
    basal: UnitsPerHour,
    config: &LearnConfig,
) -> Vec<f64> {
    let below = !matches!(rule.iob, IobCond::AboveBeta);
    let mut samples = Vec::new();
    for trace in traces {
        let Some(hazard_type) = trace.meta.hazard_type else {
            continue;
        };
        if hazard_type != rule.hazard {
            continue;
        }
        let onset = trace
            .meta
            .hazard_onset
            .map(|s| s.index())
            .unwrap_or(usize::MAX);
        let earliest = onset.saturating_sub(config.lead_window as usize);
        let mut builder = ContextBuilder::new(basal);
        let mut extreme: Option<f64> = None;
        for rec in trace.iter() {
            let ctx = builder.observe_bg(rec.bg);
            builder.observe_delivery(rec.delivered);
            if config.pre_hazard_only && (rec.step.index() > onset || rec.step.index() < earliest) {
                continue;
            }
            // Context must match with the learnable predicate removed.
            let action_matches = match rule.action {
                ActionCond::Forbidden(u) => rec.action == u,
                ActionCond::Required(u) => rec.action != u,
            };
            if !action_matches {
                continue;
            }
            let mut relaxed = rule.clone();
            match rule.iob {
                IobCond::Any => {
                    // Rule 10: relax the BG<beta predicate itself.
                    if matches!(rule.bg, BgCond::BelowBeta) {
                        relaxed.beta = f64::INFINITY;
                    }
                }
                _ => relaxed.iob = IobCond::Any,
            }
            if !relaxed.context_matches(&ctx, scs.target) {
                continue;
            }
            let mu = match rule.iob {
                IobCond::Any => ctx.bg,
                _ => ctx.iob,
            };
            extreme = Some(match extreme {
                None => mu,
                Some(prev) if below => prev.min(mu),
                Some(prev) => prev.max(mu),
            });
        }
        if let Some(mu) = extreme {
            samples.push(mu);
        }
    }
    samples
}

/// Fits one rule's β from its hazardous samples. Returns `None` when no
/// samples matched (the default β is kept).
fn fit_beta(rule: &UcaRule, samples: &[f64], config: &LearnConfig) -> Option<(f64, usize)> {
    if samples.is_empty() {
        return None;
    }
    // Residual orientation: positive residual = hazardous sample is
    // inside the rule's context (covered by the monitor).
    let below = match rule.iob {
        IobCond::BelowBeta => true,
        IobCond::AboveBeta => false,
        IobCond::Any => true, // rule 10: BG < beta
    };
    let (lo, hi) = if matches!(rule.iob, IobCond::Any) {
        config.bg_bounds
    } else {
        config.iob_bounds
    };
    let loss = config.loss;
    let objective = |x: &[f64], g: &mut [f64]| -> f64 {
        let beta = x[0];
        let mut value = 0.0;
        let mut grad = 0.0;
        for &mu in samples {
            let r = if below { beta - mu } else { mu - beta };
            value += loss.value(r);
            let dr_dbeta = if below { 1.0 } else { -1.0 };
            grad += loss.grad(r) * dr_dbeta;
        }
        let n = samples.len() as f64;
        g[0] = grad / n;
        value / n
    };
    let start = samples.iter().sum::<f64>() / samples.len() as f64;
    let sol = lbfgsb::minimize(
        objective,
        &[start.clamp(lo, hi)],
        &Bounds::new(vec![lo], vec![hi]),
        &Options {
            max_iters: 300,
            ..Options::default()
        },
    )
    .ok()?;
    Some((sol.x[0], sol.iterations))
}

/// Learns all rule thresholds from hazardous traces, returning the
/// refined SCS (the CAWT configuration) and per-rule fit reports.
pub fn learn_thresholds(
    scs: &Scs,
    traces: &[SimTrace],
    basal: UnitsPerHour,
    config: &LearnConfig,
) -> (Scs, Vec<RuleFit>) {
    let mut refined = scs.clone();
    let mut fits = Vec::new();
    for rule in &scs.rules {
        let samples = extract_rule_samples(scs, rule, traces, basal, config);
        let fitted = (samples.len() >= config.min_samples.max(1))
            .then(|| fit_beta(rule, &samples, config))
            .flatten();
        let (beta, iterations) = match fitted {
            Some((b, it)) => (b, it),
            None => (rule.beta, 0),
        };
        refined.rule_mut(rule.id).expect("rule exists").beta = beta;
        fits.push(RuleFit {
            rule_id: rule.id,
            beta,
            n_samples: samples.len(),
            iterations,
        });
    }
    (refined, fits)
}

/// Filters traces to one patient (for patient-specific learning).
pub fn traces_for_patient(traces: &[SimTrace], patient: &str) -> Vec<SimTrace> {
    traces
        .iter()
        .filter(|t| t.meta.patient == patient)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{ControlAction, Hazard, MgDl, Step, StepRecord, TraceMeta, Units};

    /// Builds a synthetic hazardous trace: hyperglycemic, rising BG,
    /// controller wrongly *decreasing* insulin, ending in H2, with the
    /// IOB profile shaped so rule 1's context matches.
    fn h2_trace(iob_scale: f64) -> SimTrace {
        let meta = TraceMeta {
            patient: "glucosym/patientA".to_owned(),
            fault_start: Some(Step(5)),
            ..TraceMeta::default()
        };
        let mut t = SimTrace::new(meta);
        // Monitor-side IOB starts at basal equilibrium (=0 net) and the
        // delivered rate drops to 0, so net IOB stays ~0 and falls —
        // matching rule 1's IOB'<0, IOB small context. We scale
        // delivered to vary the observed IOB samples.
        for i in 0..40u32 {
            let mut r = StepRecord::blank(Step(i));
            r.bg = MgDl(150.0 + 4.0 * i as f64);
            r.bg_true = r.bg;
            r.action = ControlAction::DecreaseInsulin;
            r.delivered = UnitsPerHour(if i < 3 { 1.0 + iob_scale } else { 0.0 });
            r.commanded = r.delivered;
            r.iob = Units(0.0);
            if i >= 25 {
                r.hazard = Some(Hazard::H2);
            }
            t.push(r);
        }
        t.refresh_meta();
        t
    }

    #[test]
    fn extracts_samples_only_from_matching_traces() {
        let scs = Scs::with_default_thresholds(MgDl(110.0));
        let traces = vec![h2_trace(0.0)];
        let rule1 = scs.rule(1).unwrap().clone();
        let samples = extract_rule_samples(
            &scs,
            &rule1,
            &traces,
            UnitsPerHour(1.0),
            &LearnConfig::default(),
        );
        assert!(!samples.is_empty(), "rule 1 should collect samples");
        // H1-side rules find nothing in an H2 trace.
        let rule6 = scs.rule(6).unwrap().clone();
        let none = extract_rule_samples(
            &scs,
            &rule6,
            &traces,
            UnitsPerHour(1.0),
            &LearnConfig::default(),
        );
        assert!(none.is_empty());
    }

    /// Fraction of hazardous samples the threshold covers (µ < β for a
    /// BelowBeta rule).
    fn coverage_below(samples: &[f64], beta: f64) -> f64 {
        samples.iter().filter(|&&mu| mu < beta).count() as f64 / samples.len() as f64
    }

    #[test]
    fn learned_beta_covers_most_hazardous_samples_tightly() {
        let scs = Scs::with_default_thresholds(MgDl(110.0));
        let traces: Vec<SimTrace> = (0..4).map(|k| h2_trace(k as f64 * 0.2)).collect();
        let (refined, fits) =
            learn_thresholds(&scs, &traces, UnitsPerHour(1.0), &LearnConfig::default());
        let fit1 = fits.iter().find(|f| f.rule_id == 1).unwrap();
        assert!(fit1.n_samples > 0);
        let rule1 = scs.rule(1).unwrap().clone();
        let samples = extract_rule_samples(
            &scs,
            &rule1,
            &traces,
            UnitsPerHour(1.0),
            &LearnConfig::default(),
        );
        let max_mu = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let beta = refined.rule(1).unwrap().beta;
        // TMEE's exponential wall makes beta cover the large majority
        // of the hazardous contexts while staying tight against the
        // sample distribution (the hard r >= 0 constraint of Eq. 3 is
        // soft here, so extreme-tail samples may remain uncovered).
        let cov = coverage_below(&samples, beta);
        assert!(cov >= 0.7, "coverage only {cov:.2} with beta {beta}");
        assert!(
            beta <= max_mu + 1.5,
            "beta {beta} too loose vs max {max_mu}"
        );
    }

    #[test]
    fn rules_without_samples_keep_defaults() {
        let scs = Scs::with_default_thresholds(MgDl(110.0));
        let (refined, fits) =
            learn_thresholds(&scs, &[], UnitsPerHour(1.0), &LearnConfig::default());
        assert_eq!(refined, scs);
        assert!(fits.iter().all(|f| f.n_samples == 0 && f.iterations == 0));
    }

    #[test]
    fn patient_filter() {
        let traces = vec![h2_trace(0.0)];
        assert_eq!(traces_for_patient(&traces, "glucosym/patientA").len(), 1);
        assert_eq!(traces_for_patient(&traces, "glucosym/patientB").len(), 0);
    }

    #[test]
    fn mse_loss_lands_in_the_middle_unlike_tmee() {
        // Demonstrates the Fig. 3 point: with MSE the fitted beta sits
        // at the sample mean (violating ~half the hazardous samples);
        // TMEE's asymmetric wall pushes it to cover far more.
        let scs = Scs::with_default_thresholds(MgDl(110.0));
        let traces: Vec<SimTrace> = (0..5).map(|k| h2_trace(k as f64 * 0.3)).collect();
        let rule1 = scs.rule(1).unwrap().clone();
        let cfg_tmee = LearnConfig::default();
        let samples = extract_rule_samples(&scs, &rule1, &traces, UnitsPerHour(1.0), &cfg_tmee);

        let cfg_mse = LearnConfig {
            loss: LossKind::Mse,
            ..LearnConfig::default()
        };
        let (beta_mse, _) = fit_beta(&rule1, &samples, &cfg_mse).unwrap();
        let (beta_tmee, _) = fit_beta(&rule1, &samples, &cfg_tmee).unwrap();
        let cov_mse = coverage_below(&samples, beta_mse);
        let cov_tmee = coverage_below(&samples, beta_tmee);
        assert!(
            beta_tmee > beta_mse,
            "TMEE {beta_tmee} should sit above MSE {beta_mse}"
        );
        assert!(
            cov_tmee > cov_mse + 0.1,
            "TMEE coverage {cov_tmee:.2} should beat MSE {cov_mse:.2}"
        );
        assert!(cov_mse < 0.75, "MSE should undercover, got {cov_mse:.2}");
    }
}
