//! Context-aware safety monitors for artificial pancreas systems — the
//! paper's primary contribution.
//!
//! The crate implements the full pipeline of Zhou et al. (DSN 2021):
//!
//! 1. **Safety Context Specification** ([`scs`]) — the twelve unsafe
//!    control action rules of Table I over the context transformation
//!    `µ(x) = (BG, BG′, IOB, IOB′)`, with conversion to STL formulas;
//! 2. **Context inference** ([`context`]) — the monitor-side estimate
//!    of the context vector from the sensor/actuator interface only;
//! 3. **Data-driven refinement** ([`learning`]) — patient-specific (or
//!    population) learning of the rule thresholds βᵢ from hazardous
//!    traces with the TMEE loss and L-BFGS-B;
//! 4. **Run-time monitors** ([`monitors`]) — the proposed CAWT monitor,
//!    the CAWOT ablation, and the Guideline / MPC / ML baselines;
//! 5. **Hazard mitigation** ([`mitigation`]) — Algorithm 1;
//! 6. **Mitigation specification** ([`hms`]) — the Eq. 2 HMS with
//!    data-driven deadline learning and a context-dependent
//!    mitigation policy (the paper's declared future work).
//!
//! # Quickstart
//!
//! ```
//! use aps_core::context::ContextBuilder;
//! use aps_core::monitors::{CawMonitor, HazardMonitor, MonitorInput};
//! use aps_core::scs::Scs;
//! use aps_types::{MgDl, Step, UnitsPerHour};
//!
//! // A context-aware monitor with guideline-default thresholds (CAWOT).
//! let scs = Scs::with_default_thresholds(MgDl(110.0));
//! let mut monitor = CawMonitor::new("cawot", scs, UnitsPerHour(1.0));
//! let verdict = monitor.check(&MonitorInput {
//!     step: Step(0),
//!     bg: MgDl(60.0),
//!     commanded: UnitsPerHour(1.0),
//!     previous_rate: UnitsPerHour(1.0),
//! });
//! // Keeping insulin running below the 70 mg/dL floor predicts H1
//! // (Table I rule 10: insulin must stop).
//! assert!(verdict.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod hms;
pub mod learning;
pub mod mitigation;
pub mod monitors;
pub mod scs;
