//! Safety Context Specification: the Table I rule set and its STL form.
//!
//! Each rule pairs a context pattern over `µ(x) = (BG, BG′, IOB, IOB′)`
//! with a control action that is unsafe in that context and the hazard
//! it would cause:
//!
//! ```text
//! G[t0,te]( φ_bg ∧ φ_bg′ ∧ φ_iob′ ∧ φ_iob(β) ⇒ ¬u )
//! ```
//!
//! Rule 10 is the one *mandatory*-action rule: below a learnable BG
//! floor β₂₁ the controller **must** stop insulin. The βᵢ are the
//! learnable thresholds of §III-C2.

use crate::context::{ContextVector, Trend};
use aps_stl::{CmpOp, Formula};
use aps_types::{ControlAction, Hazard, MgDl};
use serde::{Deserialize, Serialize};

/// Constraint on BG relative to the target (or to the rule's own β for
/// rule 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgCond {
    /// `BG > BGT`.
    AboveTarget,
    /// `BG < BGT`.
    BelowTarget,
    /// `BG < β` (rule 10's learnable glucose floor).
    BelowBeta,
}

/// Constraint on a trend sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrendCond {
    /// Strictly positive.
    Pos,
    /// Strictly negative.
    Neg,
    /// Flat (within dead-band).
    Zero,
    /// Flat or negative.
    NonPos,
    /// Flat or positive.
    NonNeg,
    /// Unconstrained.
    Any,
}

impl TrendCond {
    fn matches(self, t: Trend) -> bool {
        match self {
            TrendCond::Pos => t == Trend::Rising,
            TrendCond::Neg => t == Trend::Falling,
            TrendCond::Zero => t == Trend::Flat,
            TrendCond::NonPos => t != Trend::Rising,
            TrendCond::NonNeg => t != Trend::Falling,
            TrendCond::Any => true,
        }
    }
}

/// Constraint on IOB relative to the rule's learnable β.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IobCond {
    /// `IOB < β` (the H2-side rules).
    BelowBeta,
    /// `IOB > β` (the H1-side rules).
    AboveBeta,
    /// Unconstrained (rule 10 constrains BG instead).
    Any,
}

/// What the rule says about the control action in context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionCond {
    /// The action must **not** be issued in this context.
    Forbidden(ControlAction),
    /// The action **must** be issued in this context (rule 10).
    Required(ControlAction),
}

/// One unsafe-control-action rule (a row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UcaRule {
    /// Row number in Table I (1-based).
    pub id: u8,
    /// BG-side context constraint.
    pub bg: BgCond,
    /// BG′ constraint.
    pub bg_trend: TrendCond,
    /// IOB′ constraint.
    pub iob_trend: TrendCond,
    /// IOB-side constraint (carries the learnable β except for rule 10).
    pub iob: IobCond,
    /// The learnable threshold βᵢ (IOB in U, or BG in mg/dL for rule 10).
    pub beta: f64,
    /// Action constraint.
    pub action: ActionCond,
    /// Hazard predicted if the rule is violated.
    pub hazard: Hazard,
}

impl UcaRule {
    /// `true` if the *context* part of the rule (everything but the
    /// action) matches, given the regulation target.
    pub fn context_matches(&self, ctx: &ContextVector, target: MgDl) -> bool {
        let bg_ok = match self.bg {
            BgCond::AboveTarget => ctx.bg > target.value(),
            BgCond::BelowTarget => ctx.bg < target.value(),
            BgCond::BelowBeta => ctx.bg < self.beta,
        };
        let iob_ok = match self.iob {
            IobCond::BelowBeta => ctx.iob < self.beta,
            IobCond::AboveBeta => ctx.iob > self.beta,
            IobCond::Any => true,
        };
        bg_ok
            && iob_ok
            && self.bg_trend.matches(ctx.bg_trend())
            && self.iob_trend.matches(ctx.iob_trend())
    }

    /// `true` if issuing `action` in context `ctx` violates this rule.
    pub fn violated_by(&self, ctx: &ContextVector, action: ControlAction, target: MgDl) -> bool {
        if !self.context_matches(ctx, target) {
            return false;
        }
        match self.action {
            ActionCond::Forbidden(u) => action == u,
            ActionCond::Required(u) => action != u,
        }
    }

    /// The rule as a bounded-time STL formula over the signals
    /// `bg, bg', iob, iob', u` (`u` = the action's paper index), for
    /// the horizon `[0, te]` in samples.
    pub fn to_stl(&self, target: MgDl, te: usize) -> Formula {
        let context = self.context_stl(target);
        let consequent = match self.action {
            ActionCond::Forbidden(u) => Formula::pred("u", CmpOp::Eq, u.paper_index() as f64).not(),
            ActionCond::Required(u) => Formula::pred("u", CmpOp::Eq, u.paper_index() as f64),
        };
        context.implies(consequent).globally(0, te)
    }

    /// The *context* part of the rule (`ρ(µ(x))` only, no action) as an
    /// STL conjunction over `bg, bg', iob, iob'`. This is the
    /// antecedent of [`to_stl`](Self::to_stl) and the trigger of the
    /// mitigation specification (Eq. 2, [`hms`](crate::hms)).
    pub fn context_stl(&self, target: MgDl) -> Formula {
        use crate::context::{BG_TREND_EPS, IOB_TREND_EPS};
        let mut conjuncts: Vec<Formula> = Vec::new();
        match self.bg {
            BgCond::AboveTarget => conjuncts.push(Formula::pred("bg", CmpOp::Gt, target.value())),
            BgCond::BelowTarget => conjuncts.push(Formula::pred("bg", CmpOp::Lt, target.value())),
            BgCond::BelowBeta => conjuncts.push(Formula::pred("bg", CmpOp::Lt, self.beta)),
        }
        let trend = |signal: &str, cond: TrendCond, eps: f64| -> Option<Formula> {
            match cond {
                TrendCond::Pos => Some(Formula::pred(signal, CmpOp::Gt, eps)),
                TrendCond::Neg => Some(Formula::pred(signal, CmpOp::Lt, -eps)),
                TrendCond::Zero => Some(Formula::pred(signal, CmpOp::Ge, -eps).and(Formula::pred(
                    signal,
                    CmpOp::Le,
                    eps,
                ))),
                TrendCond::NonPos => Some(Formula::pred(signal, CmpOp::Le, eps)),
                TrendCond::NonNeg => Some(Formula::pred(signal, CmpOp::Ge, -eps)),
                TrendCond::Any => None,
            }
        };
        if let Some(f) = trend("bg'", self.bg_trend, BG_TREND_EPS) {
            conjuncts.push(f);
        }
        if let Some(f) = trend("iob'", self.iob_trend, IOB_TREND_EPS) {
            conjuncts.push(f);
        }
        match self.iob {
            IobCond::BelowBeta => conjuncts.push(Formula::pred("iob", CmpOp::Lt, self.beta)),
            IobCond::AboveBeta => conjuncts.push(Formula::pred("iob", CmpOp::Gt, self.beta)),
            IobCond::Any => {}
        }
        Formula::And(conjuncts)
    }
}

/// The full Safety Context Specification: the rule set plus the target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scs {
    /// Regulation target `BGT`.
    pub target: MgDl,
    /// The UCA rules (Table I).
    pub rules: Vec<UcaRule>,
}

impl Scs {
    /// The Table I rule set with *guideline-default* thresholds — this
    /// is exactly the CAWOT monitor's configuration.
    ///
    /// IOB here is *net of basal* (oref0's convention), so 0 means
    /// "normally insulinized". Defaults: H2-side ceilings at −0.5 U
    /// (flag insulin-reducing actions only once the patient is clearly
    /// under-insulinized), H1-side floors at 2 U above basal, and a
    /// 70 mg/dL glucose floor for the mandatory-suspend rule. The βᵢ
    /// of the CAWT monitor are learned instead (see
    /// [`learning`](crate::learning)).
    pub fn with_default_thresholds(target: MgDl) -> Scs {
        use ActionCond::{Forbidden, Required};
        use BgCond::{AboveTarget, BelowTarget};
        use ControlAction::{DecreaseInsulin, IncreaseInsulin, KeepInsulin, StopInsulin};
        use IobCond::{AboveBeta, BelowBeta};
        let r = |id, bg, bg_t, iob_t, iob, beta, action, hazard| UcaRule {
            id,
            bg,
            bg_trend: bg_t,
            iob_trend: iob_t,
            iob,
            beta,
            action,
            hazard,
        };
        let rules = vec![
            // 1-5: decreasing insulin while hyperglycemic with little IOB -> H2.
            r(
                1,
                AboveTarget,
                TrendCond::Pos,
                TrendCond::Neg,
                BelowBeta,
                -0.5,
                Forbidden(DecreaseInsulin),
                Hazard::H2,
            ),
            r(
                2,
                AboveTarget,
                TrendCond::Pos,
                TrendCond::Zero,
                BelowBeta,
                -0.5,
                Forbidden(DecreaseInsulin),
                Hazard::H2,
            ),
            r(
                3,
                AboveTarget,
                TrendCond::Neg,
                TrendCond::Pos,
                BelowBeta,
                -0.5,
                Forbidden(DecreaseInsulin),
                Hazard::H2,
            ),
            r(
                4,
                AboveTarget,
                TrendCond::Neg,
                TrendCond::Neg,
                BelowBeta,
                -0.5,
                Forbidden(DecreaseInsulin),
                Hazard::H2,
            ),
            r(
                5,
                AboveTarget,
                TrendCond::Neg,
                TrendCond::Zero,
                BelowBeta,
                -0.5,
                Forbidden(DecreaseInsulin),
                Hazard::H2,
            ),
            // 6-8: increasing insulin while hypoglycemic with IOB already high -> H1.
            r(
                6,
                BelowTarget,
                TrendCond::Neg,
                TrendCond::Pos,
                AboveBeta,
                2.0,
                Forbidden(IncreaseInsulin),
                Hazard::H1,
            ),
            r(
                7,
                BelowTarget,
                TrendCond::Neg,
                TrendCond::Neg,
                AboveBeta,
                2.0,
                Forbidden(IncreaseInsulin),
                Hazard::H1,
            ),
            r(
                8,
                BelowTarget,
                TrendCond::Neg,
                TrendCond::Zero,
                AboveBeta,
                2.0,
                Forbidden(IncreaseInsulin),
                Hazard::H1,
            ),
            // 9: stopping insulin while hyperglycemic with little IOB -> H2.
            r(
                9,
                AboveTarget,
                TrendCond::Any,
                TrendCond::Any,
                BelowBeta,
                -0.5,
                Forbidden(StopInsulin),
                Hazard::H2,
            ),
            // 10: below the glucose floor insulin MUST stop -> else H1.
            r(
                10,
                BgCond::BelowBeta,
                TrendCond::Any,
                TrendCond::Any,
                IobCond::Any,
                70.0,
                Required(StopInsulin),
                Hazard::H1,
            ),
            // 11: keeping the rate while hyperglycemic, IOB flat/falling and low -> H2.
            r(
                11,
                AboveTarget,
                TrendCond::Pos,
                TrendCond::NonPos,
                BelowBeta,
                -0.5,
                Forbidden(KeepInsulin),
                Hazard::H2,
            ),
            // 12: keeping the rate while hypoglycemic, IOB flat/rising and high -> H1.
            r(
                12,
                BelowTarget,
                TrendCond::Neg,
                TrendCond::NonNeg,
                AboveBeta,
                2.0,
                Forbidden(KeepInsulin),
                Hazard::H1,
            ),
        ];
        Scs { target, rules }
    }

    /// First rule violated by `(ctx, action)`, if any (the monitor's
    /// per-cycle check).
    pub fn first_violation(&self, ctx: &ContextVector, action: ControlAction) -> Option<&UcaRule> {
        self.rules
            .iter()
            .find(|r| r.violated_by(ctx, action, self.target))
    }

    /// All rules as STL formulas for the horizon `[0, te]`.
    pub fn to_stl(&self, te: usize) -> Vec<Formula> {
        self.rules
            .iter()
            .map(|r| r.to_stl(self.target, te))
            .collect()
    }

    /// Looks up a rule by Table I row id.
    pub fn rule(&self, id: u8) -> Option<&UcaRule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Mutable lookup (used by the threshold learner).
    pub fn rule_mut(&mut self, id: u8) -> Option<&mut UcaRule> {
        self.rules.iter_mut().find(|r| r.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_stl::Trace;

    fn scs() -> Scs {
        Scs::with_default_thresholds(MgDl(110.0))
    }

    fn ctx(bg: f64, dbg: f64, iob: f64, diob: f64) -> ContextVector {
        ContextVector { bg, dbg, iob, diob }
    }

    #[test]
    fn twelve_rules_matching_table_i() {
        let s = scs();
        assert_eq!(s.rules.len(), 12);
        for id in 1..=12u8 {
            assert!(s.rule(id).is_some(), "rule {id} missing");
        }
        // Spot-check hazards per the table.
        assert_eq!(s.rule(1).unwrap().hazard, Hazard::H2);
        assert_eq!(s.rule(6).unwrap().hazard, Hazard::H1);
        assert_eq!(s.rule(10).unwrap().hazard, Hazard::H1);
    }

    #[test]
    fn rule1_fires_on_decrease_during_rising_hyper() {
        let s = scs();
        // BG 200 rising, IOB falling and below the -0.5 U ceiling.
        let c = ctx(200.0, 5.0, -0.8, -0.002);
        let v = s.first_violation(&c, ControlAction::DecreaseInsulin);
        assert_eq!(v.map(|r| r.id), Some(1));
        assert_eq!(v.map(|r| r.hazard), Some(Hazard::H2));
        // Same context, increasing insulin is fine.
        assert!(s
            .first_violation(&c, ControlAction::IncreaseInsulin)
            .is_none());
    }

    #[test]
    fn rule6_fires_on_increase_during_falling_hypo() {
        let s = scs();
        let c = ctx(80.0, -4.0, 3.0, 0.002);
        let v = s.first_violation(&c, ControlAction::IncreaseInsulin);
        assert_eq!(v.map(|r| r.id), Some(6));
        assert_eq!(v.map(|r| r.hazard), Some(Hazard::H1));
    }

    #[test]
    fn rule9_fires_on_stop_during_hyper() {
        let s = scs();
        let c = ctx(250.0, 0.0, -0.8, 0.0);
        let v = s.first_violation(&c, ControlAction::StopInsulin);
        assert_eq!(v.map(|r| r.id), Some(9));
    }

    #[test]
    fn rule10_requires_stop_below_floor() {
        let s = scs();
        let c = ctx(60.0, 0.0, 0.5, 0.0);
        let v = s.first_violation(&c, ControlAction::KeepInsulin);
        assert_eq!(v.map(|r| r.id), Some(10));
        // Stopping satisfies the mandatory rule.
        assert!(s.first_violation(&c, ControlAction::StopInsulin).is_none());
    }

    #[test]
    fn rule11_and_12_guard_keep() {
        let s = scs();
        let c_hyper = ctx(220.0, 6.0, -0.8, -0.001);
        assert_eq!(
            s.first_violation(&c_hyper, ControlAction::KeepInsulin)
                .map(|r| r.id),
            Some(11)
        );
        let c_hypo = ctx(90.0, -5.0, 2.5, 0.001);
        assert_eq!(
            s.first_violation(&c_hypo, ControlAction::KeepInsulin)
                .map(|r| r.id),
            Some(12)
        );
    }

    #[test]
    fn safe_context_has_no_violation() {
        let s = scs();
        let c = ctx(115.0, 0.2, 0.1, 0.0);
        for action in ControlAction::ALL {
            assert!(
                s.first_violation(&c, action).is_none(),
                "{action} flagged in a safe context"
            );
        }
    }

    #[test]
    fn beta_tightening_changes_verdict() {
        let mut s = scs();
        let c = ctx(200.0, 5.0, 1.5, -0.002);
        // Default beta1 = -0.5: IOB 1.5 not below beta -> safe.
        assert!(s
            .first_violation(&c, ControlAction::DecreaseInsulin)
            .is_none());
        // Learned looser ceiling 2.0: now flagged.
        s.rule_mut(1).unwrap().beta = 2.0;
        assert_eq!(
            s.first_violation(&c, ControlAction::DecreaseInsulin)
                .map(|r| r.id),
            Some(1)
        );
    }

    #[test]
    fn stl_agrees_with_native_evaluation() {
        let s = scs();
        // Build a 1-sample trace per scenario and compare verdicts.
        let scenarios = vec![
            (
                ctx(200.0, 5.0, -0.8, -0.002),
                ControlAction::DecreaseInsulin,
            ),
            (
                ctx(200.0, 5.0, -0.8, -0.002),
                ControlAction::IncreaseInsulin,
            ),
            (ctx(200.0, 5.0, 0.2, -0.002), ControlAction::DecreaseInsulin),
            (ctx(80.0, -4.0, 3.0, 0.002), ControlAction::IncreaseInsulin),
            (ctx(60.0, 0.0, 0.5, 0.0), ControlAction::KeepInsulin),
            (ctx(60.0, 0.0, 0.5, 0.0), ControlAction::StopInsulin),
            (ctx(115.0, 0.0, 0.1, 0.0), ControlAction::KeepInsulin),
            (ctx(250.0, 0.0, 0.1, 0.0), ControlAction::StopInsulin),
        ];
        for (c, action) in scenarios {
            let mut trace = Trace::new(5.0);
            trace.push_signal("bg", vec![c.bg]);
            trace.push_signal("bg'", vec![c.dbg]);
            trace.push_signal("iob", vec![c.iob]);
            trace.push_signal("iob'", vec![c.diob]);
            trace.push_signal("u", vec![action.paper_index() as f64]);
            let native_violation = s.first_violation(&c, action).map(|r| r.id);
            let stl_violation = s
                .rules
                .iter()
                .find(|r| !r.to_stl(s.target, 0).sat(&trace, 0))
                .map(|r| r.id);
            assert_eq!(
                native_violation, stl_violation,
                "ctx {c:?} action {action}: native vs STL disagree"
            );
        }
    }

    #[test]
    fn stl_formulas_reference_expected_signals() {
        let s = scs();
        for f in s.to_stl(150) {
            let signals = f.signals();
            assert!(signals.contains(&"u".to_owned()) || !signals.is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = scs();
        let j = serde_json::to_string(&s).unwrap();
        let back: Scs = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
