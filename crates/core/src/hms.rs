//! Hazard Mitigation Specification (HMS) — the paper's Eq. 2.
//!
//! The SCS framework has two halves. The UCA Specification (Table I,
//! [`scs`](crate::scs)) tells the monitor which control actions are
//! unsafe in which contexts; the **Hazard Mitigation Specification**
//! pairs each unsafe context `ρ(µ(x))` with the set of safe corrective
//! actions `u_ρ` and a deadline `t_s` — "the latest possible time a
//! mitigation action should be initiated after a potential UCA is
//! detected to prevent hazards":
//!
//! ```text
//! G[t0,te]( (F[0,ts] u_c)  S  (φ1(µ1(x)) ∧ … ∧ φm(µm(x))) )     (Eq. 2)
//! ```
//!
//! The paper leaves learning `t_s` and the context-dependent selection
//! function `f(ρ(µ(x)), u_t)` as future work and evaluates with the
//! fixed Algorithm-1 policy. This module implements that extension:
//!
//! * [`Hms`] — the specification itself, derived from an [`Scs`] rule
//!   set (safe actions per hazard side) with per-rule deadlines;
//! * [`Hms::learn_ts`] — data-driven refinement of `t_s` from the
//!   Time-to-Hazard distribution of fault-injection traces (the paper
//!   notes TTH "can provide an upper bound for specifying this time
//!   requirement");
//! * [`Hms::to_stl`] / [`Hms::response_stl`] — the Eq. 2 formula and
//!   its trace-checkable response-pattern variant;
//! * [`HmsReport`] / [`Hms::check_trace`] — post-hoc verification that
//!   a mitigated run actually honored every deadline;
//! * [`ContextMitigator`] — a context-dependent `f(ρ(µ(x)), u_t)` that
//!   replaces Algorithm 1's fixed maximum-insulin correction with a
//!   proportional dose discounted by the insulin already on board.

use crate::context::{ContextBuilder, ContextVector};
use crate::scs::{Scs, UcaRule};
use aps_stl::{CmpOp, Formula};
use aps_types::{ControlAction, Hazard, MgDl, SimTrace, Step, UnitsPerHour, CONTROL_CYCLE_MINUTES};
use serde::{Deserialize, Serialize};

/// Default mitigation deadline when no data is available: 30 minutes
/// (6 control cycles) — well inside the ≈3 h mean TTH the paper
/// measures, leaving the slow glucose dynamics time to respond.
pub const DEFAULT_TS_STEPS: usize = 6;

/// One mitigation rule: in the context of UCA rule `uca_id`, one of
/// `safe_actions` must be initiated within `ts_steps` control cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HmsRule {
    /// Table I row whose context triggers this rule.
    pub uca_id: u8,
    /// The hazard being mitigated (inherited from the UCA rule).
    pub hazard: Hazard,
    /// Safe corrective actions `u_ρ` for the context.
    pub safe_actions: Vec<ControlAction>,
    /// Deadline `t_s` in control cycles (1 cycle = 5 min).
    pub ts_steps: usize,
}

impl HmsRule {
    /// Deadline in minutes.
    pub fn ts_minutes(&self) -> f64 {
        self.ts_steps as f64 * CONTROL_CYCLE_MINUTES
    }
}

/// The full mitigation specification: one [`HmsRule`] per UCA context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hms {
    /// Regulation target (shared with the SCS).
    pub target: MgDl,
    /// Mitigation rules, in Table I order.
    pub rules: Vec<HmsRule>,
}

impl Hms {
    /// Derives the HMS from an SCS rule set (§III-B2 step 2: "for each
    /// context in UCAS, find all control actions `u_c` such that
    /// `(ρ(µ(x)), u_c) ↦ X*`").
    ///
    /// For the APS action alphabet the safe sets follow from the hazard
    /// direction: an H2 context (too little insulin) is corrected by
    /// `increase_insulin`; an H1 context (too much) by `stop_insulin`,
    /// with `decrease_insulin` also acceptable for the non-mandatory H1
    /// rules. Deadlines start at [`DEFAULT_TS_STEPS`] and are refined
    /// by [`learn_ts`](Self::learn_ts).
    pub fn for_scs(scs: &Scs) -> Hms {
        let rules = scs
            .rules
            .iter()
            .map(|r| HmsRule {
                uca_id: r.id,
                hazard: r.hazard,
                safe_actions: match r.hazard {
                    Hazard::H1 => {
                        if r.id == 10 {
                            // Rule 10 already *requires* a stop.
                            vec![ControlAction::StopInsulin]
                        } else {
                            vec![ControlAction::StopInsulin, ControlAction::DecreaseInsulin]
                        }
                    }
                    Hazard::H2 => vec![ControlAction::IncreaseInsulin],
                },
                ts_steps: DEFAULT_TS_STEPS,
            })
            .collect();
        Hms {
            target: scs.target,
            rules,
        }
    }

    /// Looks up the mitigation rule for a UCA rule id.
    pub fn rule_for(&self, uca_id: u8) -> Option<&HmsRule> {
        self.rules.iter().find(|r| r.uca_id == uca_id)
    }

    /// Learns the per-rule deadlines `t_s` from the Time-to-Hazard
    /// distribution of hazardous fault-injection traces.
    ///
    /// For each hazard type, the deadline is set to
    /// `safety_fraction × quantile(TTH)` — a low quantile of the
    /// observed fault-to-hazard delay, further shrunk by a safety
    /// factor, so that even the fastest-developing hazards of that type
    /// leave the actuation time to take effect. Returns the number of
    /// rules whose deadline was updated; rules of a hazard type with no
    /// observed TTH keep their current deadline.
    pub fn learn_ts(&mut self, traces: &[SimTrace], config: &TsLearnConfig) -> usize {
        let mut updated = 0;
        for hazard in [Hazard::H1, Hazard::H2] {
            let mut tth_steps: Vec<f64> = traces
                .iter()
                .filter(|t| t.meta.hazard_type == Some(hazard))
                .filter_map(|t| {
                    let tf = t.meta.fault_start?;
                    let th = t.hazard_onset()?;
                    (th.0 >= tf.0).then(|| (th.0 - tf.0) as f64)
                })
                .collect();
            if tth_steps.is_empty() {
                continue;
            }
            tth_steps.sort_by(|a, b| a.partial_cmp(b).expect("TTH is finite"));
            let q = config.quantile.clamp(0.0, 1.0);
            let idx = ((tth_steps.len() - 1) as f64 * q).round() as usize;
            let ts = (tth_steps[idx] * config.safety_fraction)
                .floor()
                .max(config.min_steps as f64)
                .min(config.max_steps as f64) as usize;
            for rule in self.rules.iter_mut().filter(|r| r.hazard == hazard) {
                if rule.ts_steps != ts {
                    rule.ts_steps = ts;
                    updated += 1;
                }
            }
        }
        updated
    }

    /// The Eq. 2 formula for one rule:
    /// `G[0,te]( (F[0,ts] safe) S context )`, over the signals
    /// `bg, bg', iob, iob', u`.
    ///
    /// Note Eq. 2's outer `S` makes the formula unsatisfiable before
    /// the context has held at least once; it is the paper's *shape*
    /// and is exposed for specification export. For checking recorded
    /// traces use [`response_stl`](Self::response_stl) or
    /// [`check_trace`](Self::check_trace).
    pub fn to_stl(&self, scs: &Scs, te: usize) -> Vec<Formula> {
        self.zip_rules(scs)
            .map(|(h, u)| {
                Formula::Since(
                    Box::new(h.safe_action_stl().eventually(0, h.ts_steps)),
                    Box::new(u.context_stl(self.target)),
                )
                .globally(0, te)
            })
            .collect()
    }

    /// The trace-checkable response-pattern variant of Eq. 2:
    /// `G[0,te]( context ⇒ F[0,ts] safe )` — "whenever the unsafe
    /// context holds, a safe corrective action is initiated within
    /// `t_s`". Equivalent intent, well-defined on finite traces.
    pub fn response_stl(&self, scs: &Scs, te: usize) -> Vec<Formula> {
        self.zip_rules(scs)
            .map(|(h, u)| {
                u.context_stl(self.target)
                    .implies(h.safe_action_stl().eventually(0, h.ts_steps))
                    .globally(0, te)
            })
            .collect()
    }

    fn zip_rules<'a>(
        &'a self,
        scs: &'a Scs,
    ) -> impl Iterator<Item = (&'a HmsRule, &'a UcaRule)> + 'a {
        self.rules
            .iter()
            .filter_map(move |h| Some((h, scs.rule(h.uca_id)?)))
    }

    /// Post-hoc verification of a recorded (mitigated) run: for every
    /// onset of a UCA (the rule's context holds *and* the issued action
    /// violates it — the moment the paper's deadline clock starts), was
    /// a safe corrective action initiated within `t_s`?
    ///
    /// The context is reconstructed from the trace's recorded
    /// BG/IOB series (see [`context_series`]); deadline windows
    /// truncated by the end of the trace are not counted as violations
    /// (the run ended before the deadline expired).
    pub fn check_trace(&self, scs: &Scs, trace: &SimTrace) -> HmsReport {
        let contexts = context_series(trace);
        let mut report = HmsReport::default();
        for (hms_rule, uca_rule) in self.zip_rules(scs) {
            let matches: Vec<bool> = contexts
                .iter()
                .zip(trace.iter())
                .map(|(c, rec)| uca_rule.violated_by(c, rec.action, self.target))
                .collect();
            for t in 0..matches.len() {
                let entered = matches[t] && (t == 0 || !matches[t - 1]);
                if !entered {
                    continue;
                }
                report.entries += 1;
                let deadline = t + hms_rule.ts_steps;
                if deadline >= trace.len() {
                    report.truncated += 1;
                    continue;
                }
                let honored = trace.records[t..=deadline]
                    .iter()
                    .any(|r| hms_rule.safe_actions.contains(&r.action));
                if honored {
                    report.honored += 1;
                } else {
                    report.violations.push(HmsViolation {
                        rule_id: hms_rule.uca_id,
                        entered_at: Step(t as u32),
                        deadline: Step(deadline as u32),
                    });
                }
            }
        }
        report
    }
}

/// Configuration for [`Hms::learn_ts`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TsLearnConfig {
    /// Which quantile of the TTH distribution to anchor on (low =
    /// conservative; default 0.1 ≈ the fastest decile of hazards).
    pub quantile: f64,
    /// Fraction of that TTH quantile to allow before mitigation must
    /// start (default 0.5).
    pub safety_fraction: f64,
    /// Deadline floor in control cycles.
    pub min_steps: usize,
    /// Deadline ceiling in control cycles.
    pub max_steps: usize,
}

impl Default for TsLearnConfig {
    fn default() -> TsLearnConfig {
        TsLearnConfig {
            quantile: 0.1,
            safety_fraction: 0.5,
            min_steps: 1,
            max_steps: 24,
        }
    }
}

impl HmsRule {
    /// `u = uc1 ∨ u = uc2 ∨ …` over the action signal.
    fn safe_action_stl(&self) -> Formula {
        let preds: Vec<Formula> = self
            .safe_actions
            .iter()
            .map(|a| Formula::pred("u", CmpOp::Eq, a.paper_index() as f64))
            .collect();
        if preds.len() == 1 {
            preds.into_iter().next().expect("non-empty")
        } else {
            Formula::Or(preds)
        }
    }
}

/// One missed mitigation deadline found by [`Hms::check_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmsViolation {
    /// Table I rule whose context was entered.
    pub rule_id: u8,
    /// Step at which the unsafe context was entered.
    pub entered_at: Step,
    /// Step by which a safe action was due.
    pub deadline: Step,
}

/// Outcome of checking one trace against the HMS.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HmsReport {
    /// UCA onsets observed across all rules.
    pub entries: usize,
    /// Entries whose deadline was honored.
    pub honored: usize,
    /// Entries whose deadline fell past the end of the trace.
    pub truncated: usize,
    /// Missed deadlines.
    pub violations: Vec<HmsViolation>,
}

impl HmsReport {
    /// `true` when no deadline was missed.
    pub fn is_satisfied(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Reconstructs the context vector series `µ(x_t)` from a recorded
/// trace's BG and IOB columns (finite differences for the rates, the
/// same shape the monitor's [`ContextBuilder`] produces online).
pub fn context_series(trace: &SimTrace) -> Vec<ContextVector> {
    let mut out = Vec::with_capacity(trace.len());
    let mut prev_bg: Option<f64> = None;
    let mut prev_iob: Option<f64> = None;
    for rec in trace.iter() {
        let bg = rec.bg.value();
        let iob = rec.iob.value();
        out.push(ContextVector {
            bg,
            dbg: prev_bg.map(|p| bg - p).unwrap_or(0.0),
            iob,
            diob: prev_iob
                .map(|p| (iob - p) / CONTROL_CYCLE_MINUTES)
                .unwrap_or(0.0),
        });
        prev_bg = Some(bg);
        prev_iob = Some(iob);
    }
    out
}

/// Configuration for the context-dependent mitigation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextMitigatorConfig {
    /// Regulation target the correction steers toward.
    pub target: MgDl,
    /// Patient basal rate (floor of any H2 correction).
    pub basal: UnitsPerHour,
    /// Hard ceiling on any corrective rate.
    pub max_rate: UnitsPerHour,
    /// Corrective insulin per mg/dL of BG excess above target (U/h per
    /// mg/dL).
    pub bg_gain: f64,
    /// Correction withheld per unit of positive net IOB (U/h per U).
    pub iob_discount: f64,
}

impl ContextMitigatorConfig {
    /// Sensible defaults for a run: gain sized so a 150 mg/dL excess
    /// maps to ≈3 U/h above basal, a full unit of pending IOB cancels
    /// 1 U/h of correction.
    pub fn for_run(
        target: MgDl,
        basal: UnitsPerHour,
        max_rate: UnitsPerHour,
    ) -> ContextMitigatorConfig {
        ContextMitigatorConfig {
            target,
            basal,
            max_rate,
            bg_gain: 0.02,
            iob_discount: 1.0,
        }
    }
}

/// Context-dependent mitigation — the `f(ρ(µ(x)), u_t)` of Algorithm 1
/// that the paper stubs out with a fixed maximum rate.
///
/// On a predicted H2 the corrective rate is proportional to the BG
/// excess over target and *discounted by the insulin already on
/// board*, so mitigation of a false alarm with plenty of IOB pending
/// injects far less than the fixed-maximum policy would. On a
/// predicted H1 delivery is suspended (as in Algorithm 1 — there is no
/// way to remove insulin with a pump).
///
/// The mitigator keeps its own [`ContextBuilder`] over the same
/// sensor/actuator interface the monitor sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextMitigator {
    config: ContextMitigatorConfig,
    builder: ContextBuilder,
}

impl ContextMitigator {
    /// Creates the mitigator; its IOB estimate is relative to the
    /// configured basal.
    pub fn new(config: ContextMitigatorConfig) -> ContextMitigator {
        ContextMitigator {
            config,
            builder: ContextBuilder::new(config.basal),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ContextMitigatorConfig {
        &self.config
    }

    /// Advances the mitigator's context with this cycle's CGM reading.
    /// Call once per cycle, before [`mitigate`](Self::mitigate).
    pub fn observe_bg(&mut self, bg: MgDl) -> ContextVector {
        self.builder.observe_bg(bg)
    }

    /// Applies the context-dependent policy: corrects `commanded` if a
    /// hazard is predicted, otherwise passes it through.
    pub fn mitigate(
        &self,
        predicted: Option<Hazard>,
        ctx: &ContextVector,
        commanded: UnitsPerHour,
    ) -> UnitsPerHour {
        match predicted {
            None => commanded,
            Some(Hazard::H1) => UnitsPerHour(0.0),
            Some(Hazard::H2) => {
                let excess = (ctx.bg - self.config.target.value()).max(0.0);
                let pending = ctx.iob.max(0.0);
                let correction = self.config.bg_gain * excess - self.config.iob_discount * pending;
                let rate = (self.config.basal.value() + correction.max(0.0))
                    .clamp(self.config.basal.value(), self.config.max_rate.value());
                UnitsPerHour(rate)
            }
        }
    }

    /// Records what actually reached the pump this cycle.
    pub fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.builder.observe_delivery(delivered);
    }

    /// Resets for a fresh run.
    pub fn reset(&mut self) {
        self.builder.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{StepRecord, TraceMeta, Units};

    fn scs() -> Scs {
        Scs::with_default_thresholds(MgDl(110.0))
    }

    #[test]
    fn hms_covers_every_uca_rule() {
        let s = scs();
        let hms = Hms::for_scs(&s);
        assert_eq!(hms.rules.len(), s.rules.len());
        for r in &s.rules {
            let h = hms.rule_for(r.id).expect("rule missing from HMS");
            assert_eq!(h.hazard, r.hazard);
            assert!(!h.safe_actions.is_empty());
        }
    }

    #[test]
    fn h2_contexts_demand_more_insulin_h1_less() {
        let hms = Hms::for_scs(&scs());
        for rule in &hms.rules {
            match rule.hazard {
                Hazard::H2 => {
                    assert_eq!(rule.safe_actions, vec![ControlAction::IncreaseInsulin])
                }
                Hazard::H1 => {
                    assert!(rule.safe_actions.contains(&ControlAction::StopInsulin));
                    assert!(!rule.safe_actions.contains(&ControlAction::IncreaseInsulin));
                }
            }
        }
    }

    #[test]
    fn rule10_safe_set_is_exactly_stop() {
        let hms = Hms::for_scs(&scs());
        assert_eq!(
            hms.rule_for(10).unwrap().safe_actions,
            vec![ControlAction::StopInsulin]
        );
    }

    #[test]
    fn default_deadline_is_thirty_minutes() {
        let hms = Hms::for_scs(&scs());
        for r in &hms.rules {
            assert_eq!(r.ts_steps, DEFAULT_TS_STEPS);
            assert!((r.ts_minutes() - 30.0).abs() < 1e-12);
        }
    }

    /// Builds a minimal hazardous trace: fault at step `tf`, hazard
    /// onset at step `th`.
    fn hazard_trace(tf: u32, th: u32, hazard: Hazard, len: u32) -> SimTrace {
        let meta = TraceMeta {
            patient: "test/p0".into(),
            initial_bg: 120.0,
            fault_name: "max_rate".into(),
            fault_start: Some(Step(tf)),
            hazard_onset: Some(Step(th)),
            hazard_type: Some(hazard),
        };
        let mut trace = SimTrace::new(meta);
        for s in 0..len {
            let mut rec = StepRecord::blank(Step(s));
            rec.hazard = (s >= th).then_some(hazard);
            trace.records.push(rec);
        }
        trace
    }

    #[test]
    fn ts_learning_tracks_the_tth_quantile() {
        let mut hms = Hms::for_scs(&scs());
        // H1 hazards with TTH of 20, 30, 40 steps.
        let traces = vec![
            hazard_trace(10, 30, Hazard::H1, 150),
            hazard_trace(10, 40, Hazard::H1, 150),
            hazard_trace(10, 50, Hazard::H1, 150),
        ];
        let updated = hms.learn_ts(&traces, &TsLearnConfig::default());
        assert!(updated > 0);
        // quantile 0.1 over {20,30,40} -> 20; x0.5 -> 10 steps.
        for r in hms.rules.iter().filter(|r| r.hazard == Hazard::H1) {
            assert_eq!(r.ts_steps, 10, "rule {}", r.uca_id);
        }
        // H2 rules saw no data and keep the default.
        for r in hms.rules.iter().filter(|r| r.hazard == Hazard::H2) {
            assert_eq!(r.ts_steps, DEFAULT_TS_STEPS);
        }
    }

    #[test]
    fn ts_learning_respects_bounds() {
        let mut hms = Hms::for_scs(&scs());
        let traces = vec![hazard_trace(10, 11, Hazard::H2, 150)]; // TTH = 1 step
        hms.learn_ts(&traces, &TsLearnConfig::default());
        for r in hms.rules.iter().filter(|r| r.hazard == Hazard::H2) {
            assert_eq!(r.ts_steps, 1, "floor applies");
        }
        let traces = vec![hazard_trace(0, 140, Hazard::H2, 150)]; // TTH = 140
        hms.learn_ts(&traces, &TsLearnConfig::default());
        for r in hms.rules.iter().filter(|r| r.hazard == Hazard::H2) {
            assert_eq!(r.ts_steps, 24, "ceiling applies");
        }
    }

    #[test]
    fn ts_learning_ignores_negative_tth() {
        // Hazard before the fault (the paper's 7.1% cases) must not
        // drive the deadline.
        let mut hms = Hms::for_scs(&scs());
        let traces = vec![hazard_trace(50, 20, Hazard::H1, 150)];
        let updated = hms.learn_ts(&traces, &TsLearnConfig::default());
        assert_eq!(updated, 0);
    }

    #[test]
    fn eq2_formula_has_since_shape() {
        let s = scs();
        let hms = Hms::for_scs(&s);
        let formulas = hms.to_stl(&s, 149);
        assert_eq!(formulas.len(), 12);
        for f in &formulas {
            match f {
                Formula::Globally(_, inner) => {
                    assert!(
                        matches!(**inner, Formula::Since(_, _)),
                        "Eq. 2 body must be a Since"
                    );
                }
                other => panic!("Eq. 2 must be G-rooted, got {other:?}"),
            }
            let signals = f.signals();
            assert!(signals.contains(&"u".to_string()));
            assert!(signals.contains(&"bg".to_string()));
        }
    }

    #[test]
    fn response_variant_is_satisfied_by_prompt_mitigation() {
        use aps_stl::Trace;
        let s = scs();
        let hms = Hms::for_scs(&s);
        // A trace that never enters any unsafe context trivially
        // satisfies the response pattern.
        let n = 20;
        let mut trace = Trace::new(CONTROL_CYCLE_MINUTES);
        trace.push_signal("bg", vec![110.0; n]);
        trace.push_signal("bg'", vec![0.0; n]);
        trace.push_signal("iob", vec![0.0; n]);
        trace.push_signal("iob'", vec![0.0; n]);
        trace.push_signal("u", vec![4.0; n]);
        for f in hms.response_stl(&s, n - 1) {
            assert!(f.sat(&trace, 0), "vacuous satisfaction failed: {f:?}");
        }
    }

    /// Trace that enters rule 10's context (BG below the 70 mg/dL
    /// floor) at step 5 and either stops insulin at step 7 or never.
    fn low_bg_trace(stops: bool) -> SimTrace {
        let mut trace = SimTrace::new(TraceMeta::default());
        for s in 0..20u32 {
            let mut rec = StepRecord::blank(Step(s));
            rec.bg = MgDl(if s >= 5 { 60.0 } else { 120.0 });
            rec.iob = Units(0.0);
            rec.action = if stops && s >= 7 {
                ControlAction::StopInsulin
            } else {
                ControlAction::KeepInsulin
            };
            trace.records.push(rec);
        }
        trace
    }

    #[test]
    fn check_trace_honors_prompt_stop() {
        let s = scs();
        let hms = Hms::for_scs(&s);
        let report = hms.check_trace(&s, &low_bg_trace(true));
        assert!(report.entries >= 1);
        assert!(report.is_satisfied(), "violations: {:?}", report.violations);
    }

    #[test]
    fn check_trace_flags_missed_deadline() {
        let s = scs();
        let hms = Hms::for_scs(&s);
        let report = hms.check_trace(&s, &low_bg_trace(false));
        assert!(!report.is_satisfied());
        let v = &report.violations[0];
        assert_eq!(v.rule_id, 10);
        assert_eq!(v.entered_at, Step(5));
        assert_eq!(v.deadline, Step(5 + DEFAULT_TS_STEPS as u32));
    }

    #[test]
    fn check_trace_does_not_count_truncated_windows() {
        let s = scs();
        let hms = Hms::for_scs(&s);
        // Context entered 2 steps before the end: deadline falls past
        // the trace, so it is neither honored nor violated.
        let mut trace = SimTrace::new(TraceMeta::default());
        for s in 0..20u32 {
            let mut rec = StepRecord::blank(Step(s));
            rec.bg = MgDl(if s >= 18 { 60.0 } else { 120.0 });
            rec.action = ControlAction::KeepInsulin;
            trace.records.push(rec);
        }
        let report = hms.check_trace(&s, &trace);
        assert!(report.is_satisfied());
        assert_eq!(report.truncated, 1);
    }

    #[test]
    fn context_series_matches_finite_differences() {
        let mut trace = SimTrace::new(TraceMeta::default());
        for (i, (bg, iob)) in [(120.0, 0.0), (130.0, 0.5), (125.0, 0.4)]
            .iter()
            .enumerate()
        {
            let mut rec = StepRecord::blank(Step(i as u32));
            rec.bg = MgDl(*bg);
            rec.iob = Units(*iob);
            trace.records.push(rec);
        }
        let ctx = context_series(&trace);
        assert_eq!(ctx.len(), 3);
        assert_eq!(ctx[0].dbg, 0.0);
        assert_eq!(ctx[1].dbg, 10.0);
        assert_eq!(ctx[2].dbg, -5.0);
        assert!((ctx[1].diob - 0.5 / CONTROL_CYCLE_MINUTES).abs() < 1e-12);
    }

    fn mitigator() -> ContextMitigator {
        ContextMitigator::new(ContextMitigatorConfig::for_run(
            MgDl(110.0),
            UnitsPerHour(1.0),
            UnitsPerHour(6.0),
        ))
    }

    fn ctx(bg: f64, iob: f64) -> ContextVector {
        ContextVector {
            bg,
            dbg: 0.0,
            iob,
            diob: 0.0,
        }
    }

    #[test]
    fn context_mitigation_passes_through_without_alert() {
        let m = mitigator();
        assert_eq!(
            m.mitigate(None, &ctx(250.0, 0.0), UnitsPerHour(1.3)),
            UnitsPerHour(1.3)
        );
    }

    #[test]
    fn context_mitigation_suspends_on_h1() {
        let m = mitigator();
        assert_eq!(
            m.mitigate(Some(Hazard::H1), &ctx(60.0, 3.0), UnitsPerHour(2.0)),
            UnitsPerHour(0.0)
        );
    }

    #[test]
    fn h2_correction_scales_with_bg_excess() {
        let m = mitigator();
        let mild = m.mitigate(Some(Hazard::H2), &ctx(160.0, 0.0), UnitsPerHour(0.0));
        let severe = m.mitigate(Some(Hazard::H2), &ctx(300.0, 0.0), UnitsPerHour(0.0));
        assert!(severe > mild, "severe {severe:?} vs mild {mild:?}");
        // 0.02 U/h per mg/dL over 110: 160 -> 1 + 1.0 = 2.0 U/h.
        assert!((mild.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn h2_correction_is_discounted_by_iob() {
        let m = mitigator();
        let no_iob = m.mitigate(Some(Hazard::H2), &ctx(300.0, 0.0), UnitsPerHour(0.0));
        let with_iob = m.mitigate(Some(Hazard::H2), &ctx(300.0, 2.0), UnitsPerHour(0.0));
        assert!(with_iob < no_iob);
        // Enough IOB pending: correction collapses to basal, unlike the
        // fixed-maximum policy.
        let flooded = m.mitigate(Some(Hazard::H2), &ctx(130.0, 5.0), UnitsPerHour(0.0));
        assert_eq!(flooded, UnitsPerHour(1.0));
    }

    #[test]
    fn h2_correction_respects_ceiling_and_floor() {
        let m = mitigator();
        let huge = m.mitigate(Some(Hazard::H2), &ctx(600.0, 0.0), UnitsPerHour(0.0));
        assert_eq!(huge, UnitsPerHour(6.0));
        // BG below target but H2 predicted (context edge): floor at basal.
        let below = m.mitigate(Some(Hazard::H2), &ctx(100.0, 0.0), UnitsPerHour(0.0));
        assert_eq!(below, UnitsPerHour(1.0));
    }

    #[test]
    fn mitigator_context_tracks_deliveries() {
        let mut m = mitigator();
        m.observe_bg(MgDl(200.0));
        for _ in 0..6 {
            m.observe_delivery(UnitsPerHour(5.0));
        }
        let c = m.observe_bg(MgDl(200.0));
        assert!(c.iob > 0.2, "iob {}", c.iob);
        m.reset();
        let c = m.observe_bg(MgDl(200.0));
        assert!(c.iob < 0.05);
    }
}
