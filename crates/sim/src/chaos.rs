//! Deterministic chaos injection for the campaign executor.
//!
//! A [`ChaosConfig`] makes the executor hostile on purpose: workers
//! panic, jobs stall, specs arrive poisoned — under a *deterministic*
//! schedule. Every decision is a pure function of `(seed, job_index,
//! attempt)`, derived through a per-decision [`ChaCha8Rng`]; nothing
//! depends on thread interleaving or wall-clock time, so the same
//! chaos seed produces the same error ledger byte for byte, however
//! many workers run and however the scheduler slices them.
//!
//! This is a test/hardening harness, not a production feature: the
//! fault-tolerant executor accepts it as an `Option` that defaults to
//! `None` and costs nothing when absent.

use rand::RngCore;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Probabilities and magnitudes of injected executor faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the chaos schedule.
    pub seed: u64,
    /// Per-attempt probability that the worker panics mid-job.
    pub panic_probability: f64,
    /// Per-attempt probability of an artificial delay before the job.
    pub delay_probability: f64,
    /// Upper bound on the artificial delay, milliseconds.
    pub max_delay_ms: u64,
    /// Per-attempt probability that the job's fault scenario is
    /// replaced with a structurally invalid (poisoned) spec.
    pub poison_probability: f64,
}

impl ChaosConfig {
    /// A moderately hostile default schedule: with `p = 0.15` per
    /// hazard class a 31-job campaign sees several of each, while
    /// `max_attempts = 3` retries still let most jobs complete.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_probability: 0.15,
            delay_probability: 0.15,
            max_delay_ms: 5,
            poison_probability: 0.10,
        }
    }

    /// The chaos decisions for one `(job, attempt)` pair.
    ///
    /// Decisions are drawn from a fresh [`ChaCha8Rng`] seeded from
    /// `(seed, job_index, attempt)`, so they are identical on every
    /// run and on every executor (serial or parallel, any worker
    /// count) — and a retry of the same job sees a *different* draw,
    /// which is what lets retries clear transient chaos.
    pub fn plan(&self, job_index: usize, attempt: u32) -> ChaosPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.seed, job_index as u64, attempt.into()));
        // Draw order is part of the schedule contract: delay, panic,
        // poison.
        let delay_ms = if unit(&mut rng) < self.delay_probability && self.max_delay_ms > 0 {
            1 + rng.next_u64() % self.max_delay_ms
        } else {
            0
        };
        let panic = unit(&mut rng) < self.panic_probability;
        let poison = unit(&mut rng) < self.poison_probability;
        ChaosPlan {
            delay_ms,
            panic,
            poison,
        }
    }
}

/// What chaos does to one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Sleep this long before running the job (0 = no delay).
    pub delay_ms: u64,
    /// Panic instead of completing the job.
    pub panic: bool,
    /// Replace the job's fault scenario with a poisoned spec.
    pub poison: bool,
}

impl ChaosPlan {
    /// No chaos at all (what an absent config means).
    pub const NONE: ChaosPlan = ChaosPlan {
        delay_ms: 0,
        panic: false,
        poison: false,
    };
}

/// SplitMix64-style mix of the seed with the job/attempt coordinates.
fn mix(seed: u64, job: u64, attempt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(job.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the top 53 bits of one `u64`.
fn unit(rng: &mut ChaCha8Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The prefix every chaos-injected panic message carries, so tooling
/// (and [`silence_injected_panics`]) can tell them from real bugs.
pub const INJECTED_PANIC_PREFIX: &str = "chaos: injected";

/// Installs a **process-global** panic hook that swallows the default
/// "thread panicked" stderr report for chaos-injected panics (their
/// message starts with [`INJECTED_PANIC_PREFIX`]) and delegates every
/// other panic to the previously installed hook.
///
/// The executor catches injected panics either way — this only keeps
/// chaos campaigns from spraying backtraces for faults that are part
/// of the schedule. Because the hook is global, call it from binaries
/// and examples only, never from library code or tests.
pub fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
            })
            .unwrap_or(false);
        if !injected {
            previous(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_coordinates() {
        let cfg = ChaosConfig::with_seed(42);
        for job in 0..64 {
            for attempt in 1..4 {
                assert_eq!(cfg.plan(job, attempt), cfg.plan(job, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChaosConfig::with_seed(1);
        let b = ChaosConfig::with_seed(2);
        let differs = (0..256).any(|j| a.plan(j, 1) != b.plan(j, 1));
        assert!(differs, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn retries_see_fresh_draws() {
        let cfg = ChaosConfig::with_seed(7);
        // Some job that panics on attempt 1 must not panic on every
        // later attempt — otherwise retries could never clear chaos.
        let cleared = (0..512).any(|j| cfg.plan(j, 1).panic && !cfg.plan(j, 2).panic);
        assert!(cleared, "no panicking job ever cleared on retry");
    }

    #[test]
    fn rates_are_roughly_calibrated() {
        let cfg = ChaosConfig::with_seed(99);
        let n = 2_000;
        let panics = (0..n).filter(|&j| cfg.plan(j, 1).panic).count();
        let delays = (0..n).filter(|&j| cfg.plan(j, 1).delay_ms > 0).count();
        let poisons = (0..n).filter(|&j| cfg.plan(j, 1).poison).count();
        let frac = |c: usize| c as f64 / n as f64;
        assert!((0.10..0.20).contains(&frac(panics)), "{}", frac(panics));
        assert!((0.10..0.20).contains(&frac(delays)), "{}", frac(delays));
        assert!((0.05..0.15).contains(&frac(poisons)), "{}", frac(poisons));
    }

    #[test]
    fn delays_respect_the_bound() {
        let cfg = ChaosConfig {
            max_delay_ms: 3,
            delay_probability: 1.0,
            ..ChaosConfig::with_seed(5)
        };
        for j in 0..128 {
            let d = cfg.plan(j, 1).delay_ms;
            assert!((1..=3).contains(&d), "delay {d} out of bounds");
        }
        let none = ChaosConfig {
            max_delay_ms: 0,
            delay_probability: 1.0,
            ..ChaosConfig::with_seed(5)
        };
        assert_eq!(none.plan(0, 1).delay_ms, 0);
    }
}
