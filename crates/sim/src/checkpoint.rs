//! Versioned campaign checkpoints for kill/resume.
//!
//! A [`CampaignCheckpoint`] captures everything a campaign needs to
//! continue after its process dies: which jobs are done (a bitmap),
//! which failed (the [`ErrorLedger`]), and the aggregate partials —
//! including a rolling digest of every emitted trace, which is what
//! makes resume *provably* bit-identical to an uninterrupted run (the
//! kill-at-every-checkpoint equivalence test compares final digests).
//!
//! The on-disk format is versioned serde JSON written atomically
//! (temp file + rename), and the container carries
//! `#[serde(default)]` so a checkpoint written by an older build that
//! lacks newer fields still loads.
//!
//! Numeric caveat: the vendored serde shim routes all numbers through
//! `f64`, which is exact only below 2^53 — so the 64-bit spec hash,
//! trace digest, and chaos seed are stored as hex *strings*, and the
//! completed-job bitmap as 32-bit words.

use crate::outcome::ErrorLedger;
use aps_types::SimTrace;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be written, read, or used.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem or serialization failure.
    Io {
        /// The checkpoint path.
        path: String,
        /// What went wrong.
        detail: String,
    },
    /// The file's format version is newer than this build supports.
    Version {
        /// Version found in the file.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The checkpoint does not belong to the campaign being resumed
    /// (different spec, chaos seed, or job count).
    Mismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint I/O error at `{path}`: {detail}")
            }
            CheckpointError::Version { found, supported } => write!(
                f,
                "checkpoint format version {found} is newer than the supported version {supported}"
            ),
            CheckpointError::Mismatch { detail } => {
                write!(f, "checkpoint does not match this campaign: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over a byte slice, continuing from `acc`.
fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// FNV-1a offset basis — the seed for every rolling digest here.
pub const DIGEST_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds one `u64` into a rolling FNV-1a accumulator.
fn fold_u64(acc: u64, x: u64) -> u64 {
    fnv1a(acc, &x.to_le_bytes())
}

/// Folds a string into a rolling FNV-1a accumulator.
fn fold_str(acc: u64, s: &str) -> u64 {
    fnv1a(fnv1a(acc, s.as_bytes()), &[0xFF])
}

/// `fmt::Write` adapter that feeds formatted output straight into the
/// FNV accumulator — folding `Display` values costs no allocation,
/// which keeps digest upkeep invisible next to the simulation itself
/// (the bench guard holds the executor to ≥ 80% of its committed
/// speedup).
struct FnvWriter(u64);

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0 = fnv1a(self.0, s.as_bytes());
        Ok(())
    }
}

/// Folds a `Display` value (plus a terminator byte) without
/// allocating.
fn fold_display(acc: u64, value: &dyn fmt::Display) -> u64 {
    use fmt::Write as _;
    let mut w = FnvWriter(acc);
    let _ = write!(w, "{value}");
    fnv1a(w.0, &[0xFF])
}

/// 64-bit content hash of anything serde-serializable (FNV-1a over
/// its canonical JSON). Used to bind a checkpoint to its
/// [`CampaignSpec`](crate::campaign::CampaignSpec).
pub fn spec_hash<T: Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).unwrap_or_default();
    fnv1a(DIGEST_SEED, json.as_bytes())
}

/// Cheap per-trace content digest: folds every per-cycle numeric
/// column (exact f64 bits), the action/alert/hazard columns, and the
/// trace identity. Two traces with equal digests at every job index
/// witness a bit-identical campaign.
pub fn trace_digest(trace: &SimTrace) -> u64 {
    let mut acc = DIGEST_SEED;
    acc = fold_str(acc, &trace.meta.patient);
    acc = fold_str(acc, &trace.meta.fault_name);
    acc = fold_u64(acc, trace.meta.initial_bg.to_bits());
    for r in trace.iter() {
        acc = fold_u64(acc, u64::from(r.step.0));
        acc = fold_u64(acc, r.bg.value().to_bits());
        acc = fold_u64(acc, r.bg_true.value().to_bits());
        acc = fold_u64(acc, r.iob.value().to_bits());
        acc = fold_u64(acc, r.commanded.value().to_bits());
        acc = fold_u64(acc, r.delivered.value().to_bits());
        acc = fold_display(acc, &r.action);
        acc = fold_u64(acc, u64::from(r.fault_active));
        acc = match r.hazard {
            Some(h) => fold_display(acc, &h),
            None => fold_str(acc, ""),
        };
        acc = match r.alert {
            Some(h) => fold_display(acc, &h),
            None => fold_str(acc, ""),
        };
    }
    for track in &trace.monitor_tracks {
        acc = fold_str(acc, &track.monitor);
        for a in &track.alerts {
            acc = match a {
                Some(h) => fold_display(acc, h),
                None => fold_str(acc, ""),
            };
        }
    }
    acc
}

/// Renders a `u64` as fixed-width lowercase hex (shim-safe storage).
pub fn to_hex(x: u64) -> String {
    format!("{x:016x}")
}

/// Parses [`to_hex`] output back to a `u64`.
pub fn from_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// Completed-job set as packed 32-bit words (32-bit, not 64-bit,
/// because the vendored serde shim stores numbers as `f64`, exact
/// only below 2^53).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct JobBitmap {
    /// Packed bits, little-endian within each word.
    pub words: Vec<u32>,
    /// Number of addressable jobs.
    pub len: usize,
}

impl JobBitmap {
    /// An all-clear bitmap for `len` jobs.
    pub fn new(len: usize) -> JobBitmap {
        JobBitmap {
            words: vec![0; len.div_ceil(32)],
            len,
        }
    }

    /// Marks job `i` completed.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "job index {i} out of range ({})", self.len);
        self.words[i / 32] |= 1 << (i % 32);
    }

    /// Whether job `i` is completed.
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 32] >> (i % 32)) & 1 == 1
    }

    /// Number of completed jobs.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Aggregate statistics accumulated so far, continued on resume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct AggregatePartials {
    /// Jobs that produced a trace.
    pub completed_jobs: usize,
    /// Jobs that exhausted their attempts and failed.
    pub failed_jobs: usize,
    /// Completed jobs whose trace contains a labeled hazard.
    pub hazardous_jobs: usize,
    /// Rolling FNV-1a digest over every emitted outcome, in job
    /// order, as hex (see [`trace_digest`]).
    pub digest: String,
}

impl Default for AggregatePartials {
    fn default() -> AggregatePartials {
        AggregatePartials {
            completed_jobs: 0,
            failed_jobs: 0,
            hazardous_jobs: 0,
            digest: to_hex(DIGEST_SEED),
        }
    }
}

impl AggregatePartials {
    /// Folds one completed trace into the partials.
    pub fn fold_completed(&mut self, trace: &SimTrace) {
        self.completed_jobs += 1;
        if trace.is_hazardous() {
            self.hazardous_jobs += 1;
        }
        let acc = from_hex(&self.digest).unwrap_or(DIGEST_SEED);
        self.digest = to_hex(fold_u64(acc, trace_digest(trace)));
    }

    /// Folds one failed job into the partials (the error's rendered
    /// message keeps the digest sensitive to failure causes).
    pub fn fold_failed(&mut self, error_message: &str, attempts: u32) {
        self.failed_jobs += 1;
        let acc = from_hex(&self.digest).unwrap_or(DIGEST_SEED);
        self.digest = to_hex(fold_u64(fold_str(acc, error_message), u64::from(attempts)));
    }
}

/// Versioned snapshot of a campaign in flight.
///
/// The container carries `#[serde(default)]`: fields added in future
/// versions deserialize to their defaults when absent, so old
/// checkpoints keep loading (forward compatibility is pinned by
/// `tests/checkpoint_roundtrip.rs`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct CampaignCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Hex [`spec_hash`] of the campaign spec this belongs to.
    pub spec_hash: String,
    /// Hex chaos seed, if the run had chaos injection (`None`
    /// otherwise); a resume must use the same chaos schedule.
    pub chaos_seed: Option<String>,
    /// Total jobs in the campaign's deterministic order.
    pub total_jobs: usize,
    /// Which jobs are already done (completed *or* deterministically
    /// failed — both are final).
    pub completed: JobBitmap,
    /// Failures so far, in job order.
    pub ledger: ErrorLedger,
    /// Aggregates so far.
    pub partials: AggregatePartials,
}

impl CampaignCheckpoint {
    /// A fresh checkpoint for a campaign of `total_jobs` jobs.
    pub fn fresh(spec_hash_hex: String, chaos_seed: Option<u64>, total_jobs: usize) -> Self {
        CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            spec_hash: spec_hash_hex,
            chaos_seed: chaos_seed.map(to_hex),
            total_jobs,
            completed: JobBitmap::new(total_jobs),
            ledger: ErrorLedger::new(),
            partials: AggregatePartials::default(),
        }
    }

    /// Writes the checkpoint atomically (temp file in the same
    /// directory, then rename) so a crash mid-write never leaves a
    /// torn checkpoint behind.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io_err = |detail: String| CheckpointError::Io {
            path: path.display().to_string(),
            detail,
        };
        let json = serde_json::to_string(self).map_err(|e| io_err(format!("{e:?}")))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, json.as_bytes()).map_err(|e| io_err(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(e.to_string()))
    }

    /// Loads and version-checks a checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] for unreadable/unparsable files,
    /// [`CheckpointError::Version`] for files written by a newer
    /// format.
    pub fn load(path: &Path) -> Result<CampaignCheckpoint, CheckpointError> {
        let io_err = |detail: String| CheckpointError::Io {
            path: path.display().to_string(),
            detail,
        };
        let json = std::fs::read_to_string(path).map_err(|e| io_err(e.to_string()))?;
        let ckpt: CampaignCheckpoint =
            serde_json::from_str(&json).map_err(|e| io_err(format!("{e:?}")))?;
        if ckpt.version > CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: ckpt.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(ckpt)
    }

    /// Checks that this checkpoint belongs to the campaign described
    /// by (`spec_hash_hex`, `chaos_seed`, `total_jobs`).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the first disagreement.
    pub fn validate_for(
        &self,
        spec_hash_hex: &str,
        chaos_seed: Option<u64>,
        total_jobs: usize,
    ) -> Result<(), CheckpointError> {
        if self.spec_hash != spec_hash_hex {
            return Err(CheckpointError::Mismatch {
                detail: format!(
                    "spec hash {} in checkpoint, campaign has {}",
                    self.spec_hash, spec_hash_hex
                ),
            });
        }
        let seed_hex = chaos_seed.map(to_hex);
        if self.chaos_seed != seed_hex {
            return Err(CheckpointError::Mismatch {
                detail: format!(
                    "chaos seed {:?} in checkpoint, campaign has {:?}",
                    self.chaos_seed, seed_hex
                ),
            });
        }
        if self.total_jobs != total_jobs {
            return Err(CheckpointError::Mismatch {
                detail: format!(
                    "{} total jobs in checkpoint, campaign has {}",
                    self.total_jobs, total_jobs
                ),
            });
        }
        if self.completed.len != total_jobs {
            return Err(CheckpointError::Mismatch {
                detail: format!(
                    "bitmap addresses {} jobs, campaign has {}",
                    self.completed.len, total_jobs
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_count() {
        let mut b = JobBitmap::new(70);
        assert_eq!(b.words.len(), 3);
        assert_eq!(b.count(), 0);
        for i in [0, 31, 32, 63, 69] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count(), 5);
        assert!(!b.get(70), "out of range reads as not-completed");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_set_out_of_range_panics() {
        JobBitmap::new(4).set(4);
    }

    #[test]
    fn hex_roundtrip_preserves_all_64_bits() {
        for x in [
            0u64,
            1,
            u64::MAX,
            0xCBF2_9CE4_8422_2325,
            1 << 53,
            (1 << 53) + 1,
        ] {
            assert_eq!(from_hex(&to_hex(x)), Some(x));
        }
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn partials_digest_distinguishes_failure_causes() {
        let mut a = AggregatePartials::default();
        let mut b = AggregatePartials::default();
        assert_eq!(a, b);
        a.fold_failed("job panicked: chaos", 2);
        b.fold_failed("non-finite ODE state at cycle 3", 2);
        assert_ne!(a.digest, b.digest);
        assert_eq!(a.failed_jobs, 1);
    }

    #[test]
    fn checkpoint_save_load_roundtrip_and_validation() {
        let dir = std::env::temp_dir().join("aps_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut ckpt = CampaignCheckpoint::fresh(to_hex(0xDEAD_BEEF), Some(u64::MAX), 31);
        ckpt.completed.set(0);
        ckpt.completed.set(30);
        ckpt.partials.fold_failed("boom", 1);
        ckpt.save(&path).unwrap();
        let back = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt, back);
        assert!(back
            .validate_for(&to_hex(0xDEAD_BEEF), Some(u64::MAX), 31)
            .is_ok());
        assert!(matches!(
            back.validate_for(&to_hex(0xDEAD_BEEF), Some(7), 31),
            Err(CheckpointError::Mismatch { .. })
        ));
        assert!(matches!(
            back.validate_for(&to_hex(1), Some(u64::MAX), 31),
            Err(CheckpointError::Mismatch { .. })
        ));
        assert!(matches!(
            back.validate_for(&to_hex(0xDEAD_BEEF), Some(u64::MAX), 32),
            Err(CheckpointError::Mismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newer_version_is_rejected() {
        let dir = std::env::temp_dir().join("aps_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        let mut ckpt = CampaignCheckpoint::fresh(to_hex(1), None, 4);
        ckpt.version = CHECKPOINT_VERSION + 1;
        ckpt.save(&path).unwrap();
        assert!(matches!(
            CampaignCheckpoint::load(&path),
            Err(CheckpointError::Version { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_save_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("aps_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.json");
        CampaignCheckpoint::fresh(to_hex(2), None, 4)
            .save(&path)
            .unwrap();
        assert!(path.exists());
        assert!(!dir.join("atomic.json.tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
