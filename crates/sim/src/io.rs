//! Trace persistence: CSV for analysis tools, JSONL for lossless
//! round-trips.
//!
//! Campaigns produce thousands of [`SimTrace`]s; this module writes
//! them out so plots and post-hoc analyses (pandas, gnuplot, another
//! run of this harness) do not need to re-simulate. CSV is one row per
//! control cycle with the trace identity repeated per row (tidy/long
//! format); JSONL is one serde-serialized trace per line and reads
//! back losslessly.

use aps_types::SimTrace;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The CSV header written by [`write_csv`].
pub const CSV_HEADER: &str = "patient,fault,initial_bg,step,bg,bg_true,iob,\
commanded,delivered,action,fault_active,hazard,alert";

/// Serializes traces to tidy CSV (one row per control cycle).
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_csv<W: Write>(traces: &[SimTrace], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{CSV_HEADER}")?;
    for trace in traces {
        let meta = &trace.meta;
        for rec in trace.iter() {
            // Rows stream straight into the BufWriter: no per-row
            // String, no unbounded intermediate on cohort-scale dumps.
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                meta.patient,
                if meta.fault_name.is_empty() {
                    "none"
                } else {
                    &meta.fault_name
                },
                meta.initial_bg,
                rec.step.0,
                rec.bg.value(),
                rec.bg_true.value(),
                rec.iob.value(),
                rec.commanded.value(),
                rec.delivered.value(),
                rec.action,
                rec.fault_active,
                rec.hazard.map(|h| h.to_string()).unwrap_or_default(),
                rec.alert.map(|h| h.to_string()).unwrap_or_default(),
            )?;
        }
    }
    w.flush()
}

/// Writes traces as JSON Lines (one trace per line, lossless).
///
/// # Errors
///
/// Returns I/O errors from the writer; serialization of a `SimTrace`
/// itself cannot fail.
pub fn write_jsonl<W: Write>(traces: &[SimTrace], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for trace in traces {
        let line = serde_json::to_string(trace)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// Reads traces back from JSON Lines produced by [`write_jsonl`].
///
/// Blank lines are skipped, so files remain `cat`-concatenable.
///
/// # Errors
///
/// Returns an error for unreadable input or a line that does not
/// deserialize to a `SimTrace` (the message names the line number).
pub fn read_jsonl<R: Read>(reader: R) -> io::Result<Vec<SimTrace>> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let trace: SimTrace = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
        })?;
        out.push(trace);
    }
    Ok(out)
}

/// Convenience: writes traces to a JSONL file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_jsonl<P: AsRef<Path>>(traces: &[SimTrace], path: P) -> io::Result<()> {
    write_jsonl(traces, std::fs::File::create(path)?)
}

/// Convenience: loads traces from a JSONL file at `path`.
///
/// # Errors
///
/// Propagates file-open and parse errors.
pub fn load_jsonl<P: AsRef<Path>>(path: P) -> io::Result<Vec<SimTrace>> {
    read_jsonl(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignSpec};
    use crate::platform::Platform;

    fn small_traces() -> Vec<SimTrace> {
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![120.0],
            steps: 30,
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        };
        run_campaign(&spec, None).into_iter().take(3).collect()
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let traces = small_traces();
        let mut buf = Vec::new();
        write_jsonl(&traces, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(traces, back);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let traces = small_traces();
        let mut buf = Vec::new();
        write_jsonl(&traces, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let mut doubled = buf.clone();
        doubled.extend_from_slice(&buf);
        let back = read_jsonl(doubled.as_slice()).unwrap();
        assert_eq!(back.len(), traces.len() * 2);
    }

    #[test]
    fn jsonl_reports_bad_line_number() {
        let err = read_jsonl("{\"not\": \"a trace\"}\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn csv_has_header_and_one_row_per_cycle() {
        let traces = small_traces();
        let mut buf = Vec::new();
        write_csv(&traces, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let rows = lines.count();
        let cycles: usize = traces.iter().map(|t| t.len()).sum();
        assert_eq!(rows, cycles);
    }

    #[test]
    fn csv_fields_are_column_aligned() {
        let traces = small_traces();
        let mut buf = Vec::new();
        write_csv(&traces, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let columns = CSV_HEADER.split(',').count();
        for (i, line) in text.lines().enumerate() {
            assert_eq!(
                line.split(',').count(),
                columns,
                "row {i} has the wrong arity: {line}"
            );
        }
    }

    #[test]
    fn file_helpers_roundtrip() {
        let traces = small_traces();
        let dir = std::env::temp_dir().join("aps_sim_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.jsonl");
        save_jsonl(&traces, &path).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(traces, back);
        std::fs::remove_file(&path).ok();
    }
}
