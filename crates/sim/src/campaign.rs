//! Fault-injection campaign runner.
//!
//! Expands a [`CampaignSpec`] into the grid of (patient × initial BG ×
//! fault scenario) runs — plus optional fault-free runs — and executes
//! them, optionally in parallel with scoped worker threads. Monitors
//! are created per run through a [`MonitorFactory`], since a
//! patient-specific monitor needs the run's basal/target context.
//!
//! Results can be consumed three ways, all in the same deterministic
//! job order: materialized ([`run_campaign`] /
//! [`run_campaign_serial`]), streamed into a sink with bounded memory
//! ([`run_campaign_with`], parallel), or pulled lazily one trace at a
//! time ([`CampaignStream`], serial).
//!
//! # Fault tolerance
//!
//! [`run_campaign_resumable`] (and its collecting wrapper
//! [`run_campaign_ft`]) is the hardened execution path: every job runs
//! behind `catch_unwind` with its spec validated first, failures retry
//! under a [`RetryPolicy`] with bounded backoff, and whatever still
//! fails becomes a [`JobOutcome::Failed`] entry in the campaign's
//! [`ErrorLedger`] — the campaign degrades to partial results plus a
//! machine-readable ledger instead of a torn-down executor. With a
//! [`CheckpointPolicy`] the executor snapshots a versioned
//! [`CampaignCheckpoint`] every N completed jobs, and a later run can
//! resume from it, bit-identical to an uninterrupted run (pinned by
//! the kill-at-every-checkpoint test in `tests/campaign_ft.rs`). A
//! test-only [`ChaosConfig`] injects
//! deterministic worker panics, delays, and poisoned specs to exercise
//! all of the above.

use crate::chaos::{ChaosConfig, ChaosPlan};
use crate::checkpoint::{
    spec_hash, to_hex, AggregatePartials, CampaignCheckpoint, CheckpointError, JobBitmap,
    CHECKPOINT_VERSION,
};
use crate::closed_loop::{try_run, LoopConfig};
use crate::outcome::{ErrorLedger, JobOutcome, LedgerEntry, RetryPolicy, SimError};
use crate::platform::Platform;
use aps_core::hms::ContextMitigatorConfig;
use aps_core::mitigation::Mitigator;
use aps_core::monitors::HazardMonitor;
use aps_fault::{campaign_grid, CampaignConfig, FaultInjector, FaultKind, FaultScenario};
use aps_glucose::sensor::CgmConfig;
use aps_types::{MgDl, SimTrace, Step, UnitsPerHour};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Context handed to the monitor factory for each run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCtx {
    /// Qualified patient name.
    pub patient: String,
    /// Controller basal rate for this patient.
    pub basal: UnitsPerHour,
    /// Controller regulation target.
    pub target: MgDl,
    /// Maximum mitigation rate for this patient.
    pub max_rate: UnitsPerHour,
}

/// Creates a fresh monitor for one run (monitors are stateful).
pub type MonitorFactory<'a> = dyn Fn(&ScenarioCtx) -> Box<dyn HazardMonitor> + Sync + 'a;

/// What to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Which simulator/controller pairing.
    pub platform: Platform,
    /// Cohort indices to include (0..10).
    pub patient_indices: Vec<usize>,
    /// Initial glucose values (paper: seven values in 80–200).
    pub initial_bgs: Vec<f64>,
    /// Fault grid timing parameters.
    pub faults: CampaignConfig,
    /// Restrict injection to these variables (empty = the platform's
    /// primary input/state/output targets).
    pub fault_targets: Vec<String>,
    /// Also run one fault-free simulation per (patient, initial BG).
    pub include_fault_free: bool,
    /// Steps per simulation.
    pub steps: u32,
    /// Apply mitigation on monitor alerts.
    pub mitigate: bool,
    /// Use the context-dependent mitigation policy instead of the
    /// fixed Algorithm-1 rates (only meaningful with `mitigate`).
    #[serde(default)]
    pub context_mitigate: bool,
    /// Also sweep the extended fault-kind alphabet (`Scale`, `Drift`,
    /// `Noise`, `Intermittent`) over every target.
    #[serde(default)]
    pub extended_faults: bool,
    /// CGM model for every run (default: clean, the paper's
    /// assumption; used by the sensor-noise robustness ablation).
    #[serde(default)]
    pub cgm: CgmConfig,
}

impl CampaignSpec {
    /// A small smoke-test campaign: 2 patients, 1 initial BG, the
    /// quick fault grid.
    pub fn quick(platform: Platform) -> CampaignSpec {
        CampaignSpec {
            platform,
            patient_indices: vec![0, 1],
            initial_bgs: vec![120.0],
            faults: CampaignConfig::quick(),
            fault_targets: Vec::new(),
            include_fault_free: true,
            steps: 150,
            mitigate: false,
            context_mitigate: false,
            extended_faults: false,
            cgm: CgmConfig::default(),
        }
    }

    /// The paper-scale campaign: all 10 patients, 7 initial BG values,
    /// the full 9-combination fault grid over all injectable variables.
    pub fn paper(platform: Platform) -> CampaignSpec {
        CampaignSpec {
            platform,
            patient_indices: (0..10).collect(),
            initial_bgs: aps_glucose::patients::initial_bg_values().to_vec(),
            faults: CampaignConfig::paper(),
            fault_targets: Vec::new(),
            include_fault_free: true,
            steps: 150,
            mitigate: false,
            context_mitigate: false,
            extended_faults: false,
            cgm: CgmConfig::default(),
        }
    }

    /// [`quick`](CampaignSpec::quick) with the extended fault alphabet
    /// switched on — the widest per-run scenario diversity at smoke
    /// scale.
    pub fn extended(platform: Platform) -> CampaignSpec {
        CampaignSpec {
            extended_faults: true,
            ..CampaignSpec::quick(platform)
        }
    }
}

/// One expanded unit of campaign work: the coordinates of a single
/// closed-loop run in the (patient × initial BG × scenario) grid.
///
/// Public so session-level tooling (e.g. the bench crate's
/// monitor-bank zoo report) can walk the exact grid a
/// [`CampaignSpec`] describes while building its own
/// [`Session`](crate::session::Session)s per run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJob {
    /// Cohort index of the patient.
    pub patient_idx: usize,
    /// Initial true glucose (mg/dL).
    pub initial_bg: f64,
    /// Fault scenario (`None` = the fault-free run).
    pub scenario: Option<FaultScenario>,
}

type Job = CampaignJob;

/// Expands the spec into its deterministic job list (per patient and
/// initial BG: the fault-free run first, then every fault scenario).
/// [`run_campaign`] executes exactly this list, in this order.
pub fn campaign_jobs(spec: &CampaignSpec) -> Vec<CampaignJob> {
    expand(spec)
}

/// Expands the spec into its job list (fault-free first, then faults).
fn expand(spec: &CampaignSpec) -> Vec<Job> {
    let platform = spec.platform;
    let probe = platform.patients().remove(0);
    let all = if spec.extended_faults {
        platform.injection_targets_extended(probe.as_ref())
    } else {
        platform.injection_targets(probe.as_ref())
    };
    let targets: Vec<_> = if spec.fault_targets.is_empty() {
        // The platform's primary input/state/output trio.
        all.into_iter()
            .filter(|t| Platform::PRIMARY_TARGET_NAMES.contains(&t.name.as_str()))
            .collect()
    } else {
        all.into_iter()
            .filter(|t| spec.fault_targets.iter().any(|n| n == &t.name))
            .collect()
    };
    let scenarios = campaign_grid(&targets, &spec.faults);
    let mut jobs = Vec::new();
    for &pi in &spec.patient_indices {
        for &bg0 in &spec.initial_bgs {
            if spec.include_fault_free {
                jobs.push(Job {
                    patient_idx: pi,
                    initial_bg: bg0,
                    scenario: None,
                });
            }
            for s in &scenarios {
                jobs.push(Job {
                    patient_idx: pi,
                    initial_bg: bg0,
                    scenario: Some(s.clone()),
                });
            }
        }
    }
    jobs
}

/// Number of runs the spec will execute.
pub fn campaign_size(spec: &CampaignSpec) -> usize {
    expand(spec).len()
}

/// Runs one job on the calling thread, surfacing mid-run failures as
/// a typed error. [`run_job`] is the panicking wrapper the legacy
/// executors use.
fn try_run_job(
    spec: &CampaignSpec,
    job: &Job,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> Result<SimTrace, SimError> {
    let platform = spec.platform;
    let mut patient = platform.patients().remove(job.patient_idx);
    let mut controller = platform.controller_for(patient.as_ref());
    let ctx = ScenarioCtx {
        patient: patient.name().to_owned(),
        basal: platform.basal_for(patient.as_ref()),
        target: platform.target(),
        max_rate: platform.max_mitigation_rate(patient.as_ref()),
    };
    let mut monitor = monitor_factory.map(|f| f(&ctx));
    let mut injector = job.scenario.clone().map(FaultInjector::new);
    let config = LoopConfig {
        steps: spec.steps,
        initial_bg: job.initial_bg,
        mitigator: (spec.mitigate && !spec.context_mitigate)
            .then(|| Mitigator::paper_default(ctx.max_rate)),
        context_mitigation: (spec.mitigate && spec.context_mitigate)
            .then(|| ContextMitigatorConfig::for_run(ctx.target, ctx.basal, ctx.max_rate)),
        cgm: spec.cgm,
        ..LoopConfig::default()
    };
    try_run(
        patient.as_mut(),
        controller.as_mut(),
        monitor.as_deref_mut(),
        injector.as_mut(),
        &config,
    )
}

fn run_job(
    spec: &CampaignSpec,
    job: &Job,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> SimTrace {
    try_run_job(spec, job, monitor_factory).unwrap_or_else(|e| panic!("campaign job failed: {e}"))
}

/// Upper bound on the worker count, however it was requested. High
/// enough for any machine this runs on, low enough that a typo'd
/// `APS_WORKERS=2566` cannot fork-bomb the host.
pub const MAX_WORKERS: usize = 256;

/// Where the executor's worker count came from — surfaced in the
/// [`CampaignReport`] so a silent fallback to one worker (the old
/// `available_parallelism().unwrap_or(1)` behavior) is visible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerSource {
    /// `std::thread::available_parallelism` succeeded.
    Detected,
    /// A valid `APS_WORKERS` environment override.
    Env,
    /// An explicit [`CampaignOptions::workers`] override (e.g. the
    /// `repro campaign --workers` flag).
    Override,
    /// `APS_WORKERS` was set but unusable (non-numeric or zero); the
    /// executor fell back to detection.
    InvalidEnv {
        /// The rejected raw value.
        raw: String,
    },
    /// Parallelism detection failed; the executor fell back to one
    /// worker.
    DetectFailed {
        /// The detection error.
        detail: String,
    },
}

impl Default for WorkerSource {
    /// [`WorkerSource::Detected`] — the provenance every run has when
    /// nothing overrides detection (and what a missing field in an
    /// older recorded report deserializes to).
    fn default() -> WorkerSource {
        WorkerSource::Detected
    }
}

/// Resolves the worker count from an explicit override, the raw
/// `APS_WORKERS` value, and the detected parallelism — in that
/// precedence order. Pure (no environment reads), so it is directly
/// testable; [`worker_count`] is the environment-reading wrapper.
/// Every source is clamped to `1..=`[`MAX_WORKERS`].
pub fn worker_count_from(
    explicit: Option<usize>,
    env_raw: Option<&str>,
    detected: Result<usize, String>,
) -> (usize, WorkerSource) {
    if let Some(w) = explicit {
        return (w.clamp(1, MAX_WORKERS), WorkerSource::Override);
    }
    let invalid_env = match env_raw {
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(w) if w > 0 => return (w.clamp(1, MAX_WORKERS), WorkerSource::Env),
            _ => Some(raw.to_owned()),
        },
        None => None,
    };
    match (detected, invalid_env) {
        (Ok(n), None) => (n.clamp(1, MAX_WORKERS), WorkerSource::Detected),
        (Ok(n), Some(raw)) => (n.clamp(1, MAX_WORKERS), WorkerSource::InvalidEnv { raw }),
        (Err(detail), _) => (1, WorkerSource::DetectFailed { detail }),
    }
}

/// [`worker_count_from`] fed from the live environment:
/// `APS_WORKERS`, then `std::thread::available_parallelism`.
pub fn worker_count(explicit: Option<usize>) -> (usize, WorkerSource) {
    let env_raw = std::env::var("APS_WORKERS").ok();
    let detected = std::thread::available_parallelism()
        .map(|p| p.get())
        .map_err(|e| e.to_string());
    worker_count_from(explicit, env_raw.as_deref(), detected)
}

/// When and where to snapshot a [`CampaignCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file (written atomically, overwritten in place).
    pub path: PathBuf,
    /// Snapshot after every this-many completed jobs (≥ 1).
    pub every_jobs: usize,
}

/// Execution options for the fault-tolerant campaign path.
///
/// The default is indistinguishable from the legacy executor on the
/// clean path: one attempt, no deadline, no chaos, auto worker count,
/// no checkpointing.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Attempts per job and the backoff between them.
    pub retry: RetryPolicy,
    /// Per-job wall-clock budget. Checked *after* the attempt (jobs
    /// are not preempted), so an overrun fails the attempt
    /// deterministically in its effect but the *detection* depends on
    /// host timing — leave `None` (the default) for bit-reproducible
    /// campaigns.
    pub deadline: Option<Duration>,
    /// Deterministic executor-fault injection (tests/hardening only).
    pub chaos: Option<ChaosConfig>,
    /// Explicit worker-count override (`None` = `APS_WORKERS` env,
    /// then detection).
    pub workers: Option<usize>,
    /// Periodic checkpointing (`None` = never snapshot).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Cooperative cancellation: set the flag and workers stop
    /// claiming new jobs; already-claimed jobs finish and emit, then
    /// the executor returns with [`CampaignReport::cancelled`] set.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// What a fault-tolerant campaign run did, including the error
/// ledger. Serializable for machine consumption (`repro campaign`
/// prints it).
///
/// Container-level `#[serde(default)]` keeps recorded reports loading
/// as fields are added.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct CampaignReport {
    /// Total jobs in the campaign grid.
    pub total_jobs: usize,
    /// Jobs skipped because a resume checkpoint already had them.
    pub skipped_resumed: usize,
    /// Jobs that produced a trace (cumulative across resume
    /// segments).
    pub completed_jobs: usize,
    /// Jobs that exhausted their attempts (cumulative).
    pub failed_jobs: usize,
    /// Completed jobs whose trace contains a labeled hazard
    /// (cumulative).
    pub hazardous_jobs: usize,
    /// Rolling digest over every outcome in job order (hex); equal
    /// digests witness bit-identical campaigns.
    pub digest: String,
    /// Worker threads used.
    pub workers: usize,
    /// Where that worker count came from.
    pub worker_source: WorkerSource,
    /// Whether the run was cancelled before finishing.
    pub cancelled: bool,
    /// Every failed job, in job order.
    pub ledger: ErrorLedger,
}

/// Renders a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The poisoned spec chaos substitutes for a job's scenario:
/// structurally invalid on two axes (empty target, non-finite gain),
/// so spec validation must catch it before the engine runs.
fn poisoned_scenario() -> FaultScenario {
    FaultScenario::new("", FaultKind::Scale(f64::NAN), Step(0), 1)
}

/// Validates a job before simulation: finite initial BG and a
/// structurally valid scenario.
fn validate_job(job: &Job) -> Result<(), SimError> {
    if !job.initial_bg.is_finite() {
        return Err(SimError::InvalidSpec {
            detail: format!("initial_bg must be finite, got {}", job.initial_bg),
        });
    }
    if let Some(s) = &job.scenario {
        s.validate().map_err(|e| SimError::InvalidSpec {
            detail: e.to_string(),
        })?;
    }
    Ok(())
}

/// Runs one job with full isolation: spec validation, optional chaos
/// injection, `catch_unwind`, an optional post-hoc deadline check,
/// and retries under the options' [`RetryPolicy`].
fn run_job_checked(
    spec: &CampaignSpec,
    job: &Job,
    monitor_factory: Option<&MonitorFactory<'_>>,
    options: &CampaignOptions,
    job_index: usize,
) -> JobOutcome {
    let mut attempt: u32 = 1;
    loop {
        let plan = options
            .chaos
            .as_ref()
            .map(|c| c.plan(job_index, attempt))
            .unwrap_or(ChaosPlan::NONE);
        if plan.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        let effective_job;
        let job_ref = if plan.poison {
            effective_job = Job {
                scenario: Some(poisoned_scenario()),
                ..job.clone()
            };
            &effective_job
        } else {
            job
        };
        let started = options.deadline.map(|_| Instant::now());
        let mut result = catch_unwind(AssertUnwindSafe(|| {
            if plan.panic {
                panic!(
                    "{} worker panic (job {job_index}, attempt {attempt})",
                    crate::chaos::INJECTED_PANIC_PREFIX
                );
            }
            validate_job(job_ref)?;
            try_run_job(spec, job_ref, monitor_factory)
        }))
        .unwrap_or_else(|payload| {
            Err(SimError::Panicked {
                message: panic_message(payload),
            })
        });
        if let (Ok(_), Some(t0), Some(budget)) = (&result, started, options.deadline) {
            let elapsed = t0.elapsed();
            if elapsed > budget {
                result = Err(SimError::DeadlineExceeded {
                    elapsed_ms: elapsed.as_millis() as u64,
                    budget_ms: budget.as_millis() as u64,
                });
            }
        }
        match result {
            Ok(trace) => return JobOutcome::Completed(trace),
            Err(error) => {
                if attempt >= options.retry.max_attempts.max(1) {
                    return JobOutcome::Failed {
                        error,
                        attempts: attempt,
                    };
                }
                let delay = options.retry.backoff.delay_ms(attempt);
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                attempt += 1;
            }
        }
    }
}

/// Mutable in-order emission state of a resumable run: bitmap,
/// ledger, partials, and periodic checkpointing.
struct EmitState<'a> {
    jobs: &'a [Job],
    bitmap: JobBitmap,
    ledger: ErrorLedger,
    partials: AggregatePartials,
    policy: Option<&'a CheckpointPolicy>,
    spec_hash_hex: String,
    chaos_seed: Option<u64>,
    emitted_this_segment: usize,
}

impl EmitState<'_> {
    fn snapshot(&self) -> CampaignCheckpoint {
        CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            spec_hash: self.spec_hash_hex.clone(),
            chaos_seed: self.chaos_seed.map(to_hex),
            total_jobs: self.jobs.len(),
            completed: self.bitmap.clone(),
            ledger: self.ledger.clone(),
            partials: self.partials.clone(),
        }
    }

    /// Records one outcome (bitmap + partials + ledger), hands it to
    /// the sink, and checkpoints at the configured cadence.
    fn emit(
        &mut self,
        job_index: usize,
        outcome: JobOutcome,
        sink: &mut dyn FnMut(usize, JobOutcome),
    ) -> Result<(), CheckpointError> {
        self.bitmap.set(job_index);
        match &outcome {
            JobOutcome::Completed(trace) => self.partials.fold_completed(trace),
            JobOutcome::Failed { error, attempts } => {
                self.partials.fold_failed(&error.to_string(), *attempts);
                let job = &self.jobs[job_index];
                self.ledger.push(LedgerEntry {
                    job_index,
                    patient_idx: job.patient_idx,
                    initial_bg: job.initial_bg,
                    fault_name: job.scenario.as_ref().map(|s| s.name()).unwrap_or_default(),
                    error: error.clone(),
                    attempts: *attempts,
                });
            }
        }
        sink(job_index, outcome);
        self.emitted_this_segment += 1;
        if let Some(policy) = self.policy {
            if self
                .emitted_this_segment
                .is_multiple_of(policy.every_jobs.max(1))
            {
                self.snapshot().save(&policy.path)?;
            }
        }
        Ok(())
    }
}

/// The fault-tolerant, resumable campaign executor.
///
/// Every job runs isolated (`catch_unwind` + spec validation +
/// optional deadline) with retries under `options.retry`; outcomes —
/// [`JobOutcome::Completed`] or [`JobOutcome::Failed`] — stream into
/// `sink(job_index, outcome)` in **deterministic job order**, exactly
/// like [`run_campaign_with`]. Failed jobs are final after their
/// attempt budget: they are ledgered, marked done, and never re-run
/// by a resume (failures under a fixed seed/spec are deterministic).
///
/// With `resume`, jobs already recorded in the checkpoint's bitmap
/// are skipped and the ledger/partials continue from the snapshot;
/// the concatenation of all segments' sink emissions, and the final
/// report, are bit-identical to an uninterrupted run.
///
/// # Errors
///
/// [`CheckpointError::Mismatch`]/[`CheckpointError::Version`] when
/// `resume` does not belong to this campaign, and
/// [`CheckpointError::Io`] when a snapshot cannot be written. Job
/// failures are *not* errors — they are ledger entries.
pub fn run_campaign_resumable(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
    options: &CampaignOptions,
    resume: Option<&CampaignCheckpoint>,
    mut sink: impl FnMut(usize, JobOutcome),
) -> Result<CampaignReport, CheckpointError> {
    let jobs = expand(spec);
    let n = jobs.len();
    let hash_hex = to_hex(spec_hash(spec));
    let chaos_seed = options.chaos.as_ref().map(|c| c.seed);

    let (bitmap, ledger, partials) = match resume {
        Some(ckpt) => {
            ckpt.validate_for(&hash_hex, chaos_seed, n)?;
            (
                ckpt.completed.clone(),
                ckpt.ledger.clone(),
                ckpt.partials.clone(),
            )
        }
        None => (
            JobBitmap::new(n),
            ErrorLedger::new(),
            AggregatePartials::default(),
        ),
    };
    let pending: Vec<usize> = (0..n).filter(|&i| !bitmap.get(i)).collect();
    let skipped_resumed = n - pending.len();
    let m = pending.len();

    let (workers, worker_source) = worker_count(options.workers);
    let workers = workers.min(m.max(1));
    let cancel = options.cancel.as_deref();
    // sound: Acquire pairs with the canceller's Release store, so a
    // worker that observes the flag also observes everything the
    // canceller wrote before raising it; a stale read only delays the
    // stop by one job and can never reorder emission.
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Acquire));

    let mut state = EmitState {
        jobs: &jobs,
        bitmap,
        ledger,
        partials,
        policy: options.checkpoint.as_ref(),
        spec_hash_hex: hash_hex,
        chaos_seed,
        emitted_this_segment: 0,
    };

    if workers <= 1 {
        for &i in &pending {
            if cancelled() {
                break;
            }
            let outcome = run_job_checked(spec, &jobs[i], monitor_factory, options, i);
            state.emit(i, outcome, &mut sink)?;
        }
    } else {
        let next = AtomicUsize::new(0);
        let emitted = AtomicUsize::new(0);
        // Same bounded-memory design as `run_campaign_with`: a bounded
        // channel backpressures a slow sink, and `max_ahead` keeps
        // workers from racing past the in-order emission frontier.
        let max_ahead = 4 * workers;
        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, JobOutcome)>(2 * workers);
        let mut emit_err: Option<CheckpointError> = None;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let emitted = &emitted;
                let jobs = &jobs;
                let pending = &pending;
                scope.spawn(move || loop {
                    if cancelled() {
                        break;
                    }
                    // sound: Relaxed suffices for the claim counter —
                    // fetch_add is an atomic RMW, so each worker gets a
                    // unique k regardless of ordering; data written by
                    // the job is published by the channel send below.
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= m {
                        break;
                    }
                    // Claims are monotone in k, so the claimed set is
                    // always a prefix of `pending` — cancellation can
                    // therefore never leave a gap in the emission
                    // order. Parked workers do not re-check the flag:
                    // a claimed job must finish or the frontier jams.
                    //
                    // sound: Acquire pairs with the frontier's Release
                    // store; a stale (smaller) read only parks one
                    // extra 100 µs poll, never admits k past the gate.
                    while k >= emitted.load(Ordering::Acquire) + max_ahead {
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                    let i = pending[k];
                    let outcome = run_job_checked(spec, &jobs[i], monitor_factory, options, i);
                    if tx.send((k, outcome)).is_err() {
                        break; // receiver gone: abandon quietly
                    }
                });
            }
            drop(tx);

            let mut buffer: BTreeMap<usize, JobOutcome> = BTreeMap::new();
            let mut next_emit = 0usize;
            'drain: for (k, outcome) in rx {
                debug_assert!(!buffer.contains_key(&k), "job slot {k} executed twice");
                buffer.insert(k, outcome);
                while let Some(outcome) = buffer.remove(&next_emit) {
                    if let Err(e) = state.emit(pending[next_emit], outcome, &mut sink) {
                        emit_err = Some(e);
                        break 'drain;
                    }
                    next_emit += 1;
                    // sound: Release publishes the advanced frontier —
                    // a gated worker whose Acquire load sees the new
                    // value also sees every emission before it.
                    emitted.store(next_emit, Ordering::Release);
                }
            }
            // On emit error the receiver is dropped here and workers'
            // sends fail, unwinding the pool without running the rest.
        });
        if let Some(e) = emit_err {
            return Err(e);
        }
    }

    let was_cancelled = state.emitted_this_segment < m;
    // A final snapshot so the on-disk checkpoint always reflects the
    // end state (resuming a finished campaign is then a no-op).
    if let Some(policy) = options.checkpoint.as_ref() {
        if !state
            .emitted_this_segment
            .is_multiple_of(policy.every_jobs.max(1))
        {
            state.snapshot().save(&policy.path)?;
        }
    }

    Ok(CampaignReport {
        total_jobs: n,
        skipped_resumed,
        completed_jobs: state.partials.completed_jobs,
        failed_jobs: state.partials.failed_jobs,
        hazardous_jobs: state.partials.hazardous_jobs,
        digest: state.partials.digest.clone(),
        workers,
        worker_source,
        cancelled: was_cancelled,
        ledger: state.ledger,
    })
}

/// A completed fault-tolerant campaign: every job's outcome in job
/// order, plus the report.
#[derive(Debug, Clone, PartialEq)]
pub struct FtCampaign {
    /// One outcome per job, in the campaign's deterministic order.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregates, worker provenance, and the error ledger.
    pub report: CampaignReport,
}

/// Collecting wrapper over [`run_campaign_resumable`] (no resume):
/// materializes every [`JobOutcome`] in job order.
///
/// # Errors
///
/// Only checkpoint I/O can fail; job failures land in the ledger.
pub fn run_campaign_ft(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
    options: &CampaignOptions,
) -> Result<FtCampaign, CheckpointError> {
    let mut outcomes = Vec::new();
    let report = run_campaign_resumable(spec, monitor_factory, options, None, |i, outcome| {
        debug_assert_eq!(i, outcomes.len(), "stream out of order");
        outcomes.push(outcome);
    })?;
    Ok(FtCampaign { outcomes, report })
}

/// Runs the whole campaign serially on the calling thread. This is the
/// reference executor: [`run_campaign`] is defined to produce exactly
/// this output. It is also the pre-optimization baseline measured by
/// the `campaign_throughput` benchmark.
pub fn run_campaign_serial(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> Vec<SimTrace> {
    expand(spec)
        .iter()
        .map(|j| run_job(spec, j, monitor_factory))
        .collect()
}

/// Runs the whole campaign, streaming each finished trace — **in
/// deterministic job order** — into `sink(job_index, trace)` without
/// ever materializing the full result vector.
///
/// The executor is the same lock-free design as before: workers claim
/// jobs from a single atomic counter (so load stays balanced however
/// uneven individual runs are) and push `(job index, trace)` pairs
/// through a bounded channel that the calling thread drains through an
/// ordered reorder buffer. Run-ahead is capped on both sides — the
/// channel backpressures a slow sink, and workers park rather than run
/// more than a few batches past the in-order emission frontier (so one
/// pathologically slow job cannot make the buffer absorb the rest of
/// the campaign). Peak buffering is O(workers), never O(campaign);
/// paper-scale sweeps can score, aggregate, or persist traces as they
/// arrive.
///
/// [`run_campaign`] is a thin wrapper that collects this stream into a
/// `Vec`; output order and contents are defined to equal
/// [`run_campaign_serial`].
pub fn run_campaign_with(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
    sink: impl FnMut(usize, SimTrace),
) {
    run_campaign_with_workers(spec, monitor_factory, None, sink);
}

/// [`run_campaign_with`] with an explicit worker-count override
/// (`None` = `APS_WORKERS` env, then detection — the default
/// resolution). The workers-scaling sweep of `repro bench-campaign
/// --sweep-workers` drives this directly so each sweep point runs at a
/// pinned worker count.
pub fn run_campaign_with_workers(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
    workers: Option<usize>,
    mut sink: impl FnMut(usize, SimTrace),
) {
    let jobs = expand(spec);
    let n = jobs.len();
    // `worker_count` (not raw `available_parallelism().unwrap_or(1)`)
    // so the `APS_WORKERS` override applies to the legacy path too and
    // detection failure is a deliberate, clamped fallback.
    let workers = worker_count(workers).0.min(n.max(1));
    if workers <= 1 {
        for (i, job) in jobs.iter().enumerate() {
            sink(i, run_job(spec, job, monitor_factory));
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let emitted = AtomicUsize::new(0);
    // Both caps together make the bounded-memory claim true: the
    // channel backpressures a slow (e.g. disk-persisting) sink, and
    // `max_ahead` keeps workers from racing past a slow head-of-line
    // job and parking the whole campaign in the reorder buffer.
    let max_ahead = 4 * workers;
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, SimTrace)>(2 * workers);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let emitted = &emitted;
            let jobs = &jobs;
            scope.spawn(move || loop {
                // sound: Relaxed suffices — fetch_add is an atomic
                // RMW, so claims are unique and monotone regardless of
                // ordering; the trace itself is published by the
                // channel send, not by this counter.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The job at the emission frontier is never gated
                // (frontier ≤ i < frontier + max_ahead), so the
                // frontier always progresses and every parked worker
                // eventually wakes.
                //
                // sound: Acquire pairs with the frontier's Release
                // store; a stale read under-estimates the frontier and
                // parks one extra poll — it never admits i early.
                while i >= emitted.load(Ordering::Acquire) + max_ahead {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                let trace = run_job(spec, &jobs[i], monitor_factory);
                if tx.send((i, trace)).is_err() {
                    break; // receiver gone: abandon quietly
                }
            });
        }
        // The scope owns all senders through the clones above; dropping
        // the original ends the stream once every worker exits.
        drop(tx);

        // Reorder buffer: emit strictly in job order as results arrive.
        let mut pending: BTreeMap<usize, SimTrace> = BTreeMap::new();
        let mut next_emit = 0usize;
        for (i, trace) in rx {
            debug_assert!(!pending.contains_key(&i), "job {i} executed twice");
            pending.insert(i, trace);
            while let Some(trace) = pending.remove(&next_emit) {
                sink(next_emit, trace);
                next_emit += 1;
                // sound: Release pairs with the gate's Acquire loads,
                // so workers that observe the new frontier also
                // observe the emissions that produced it.
                emitted.store(next_emit, Ordering::Release);
            }
        }
        debug_assert!(pending.is_empty(), "stream ended with gaps");
    });
}

/// Runs the whole campaign, parallelized over the available cores.
/// Results are returned in job order (deterministic, identical to
/// [`run_campaign_serial`]).
///
/// Thin wrapper over [`run_campaign_with`] that collects the ordered
/// stream; prefer the sink (or [`CampaignStream`]) when the campaign
/// is large and traces can be consumed incrementally.
pub fn run_campaign(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> Vec<SimTrace> {
    // No capacity precompute: sizing via `campaign_size` would expand
    // the whole job grid a second time just to be discarded.
    let mut out: Vec<SimTrace> = Vec::new();
    run_campaign_with(spec, monitor_factory, |i, trace| {
        debug_assert_eq!(i, out.len(), "stream out of order");
        out.push(trace);
    });
    out
}

/// A pull-based campaign iterator: each [`next`](Iterator::next) runs
/// one job on the calling thread and yields its trace, in the same
/// deterministic job order as [`run_campaign`].
///
/// This is the bounded-memory *serial* counterpart to the push-based
/// [`run_campaign_with`] (which parallelizes): lazy, resumable, and
/// composable with ordinary iterator adapters —
///
/// ```
/// use aps_sim::campaign::{campaign_size, CampaignSpec, CampaignStream};
/// use aps_sim::platform::Platform;
///
/// let spec = CampaignSpec {
///     patient_indices: vec![0],
///     steps: 40,
///     ..CampaignSpec::quick(Platform::GlucosymOref0)
/// };
/// // Lazy: only the surviving traces ever exist in memory.
/// let finished = CampaignStream::new(&spec, None)
///     .map(|t| t.len())
///     .filter(|&n| n == 40)
///     .count();
/// assert_eq!(finished, campaign_size(&spec));
/// ```
pub struct CampaignStream<'a> {
    spec: CampaignSpec,
    jobs: Vec<CampaignJob>,
    next: usize,
    monitor_factory: Option<&'a MonitorFactory<'a>>,
}

impl<'a> CampaignStream<'a> {
    /// Expands the spec and prepares the (lazy) run sequence.
    pub fn new(spec: &CampaignSpec, monitor_factory: Option<&'a MonitorFactory<'a>>) -> Self {
        CampaignStream {
            spec: spec.clone(),
            jobs: expand(spec),
            next: 0,
            monitor_factory,
        }
    }

    /// The job the next call to [`next`](Iterator::next) will run.
    pub fn peek_job(&self) -> Option<&CampaignJob> {
        self.jobs.get(self.next)
    }
}

impl Iterator for CampaignStream<'_> {
    type Item = SimTrace;

    fn next(&mut self) -> Option<SimTrace> {
        let job = self.jobs.get(self.next)?;
        let trace = run_job(&self.spec, job, self.monitor_factory);
        self.next += 1;
        Some(trace)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.jobs.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CampaignStream<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_core::monitors::NullMonitor;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![120.0],
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        }
    }

    #[test]
    fn campaign_size_matches_expansion() {
        let spec = tiny_spec();
        // 3 primary targets x 10 kinds x 1 start x 1 duration + 1 fault-free.
        assert_eq!(campaign_size(&spec), 31);
    }

    #[test]
    fn campaign_produces_ordered_labeled_traces() {
        let spec = tiny_spec();
        let traces = run_campaign(&spec, None);
        assert_eq!(traces.len(), campaign_size(&spec));
        // First job is the fault-free run.
        assert!(traces[0].meta.fault_start.is_none());
        assert!(traces[1..].iter().all(|t| t.meta.fault_start.is_some()));
        // Some fault in this grid should produce at least one hazard.
        assert!(
            traces.iter().any(|t| t.is_hazardous()),
            "no scenario in the quick grid was hazardous"
        );
    }

    #[test]
    fn monitor_factory_is_used() {
        let spec = tiny_spec();
        let factory: Box<MonitorFactory<'_>> =
            Box::new(|_ctx| Box::new(NullMonitor) as Box<dyn HazardMonitor>);
        let traces = run_campaign(&spec, Some(factory.as_ref()));
        assert!(traces.iter().all(|t| t.first_alert().is_none()));
    }

    #[test]
    fn campaign_is_deterministic() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let a = run_campaign(&spec, None);
        let b = run_campaign(&spec, None);
        assert_eq!(a, b);
    }

    #[test]
    fn extended_campaign_widens_the_grid_and_stays_deterministic() {
        let quick = CampaignSpec {
            steps: 40,
            patient_indices: vec![0],
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        };
        let extended = CampaignSpec {
            extended_faults: true,
            ..quick.clone()
        };
        // 3 primary targets x 6 extra kinds x 1 time combo on top of
        // the 31-job quick grid.
        assert_eq!(campaign_size(&extended), campaign_size(&quick) + 18);
        let names: std::collections::HashSet<String> = run_campaign(&extended, None)
            .iter()
            .map(|t| t.meta.fault_name.clone())
            .collect();
        for expected in ["scale0.5_rate@t30x24", "int6d3_glucose@t30x24"] {
            assert!(names.contains(expected), "missing {expected}");
        }
        assert_eq!(run_campaign(&extended, None), run_campaign(&extended, None));
    }

    #[test]
    fn extended_faults_perturb_the_loop() {
        // Each new kind must actually leave a mark on some trace
        // (otherwise the wider grid is decorative).
        let spec = CampaignSpec {
            steps: 60,
            patient_indices: vec![0],
            ..CampaignSpec::extended(Platform::GlucosymOref0)
        };
        let faulty = run_campaign(&spec, None);
        let baseline = &faulty[0]; // job 0 is the fault-free run
        for prefix in ["scale", "drift", "noise", "int"] {
            let touched = faulty
                .iter()
                .filter(|t| t.meta.fault_name.starts_with(prefix))
                .any(|t| t.bg_true_series() != baseline.bg_true_series());
            assert!(touched, "no `{prefix}` scenario changed the trajectory");
        }
    }

    #[test]
    fn parallel_matches_serial_order_and_contents() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let parallel = run_campaign(&spec, None);
        let serial = run_campaign_serial(&spec, None);
        assert_eq!(parallel.len(), serial.len());
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(p.meta.fault_name, s.meta.fault_name, "job {i} out of order");
            assert_eq!(p, s, "job {i} diverged between executors");
        }
    }

    #[test]
    fn sink_streams_in_job_order_and_matches_serial() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let serial = run_campaign_serial(&spec, None);
        let mut indices = Vec::new();
        let mut streamed = Vec::new();
        run_campaign_with(&spec, None, |i, t| {
            indices.push(i);
            streamed.push(t);
        });
        assert_eq!(indices, (0..serial.len()).collect::<Vec<_>>());
        assert_eq!(streamed, serial);
    }

    #[test]
    fn campaign_stream_pulls_the_same_traces() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let mut stream = CampaignStream::new(&spec, None);
        assert_eq!(stream.len(), campaign_size(&spec));
        assert!(stream.peek_job().unwrap().scenario.is_none());
        let pulled: Vec<SimTrace> = stream.by_ref().take(3).collect();
        assert_eq!(stream.len(), campaign_size(&spec) - 3);
        let rest: Vec<SimTrace> = stream.collect();
        let serial = run_campaign_serial(&spec, None);
        assert_eq!(pulled, serial[..3]);
        assert_eq!(rest, serial[3..]);
    }

    #[test]
    fn jobs_expose_the_grid() {
        let spec = tiny_spec();
        let jobs = campaign_jobs(&spec);
        assert_eq!(jobs.len(), campaign_size(&spec));
        assert_eq!(jobs[0].scenario, None);
        assert!(jobs[1..].iter().all(|j| j.scenario.is_some()));
    }

    #[test]
    fn worker_count_resolution_precedence() {
        // Explicit override beats everything and is clamped.
        assert_eq!(
            worker_count_from(Some(4), Some("8"), Ok(2)),
            (4, WorkerSource::Override)
        );
        assert_eq!(
            worker_count_from(Some(0), None, Ok(2)),
            (1, WorkerSource::Override)
        );
        assert_eq!(
            worker_count_from(Some(100_000), None, Ok(2)),
            (MAX_WORKERS, WorkerSource::Override)
        );
        // Valid env beats detection.
        assert_eq!(
            worker_count_from(None, Some("3"), Ok(8)),
            (3, WorkerSource::Env)
        );
        assert_eq!(
            worker_count_from(None, Some(" 5 "), Ok(8)),
            (5, WorkerSource::Env)
        );
        // Invalid env (zero, junk) falls back to detection and says so.
        assert_eq!(
            worker_count_from(None, Some("0"), Ok(8)),
            (8, WorkerSource::InvalidEnv { raw: "0".into() })
        );
        assert_eq!(
            worker_count_from(None, Some("lots"), Ok(8)),
            (8, WorkerSource::InvalidEnv { raw: "lots".into() })
        );
        // Plain detection, and the failure fallback to one worker.
        assert_eq!(
            worker_count_from(None, None, Ok(8)),
            (8, WorkerSource::Detected)
        );
        assert_eq!(
            worker_count_from(None, None, Err("nope".into())),
            (
                1,
                WorkerSource::DetectFailed {
                    detail: "nope".into()
                }
            )
        );
    }

    #[test]
    fn ft_clean_path_matches_serial() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let serial = run_campaign_serial(&spec, None);
        let ft = run_campaign_ft(&spec, None, &CampaignOptions::default()).unwrap();
        assert_eq!(ft.report.total_jobs, serial.len());
        assert_eq!(ft.report.completed_jobs, serial.len());
        assert_eq!(ft.report.failed_jobs, 0);
        assert!(ft.report.ledger.is_empty());
        assert!(!ft.report.cancelled);
        let traces: Vec<&SimTrace> = ft.outcomes.iter().filter_map(|o| o.trace()).collect();
        assert_eq!(traces.len(), serial.len());
        for (got, want) in traces.iter().zip(&serial) {
            assert_eq!(*got, want);
        }
        assert_eq!(
            ft.report.hazardous_jobs,
            serial.iter().filter(|t| t.is_hazardous()).count()
        );
    }

    #[test]
    fn invalid_jobs_are_ledgered_not_fatal() {
        // A non-finite initial BG is caught by validation before the
        // engine ever runs, and the rest of the campaign survives.
        let spec = CampaignSpec {
            steps: 40,
            initial_bgs: vec![120.0, f64::NAN],
            ..tiny_spec()
        };
        let ft = run_campaign_ft(&spec, None, &CampaignOptions::default()).unwrap();
        let half = ft.report.total_jobs / 2;
        assert_eq!(ft.report.failed_jobs, half);
        assert_eq!(ft.report.completed_jobs, half);
        assert_eq!(ft.report.ledger.len(), half);
        for entry in &ft.report.ledger.entries {
            assert!(matches!(entry.error, SimError::InvalidSpec { .. }));
            assert_eq!(entry.attempts, 1);
        }
    }

    #[test]
    fn retry_policy_bounds_attempts_for_deterministic_failures() {
        let spec = CampaignSpec {
            steps: 10,
            initial_bgs: vec![f64::INFINITY],
            ..tiny_spec()
        };
        let options = CampaignOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            workers: Some(1),
            ..CampaignOptions::default()
        };
        let ft = run_campaign_ft(&spec, None, &options).unwrap();
        assert_eq!(ft.report.completed_jobs, 0);
        assert!(ft
            .report
            .ledger
            .entries
            .iter()
            .all(|e| e.attempts == 3 && matches!(e.error, SimError::InvalidSpec { .. })));
    }

    #[test]
    fn cancellation_stops_claiming_and_reports_it() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let cancel = Arc::new(AtomicBool::new(false));
        let options = CampaignOptions {
            cancel: Some(Arc::clone(&cancel)),
            workers: Some(1),
            ..CampaignOptions::default()
        };
        let mut seen = Vec::new();
        let report = run_campaign_resumable(&spec, None, &options, None, |i, _| {
            seen.push(i);
            if seen.len() == 5 {
                cancel.store(true, Ordering::Release);
            }
        })
        .unwrap();
        assert!(report.cancelled);
        assert_eq!(seen, (0..5).collect::<Vec<_>>());
        assert_eq!(report.completed_jobs, 5);
    }
}
