//! Fault-injection campaign runner.
//!
//! Expands a [`CampaignSpec`] into the grid of (patient × initial BG ×
//! fault scenario) runs — plus optional fault-free runs — and executes
//! them, optionally in parallel with scoped worker threads. Monitors
//! are created per run through a [`MonitorFactory`], since a
//! patient-specific monitor needs the run's basal/target context.
//!
//! Results can be consumed three ways, all in the same deterministic
//! job order: materialized ([`run_campaign`] /
//! [`run_campaign_serial`]), streamed into a sink with bounded memory
//! ([`run_campaign_with`], parallel), or pulled lazily one trace at a
//! time ([`CampaignStream`], serial).

use crate::closed_loop::{run, LoopConfig};
use crate::platform::Platform;
use aps_core::hms::ContextMitigatorConfig;
use aps_core::mitigation::Mitigator;
use aps_core::monitors::HazardMonitor;
use aps_fault::{campaign_grid, CampaignConfig, FaultInjector, FaultScenario};
use aps_glucose::sensor::CgmConfig;
use aps_types::{MgDl, SimTrace, UnitsPerHour};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Context handed to the monitor factory for each run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCtx {
    /// Qualified patient name.
    pub patient: String,
    /// Controller basal rate for this patient.
    pub basal: UnitsPerHour,
    /// Controller regulation target.
    pub target: MgDl,
    /// Maximum mitigation rate for this patient.
    pub max_rate: UnitsPerHour,
}

/// Creates a fresh monitor for one run (monitors are stateful).
pub type MonitorFactory<'a> = dyn Fn(&ScenarioCtx) -> Box<dyn HazardMonitor> + Sync + 'a;

/// What to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Which simulator/controller pairing.
    pub platform: Platform,
    /// Cohort indices to include (0..10).
    pub patient_indices: Vec<usize>,
    /// Initial glucose values (paper: seven values in 80–200).
    pub initial_bgs: Vec<f64>,
    /// Fault grid timing parameters.
    pub faults: CampaignConfig,
    /// Restrict injection to these variables (empty = the platform's
    /// primary input/state/output targets).
    pub fault_targets: Vec<String>,
    /// Also run one fault-free simulation per (patient, initial BG).
    pub include_fault_free: bool,
    /// Steps per simulation.
    pub steps: u32,
    /// Apply mitigation on monitor alerts.
    pub mitigate: bool,
    /// Use the context-dependent mitigation policy instead of the
    /// fixed Algorithm-1 rates (only meaningful with `mitigate`).
    #[serde(default)]
    pub context_mitigate: bool,
    /// Also sweep the extended fault-kind alphabet (`Scale`, `Drift`,
    /// `Noise`, `Intermittent`) over every target.
    #[serde(default)]
    pub extended_faults: bool,
    /// CGM model for every run (default: clean, the paper's
    /// assumption; used by the sensor-noise robustness ablation).
    #[serde(default)]
    pub cgm: CgmConfig,
}

impl CampaignSpec {
    /// A small smoke-test campaign: 2 patients, 1 initial BG, the
    /// quick fault grid.
    pub fn quick(platform: Platform) -> CampaignSpec {
        CampaignSpec {
            platform,
            patient_indices: vec![0, 1],
            initial_bgs: vec![120.0],
            faults: CampaignConfig::quick(),
            fault_targets: Vec::new(),
            include_fault_free: true,
            steps: 150,
            mitigate: false,
            context_mitigate: false,
            extended_faults: false,
            cgm: CgmConfig::default(),
        }
    }

    /// The paper-scale campaign: all 10 patients, 7 initial BG values,
    /// the full 9-combination fault grid over all injectable variables.
    pub fn paper(platform: Platform) -> CampaignSpec {
        CampaignSpec {
            platform,
            patient_indices: (0..10).collect(),
            initial_bgs: aps_glucose::patients::initial_bg_values().to_vec(),
            faults: CampaignConfig::paper(),
            fault_targets: Vec::new(),
            include_fault_free: true,
            steps: 150,
            mitigate: false,
            context_mitigate: false,
            extended_faults: false,
            cgm: CgmConfig::default(),
        }
    }

    /// [`quick`](CampaignSpec::quick) with the extended fault alphabet
    /// switched on — the widest per-run scenario diversity at smoke
    /// scale.
    pub fn extended(platform: Platform) -> CampaignSpec {
        CampaignSpec {
            extended_faults: true,
            ..CampaignSpec::quick(platform)
        }
    }
}

/// One expanded unit of campaign work: the coordinates of a single
/// closed-loop run in the (patient × initial BG × scenario) grid.
///
/// Public so session-level tooling (e.g. the bench crate's
/// monitor-bank zoo report) can walk the exact grid a
/// [`CampaignSpec`] describes while building its own
/// [`Session`](crate::session::Session)s per run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJob {
    /// Cohort index of the patient.
    pub patient_idx: usize,
    /// Initial true glucose (mg/dL).
    pub initial_bg: f64,
    /// Fault scenario (`None` = the fault-free run).
    pub scenario: Option<FaultScenario>,
}

type Job = CampaignJob;

/// Expands the spec into its deterministic job list (per patient and
/// initial BG: the fault-free run first, then every fault scenario).
/// [`run_campaign`] executes exactly this list, in this order.
pub fn campaign_jobs(spec: &CampaignSpec) -> Vec<CampaignJob> {
    expand(spec)
}

/// Expands the spec into its job list (fault-free first, then faults).
fn expand(spec: &CampaignSpec) -> Vec<Job> {
    let platform = spec.platform;
    let probe = platform.patients().remove(0);
    let all = if spec.extended_faults {
        platform.injection_targets_extended(probe.as_ref())
    } else {
        platform.injection_targets(probe.as_ref())
    };
    let targets: Vec<_> = if spec.fault_targets.is_empty() {
        // The platform's primary input/state/output trio.
        all.into_iter()
            .filter(|t| Platform::PRIMARY_TARGET_NAMES.contains(&t.name.as_str()))
            .collect()
    } else {
        all.into_iter()
            .filter(|t| spec.fault_targets.iter().any(|n| n == &t.name))
            .collect()
    };
    let scenarios = campaign_grid(&targets, &spec.faults);
    let mut jobs = Vec::new();
    for &pi in &spec.patient_indices {
        for &bg0 in &spec.initial_bgs {
            if spec.include_fault_free {
                jobs.push(Job {
                    patient_idx: pi,
                    initial_bg: bg0,
                    scenario: None,
                });
            }
            for s in &scenarios {
                jobs.push(Job {
                    patient_idx: pi,
                    initial_bg: bg0,
                    scenario: Some(s.clone()),
                });
            }
        }
    }
    jobs
}

/// Number of runs the spec will execute.
pub fn campaign_size(spec: &CampaignSpec) -> usize {
    expand(spec).len()
}

fn run_job(
    spec: &CampaignSpec,
    job: &Job,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> SimTrace {
    let platform = spec.platform;
    let mut patient = platform.patients().remove(job.patient_idx);
    let mut controller = platform.controller_for(patient.as_ref());
    let ctx = ScenarioCtx {
        patient: patient.name().to_owned(),
        basal: platform.basal_for(patient.as_ref()),
        target: platform.target(),
        max_rate: platform.max_mitigation_rate(patient.as_ref()),
    };
    let mut monitor = monitor_factory.map(|f| f(&ctx));
    let mut injector = job.scenario.clone().map(FaultInjector::new);
    let config = LoopConfig {
        steps: spec.steps,
        initial_bg: job.initial_bg,
        mitigator: (spec.mitigate && !spec.context_mitigate)
            .then(|| Mitigator::paper_default(ctx.max_rate)),
        context_mitigation: (spec.mitigate && spec.context_mitigate)
            .then(|| ContextMitigatorConfig::for_run(ctx.target, ctx.basal, ctx.max_rate)),
        cgm: spec.cgm,
        ..LoopConfig::default()
    };
    let trace = run(
        patient.as_mut(),
        controller.as_mut(),
        monitor.as_deref_mut(),
        injector.as_mut(),
        &config,
    );
    trace
}

/// Runs the whole campaign serially on the calling thread. This is the
/// reference executor: [`run_campaign`] is defined to produce exactly
/// this output. It is also the pre-optimization baseline measured by
/// the `campaign_throughput` benchmark.
pub fn run_campaign_serial(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> Vec<SimTrace> {
    expand(spec)
        .iter()
        .map(|j| run_job(spec, j, monitor_factory))
        .collect()
}

/// Runs the whole campaign, streaming each finished trace — **in
/// deterministic job order** — into `sink(job_index, trace)` without
/// ever materializing the full result vector.
///
/// The executor is the same lock-free design as before: workers claim
/// jobs from a single atomic counter (so load stays balanced however
/// uneven individual runs are) and push `(job index, trace)` pairs
/// through a bounded channel that the calling thread drains through an
/// ordered reorder buffer. Run-ahead is capped on both sides — the
/// channel backpressures a slow sink, and workers park rather than run
/// more than a few batches past the in-order emission frontier (so one
/// pathologically slow job cannot make the buffer absorb the rest of
/// the campaign). Peak buffering is O(workers), never O(campaign);
/// paper-scale sweeps can score, aggregate, or persist traces as they
/// arrive.
///
/// [`run_campaign`] is a thin wrapper that collects this stream into a
/// `Vec`; output order and contents are defined to equal
/// [`run_campaign_serial`].
pub fn run_campaign_with(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
    mut sink: impl FnMut(usize, SimTrace),
) {
    let jobs = expand(spec);
    let n = jobs.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 {
        for (i, job) in jobs.iter().enumerate() {
            sink(i, run_job(spec, job, monitor_factory));
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let emitted = AtomicUsize::new(0);
    // Both caps together make the bounded-memory claim true: the
    // channel backpressures a slow (e.g. disk-persisting) sink, and
    // `max_ahead` keeps workers from racing past a slow head-of-line
    // job and parking the whole campaign in the reorder buffer.
    let max_ahead = 4 * workers;
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, SimTrace)>(2 * workers);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let emitted = &emitted;
            let jobs = &jobs;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The job at the emission frontier is never gated
                // (frontier ≤ i < frontier + max_ahead), so the
                // frontier always progresses and every parked worker
                // eventually wakes.
                while i >= emitted.load(Ordering::Acquire) + max_ahead {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                let trace = run_job(spec, &jobs[i], monitor_factory);
                if tx.send((i, trace)).is_err() {
                    break; // receiver gone: abandon quietly
                }
            });
        }
        // The scope owns all senders through the clones above; dropping
        // the original ends the stream once every worker exits.
        drop(tx);

        // Reorder buffer: emit strictly in job order as results arrive.
        let mut pending: BTreeMap<usize, SimTrace> = BTreeMap::new();
        let mut next_emit = 0usize;
        for (i, trace) in rx {
            debug_assert!(!pending.contains_key(&i), "job {i} executed twice");
            pending.insert(i, trace);
            while let Some(trace) = pending.remove(&next_emit) {
                sink(next_emit, trace);
                next_emit += 1;
                emitted.store(next_emit, Ordering::Release);
            }
        }
        debug_assert!(pending.is_empty(), "stream ended with gaps");
    });
}

/// Runs the whole campaign, parallelized over the available cores.
/// Results are returned in job order (deterministic, identical to
/// [`run_campaign_serial`]).
///
/// Thin wrapper over [`run_campaign_with`] that collects the ordered
/// stream; prefer the sink (or [`CampaignStream`]) when the campaign
/// is large and traces can be consumed incrementally.
pub fn run_campaign(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> Vec<SimTrace> {
    // No capacity precompute: sizing via `campaign_size` would expand
    // the whole job grid a second time just to be discarded.
    let mut out: Vec<SimTrace> = Vec::new();
    run_campaign_with(spec, monitor_factory, |i, trace| {
        debug_assert_eq!(i, out.len(), "stream out of order");
        out.push(trace);
    });
    out
}

/// A pull-based campaign iterator: each [`next`](Iterator::next) runs
/// one job on the calling thread and yields its trace, in the same
/// deterministic job order as [`run_campaign`].
///
/// This is the bounded-memory *serial* counterpart to the push-based
/// [`run_campaign_with`] (which parallelizes): lazy, resumable, and
/// composable with ordinary iterator adapters —
///
/// ```
/// use aps_sim::campaign::{campaign_size, CampaignSpec, CampaignStream};
/// use aps_sim::platform::Platform;
///
/// let spec = CampaignSpec {
///     patient_indices: vec![0],
///     steps: 40,
///     ..CampaignSpec::quick(Platform::GlucosymOref0)
/// };
/// // Lazy: only the surviving traces ever exist in memory.
/// let finished = CampaignStream::new(&spec, None)
///     .map(|t| t.len())
///     .filter(|&n| n == 40)
///     .count();
/// assert_eq!(finished, campaign_size(&spec));
/// ```
pub struct CampaignStream<'a> {
    spec: CampaignSpec,
    jobs: Vec<CampaignJob>,
    next: usize,
    monitor_factory: Option<&'a MonitorFactory<'a>>,
}

impl<'a> CampaignStream<'a> {
    /// Expands the spec and prepares the (lazy) run sequence.
    pub fn new(spec: &CampaignSpec, monitor_factory: Option<&'a MonitorFactory<'a>>) -> Self {
        CampaignStream {
            spec: spec.clone(),
            jobs: expand(spec),
            next: 0,
            monitor_factory,
        }
    }

    /// The job the next call to [`next`](Iterator::next) will run.
    pub fn peek_job(&self) -> Option<&CampaignJob> {
        self.jobs.get(self.next)
    }
}

impl Iterator for CampaignStream<'_> {
    type Item = SimTrace;

    fn next(&mut self) -> Option<SimTrace> {
        let job = self.jobs.get(self.next)?;
        let trace = run_job(&self.spec, job, self.monitor_factory);
        self.next += 1;
        Some(trace)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.jobs.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CampaignStream<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_core::monitors::NullMonitor;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![120.0],
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        }
    }

    #[test]
    fn campaign_size_matches_expansion() {
        let spec = tiny_spec();
        // 3 primary targets x 10 kinds x 1 start x 1 duration + 1 fault-free.
        assert_eq!(campaign_size(&spec), 31);
    }

    #[test]
    fn campaign_produces_ordered_labeled_traces() {
        let spec = tiny_spec();
        let traces = run_campaign(&spec, None);
        assert_eq!(traces.len(), campaign_size(&spec));
        // First job is the fault-free run.
        assert!(traces[0].meta.fault_start.is_none());
        assert!(traces[1..].iter().all(|t| t.meta.fault_start.is_some()));
        // Some fault in this grid should produce at least one hazard.
        assert!(
            traces.iter().any(|t| t.is_hazardous()),
            "no scenario in the quick grid was hazardous"
        );
    }

    #[test]
    fn monitor_factory_is_used() {
        let spec = tiny_spec();
        let factory: Box<MonitorFactory<'_>> =
            Box::new(|_ctx| Box::new(NullMonitor) as Box<dyn HazardMonitor>);
        let traces = run_campaign(&spec, Some(factory.as_ref()));
        assert!(traces.iter().all(|t| t.first_alert().is_none()));
    }

    #[test]
    fn campaign_is_deterministic() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let a = run_campaign(&spec, None);
        let b = run_campaign(&spec, None);
        assert_eq!(a, b);
    }

    #[test]
    fn extended_campaign_widens_the_grid_and_stays_deterministic() {
        let quick = CampaignSpec {
            steps: 40,
            patient_indices: vec![0],
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        };
        let extended = CampaignSpec {
            extended_faults: true,
            ..quick.clone()
        };
        // 3 primary targets x 6 extra kinds x 1 time combo on top of
        // the 31-job quick grid.
        assert_eq!(campaign_size(&extended), campaign_size(&quick) + 18);
        let names: std::collections::HashSet<String> = run_campaign(&extended, None)
            .iter()
            .map(|t| t.meta.fault_name.clone())
            .collect();
        for expected in ["scale0.5_rate@t30x24", "int6d3_glucose@t30x24"] {
            assert!(names.contains(expected), "missing {expected}");
        }
        assert_eq!(run_campaign(&extended, None), run_campaign(&extended, None));
    }

    #[test]
    fn extended_faults_perturb_the_loop() {
        // Each new kind must actually leave a mark on some trace
        // (otherwise the wider grid is decorative).
        let spec = CampaignSpec {
            steps: 60,
            patient_indices: vec![0],
            ..CampaignSpec::extended(Platform::GlucosymOref0)
        };
        let faulty = run_campaign(&spec, None);
        let baseline = &faulty[0]; // job 0 is the fault-free run
        for prefix in ["scale", "drift", "noise", "int"] {
            let touched = faulty
                .iter()
                .filter(|t| t.meta.fault_name.starts_with(prefix))
                .any(|t| t.bg_true_series() != baseline.bg_true_series());
            assert!(touched, "no `{prefix}` scenario changed the trajectory");
        }
    }

    #[test]
    fn parallel_matches_serial_order_and_contents() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let parallel = run_campaign(&spec, None);
        let serial = run_campaign_serial(&spec, None);
        assert_eq!(parallel.len(), serial.len());
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(p.meta.fault_name, s.meta.fault_name, "job {i} out of order");
            assert_eq!(p, s, "job {i} diverged between executors");
        }
    }

    #[test]
    fn sink_streams_in_job_order_and_matches_serial() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let serial = run_campaign_serial(&spec, None);
        let mut indices = Vec::new();
        let mut streamed = Vec::new();
        run_campaign_with(&spec, None, |i, t| {
            indices.push(i);
            streamed.push(t);
        });
        assert_eq!(indices, (0..serial.len()).collect::<Vec<_>>());
        assert_eq!(streamed, serial);
    }

    #[test]
    fn campaign_stream_pulls_the_same_traces() {
        let spec = CampaignSpec {
            steps: 40,
            ..tiny_spec()
        };
        let mut stream = CampaignStream::new(&spec, None);
        assert_eq!(stream.len(), campaign_size(&spec));
        assert!(stream.peek_job().unwrap().scenario.is_none());
        let pulled: Vec<SimTrace> = stream.by_ref().take(3).collect();
        assert_eq!(stream.len(), campaign_size(&spec) - 3);
        let rest: Vec<SimTrace> = stream.collect();
        let serial = run_campaign_serial(&spec, None);
        assert_eq!(pulled, serial[..3]);
        assert_eq!(rest, serial[3..]);
    }

    #[test]
    fn jobs_expose_the_grid() {
        let spec = tiny_spec();
        let jobs = campaign_jobs(&spec);
        assert_eq!(jobs.len(), campaign_size(&spec));
        assert_eq!(jobs[0].scenario, None);
        assert!(jobs[1..].iter().all(|j| j.scenario.is_some()));
    }
}
