//! Batched lockstep campaign execution.
//!
//! The scalar executors run campaign jobs one closed loop at a time;
//! every control cycle pays the full RK4 integration for a single
//! patient. This module steps a *block* of up to [`BATCH_LANES`] jobs
//! in lockstep instead: each job becomes a lane of a
//! structure-of-arrays patient bank
//! ([`aps_glucose::bergman::BatchedBergman`] /
//! [`aps_glucose::dalla_man::BatchedDallaMan`]), the
//! physics integrates all lanes with per-lane loops over flat arrays
//! (the shape the auto-vectorizer turns into SIMD), and the scalar
//! per-cycle components — controller, CGM, pump, monitor, injector,
//! mitigation, trace recording — run per lane exactly as the scalar
//! engine runs them.
//!
//! # Bit-identity
//!
//! [`run_block`] is defined to produce, lane for lane, the same bytes
//! as [`run_campaign_serial`](crate::campaign::run_campaign_serial)
//! produces job for job (pinned by `tests/batched_equivalence.rs`).
//! Lanes are arithmetically independent — no horizontal reductions,
//! no lane-crossing terms — and every per-lane expression keeps the
//! scalar engine's operation order, so IEEE-754 determinism carries
//! the equivalence. A lane whose ODE state diverges to NaN/∞ fails its
//! end-of-cycle finiteness check at the same cycle index as the scalar
//! engine's `state_is_finite` check (non-finite state is absorbing
//! under the additive RK4 update), surfaces as that job's
//! [`SimError::NonFinite`], and — because nothing crosses lanes —
//! never poisons its lane-mates.

use crate::campaign::{
    campaign_jobs, worker_count, CampaignJob, CampaignSpec, MonitorFactory, ScenarioCtx,
};
use crate::closed_loop::LoopConfig;
use crate::outcome::SimError;
use crate::session::FaultRoute;
use aps_controllers::Controller;
use aps_core::hms::{ContextMitigator, ContextMitigatorConfig};
use aps_core::mitigation::Mitigator;
use aps_core::monitors::{HazardMonitor, MonitorInput};
use aps_fault::FaultInjector;
use aps_glucose::bergman::BatchedBergman;
use aps_glucose::dalla_man::BatchedDallaMan;
use aps_glucose::patients::CohortPatient;
use aps_glucose::pump::PumpBank;
use aps_glucose::sensor::CgmBank;
use aps_glucose::BatchedPatientSim;
use aps_types::{
    AlertTrack, ControlAction, Hazard, MgDl, SimTrace, Step, StepRecord, TraceMeta, UnitsPerHour,
    CONTROL_CYCLE_MINUTES,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Lane width of the batched campaign executor.
///
/// Eight f64 lanes fill one AVX-512 register or two AVX2 / NEON
/// registers per state component — wide enough that the per-lane
/// stage loops vectorize profitably, narrow enough that a block's
/// scratch stays resident in L1 and ragged campaign tails waste few
/// lanes.
pub const BATCH_LANES: usize = 8;

/// The per-lane scalar harness: everything a closed-loop run owns
/// besides the physics, which lives in the shared lane bank.
struct Lane {
    controller: Box<dyn Controller>,
    monitor: Option<Box<dyn HazardMonitor>>,
    injector: Option<FaultInjector>,
    config: LoopConfig,
    fault_plan: Option<(FaultRoute, (f64, f64), String)>,
    ctx_mitigator: Option<ContextMitigator>,
    trace: SimTrace,
    stream: Vec<Option<Hazard>>,
    prev_commanded: UnitsPerHour,
    dead: Option<SimError>,
}

impl Lane {
    /// Mirrors the scalar engine's per-run setup: reset components,
    /// resolve the fault route and bounds once, preallocate the trace.
    fn new(
        mut controller: Box<dyn Controller>,
        mut monitor: Option<Box<dyn HazardMonitor>>,
        mut injector: Option<FaultInjector>,
        config: LoopConfig,
        patient_name: &str,
    ) -> Lane {
        controller.reset();
        if let Some(m) = monitor.as_deref_mut() {
            m.reset();
        }
        if let Some(inj) = injector.as_mut() {
            inj.reset();
        }
        let ctx_mitigator = config.context_mitigation.map(ContextMitigator::new);
        let vars = controller.state_vars();
        let fault_plan = injector.as_ref().map(|inj| {
            let target = &inj.scenario().target;
            let route = match target.as_str() {
                "rate" => FaultRoute::Rate,
                "glucose" => FaultRoute::Glucose,
                _ => FaultRoute::Internal,
            };
            let bounds = vars
                .iter()
                .find(|v| v.name == *target)
                .map(|v| (v.min, v.max))
                .unwrap_or((f64::NEG_INFINITY, f64::INFINITY));
            (route, bounds, target.clone())
        });
        let mut meta = TraceMeta {
            patient: patient_name.to_owned(),
            initial_bg: config.initial_bg,
            ..TraceMeta::default()
        };
        if let Some(inj) = injector.as_ref() {
            meta.fault_name = inj.scenario().name();
            meta.fault_start = Some(inj.scenario().start);
        }
        let trace = SimTrace::with_capacity(meta, config.steps as usize);
        let stream = if monitor.is_some() {
            Vec::with_capacity(config.steps as usize)
        } else {
            Vec::new()
        };
        let prev_commanded = UnitsPerHour(controller.basal_rate().value());
        Lane {
            controller,
            monitor,
            injector,
            config,
            fault_plan,
            ctx_mitigator,
            trace,
            stream,
            prev_commanded,
            dead: None,
        }
    }
}

/// Builds one lane's scalar harness exactly as the campaign's scalar
/// path builds a job's run (same construction order, same defaults).
fn build_lane(
    spec: &CampaignSpec,
    job: &CampaignJob,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> (CohortPatient, Lane) {
    let platform = spec.platform;
    let mut patient = platform
        .concrete_patient(job.patient_idx)
        .unwrap_or_else(|| panic!("patient index {} out of cohort range", job.patient_idx));
    let controller = platform.controller_for(patient.as_dyn());
    let ctx = ScenarioCtx {
        patient: patient.as_dyn().name().to_owned(),
        basal: platform.basal_for(patient.as_dyn()),
        target: platform.target(),
        max_rate: platform.max_mitigation_rate(patient.as_dyn()),
    };
    let monitor = monitor_factory.map(|f| f(&ctx));
    let injector = job.scenario.clone().map(FaultInjector::new);
    let config = LoopConfig {
        steps: spec.steps,
        initial_bg: job.initial_bg,
        mitigator: (spec.mitigate && !spec.context_mitigate)
            .then(|| Mitigator::paper_default(ctx.max_rate)),
        context_mitigation: (spec.mitigate && spec.context_mitigate)
            .then(|| ContextMitigatorConfig::for_run(ctx.target, ctx.basal, ctx.max_rate)),
        cgm: spec.cgm,
        ..LoopConfig::default()
    };
    patient.as_dyn_mut().reset(MgDl(config.initial_bg));
    let lane = Lane::new(controller, monitor, injector, config, &ctx.patient);
    (patient, lane)
}

/// Runs a block of up to `LANES` campaign jobs in lockstep, returning
/// one result per job in job order — each bit-identical to what the
/// scalar [`run_campaign_serial`](crate::campaign::run_campaign_serial)
/// path produces for that job.
///
/// Ragged blocks (fewer jobs than lanes) pad the unused lanes with a
/// copy of the first job's patient under a zero insulin rate; padding
/// lanes have no scalar harness and their physics is discarded.
///
/// # Panics
///
/// Panics when `jobs` is empty, longer than `LANES`, or names a
/// patient index outside the platform's cohort.
pub fn run_block<const LANES: usize>(
    spec: &CampaignSpec,
    jobs: &[CampaignJob],
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> Vec<Result<SimTrace, SimError>> {
    assert!(!jobs.is_empty(), "empty lockstep block");
    assert!(
        jobs.len() <= LANES,
        "block of {} jobs exceeds {LANES} lanes",
        jobs.len()
    );
    let mut patients: Vec<CohortPatient> = Vec::with_capacity(LANES);
    let mut lanes: Vec<Lane> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let (patient, lane) = build_lane(spec, job, monitor_factory);
        patients.push(patient);
        lanes.push(lane);
    }
    // Padding lanes: a copy of the first job's freshly reset patient,
    // stepped at a zero rate and discarded. Copying a real parameter
    // set (instead of leaving the bank's zeroed defaults) keeps the
    // dead lanes' ODE arithmetic finite, so no spurious NaNs ride
    // along in the block.
    while patients.len() < LANES {
        let mut p = patients[0].clone();
        p.as_dyn_mut().reset(MgDl(jobs[0].initial_bg));
        patients.push(p);
    }
    match &patients[0] {
        CohortPatient::Bergman(_) => {
            let mut bank = BatchedBergman::<LANES>::new();
            for (l, p) in patients.iter().enumerate() {
                match p {
                    CohortPatient::Bergman(bp) => bank.load_lane(l, bp),
                    CohortPatient::DallaMan(_) => {
                        unreachable!("one platform yields one patient model")
                    }
                }
            }
            run_block_engine(&mut bank, lanes)
        }
        CohortPatient::DallaMan(_) => {
            let mut bank = BatchedDallaMan::<LANES>::new();
            for (l, p) in patients.iter().enumerate() {
                match p {
                    CohortPatient::DallaMan(dp) => bank.load_lane(l, dp),
                    CohortPatient::Bergman(_) => {
                        unreachable!("one platform yields one patient model")
                    }
                }
            }
            run_block_engine(&mut bank, lanes)
        }
    }
}

/// What one lane staged between its controller decision and the
/// pump's delivery (the scalar engine records the step only after the
/// pump actuates).
struct Staged {
    commanded: UnitsPerHour,
    action: ControlAction,
    alert: Option<Hazard>,
}

/// The lockstep control loop: batched physics, per-lane scalar
/// everything else, in exactly the scalar engine's per-cycle order.
fn run_block_engine<const LANES: usize>(
    bank: &mut dyn BatchedPatientSim<LANES>,
    mut lanes: Vec<Lane>,
) -> Vec<Result<SimTrace, SimError>> {
    let steps = lanes[0].config.steps;
    // Sensor and pump configs are spec-level, identical across lanes.
    let mut cgm = CgmBank::<LANES>::new(lanes[0].config.cgm);
    let mut pump = PumpBank::<LANES>::new(lanes[0].config.pump);

    for s in 0..steps {
        let step = Step(s);
        for (l, lane) in lanes.iter_mut().enumerate() {
            if lane.dead.is_some() {
                continue;
            }
            for meal in lane.config.meals.iter().filter(|m| m.step == step) {
                bank.ingest(l, meal.carbs_g);
                if meal.announced {
                    lane.controller.announce_meal(meal.carbs_g);
                }
            }
            for bout in lane.config.exercise.iter().filter(|b| b.step == step) {
                bank.exert(l, bout.intensity, bout.duration_min);
            }
        }
        let true_bg: [MgDl; LANES] = std::array::from_fn(|l| bank.bg(l));
        let readings = cgm.sample_all(&true_bg);

        // Decide + mitigate per lane; delivery happens bank-wide below
        // because the scalar engine records each step with its
        // delivered rate.
        let mut mitigated = [UnitsPerHour(0.0); LANES];
        let mut staged: [Option<Staged>; LANES] = std::array::from_fn(|_| None);
        for (l, lane) in lanes.iter_mut().enumerate() {
            if lane.dead.is_some() {
                continue;
            }
            let reading = readings[l];
            if let (Some(inj), Some((route, (lo, hi), target))) =
                (lane.injector.as_mut(), lane.fault_plan.as_ref())
            {
                match route {
                    // Output faults are applied after the decision below.
                    FaultRoute::Rate => {}
                    FaultRoute::Glucose => {
                        let faulty = inj.perturb_target(step, reading.value(), *lo, *hi);
                        if inj.is_active(step) {
                            lane.controller.set_state("glucose", faulty);
                        }
                    }
                    FaultRoute::Internal if inj.is_active(step) => {
                        let base = lane.controller.get_state(target).unwrap_or(0.5 * (lo + hi));
                        let faulty = inj.perturb_target(step, base, *lo, *hi);
                        lane.controller.set_state(target, faulty);
                    }
                    FaultRoute::Internal => {
                        // Keep the injector's Hold history fresh
                        // pre-activation, like the scalar engine.
                        if let Some(base) = lane.controller.get_state(target) {
                            inj.perturb_target(step, base, *lo, *hi);
                        }
                    }
                }
            }

            let mut commanded = lane.controller.decide(step, reading);
            if let (Some(inj), Some((FaultRoute::Rate, (lo, hi), _))) =
                (lane.injector.as_mut(), lane.fault_plan.as_ref())
            {
                commanded = UnitsPerHour(inj.perturb_target(step, commanded.value(), *lo, *hi));
            }

            let action = ControlAction::classify(commanded, lane.prev_commanded);
            let input = MonitorInput {
                step,
                bg: reading,
                commanded,
                previous_rate: lane.prev_commanded,
            };
            let mut alert = None;
            if let Some(m) = lane.monitor.as_deref_mut() {
                let verdict = m.check(&input);
                lane.stream.push(verdict);
                alert = verdict;
            }

            mitigated[l] = if let Some(cm) = lane.ctx_mitigator.as_mut() {
                let mit_ctx = cm.observe_bg(reading);
                cm.mitigate(alert, &mit_ctx, commanded)
            } else {
                match (&lane.config.mitigator, alert) {
                    (Some(mit), Some(_)) => mit.mitigate(alert, commanded),
                    _ => commanded,
                }
            };
            staged[l] = Some(Staged {
                commanded,
                action,
                alert,
            });
        }

        let delivered = pump.deliver_all(&mitigated, CONTROL_CYCLE_MINUTES);

        for (l, lane) in lanes.iter_mut().enumerate() {
            let Some(st) = staged[l].take() else {
                continue; // dead lane: nothing staged
            };
            lane.controller.observe_delivery(delivered[l]);
            if let Some(m) = lane.monitor.as_deref_mut() {
                m.observe_delivery(delivered[l]);
            }
            if let Some(cm) = lane.ctx_mitigator.as_mut() {
                cm.observe_delivery(delivered[l]);
            }
            let fault_active = lane
                .injector
                .as_ref()
                .map(|i| i.is_active(step))
                .unwrap_or(false);
            lane.trace.push(StepRecord {
                step,
                bg: readings[l],
                bg_true: true_bg[l],
                iob: lane.controller.iob(),
                commanded: st.commanded,
                delivered: delivered[l],
                action: st.action,
                fault_active,
                hazard: None,
                alert: st.alert,
            });
            lane.prev_commanded = st.commanded;
        }

        // One lockstep physics step for every lane — dead and padding
        // lanes ride along (non-finite state is absorbing, zero-rate
        // padding is finite) without any lane-crossing arithmetic.
        bank.step_all(&delivered, CONTROL_CYCLE_MINUTES);

        for (l, lane) in lanes.iter_mut().enumerate() {
            if lane.dead.is_none() && !bank.lane_is_finite(l) {
                lane.dead = Some(SimError::NonFinite { cycle: s });
            }
        }
    }

    lanes
        .into_iter()
        .map(|lane| {
            if let Some(e) = lane.dead {
                return Err(e);
            }
            let mut trace = lane.trace;
            if let Some(m) = &lane.monitor {
                trace.monitor_tracks = vec![AlertTrack {
                    monitor: m.name().to_owned(),
                    alerts: lane.stream,
                }];
            }
            aps_risk::label_trace(&mut trace, &lane.config.labels);
            Ok(trace)
        })
        .collect()
}

/// Runs the whole campaign through the batched lockstep engine,
/// streaming each finished trace — **in deterministic job order** —
/// into `sink(job_index, trace)`.
///
/// Workers claim *blocks* of [`BATCH_LANES`] consecutive jobs from a
/// single atomic counter and run each block in lockstep; the calling
/// thread drains a bounded channel through an ordered reorder buffer,
/// exactly like the scalar
/// [`run_campaign_with`](crate::campaign::run_campaign_with). Output
/// is defined to equal
/// [`run_campaign_serial`](crate::campaign::run_campaign_serial),
/// bit for bit.
///
/// # Panics
///
/// Panics if any job fails mid-run (same contract as the scalar
/// executors; the fault-tolerant path is
/// [`run_campaign_resumable`](crate::campaign::run_campaign_resumable)).
pub fn run_campaign_batched_with(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
    sink: impl FnMut(usize, SimTrace),
) {
    run_campaign_batched_with_workers(spec, monitor_factory, None, sink);
}

/// [`run_campaign_batched_with`] with an explicit worker-count
/// override (`None` = `APS_WORKERS` env, then detection). The
/// workers-scaling sweep of `repro bench-campaign --sweep-workers`
/// drives this directly so each sweep point runs at a pinned worker
/// count.
pub fn run_campaign_batched_with_workers(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
    workers: Option<usize>,
    mut sink: impl FnMut(usize, SimTrace),
) {
    let jobs = campaign_jobs(spec);
    let n = jobs.len();
    if n == 0 {
        return;
    }
    let blocks = n.div_ceil(BATCH_LANES);
    let run_one = |b: usize| -> Vec<SimTrace> {
        let lo = b * BATCH_LANES;
        let hi = (lo + BATCH_LANES).min(n);
        run_block::<BATCH_LANES>(spec, &jobs[lo..hi], monitor_factory)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("campaign job failed: {e}")))
            .collect()
    };
    let workers = worker_count(workers).0.min(blocks);
    if workers <= 1 {
        for b in 0..blocks {
            for (j, trace) in run_one(b).into_iter().enumerate() {
                sink(b * BATCH_LANES + j, trace);
            }
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let emitted = AtomicUsize::new(0);
    // Same bounded-memory design as the scalar executor, with blocks
    // as the claim unit: the channel backpressures a slow sink and
    // `max_ahead` keeps workers near the in-order emission frontier.
    let max_ahead = 4 * workers;
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Vec<SimTrace>)>(2 * workers);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let emitted = &emitted;
            let run_one = &run_one;
            scope.spawn(move || loop {
                // sound: Relaxed suffices — fetch_add is an atomic
                // RMW, so block claims are unique and monotone
                // regardless of ordering; the traces themselves are
                // published by the channel send, not by this counter.
                let b = next.fetch_add(1, Ordering::Relaxed);
                if b >= blocks {
                    break;
                }
                // sound: Acquire pairs with the frontier's Release
                // store; a stale read under-estimates the frontier and
                // parks one extra poll — it never admits b early.
                while b >= emitted.load(Ordering::Acquire) + max_ahead {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                let traces = run_one(b);
                if tx.send((b, traces)).is_err() {
                    break; // receiver gone: abandon quietly
                }
            });
        }
        drop(tx);

        // Reorder buffer over block indices; each block unpacks into
        // its jobs' positions.
        let mut pending: BTreeMap<usize, Vec<SimTrace>> = BTreeMap::new();
        let mut next_emit = 0usize;
        for (b, traces) in rx {
            debug_assert!(!pending.contains_key(&b), "block {b} executed twice");
            pending.insert(b, traces);
            while let Some(traces) = pending.remove(&next_emit) {
                for (j, trace) in traces.into_iter().enumerate() {
                    sink(next_emit * BATCH_LANES + j, trace);
                }
                next_emit += 1;
                // sound: Release pairs with the gate's Acquire loads,
                // so workers that observe the new frontier also
                // observe the emissions that produced it.
                emitted.store(next_emit, Ordering::Release);
            }
        }
        debug_assert!(pending.is_empty(), "stream ended with gaps");
    });
}

/// [`run_campaign_batched_with`] collected into a `Vec` — the batched
/// counterpart of [`run_campaign`](crate::campaign::run_campaign),
/// defined to produce bit-identical output.
pub fn run_campaign_batched(
    spec: &CampaignSpec,
    monitor_factory: Option<&MonitorFactory<'_>>,
) -> Vec<SimTrace> {
    let mut out: Vec<SimTrace> = Vec::new();
    run_campaign_batched_with(spec, monitor_factory, |i, trace| {
        debug_assert_eq!(i, out.len(), "stream out of order");
        out.push(trace);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign_serial;
    use crate::platform::Platform;

    #[test]
    fn single_block_matches_serial_jobs() {
        let spec = CampaignSpec {
            patient_indices: vec![0, 1],
            steps: 40,
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        };
        let jobs = campaign_jobs(&spec);
        let serial = run_campaign_serial(&spec, None);
        let block = run_block::<4>(&spec, &jobs[..4], None);
        for (l, res) in block.into_iter().enumerate() {
            assert_eq!(res.unwrap(), serial[l], "lane {l} diverged");
        }
    }

    #[test]
    fn ragged_block_pads_and_matches() {
        let spec = CampaignSpec {
            patient_indices: vec![0],
            steps: 30,
            ..CampaignSpec::quick(Platform::T1dsBasalBolus)
        };
        let jobs = campaign_jobs(&spec);
        let serial = run_campaign_serial(&spec, None);
        // 3 jobs in an 8-lane block: 5 padding lanes.
        let block = run_block::<8>(&spec, &jobs[..3], None);
        assert_eq!(block.len(), 3);
        for (l, res) in block.into_iter().enumerate() {
            assert_eq!(res.unwrap(), serial[l], "lane {l} diverged");
        }
    }

    #[test]
    fn batched_campaign_equals_serial() {
        let spec = CampaignSpec {
            patient_indices: vec![0],
            steps: 40,
            ..CampaignSpec::quick(Platform::GlucosymOref0)
        };
        let serial = run_campaign_serial(&spec, None);
        let batched = run_campaign_batched(&spec, None);
        assert_eq!(batched, serial);
    }
}
