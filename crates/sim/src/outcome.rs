//! Typed job outcomes and the campaign error ledger.
//!
//! A fault-injection campaign is thousands of independent simulations;
//! this module gives each one a machine-readable fate. A job that
//! panics, diverges to a non-finite ODE state, overruns its deadline,
//! or carries an invalid spec becomes a [`JobOutcome::Failed`] with a
//! [`SimError`] and an attempt count — recorded in the campaign's
//! [`ErrorLedger`] — instead of tearing down the executor. The ledger
//! serializes, so a degraded campaign still leaves an auditable record
//! of exactly which grid coordinates failed and why.

use aps_types::SimTrace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a single campaign job failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// The patient ODE state left the representable range (NaN/∞) at
    /// the given control cycle. Caught by the RK4 stepper's finiteness
    /// guard and the engine's per-cycle `state_is_finite` check.
    NonFinite {
        /// Control cycle at which the state became non-finite.
        cycle: u32,
    },
    /// The job panicked; the payload message is preserved.
    Panicked {
        /// The panic payload, rendered to a string.
        message: String,
    },
    /// The job ran longer than the per-job deadline.
    DeadlineExceeded {
        /// Observed wall-clock runtime, milliseconds.
        elapsed_ms: u64,
        /// Configured budget, milliseconds.
        budget_ms: u64,
    },
    /// The job's fault scenario failed structural validation before
    /// the simulation started.
    InvalidSpec {
        /// What the validator rejected.
        detail: String,
    },
}

impl Default for SimError {
    /// An empty [`SimError::InvalidSpec`] — only ever materialized
    /// when container-level `#[serde(default)]` fills a ledger entry
    /// whose `error` field is missing from an older checkpoint.
    fn default() -> SimError {
        SimError::InvalidSpec {
            detail: String::new(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonFinite { cycle } => {
                write!(f, "non-finite ODE state at cycle {cycle}")
            }
            SimError::Panicked { message } => write!(f, "job panicked: {message}"),
            SimError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "job deadline exceeded: ran {elapsed_ms} ms against a {budget_ms} ms budget"
            ),
            SimError::InvalidSpec { detail } => write!(f, "invalid job spec: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The fate of one campaign job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The simulation finished and produced a trace.
    Completed(SimTrace),
    /// Every attempt failed; the last error and the attempt count.
    Failed {
        /// The error from the final attempt.
        error: SimError,
        /// How many attempts were made (≥ 1).
        attempts: u32,
    },
}

impl JobOutcome {
    /// The trace, if the job completed.
    pub fn trace(&self) -> Option<&SimTrace> {
        match self {
            JobOutcome::Completed(t) => Some(t),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// Consumes the outcome into its trace, if completed.
    pub fn into_trace(self) -> Option<SimTrace> {
        match self {
            JobOutcome::Completed(t) => Some(t),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// `true` for [`JobOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// One failed job, as recorded in the [`ErrorLedger`].
///
/// Container-level `#[serde(default)]`: entries written by older code
/// keep loading when fields are added (checkpoint forward compat).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct LedgerEntry {
    /// Index of the job in the campaign's deterministic job order.
    pub job_index: usize,
    /// Cohort index of the patient.
    pub patient_idx: usize,
    /// Initial true glucose of the run (mg/dL).
    pub initial_bg: f64,
    /// Stable scenario name (`""` for the fault-free run).
    pub fault_name: String,
    /// The error from the final attempt.
    pub error: SimError,
    /// How many attempts were made.
    pub attempts: u32,
}

/// Machine-readable record of every failed job in a campaign, in
/// deterministic (job-order) sequence.
///
/// Serializes with serde; `same chaos seed ⇒ same ledger, byte for
/// byte` is pinned by the chaos-determinism test.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct ErrorLedger {
    /// Failed jobs, ordered by `job_index`.
    pub entries: Vec<LedgerEntry>,
}

impl ErrorLedger {
    /// An empty ledger.
    pub fn new() -> ErrorLedger {
        ErrorLedger::default()
    }

    /// Appends a failure record.
    pub fn push(&mut self, entry: LedgerEntry) {
        self.entries.push(entry);
    }

    /// Number of failed jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no job failed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Bounded exponential backoff between retry attempts.
///
/// The delay before attempt `k + 1` (after `k` failures) is
/// `min(base_ms << (k - 1), cap_ms)` milliseconds; `base_ms = 0`
/// retries immediately. Delays are wall-clock only — they never feed
/// back into simulation results, so retried campaigns stay
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first retry, milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, milliseconds.
    pub cap_ms: u64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            base_ms: 0,
            cap_ms: 1_000,
        }
    }
}

impl Backoff {
    /// The delay after `failures` consecutive failures (≥ 1).
    pub fn delay_ms(&self, failures: u32) -> u64 {
        if self.base_ms == 0 || failures == 0 {
            return 0;
        }
        let shift = (failures - 1).min(20);
        self.base_ms.saturating_mul(1u64 << shift).min(self.cap_ms)
    }
}

/// How many times to attempt a job, and how long to wait in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per job (≥ 1; 1 = no retry).
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::default(),
        }
    }
}

impl RetryPolicy {
    /// `max_attempts` attempts with the default (immediate) backoff.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Backoff::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_roundtrips_and_displays() {
        let errors = [
            SimError::NonFinite { cycle: 42 },
            SimError::Panicked {
                message: "boom".to_owned(),
            },
            SimError::DeadlineExceeded {
                elapsed_ms: 900,
                budget_ms: 100,
            },
            SimError::InvalidSpec {
                detail: "target: must not be empty".to_owned(),
            },
        ];
        for e in errors {
            let j = serde_json::to_string(&e).unwrap();
            let back: SimError = serde_json::from_str(&j).unwrap();
            assert_eq!(e, back);
            assert!(!e.to_string().is_empty());
        }
        assert!(SimError::NonFinite { cycle: 42 }.to_string().contains("42"));
    }

    #[test]
    fn ledger_roundtrips() {
        let mut ledger = ErrorLedger::new();
        assert!(ledger.is_empty());
        ledger.push(LedgerEntry {
            job_index: 7,
            patient_idx: 1,
            initial_bg: 120.0,
            fault_name: "max_rate@t30x12".to_owned(),
            error: SimError::Panicked {
                message: "chaos".to_owned(),
            },
            attempts: 3,
        });
        let j = serde_json::to_string(&ledger).unwrap();
        let back: ErrorLedger = serde_json::from_str(&j).unwrap();
        assert_eq!(ledger, back);
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let b = Backoff {
            base_ms: 10,
            cap_ms: 100,
        };
        assert_eq!(b.delay_ms(1), 10);
        assert_eq!(b.delay_ms(2), 20);
        assert_eq!(b.delay_ms(3), 40);
        assert_eq!(b.delay_ms(4), 80);
        assert_eq!(b.delay_ms(5), 100); // capped
        assert_eq!(b.delay_ms(60), 100); // shift saturates, still capped
        let zero = Backoff::default();
        assert_eq!(zero.delay_ms(5), 0, "default backoff is immediate");
    }

    #[test]
    fn retry_policy_floors_at_one_attempt() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 1);
        let j = serde_json::to_string(&RetryPolicy::attempts(3)).unwrap();
        let back: RetryPolicy = serde_json::from_str(&j).unwrap();
        assert_eq!(back.max_attempts, 3);
    }
}
