//! Closed-loop APS simulation harness.
//!
//! Wires together a patient simulator, a controller, an optional fault
//! injector, and any number of safety monitors with mitigation — the
//! experimental setup of the paper's Fig. 5a:
//!
//! * [`session`] — **the primary entry point**:
//!   [`Session::builder`](session::Session::builder) composes one run
//!   fluently (patient, controller, repeatable monitors feeding a
//!   [`MonitorBank`](aps_core::monitors::MonitorBank), fault, config,
//!   per-step observer), and a serde
//!   [`SessionSpec`](session::SessionSpec) describes runs as data;
//! * [`closed_loop::run`] — the legacy positional wrapper over the
//!   same engine, one optional monitor;
//! * [`platform::Platform`] — the two evaluation platforms (OpenAPS +
//!   Glucosym-style, Basal-Bolus + UVA-Padova-style);
//! * [`campaign`] — the fault-injection campaign runner (grid of
//!   patients × initial BG × scenarios, multi-threaded), with
//!   streaming sinks ([`campaign::run_campaign_with`]) and a
//!   pull-based [`campaign::CampaignStream`] for bounded-memory
//!   sweeps;
//! * [`replay`] — offline (parallel) monitor replay over recorded
//!   campaigns;
//! * [`dataset`] — supervised dataset extraction for the ML baselines
//!   and threshold learning;
//! * [`io`] — CSV / JSON-Lines persistence of traces for external
//!   analysis tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod closed_loop;
pub mod dataset;
pub mod io;
pub mod platform;
pub mod replay;
pub mod session;
