//! Closed-loop APS simulation harness.
//!
//! Wires together a patient simulator, a controller, an optional fault
//! injector, and an optional safety monitor with mitigation — the
//! experimental setup of the paper's Fig. 5a:
//!
//! * [`closed_loop::run`] — one 150-step (12-hour) simulation producing
//!   a labeled [`SimTrace`](aps_types::SimTrace);
//! * [`platform::Platform`] — the two evaluation platforms (OpenAPS +
//!   Glucosym-style, Basal-Bolus + UVA-Padova-style);
//! * [`campaign`] — the fault-injection campaign runner (grid of
//!   patients × initial BG × scenarios, multi-threaded);
//! * [`dataset`] — supervised dataset extraction for the ML baselines
//!   and threshold learning;
//! * [`io`] — CSV / JSON-Lines persistence of traces for external
//!   analysis tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod closed_loop;
pub mod dataset;
pub mod io;
pub mod platform;
pub mod replay;
