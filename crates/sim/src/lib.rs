//! Closed-loop APS simulation harness.
//!
//! Wires together a patient simulator, a controller, an optional fault
//! injector, and any number of safety monitors with mitigation — the
//! experimental setup of the paper's Fig. 5a:
//!
//! * [`session`] — **the primary entry point**:
//!   [`Session::builder`](session::Session::builder) composes one run
//!   fluently (patient, controller, repeatable monitors feeding a
//!   [`MonitorBank`](aps_core::monitors::MonitorBank), fault, config,
//!   per-step observer), and a serde
//!   [`SessionSpec`](session::SessionSpec) describes runs as data;
//! * [`closed_loop::run`] — the legacy positional wrapper over the
//!   same engine, one optional monitor;
//! * [`platform::Platform`] — the two evaluation platforms (OpenAPS +
//!   Glucosym-style, Basal-Bolus + UVA-Padova-style);
//! * [`batch`] — the batched lockstep campaign engine: blocks of
//!   [`batch::BATCH_LANES`] jobs share one structure-of-arrays
//!   physics bank ([`batch::run_block`]) and workers claim whole
//!   blocks ([`batch::run_campaign_batched_with`]), bit-identical to
//!   the scalar executors;
//! * [`campaign`] — the fault-injection campaign runner (grid of
//!   patients × initial BG × scenarios, multi-threaded), with
//!   streaming sinks ([`campaign::run_campaign_with`]), a pull-based
//!   [`campaign::CampaignStream`] for bounded-memory sweeps, and the
//!   fault-tolerant path ([`campaign::run_campaign_resumable`]):
//!   panic-isolated workers, retry with bounded backoff, and
//!   checkpoint/resume;
//! * [`outcome`] — typed per-job errors ([`outcome::SimError`]), the
//!   [`outcome::JobOutcome`] fate of each job, and the campaign
//!   [`outcome::ErrorLedger`];
//! * [`checkpoint`] — versioned serde
//!   [`checkpoint::CampaignCheckpoint`] snapshots (completed-job
//!   bitmap, ledger, rolling trace digest) written atomically for
//!   kill/resume;
//! * [`chaos`] — deterministic executor-fault injection
//!   ([`chaos::ChaosConfig`]): seeded worker panics, delays, and
//!   poisoned specs for hardening tests;
//! * [`replay`] — offline (parallel) monitor replay over recorded
//!   campaigns, either in memory or streamed from an open binary
//!   trace store ([`replay::replay_store_with`]);
//! * [`dataset`] — supervised dataset extraction for the ML baselines
//!   and threshold learning, plus the columnar store→forecast-dataset
//!   path ([`dataset::push_store_traces`]);
//! * [`shard`] — shard planning for campaign-as-a-service: splits a
//!   campaign into standalone sub-specs whose expansions concatenate
//!   to exactly the parent job list, so per-shard
//!   checkpoint/resume and result merging stay bit-identical;
//! * [`io`] — CSV / JSON-Lines persistence of traces for external
//!   analysis tooling (bulk corpora belong in `aps_tracestore`'s
//!   binary format instead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod campaign;
pub mod chaos;
pub mod checkpoint;
pub mod closed_loop;
pub mod dataset;
pub mod io;
pub mod outcome;
pub mod platform;
pub mod replay;
pub mod session;
pub mod shard;
