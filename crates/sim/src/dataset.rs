//! Supervised dataset extraction from simulation traces.
//!
//! Implements the paper's ML-monitor task framing (Eq. 7/8): the input
//! is the current system state and issued action, the label is whether
//! *any* hazard occurs at a future time of the same trace (binary), or
//! which hazard type (multi-class). Features are the shared
//! [`MlFeatures`] encoding, reconstructed with the same monitor-side
//! [`ContextBuilder`] the run-time monitors use.

use aps_core::context::ContextBuilder;
use aps_core::monitors::MlFeatures;
use aps_ml::data::{Dataset, TraceDataset};
use aps_ml::lstm::SeqDataset;
use aps_tracestore::{F64Column, TraceStoreReader};
use aps_types::{Hazard, SimTrace, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// Labeling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelMode {
    /// 0 = safe, 1 = a hazard occurs later in this trace.
    Binary,
    /// 0 = safe, 1 = H1 occurs later, 2 = H2 occurs later.
    MultiClass,
}

impl LabelMode {
    fn label(&self, future_hazard: Option<Hazard>) -> usize {
        match (self, future_hazard) {
            (_, None) => 0,
            (LabelMode::Binary, Some(_)) => 1,
            (LabelMode::MultiClass, Some(Hazard::H1)) => 1,
            (LabelMode::MultiClass, Some(Hazard::H2)) => 2,
        }
    }
}

/// Per-step feature extraction shared by all dataset builders.
fn trace_features(trace: &SimTrace, basal: UnitsPerHour) -> Vec<Vec<f64>> {
    let mut builder = ContextBuilder::new(basal);
    let mut rows = Vec::with_capacity(trace.len());
    for rec in trace.iter() {
        let ctx = builder.observe_bg(rec.bg);
        rows.push(MlFeatures::vector(&ctx, rec.commanded, rec.action));
        builder.observe_delivery(rec.delivered);
    }
    rows
}

/// Future-hazard label per step: the first hazard at `t' >= t`, if any.
fn future_hazards(trace: &SimTrace) -> Vec<Option<Hazard>> {
    let n = trace.len();
    let mut out = vec![None; n];
    let mut next: Option<Hazard> = None;
    for t in (0..n).rev() {
        if let Some(h) = trace.records[t].hazard {
            next = Some(h);
        }
        out[t] = next;
    }
    out
}

/// Builds a flat feature dataset (for the DT and MLP monitors).
pub fn build_dataset(traces: &[SimTrace], basal: UnitsPerHour, mode: LabelMode) -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for trace in traces {
        let rows = trace_features(trace, basal);
        let labels = future_hazards(trace);
        for (row, label) in rows.into_iter().zip(labels) {
            x.push(row);
            y.push(mode.label(label));
        }
    }
    Dataset::new(x, y)
}

/// Builds a sliding-window sequence dataset (for the LSTM monitor).
/// Each sample is `window` consecutive feature vectors labeled by the
/// future-hazard status at the window's last step.
pub fn build_seq_dataset(
    traces: &[SimTrace],
    basal: UnitsPerHour,
    mode: LabelMode,
    window: usize,
) -> SeqDataset {
    assert!(window >= 1, "window must be at least 1");
    let mut x = Vec::new();
    let mut y = Vec::new();
    for trace in traces {
        let rows = trace_features(trace, basal);
        let labels = future_hazards(trace);
        if rows.len() < window {
            continue;
        }
        for end in (window - 1)..rows.len() {
            x.push(rows[end + 1 - window..=end].to_vec());
            y.push(mode.label(labels[end]));
        }
    }
    SeqDataset::new(x, y)
}

/// Streams every trace of an open binary store into a forecast
/// [`TraceDataset`] straight off the `bg`/`commanded` columns — no
/// `SimTrace` materialization, no per-record allocation beyond two
/// column buffers reused across traces. Windowing and reservoir
/// sampling are shared with `TraceDataset::push_trace`, so under the
/// same window/horizon/cap/seed this produces a dataset bit-identical
/// to pushing the JSONL-loaded traces one by one.
pub fn push_store_traces(ds: &mut TraceDataset, reader: &TraceStoreReader) {
    let mut bg: Vec<f64> = Vec::new();
    let mut commanded: Vec<f64> = Vec::new();
    for view in reader.iter() {
        view.copy_f64_column(F64Column::Bg, &mut bg);
        view.copy_f64_column(F64Column::Commanded, &mut commanded);
        ds.push_series(&bg, &commanded);
    }
}

/// Deterministically subsamples the majority class so that the
/// negative:positive ratio is at most `max_ratio` (ML training on FI
/// campaigns is dominated by safe samples otherwise).
pub fn balance(dataset: &Dataset, max_ratio: usize) -> Dataset {
    assert!(max_ratio >= 1, "ratio must be at least 1");
    let positives: Vec<usize> = (0..dataset.len()).filter(|&i| dataset.y[i] != 0).collect();
    let negatives: Vec<usize> = (0..dataset.len()).filter(|&i| dataset.y[i] == 0).collect();
    let keep_neg = (positives.len() * max_ratio).max(1).min(negatives.len());
    // Deterministic stride subsampling keeps temporal spread.
    let stride = (negatives.len() / keep_neg.max(1)).max(1);
    let mut idx: Vec<usize> = negatives
        .into_iter()
        .step_by(stride)
        .take(keep_neg)
        .collect();
    idx.extend(positives);
    idx.sort_unstable();
    dataset.subset(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{ControlAction, MgDl, Step, StepRecord, TraceMeta, Units};

    fn synthetic_trace(hazard_at: Option<(usize, Hazard)>) -> SimTrace {
        let mut t = SimTrace::new(TraceMeta::default());
        for i in 0..30u32 {
            let mut r = StepRecord::blank(Step(i));
            r.bg = MgDl(120.0 + i as f64);
            r.bg_true = r.bg;
            r.commanded = UnitsPerHour(1.0);
            r.delivered = r.commanded;
            r.action = ControlAction::KeepInsulin;
            r.iob = Units(0.1);
            if let Some((at, h)) = hazard_at {
                if i as usize >= at {
                    r.hazard = Some(h);
                }
            }
            t.push(r);
        }
        t.refresh_meta();
        t
    }

    #[test]
    fn binary_labels_are_future_looking() {
        let trace = synthetic_trace(Some((20, Hazard::H1)));
        let ds = build_dataset(&[trace], UnitsPerHour(1.0), LabelMode::Binary);
        assert_eq!(ds.len(), 30);
        // Every step up to and including the hazard is labeled positive
        // (a hazard occurs at a future time).
        assert!(ds.y[..=20].iter().all(|&y| y == 1));
        assert_eq!(ds.dim(), MlFeatures::DIM);
    }

    #[test]
    fn multiclass_distinguishes_hazards() {
        let h1 = synthetic_trace(Some((5, Hazard::H1)));
        let h2 = synthetic_trace(Some((5, Hazard::H2)));
        let safe = synthetic_trace(None);
        let ds = build_dataset(&[h1, h2, safe], UnitsPerHour(1.0), LabelMode::MultiClass);
        assert!(ds.y.contains(&1));
        assert!(ds.y.contains(&2));
        assert!(ds.y.contains(&0));
        assert_eq!(ds.n_classes(), 3);
    }

    #[test]
    fn seq_dataset_window_shapes() {
        let trace = synthetic_trace(Some((20, Hazard::H2)));
        let ds = build_seq_dataset(&[trace], UnitsPerHour(1.0), LabelMode::Binary, 6);
        assert_eq!(ds.len(), 25); // 30 - 6 + 1
        assert_eq!(ds.x[0].len(), 6);
        assert_eq!(ds.x[0][0].len(), MlFeatures::DIM);
    }

    #[test]
    fn short_traces_are_skipped_by_seq_builder() {
        let mut t = SimTrace::new(TraceMeta::default());
        for i in 0..3u32 {
            t.push(StepRecord::blank(Step(i)));
        }
        let ds = build_seq_dataset(&[t], UnitsPerHour(1.0), LabelMode::Binary, 6);
        assert!(ds.is_empty());
    }

    #[test]
    fn balance_caps_negative_ratio() {
        let safe = synthetic_trace(None);
        let hazardous = synthetic_trace(Some((28, Hazard::H1)));
        let ds = build_dataset(
            &[safe.clone(), safe.clone(), safe, hazardous],
            UnitsPerHour(1.0),
            LabelMode::Binary,
        );
        let balanced = balance(&ds, 2);
        let pos = balanced.y.iter().filter(|&&y| y != 0).count();
        let neg = balanced.y.iter().filter(|&&y| y == 0).count();
        // Every step of the hazardous trace is future-positive.
        assert_eq!(pos, 30);
        assert!(neg <= pos * 2 + 1, "neg {neg} vs pos {pos}");
    }
}
