//! One closed-loop simulation run.

use aps_controllers::Controller;
use aps_core::hms::ContextMitigatorConfig;
use aps_core::mitigation::Mitigator;
use aps_core::monitors::HazardMonitor;
use aps_fault::FaultInjector;
use aps_glucose::pump::PumpConfig;
use aps_glucose::sensor::CgmConfig;
use aps_glucose::PatientSim;
use aps_risk::LabelConfig;
use aps_types::{SimTrace, Step};
use serde::{Deserialize, Serialize};

/// A scheduled meal: `carbs_g` grams of carbohydrate ingested at the
/// start of control cycle `step`.
///
/// The paper's simulations assume no meals ("mimicking a scenario of
/// patient eating dinner, going to sleep"); scheduling meals exercises
/// the simulators' gut-absorption subsystems and stresses monitors
/// with legitimate glucose excursions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Meal {
    /// Control cycle at which the meal is eaten.
    pub step: Step,
    /// Carbohydrate content (grams).
    pub carbs_g: f64,
    /// Whether the patient announces the meal to the controller (which
    /// may dose a prandial bolus; see
    /// [`Controller::announce_meal`]).
    ///
    /// [`Controller::announce_meal`]: aps_controllers::Controller::announce_meal
    pub announced: bool,
}

impl Meal {
    /// An unannounced meal (the harder, purely reactive case).
    pub fn new(step: Step, carbs_g: f64) -> Meal {
        Meal {
            step,
            carbs_g,
            announced: false,
        }
    }

    /// An announced meal: the controller is told the carbs and may
    /// bolus for them.
    pub fn announced(step: Step, carbs_g: f64) -> Meal {
        Meal {
            step,
            carbs_g,
            announced: true,
        }
    }
}

/// A scheduled exercise bout: at control cycle `step` the patient
/// starts `duration_min` minutes of activity at `intensity` (0–1),
/// which elevates insulin-independent glucose uptake in the patient
/// models — the second disturbance class (besides [`Meal`]s) the
/// paper's overnight scenario excludes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExerciseBout {
    /// Control cycle at which the bout starts.
    pub step: Step,
    /// Intensity, 0 = rest to 1 = brisk aerobic exercise.
    pub intensity: f64,
    /// Duration in minutes.
    pub duration_min: f64,
}

impl ExerciseBout {
    /// Convenience constructor.
    pub fn new(step: Step, intensity: f64, duration_min: f64) -> ExerciseBout {
        ExerciseBout {
            step,
            intensity,
            duration_min,
        }
    }
}

/// Configuration of one closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopConfig {
    /// Number of control cycles (paper: 150 ≈ 12 h).
    pub steps: u32,
    /// Initial true glucose (mg/dL).
    pub initial_bg: f64,
    /// CGM model.
    pub cgm: CgmConfig,
    /// Pump model.
    pub pump: PumpConfig,
    /// Hazard labeling configuration.
    pub labels: LabelConfig,
    /// When set, monitor alerts trigger Algorithm-1 mitigation.
    pub mitigator: Option<Mitigator>,
    /// When set, monitor alerts instead trigger the context-dependent
    /// mitigation policy (takes precedence over [`mitigator`]).
    ///
    /// [`mitigator`]: LoopConfig::mitigator
    #[serde(default)]
    pub context_mitigation: Option<ContextMitigatorConfig>,
    /// Meals ingested during the run (default: none, the paper's
    /// overnight scenario).
    #[serde(default)]
    pub meals: Vec<Meal>,
    /// Exercise bouts during the run (default: none).
    #[serde(default)]
    pub exercise: Vec<ExerciseBout>,
}

impl Default for LoopConfig {
    fn default() -> LoopConfig {
        LoopConfig {
            steps: 150,
            initial_bg: 120.0,
            cgm: CgmConfig::default(),
            pump: PumpConfig::default(),
            labels: LabelConfig::default(),
            mitigator: None,
            context_mitigation: None,
            meals: Vec::new(),
            exercise: Vec::new(),
        }
    }
}

/// Runs one closed-loop simulation (legacy positional entry point).
///
/// This is a documented thin wrapper over the session engine — the
/// same loop that powers [`Session::run`](crate::session::Session) and
/// the campaign executors — retained for source compatibility. New
/// code should prefer [`Session::builder`](crate::session::Session),
/// which accepts any number of monitors (recorded as
/// [`monitor_tracks`](aps_types::SimTrace::monitor_tracks)), a
/// per-step observer, and — unlike this function, which silently
/// treats an unknown fault-target name as an *unbounded* variable —
/// validates the fault target at build time.
///
/// The monitor (when present) sees the *clean* CGM reading and the
/// controller's (possibly fault-corrupted) command — the paper's threat
/// model assumes sensor data is protected and faults target the
/// controller. The injector perturbs the controller's named input /
/// internal / output variables while its activation window is open.
/// # Panics
///
/// Panics if the patient ODE state becomes non-finite mid-run (the
/// session API offers [`Session::try_run`](crate::session::Session)
/// for the typed error; this frozen positional signature stays
/// infallible).
pub fn run(
    patient: &mut dyn PatientSim,
    controller: &mut dyn Controller,
    monitor: Option<&mut (dyn HazardMonitor + 'static)>,
    injector: Option<&mut FaultInjector>,
    config: &LoopConfig,
) -> SimTrace {
    try_run(patient, controller, monitor, injector, config)
        .unwrap_or_else(|e| panic!("closed-loop run failed: {e}"))
}

/// Checked variant of [`run`]: mid-run failures become a typed
/// [`SimError`](crate::outcome::SimError). The fault-tolerant
/// campaign executor runs jobs through this path so a diverging ODE
/// lands in the error ledger instead of tearing a worker down.
pub(crate) fn try_run(
    patient: &mut dyn PatientSim,
    controller: &mut dyn Controller,
    monitor: Option<&mut (dyn HazardMonitor + 'static)>,
    injector: Option<&mut FaultInjector>,
    config: &LoopConfig,
) -> Result<SimTrace, crate::outcome::SimError> {
    match monitor {
        Some(m) => {
            crate::session::run_engine(patient, controller, &mut [m], injector, config, None)
        }
        None => crate::session::run_engine(patient, controller, &mut [], injector, config, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use aps_core::monitors::NullMonitor;
    use aps_fault::{FaultKind, FaultScenario};

    #[test]
    fn fault_free_run_stays_safe() {
        let platform = Platform::GlucosymOref0;
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let config = LoopConfig::default();
        let trace = run(patient.as_mut(), controller.as_mut(), None, None, &config);
        assert_eq!(trace.len(), 150);
        assert!(
            !trace.is_hazardous(),
            "fault-free run should be safe; onset {:?}, bg range {:?}..{:?}",
            trace.meta.hazard_onset,
            trace
                .bg_true_series()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min),
            trace
                .bg_true_series()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
        );
        assert!(trace.meta.fault_start.is_none());
    }

    #[test]
    fn max_rate_fault_causes_hypoglycemia_hazard() {
        let platform = Platform::GlucosymOref0;
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let scenario = FaultScenario::new("rate", FaultKind::Max, Step(20), 36);
        let mut injector = FaultInjector::new(scenario);
        let config = LoopConfig::default();
        let trace = run(
            patient.as_mut(),
            controller.as_mut(),
            None,
            Some(&mut injector),
            &config,
        );
        assert!(injector.activations() > 0, "fault never activated");
        assert!(
            trace.is_hazardous(),
            "3 hours of max-rate insulin should be hazardous; min BG {}",
            trace
                .bg_true_series()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
        );
        assert_eq!(trace.meta.hazard_type, Some(aps_types::Hazard::H1));
        assert!(trace.records.iter().any(|r| r.fault_active));
    }

    #[test]
    fn monitor_alerts_are_recorded() {
        let platform = Platform::GlucosymOref0;
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let mut monitor = NullMonitor;
        let config = LoopConfig::default();
        let trace = run(
            patient.as_mut(),
            controller.as_mut(),
            Some(&mut monitor),
            None,
            &config,
        );
        assert!(trace.first_alert().is_none());
    }

    #[test]
    fn runs_are_deterministic() {
        let platform = Platform::GlucosymOref0;
        let config = LoopConfig::default();
        let scenario = FaultScenario::new("glucose", FaultKind::Max, Step(30), 12);
        let mk = || {
            let mut patient = platform.patients().remove(2);
            let mut controller = platform.controller_for(patient.as_ref());
            let mut injector = FaultInjector::new(scenario.clone());
            run(
                patient.as_mut(),
                controller.as_mut(),
                None,
                Some(&mut injector),
                &config,
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn meals_produce_excursions_the_controller_absorbs() {
        let platform = Platform::GlucosymOref0;
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let config = LoopConfig {
            steps: 150,
            meals: vec![Meal::new(Step(30), 45.0)],
            ..LoopConfig::default()
        };
        let trace = run(patient.as_mut(), controller.as_mut(), None, None, &config);
        let bg = trace.bg_true_series();
        let pre_meal = bg[..30].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let post_peak = bg[30..90].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            post_peak > pre_meal + 20.0,
            "45 g of carbs barely moved BG ({pre_meal} -> {post_peak})"
        );
        // The controller brings the excursion back toward target by
        // the end of the run.
        let last = *bg.last().unwrap();
        assert!(
            last < post_peak - 10.0,
            "no post-meal regulation ({post_peak} -> {last})"
        );
    }

    #[test]
    fn meal_day_is_not_labeled_hazardous() {
        // Moderate meals on both platforms: a legitimate disturbance,
        // not a hazard. The reactive oref0 platform handles
        // unannounced meals; the basal–bolus protocol (which by design
        // doses per announced carbs) gets announcements and smaller
        // portions — its pump-rate-limited bolus cannot blunt a large
        // unannounced-scale excursion, and the HBGI-based labeling
        // (tuned for the paper's no-meal overnight runs) flags
        // sustained climbs past ≈210 mg/dL.
        for platform in Platform::ALL {
            let mut patient = platform.patients().remove(0);
            let mut controller = platform.controller_for(patient.as_ref());
            let meals = match platform {
                Platform::GlucosymOref0 => vec![
                    Meal::new(Step(10), 30.0),
                    Meal::new(Step(60), 40.0),
                    Meal::new(Step(110), 35.0),
                ],
                Platform::T1dsBasalBolus => vec![
                    Meal::announced(Step(10), 20.0),
                    Meal::announced(Step(60), 25.0),
                    Meal::announced(Step(110), 20.0),
                ],
            };
            let config = LoopConfig {
                steps: 150,
                meals,
                ..LoopConfig::default()
            };
            let trace = run(patient.as_mut(), controller.as_mut(), None, None, &config);
            assert!(
                !trace.is_hazardous(),
                "{}: meal day labeled hazardous (onset {:?})",
                platform.name(),
                trace.meta.hazard_onset
            );
        }
    }

    #[test]
    fn exercise_bout_depresses_glucose_during_the_window() {
        let platform = Platform::GlucosymOref0;
        let run_with = |bouts: Vec<ExerciseBout>| -> Vec<f64> {
            let mut patient = platform.patients().remove(0);
            let mut controller = platform.controller_for(patient.as_ref());
            let config = LoopConfig {
                steps: 100,
                exercise: bouts,
                ..LoopConfig::default()
            };
            run(patient.as_mut(), controller.as_mut(), None, None, &config).bg_true_series()
        };
        let rest = run_with(vec![]);
        let active = run_with(vec![ExerciseBout::new(Step(20), 0.8, 60.0)]);
        // During the bout (steps 20..32) BG must dip below the resting run.
        let dip: f64 = (22..32)
            .map(|i| rest[i] - active[i])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            dip > 3.0,
            "exercise left no mark on the trajectory (max dip {dip:.1})"
        );
        // Long after the bout the two runs re-converge.
        let tail_gap = (rest[99] - active[99]).abs();
        assert!(
            tail_gap < 15.0,
            "loop failed to re-regulate after exercise ({tail_gap:.1})"
        );
    }

    #[test]
    fn announcing_a_meal_shrinks_the_excursion() {
        let platform = Platform::T1dsBasalBolus;
        let peak = |announced: bool| -> f64 {
            let mut patient = platform.patients().remove(0);
            let mut controller = platform.controller_for(patient.as_ref());
            let meal = if announced {
                Meal::announced(Step(20), 40.0)
            } else {
                Meal::new(Step(20), 40.0)
            };
            let config = LoopConfig {
                steps: 120,
                meals: vec![meal],
                ..LoopConfig::default()
            };
            let trace = run(patient.as_mut(), controller.as_mut(), None, None, &config);
            trace
                .bg_true_series()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let unannounced = peak(false);
        let announced = peak(true);
        assert!(
            announced < unannounced - 15.0,
            "prandial bolus should blunt the peak ({announced:.0} vs {unannounced:.0})"
        );
    }

    #[test]
    fn t1ds_platform_also_runs() {
        let platform = Platform::T1dsBasalBolus;
        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let config = LoopConfig {
            steps: 60,
            ..LoopConfig::default()
        };
        let trace = run(patient.as_mut(), controller.as_mut(), None, None, &config);
        assert_eq!(trace.len(), 60);
        let min_bg = trace
            .bg_true_series()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(min_bg > 40.0, "basal-bolus loop collapsed to {min_bg}");
    }
}
