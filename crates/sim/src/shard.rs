//! Shard planning for campaign-as-a-service execution.
//!
//! A shard is a contiguous slice of the expanded campaign job list,
//! expressed as a standalone [`CampaignSpec`] so every existing
//! executor — including [`run_campaign_resumable`] with its versioned
//! `CampaignCheckpoint` — runs a shard unchanged. The split exploits
//! the expansion order pinned by [`campaign_jobs`]: patients are the
//! outermost loop and initial BGs the next, while the per-(patient,
//! BG) scenario list depends only on fields a shard never modifies
//! (platform, fault grid, targets, extended alphabet). Restricting
//! `patient_indices` (or, when more shards than patients are
//! requested, `initial_bgs` per patient) therefore yields sub-specs
//! whose expansions concatenate — in shard order — to exactly the
//! parent expansion. That property is what makes the shard the unit
//! of resume for the campaign service: per-shard checkpoints and
//! per-shard result logs merge back into a bit-identical campaign.
//!
//! [`run_campaign_resumable`]: crate::campaign::run_campaign_resumable
//! [`campaign_jobs`]: crate::campaign::campaign_jobs

use crate::campaign::{campaign_size, CampaignSpec};

/// One planned shard: a standalone sub-spec plus its position in the
/// parent campaign's job order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Shard position (0-based, in parent job order).
    pub index: usize,
    /// Standalone spec whose expansion is this shard's job slice.
    pub spec: CampaignSpec,
    /// Index of this shard's first job in the parent expansion.
    pub job_offset: usize,
    /// Number of jobs in this shard (`campaign_size(&spec)`).
    pub job_count: usize,
}

/// Splits `slice` into `k` contiguous chunks of near-equal size (the
/// first `len % k` chunks get one extra element). `k` must be in
/// `1..=slice.len()`.
fn chunk_bounds(len: usize, k: usize) -> Vec<(usize, usize)> {
    let base = len / k;
    let extra = len % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Plans up to `requested` shards over `spec`.
///
/// Guarantees:
///
/// - concatenating `campaign_jobs(&shard.spec)` over shards in
///   `index` order equals `campaign_jobs(spec)` exactly, so
///   per-shard results merge bit-identically (pinned by tests);
/// - `job_offset`/`job_count` partition `0..campaign_size(spec)`;
/// - every shard is non-empty.
///
/// The planner may return fewer shards than requested: a campaign
/// with `p` patients and `b` initial BGs splits into at most `p * b`
/// shards (the scenario list within one (patient, BG) cell is never
/// split — a cell is the smallest slice a standalone spec can
/// express while `include_fault_free` stays per-cell). Degenerate
/// specs (no patients or no BGs) plan as a single shard.
pub fn plan_shards(spec: &CampaignSpec, requested: usize) -> Vec<ShardPlan> {
    let requested = requested.max(1);
    let patients = spec.patient_indices.len();
    let bgs = spec.initial_bgs.len();

    let mut specs: Vec<CampaignSpec> = Vec::new();
    if patients == 0 || bgs == 0 || requested == 1 {
        specs.push(spec.clone());
    } else if requested <= patients {
        // Split the patient axis alone: each shard keeps the full BG
        // list, so expansion order within a shard matches the parent.
        for (lo, hi) in chunk_bounds(patients, requested) {
            let mut sub = spec.clone();
            sub.patient_indices = spec.patient_indices[lo..hi].to_vec();
            specs.push(sub);
        }
    } else {
        // More shards than patients: one shard group per patient,
        // then split that patient's BG list into contiguous chunks.
        let per_patient = requested.div_ceil(patients).min(bgs);
        for &pi in &spec.patient_indices {
            for (lo, hi) in chunk_bounds(bgs, per_patient) {
                let mut sub = spec.clone();
                sub.patient_indices = vec![pi];
                sub.initial_bgs = spec.initial_bgs[lo..hi].to_vec();
                specs.push(sub);
            }
        }
    }

    let mut plans = Vec::with_capacity(specs.len());
    let mut offset = 0;
    for (index, sub) in specs.into_iter().enumerate() {
        let job_count = campaign_size(&sub);
        plans.push(ShardPlan {
            index,
            spec: sub,
            job_offset: offset,
            job_count,
        });
        offset += job_count;
    }
    debug_assert_eq!(offset, campaign_size(spec), "shards must partition");
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{campaign_jobs, run_campaign_serial, CampaignSpec};
    use crate::platform::Platform;

    fn spec() -> CampaignSpec {
        let mut s = CampaignSpec::quick(Platform::GlucosymOref0);
        s.patient_indices = vec![0, 1, 2];
        s.initial_bgs = vec![120.0, 160.0];
        s.steps = 20;
        s
    }

    fn assert_partition(spec: &CampaignSpec, requested: usize) {
        let plans = plan_shards(spec, requested);
        assert!(!plans.is_empty());
        let parent = campaign_jobs(spec);
        let mut offset = 0;
        let mut merged = Vec::new();
        for (k, plan) in plans.iter().enumerate() {
            assert_eq!(plan.index, k);
            assert_eq!(plan.job_offset, offset);
            let jobs = campaign_jobs(&plan.spec);
            assert_eq!(jobs.len(), plan.job_count);
            assert!(plan.job_count > 0, "empty shard");
            offset += plan.job_count;
            merged.extend(jobs);
        }
        assert_eq!(offset, parent.len());
        assert_eq!(merged, parent, "shard concat != parent expansion");
    }

    #[test]
    fn shards_partition_the_parent_job_list() {
        let s = spec();
        for requested in [1, 2, 3, 4, 5, 6, 7, 100] {
            assert_partition(&s, requested);
        }
    }

    #[test]
    fn planned_count_is_a_fixed_point() {
        // The service stores the *planned* shard count in the job
        // manifest and re-plans from it on resume; that is only sound
        // if re-planning with the planned count reproduces the plan.
        let mut specs = vec![spec()];
        let mut wide = spec();
        wide.initial_bgs = vec![100.0, 120.0, 160.0, 200.0];
        specs.push(wide);
        let mut narrow = spec();
        narrow.patient_indices = vec![0];
        specs.push(narrow);
        for s in &specs {
            for requested in 1..=12 {
                let plans = plan_shards(s, requested);
                let replanned = plan_shards(s, plans.len());
                assert_eq!(
                    plans.len(),
                    replanned.len(),
                    "plan count not a fixed point for requested={requested}"
                );
                for (a, b) in plans.iter().zip(&replanned) {
                    assert_eq!(a.spec, b.spec);
                    assert_eq!(a.job_offset, b.job_offset);
                    assert_eq!(a.job_count, b.job_count);
                }
            }
        }
    }

    #[test]
    fn requested_zero_clamps_to_one_shard() {
        let s = spec();
        let plans = plan_shards(&s, 0);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].spec, s);
        assert_eq!(plans[0].job_count, campaign_jobs(&s).len());
    }

    #[test]
    fn degenerate_specs_plan_one_shard() {
        let mut s = spec();
        s.patient_indices.clear();
        let plans = plan_shards(&s, 8);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].job_count, 0);

        let mut s = spec();
        s.initial_bgs.clear();
        assert_eq!(plan_shards(&s, 8).len(), 1);
    }

    #[test]
    fn sharded_serial_runs_concat_to_parent_serial_run() {
        let s = spec();
        let reference = run_campaign_serial(&s, None);
        for requested in [2, 4] {
            let mut merged = Vec::new();
            for plan in plan_shards(&s, requested) {
                merged.extend(run_campaign_serial(&plan.spec, None));
            }
            assert_eq!(merged.len(), reference.len());
            // SimTrace is PartialEq over every sample — bit-identity.
            assert_eq!(merged, reference, "requested={requested}");
        }
    }

    #[test]
    fn more_shards_than_patients_splits_bgs() {
        let s = spec();
        let plans = plan_shards(&s, 6);
        assert_eq!(plans.len(), 6);
        for plan in &plans {
            assert_eq!(plan.spec.patient_indices.len(), 1);
            assert_eq!(plan.spec.initial_bgs.len(), 1);
        }
        assert_partition(&s, 6);
    }
}
