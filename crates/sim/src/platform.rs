//! The two closed-loop evaluation platforms of the paper.

use aps_controllers::basal_bolus::{BasalBolusController, BasalBolusProfile};
use aps_controllers::oref0::{Oref0Controller, Oref0Profile};
use aps_controllers::Controller;
use aps_fault::InjectionTarget;
use aps_glucose::{patients, BoxedPatient, PatientSim};
use aps_types::{MgDl, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// A simulator + controller pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// OpenAPS-style controller on the Glucosym-style (Bergman/GIM)
    /// cohort — the paper's main case study.
    GlucosymOref0,
    /// Basal-Bolus controller on the UVA-Padova-style (Dalla Man)
    /// cohort — the generalization case study.
    T1dsBasalBolus,
}

impl Platform {
    /// Both platforms, in paper order.
    pub const ALL: [Platform; 2] = [Platform::GlucosymOref0, Platform::T1dsBasalBolus];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::GlucosymOref0 => "glucosym+oref0",
            Platform::T1dsBasalBolus => "t1ds+basal-bolus",
        }
    }

    /// The platform's ten-patient cohort.
    pub fn patients(&self) -> Vec<BoxedPatient> {
        match self {
            Platform::GlucosymOref0 => patients::glucosym_cohort(),
            Platform::T1dsBasalBolus => patients::t1ds_cohort(),
        }
    }

    /// One cohort member by index (`None` when out of range).
    pub fn patient(&self, index: usize) -> Option<BoxedPatient> {
        let mut cohort = self.patients();
        (index < cohort.len()).then(|| cohort.swap_remove(index))
    }

    /// One cohort member by index without type erasure — the form the
    /// batched lockstep engine needs to load a lane into the matching
    /// structure-of-arrays bank. Indexing matches
    /// [`patients`](Platform::patients) order (the order campaign jobs
    /// reference by `patient_idx`).
    pub fn concrete_patient(&self, index: usize) -> Option<patients::CohortPatient> {
        let mut cohort = match self {
            Platform::GlucosymOref0 => patients::glucosym_cohort_concrete(),
            Platform::T1dsBasalBolus => patients::t1ds_cohort_concrete(),
        };
        (index < cohort.len()).then(|| cohort.swap_remove(index))
    }

    /// Cohort size (every platform ships ten virtual patients).
    pub fn cohort_size(&self) -> usize {
        self.patients().len()
    }

    /// Builds the platform's controller tuned to a patient (basal rate
    /// from the patient's 120 mg/dL equilibrium).
    pub fn controller_for(&self, patient: &dyn PatientSim) -> Box<dyn Controller> {
        let basal = patient.equilibrium_basal(MgDl(120.0)).value().max(0.05);
        match self {
            Platform::GlucosymOref0 => Box::new(Oref0Controller::new(Oref0Profile {
                basal,
                max_basal: (4.0 * basal).max(2.0),
                ..Oref0Profile::default()
            })),
            Platform::T1dsBasalBolus => Box::new(BasalBolusController::new(BasalBolusProfile {
                basal,
                max_rate: (6.0 * basal).max(2.0),
                ..BasalBolusProfile::default()
            })),
        }
    }

    /// The controller's basal rate for a patient (monitor context
    /// reference).
    pub fn basal_for(&self, patient: &dyn PatientSim) -> UnitsPerHour {
        UnitsPerHour(patient.equilibrium_basal(MgDl(120.0)).value().max(0.05))
    }

    /// The regulation target of the platform's controller.
    pub fn target(&self) -> MgDl {
        match self {
            Platform::GlucosymOref0 => MgDl(Oref0Profile::default().target_bg),
            Platform::T1dsBasalBolus => MgDl(BasalBolusProfile::default().target_bg),
        }
    }

    /// The maximum rate the platform's mitigation may command on a
    /// predicted H2.
    ///
    /// The paper deliberately uses "a fixed maximum value of insulin to
    /// enable a fair comparison with baseline non-context-aware
    /// monitors" — fixed across patients, so over-mitigation of false
    /// alarms is genuinely dangerous for insulin-sensitive patients
    /// (the source of Table VII's "new hazards" column).
    pub fn max_mitigation_rate(&self, _patient: &dyn PatientSim) -> UnitsPerHour {
        match self {
            Platform::GlucosymOref0 => UnitsPerHour(6.0),
            Platform::T1dsBasalBolus => UnitsPerHour(8.0),
        }
    }

    /// Fault-injection targets for the platform's controller: its
    /// injectable state variables with offsets scaled to each range.
    pub fn injection_targets(&self, patient: &dyn PatientSim) -> Vec<InjectionTarget> {
        let controller = self.controller_for(patient);
        controller
            .state_vars()
            .into_iter()
            .map(|v| InjectionTarget::with_span(v.name, v.max - v.min))
            .collect()
    }

    /// [`injection_targets`](Platform::injection_targets) with the
    /// extended fault-kind alphabet (gain errors, sensor drift,
    /// deterministic jitter, flapping dropouts) parameterized per
    /// variable range.
    pub fn injection_targets_extended(&self, patient: &dyn PatientSim) -> Vec<InjectionTarget> {
        let controller = self.controller_for(patient);
        controller
            .state_vars()
            .into_iter()
            .map(|v| InjectionTarget::with_span_extended(v.name, v.max - v.min))
            .collect()
    }

    /// Names of the three primary injection targets used by the
    /// scaled-down default campaigns (input, internal state, output).
    pub const PRIMARY_TARGET_NAMES: [&'static str; 3] = ["glucose", "iob", "rate"];

    /// The three primary injection targets
    /// ([`PRIMARY_TARGET_NAMES`](Platform::PRIMARY_TARGET_NAMES)).
    pub fn primary_targets(&self, patient: &dyn PatientSim) -> Vec<InjectionTarget> {
        self.injection_targets(patient)
            .into_iter()
            .filter(|t| Platform::PRIMARY_TARGET_NAMES.contains(&t.name.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_build_cohorts_and_controllers() {
        for platform in Platform::ALL {
            let cohort = platform.patients();
            assert_eq!(cohort.len(), 10, "{}", platform.name());
            let controller = platform.controller_for(cohort[0].as_ref());
            assert!(controller.basal_rate().value() > 0.0);
            assert!(platform.target().value() > 100.0);
        }
    }

    #[test]
    fn injection_targets_cover_io_and_state() {
        let platform = Platform::GlucosymOref0;
        let patient = platform.patients().remove(0);
        let targets = platform.injection_targets(patient.as_ref());
        let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"glucose"));
        assert!(names.contains(&"rate"));
        assert!(names.contains(&"iob"));
        let primary = platform.primary_targets(patient.as_ref());
        assert_eq!(primary.len(), 3);
    }

    #[test]
    fn mitigation_rate_scales_with_basal() {
        let platform = Platform::GlucosymOref0;
        let patient = platform.patients().remove(0);
        let max = platform.max_mitigation_rate(patient.as_ref());
        assert!(max.value() >= 2.0);
    }
}
