//! Offline monitor replay.
//!
//! A monitor that only *observes* (no mitigation) does not perturb the
//! closed loop, so its alert sequence on a recorded trace is identical
//! to what it would have produced live. Replaying lets one fault
//! campaign be evaluated against any number of monitors — the paper's
//! Table V/VI/Fig. 9 comparisons — at a fraction of the cost of
//! re-simulating.

use aps_core::monitors::{HazardMonitor, MonitorInput};
use aps_types::{SimTrace, UnitsPerHour};

/// Replays `trace` through `monitor`, returning a copy with the
/// `alert` column rewritten to the monitor's verdicts.
///
/// The monitor sees exactly what it would have seen live: the clean
/// CGM reading, the commanded rate, the previously *commanded* rate —
/// and is told the recorded delivery each cycle.
pub fn replay_monitor(trace: &SimTrace, monitor: &mut dyn HazardMonitor) -> SimTrace {
    monitor.reset();
    let mut out = trace.clone();
    // The live loop seeds previous_rate with the controller's basal;
    // the first record's commanded rate is the closest recorded proxy
    // (at reset the controller commands its basal).
    let mut prev_commanded = UnitsPerHour(
        trace
            .records
            .first()
            .map(|r| r.commanded.value())
            .unwrap_or(0.0),
    );
    for rec in &mut out.records {
        let alert = monitor.check(&MonitorInput {
            step: rec.step,
            bg: rec.bg,
            commanded: rec.commanded,
            previous_rate: prev_commanded,
        });
        monitor.observe_delivery(rec.delivered);
        rec.alert = alert;
        prev_commanded = rec.commanded;
    }
    out
}

/// Replays a whole campaign through monitors produced per trace by
/// `factory` (monitors are stateful and patient-specific, so each
/// trace gets a fresh one).
pub fn replay_campaign<F>(traces: &[SimTrace], mut factory: F) -> Vec<SimTrace>
where
    F: FnMut(&SimTrace) -> Box<dyn HazardMonitor>,
{
    traces
        .iter()
        .map(|t| {
            let mut monitor = factory(t);
            replay_monitor(t, monitor.as_mut())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignSpec};
    use crate::platform::Platform;
    use aps_core::monitors::CawMonitor;
    use aps_core::scs::Scs;

    /// The gold test: replaying a monitor over a recorded trace must
    /// produce the same alerts as running it live in the loop.
    #[test]
    fn replay_matches_live_alerts() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![140.0],
            ..CampaignSpec::quick(platform)
        };
        let scs = Scs::with_default_thresholds(platform.target());
        let mk = |basal| Box::new(CawMonitor::new("cawot", scs.clone(), basal));

        // Live: monitor inside the loop (no mitigation).
        let scs_live = scs.clone();
        let factory = move |ctx: &crate::campaign::ScenarioCtx| {
            Box::new(CawMonitor::new("cawot", scs_live.clone(), ctx.basal))
                as Box<dyn HazardMonitor>
        };
        let live = run_campaign(&spec, Some(&factory));

        // Replay: same campaign recorded without a monitor.
        let recorded = run_campaign(&spec, None);
        let probe = platform.patients().remove(0);
        let basal = platform.basal_for(probe.as_ref());
        for (live_t, rec_t) in live.iter().zip(&recorded) {
            let mut monitor = mk(basal);
            let replayed = replay_monitor(rec_t, monitor.as_mut());
            let live_alerts: Vec<_> = live_t.records.iter().map(|r| r.alert).collect();
            let replay_alerts: Vec<_> = replayed.records.iter().map(|r| r.alert).collect();
            assert_eq!(
                live_alerts, replay_alerts,
                "divergence on {}",
                rec_t.meta.fault_name
            );
        }
    }

    /// Live-vs-replay equivalence must also hold across the extended
    /// fault alphabet — in particular `Noise`, whose jitter has to be
    /// a pure function of the fault clock for a recorded trace to mean
    /// anything on replay.
    #[test]
    fn replay_matches_live_alerts_on_extended_faults() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![140.0],
            ..CampaignSpec::extended(platform)
        };
        let scs = Scs::with_default_thresholds(platform.target());
        let scs_live = scs.clone();
        let factory = move |ctx: &crate::campaign::ScenarioCtx| {
            Box::new(CawMonitor::new("cawot", scs_live.clone(), ctx.basal))
                as Box<dyn HazardMonitor>
        };
        let live = run_campaign(&spec, Some(&factory));
        let recorded = run_campaign(&spec, None);
        let probe = platform.patients().remove(0);
        let basal = platform.basal_for(probe.as_ref());
        for (live_t, rec_t) in live.iter().zip(&recorded) {
            let mut monitor = CawMonitor::new("cawot", scs.clone(), basal);
            let replayed = replay_monitor(rec_t, &mut monitor);
            let live_alerts: Vec<_> = live_t.records.iter().map(|r| r.alert).collect();
            let replay_alerts: Vec<_> = replayed.records.iter().map(|r| r.alert).collect();
            assert_eq!(
                live_alerts, replay_alerts,
                "divergence on {}",
                rec_t.meta.fault_name
            );
        }
    }

    #[test]
    fn replay_campaign_preserves_everything_but_alerts() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![1],
            initial_bgs: vec![120.0],
            ..CampaignSpec::quick(platform)
        };
        let recorded = run_campaign(&spec, None);
        let scs = Scs::with_default_thresholds(platform.target());
        let probe = platform.patients().remove(1);
        let basal = platform.basal_for(probe.as_ref());
        let replayed = replay_campaign(&recorded, |_t| {
            Box::new(CawMonitor::new("cawot", scs.clone(), basal))
        });
        assert_eq!(replayed.len(), recorded.len());
        for (a, b) in recorded.iter().zip(&replayed) {
            assert_eq!(a.bg_true_series(), b.bg_true_series());
            assert_eq!(a.meta, b.meta);
        }
    }
}
