//! Offline monitor replay.
//!
//! A monitor that only *observes* (no mitigation) does not perturb the
//! closed loop, so its alert sequence on a recorded trace is identical
//! to what it would have produced live. Replaying lets one fault
//! campaign be evaluated against any number of monitors — the paper's
//! Table V/VI/Fig. 9 comparisons — at a fraction of the cost of
//! re-simulating. (For *live* multi-monitor scoring in a single
//! physics pass, see the session engine's
//! [`MonitorBank`](aps_core::monitors::MonitorBank).)
//!
//! Campaign-scale replay is parallel ([`replay_campaign`]) and can
//! stream results through a bounded-memory ordered sink
//! ([`replay_campaign_with`]), mirroring the live campaign executor's
//! API. Recorded corpora in the binary trace store replay without
//! loading the whole campaign as owned traces: [`replay_store_with`]
//! materializes each trace from the store's columns only while it is
//! in flight.

use aps_core::monitors::{HazardMonitor, MonitorInput};
use aps_tracestore::TraceStoreReader;
use aps_types::{AlertTrack, SimTrace, UnitsPerHour};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Replays `trace` through `monitor`, returning a copy with the
/// `alert` column rewritten to the monitor's verdicts (and
/// `monitor_tracks` replaced by the replaying monitor's stream — any
/// tracks recorded by monitors *live* in the original run would
/// otherwise misattribute stale alerts alongside the new column).
///
/// The monitor sees exactly what it would have seen live: the clean
/// CGM reading, the commanded rate, the previously *commanded* rate —
/// and is told the recorded delivery each cycle.
pub fn replay_monitor(trace: &SimTrace, monitor: &mut dyn HazardMonitor) -> SimTrace {
    monitor.reset();
    let mut out = trace.clone();
    // The live loop seeds previous_rate with the controller's basal;
    // the first record's commanded rate is the closest recorded proxy
    // (at reset the controller commands its basal).
    let mut prev_commanded = UnitsPerHour(
        trace
            .records
            .first()
            .map(|r| r.commanded.value())
            .unwrap_or(0.0),
    );
    let mut alerts = Vec::with_capacity(out.records.len());
    for rec in &mut out.records {
        let alert = monitor.check(&MonitorInput {
            step: rec.step,
            bg: rec.bg,
            commanded: rec.commanded,
            previous_rate: prev_commanded,
        });
        monitor.observe_delivery(rec.delivered);
        rec.alert = alert;
        alerts.push(alert);
        prev_commanded = rec.commanded;
    }
    out.monitor_tracks = vec![AlertTrack {
        monitor: monitor.name().to_owned(),
        alerts,
    }];
    out
}

/// Replays a whole campaign through monitors produced per trace by
/// `factory` (monitors are stateful and patient-specific, so each
/// trace gets a fresh one), streaming each replayed trace — in input
/// order — into `sink(index, trace)`.
///
/// The executor mirrors [`run_campaign_with`]: workers claim trace
/// indices from a lock-free atomic counter and the calling thread
/// drains their results through an ordered reorder buffer, so memory
/// stays bounded however large the recorded campaign is.
///
/// [`run_campaign_with`]: crate::campaign::run_campaign_with
pub fn replay_campaign_with<F>(traces: &[SimTrace], factory: F, sink: impl FnMut(usize, SimTrace))
where
    F: Fn(&SimTrace) -> Box<dyn HazardMonitor> + Sync,
{
    replay_source_with(traces.len(), |i| Cow::Borrowed(&traces[i]), factory, sink);
}

/// Replays a recorded campaign straight out of an open binary trace
/// store, streaming each replayed trace — in store order — into
/// `sink(index, trace)`. Workers materialize traces from the store's
/// columns on demand, so only the traces currently in flight are ever
/// held as owned `SimTrace`s; the corpus itself stays in its single
/// mapped buffer. Same executor, ordering, and backpressure as
/// [`replay_campaign_with`].
pub fn replay_store_with<F>(store: &TraceStoreReader, factory: F, sink: impl FnMut(usize, SimTrace))
where
    F: Fn(&SimTrace) -> Box<dyn HazardMonitor> + Sync,
{
    replay_source_with(store.len(), |i| Cow::Owned(store.get(i)), factory, sink);
}

/// Replays a whole stored campaign; results come back in store order.
/// Thin wrapper over [`replay_store_with`].
pub fn replay_store<F>(store: &TraceStoreReader, factory: F) -> Vec<SimTrace>
where
    F: Fn(&SimTrace) -> Box<dyn HazardMonitor> + Sync,
{
    let mut out = Vec::with_capacity(store.len());
    replay_store_with(store, factory, |i, trace| {
        debug_assert_eq!(i, out.len(), "replay stream out of order");
        out.push(trace);
    });
    out
}

/// The executor shared by the in-memory and store replay paths:
/// `get(i)` supplies trace `i` (borrowed from a slice, or materialized
/// from store columns), workers claim indices lock-free, and the
/// calling thread drains an ordered reorder buffer.
fn replay_source_with<'a, G, F>(n: usize, get: G, factory: F, mut sink: impl FnMut(usize, SimTrace))
where
    G: Fn(usize) -> Cow<'a, SimTrace> + Sync,
    F: Fn(&SimTrace) -> Box<dyn HazardMonitor> + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 {
        for i in 0..n {
            let t = get(i);
            let mut monitor = factory(&t);
            sink(i, replay_monitor(&t, monitor.as_mut()));
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let emitted = AtomicUsize::new(0);
    // Bounded on both sides, like `run_campaign_with`: the channel
    // backpressures a slow sink, the run-ahead gate caps the reorder
    // buffer under head-of-line blocking.
    let max_ahead = 4 * workers;
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, SimTrace)>(2 * workers);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let emitted = &emitted;
            let factory = &factory;
            let get = &get;
            scope.spawn(move || loop {
                // sound: Relaxed suffices — the atomic RMW hands each
                // worker a unique, monotone claim index; replayed data
                // is published by the channel send, not this counter.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // sound: Acquire pairs with the frontier's Release
                // store below; a stale read only parks the worker one
                // extra poll, it never lets i through the gate early.
                while i >= emitted.load(Ordering::Acquire) + max_ahead {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                let t = get(i);
                let mut monitor = factory(&t);
                let replayed = replay_monitor(&t, monitor.as_mut());
                if tx.send((i, replayed)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut pending: BTreeMap<usize, SimTrace> = BTreeMap::new();
        let mut next_emit = 0usize;
        for (i, trace) in rx {
            pending.insert(i, trace);
            while let Some(trace) = pending.remove(&next_emit) {
                sink(next_emit, trace);
                next_emit += 1;
                // sound: Release publishes the advanced frontier to
                // the gate's Acquire loads, ordering all emissions
                // before any worker that runs ahead on their strength.
                emitted.store(next_emit, Ordering::Release);
            }
        }
        debug_assert!(pending.is_empty(), "replay stream ended with gaps");
    });
}

/// Replays a whole campaign, parallelized over the available cores
/// (replays are independent, so this is the same embarrassingly
/// parallel shape as [`run_campaign`]); results come back in input
/// order. Thin wrapper over [`replay_campaign_with`].
///
/// The factory bound is `Fn + Sync` (it is called concurrently from
/// worker threads); a factory that must mutate shared state can wrap
/// it in interior mutability (e.g. a `Mutex`) or fall back to a
/// sequential [`replay_monitor`] loop.
///
/// [`run_campaign`]: crate::campaign::run_campaign
pub fn replay_campaign<F>(traces: &[SimTrace], factory: F) -> Vec<SimTrace>
where
    F: Fn(&SimTrace) -> Box<dyn HazardMonitor> + Sync,
{
    let mut out = Vec::with_capacity(traces.len());
    replay_campaign_with(traces, factory, |i, trace| {
        debug_assert_eq!(i, out.len(), "replay stream out of order");
        out.push(trace);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignSpec};
    use crate::platform::Platform;
    use aps_core::monitors::CawMonitor;
    use aps_core::scs::Scs;

    /// The gold test: replaying a monitor over a recorded trace must
    /// produce the same alerts as running it live in the loop.
    #[test]
    fn replay_matches_live_alerts() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![140.0],
            ..CampaignSpec::quick(platform)
        };
        let scs = Scs::with_default_thresholds(platform.target());
        let mk = |basal| Box::new(CawMonitor::new("cawot", scs.clone(), basal));

        // Live: monitor inside the loop (no mitigation).
        let scs_live = scs.clone();
        let factory = move |ctx: &crate::campaign::ScenarioCtx| {
            Box::new(CawMonitor::new("cawot", scs_live.clone(), ctx.basal))
                as Box<dyn HazardMonitor>
        };
        let live = run_campaign(&spec, Some(&factory));

        // Replay: same campaign recorded without a monitor.
        let recorded = run_campaign(&spec, None);
        let probe = platform.patients().remove(0);
        let basal = platform.basal_for(probe.as_ref());
        for (live_t, rec_t) in live.iter().zip(&recorded) {
            let mut monitor = mk(basal);
            let replayed = replay_monitor(rec_t, monitor.as_mut());
            let live_alerts: Vec<_> = live_t.records.iter().map(|r| r.alert).collect();
            let replay_alerts: Vec<_> = replayed.records.iter().map(|r| r.alert).collect();
            assert_eq!(
                live_alerts, replay_alerts,
                "divergence on {}",
                rec_t.meta.fault_name
            );
        }
    }

    /// Live-vs-replay equivalence must also hold across the extended
    /// fault alphabet — in particular `Noise`, whose jitter has to be
    /// a pure function of the fault clock for a recorded trace to mean
    /// anything on replay.
    #[test]
    fn replay_matches_live_alerts_on_extended_faults() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![140.0],
            ..CampaignSpec::extended(platform)
        };
        let scs = Scs::with_default_thresholds(platform.target());
        let scs_live = scs.clone();
        let factory = move |ctx: &crate::campaign::ScenarioCtx| {
            Box::new(CawMonitor::new("cawot", scs_live.clone(), ctx.basal))
                as Box<dyn HazardMonitor>
        };
        let live = run_campaign(&spec, Some(&factory));
        let recorded = run_campaign(&spec, None);
        let probe = platform.patients().remove(0);
        let basal = platform.basal_for(probe.as_ref());
        for (live_t, rec_t) in live.iter().zip(&recorded) {
            let mut monitor = CawMonitor::new("cawot", scs.clone(), basal);
            let replayed = replay_monitor(rec_t, &mut monitor);
            let live_alerts: Vec<_> = live_t.records.iter().map(|r| r.alert).collect();
            let replay_alerts: Vec<_> = replayed.records.iter().map(|r| r.alert).collect();
            assert_eq!(
                live_alerts, replay_alerts,
                "divergence on {}",
                rec_t.meta.fault_name
            );
        }
    }

    #[test]
    fn replay_campaign_preserves_everything_but_alerts() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![1],
            initial_bgs: vec![120.0],
            ..CampaignSpec::quick(platform)
        };
        let recorded = run_campaign(&spec, None);
        let scs = Scs::with_default_thresholds(platform.target());
        let probe = platform.patients().remove(1);
        let basal = platform.basal_for(probe.as_ref());
        let replayed = replay_campaign(&recorded, |_t| {
            Box::new(CawMonitor::new("cawot", scs.clone(), basal))
        });
        assert_eq!(replayed.len(), recorded.len());
        for (a, b) in recorded.iter().zip(&replayed) {
            assert_eq!(a.bg_true_series(), b.bg_true_series());
            assert_eq!(a.meta, b.meta);
        }
    }

    /// The parallel executor must be invisible: same traces, same
    /// order as replaying one by one on the calling thread.
    #[test]
    fn parallel_replay_matches_sequential_and_streams_in_order() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![140.0],
            steps: 60,
            ..CampaignSpec::quick(platform)
        };
        let recorded = run_campaign(&spec, None);
        let scs = Scs::with_default_thresholds(platform.target());
        let probe = platform.patients().remove(0);
        let basal = platform.basal_for(probe.as_ref());
        let factory = |_t: &SimTrace| {
            Box::new(CawMonitor::new("cawot", scs.clone(), basal)) as Box<dyn HazardMonitor>
        };

        let sequential: Vec<SimTrace> = recorded
            .iter()
            .map(|t| {
                let mut m = factory(t);
                replay_monitor(t, m.as_mut())
            })
            .collect();
        let parallel = replay_campaign(&recorded, factory);
        assert_eq!(parallel, sequential);

        let mut indices = Vec::new();
        let mut streamed = Vec::new();
        replay_campaign_with(&recorded, factory, |i, t| {
            indices.push(i);
            streamed.push(t);
        });
        assert_eq!(indices, (0..recorded.len()).collect::<Vec<_>>());
        assert_eq!(streamed, sequential);
    }
}
