//! Composable simulation sessions: the primary entry point of the
//! closed-loop harness.
//!
//! A [`Session`] owns everything one closed-loop run needs — patient,
//! controller, a [`MonitorBank`] of any number of hazard monitors, an
//! optional fault injector, the [`LoopConfig`], and an optional
//! per-step observer — and is assembled fluently:
//!
//! ```
//! use aps_sim::platform::Platform;
//! use aps_sim::session::{MonitorSpec, Session};
//! use aps_fault::{FaultKind, FaultScenario};
//! use aps_types::Step;
//!
//! let trace = Session::builder(Platform::GlucosymOref0)
//!     .patient(0)
//!     .monitor_spec(MonitorSpec::Cawot)
//!     .monitor_spec(MonitorSpec::RiskIndex)
//!     .inject(FaultScenario::new("rate", FaultKind::Max, Step(20), 36))
//!     .run()
//!     .expect("valid session");
//! assert_eq!(trace.len(), 150);
//! // One physics pass, two alert streams:
//! assert_eq!(trace.monitor_tracks.len(), 2);
//! ```
//!
//! Runs compose *as data* too: a serde [`SessionSpec`] names the
//! platform, patient, monitors, fault, and loop configuration, and
//! [`Session::from_spec`] turns it into a runnable session (the
//! `repro run --spec file.json` subcommand is exactly this).
//!
//! The legacy positional entry point [`closed_loop::run`] is a thin
//! wrapper over the same engine and remains supported; new code should
//! prefer the builder, which validates the fault target at build time
//! instead of silently treating an unknown variable as unbounded.
//!
//! [`closed_loop::run`]: crate::closed_loop::run

use crate::closed_loop::LoopConfig;
use crate::outcome::SimError;
use crate::platform::Platform;
use aps_controllers::Controller;
use aps_core::hms::ContextMitigator;
use aps_core::monitors::{
    CawMonitor, ForecastBand, ForecastMonitor, GuidelineConfig, GuidelineMonitor, HazardMonitor,
    MonitorBank, MonitorInput, MpcMonitor, NullMonitor, RiskIndexMonitor,
};
use aps_core::scs::Scs;
use aps_fault::{FaultInjector, FaultScenario};
use aps_glucose::pump::Pump;
use aps_glucose::sensor::Cgm;
use aps_glucose::{BoxedPatient, PatientSim};
use aps_types::{
    AlertTrack, ControlAction, Hazard, MgDl, SimTrace, Step, StepRecord, TraceMeta, UnitsPerHour,
    CONTROL_CYCLE_MINUTES,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`SessionBuilder`] could not produce a runnable [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The requested cohort index does not exist on the platform.
    PatientIndex {
        /// Requested index.
        index: usize,
        /// Cohort size of the platform.
        cohort: usize,
    },
    /// The fault scenario targets a variable the controller does not
    /// expose — the legacy path silently injected with *unbounded*
    /// range here, which no experiment ever wants.
    UnknownFaultTarget {
        /// The scenario's target name.
        target: String,
        /// The names the controller actually exposes.
        valid: Vec<String>,
    },
    /// A [`MonitorSpec::Forecast`] model file could not be loaded.
    ForecastModel {
        /// The path the spec named.
        path: String,
        /// What went wrong (I/O or deserialization).
        detail: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::PatientIndex { index, cohort } => write!(
                f,
                "patient index {index} out of range (cohort has {cohort} patients)"
            ),
            SessionError::UnknownFaultTarget { target, valid } => write!(
                f,
                "fault targets unknown controller variable `{target}` \
                 (injectable variables: {})",
                valid.join(", ")
            ),
            SessionError::ForecastModel { path, detail } => write!(
                f,
                "cannot load forecast model `{path}`: {detail} \
                 (train one with `repro train`)"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// A monitor named *as data*.
///
/// These are the zoo members a [`SessionSpec`] can request from a JSON
/// file: everything that needs only the platform context (target BG
/// and the patient's basal rate), plus the learned
/// [`Forecast`](MonitorSpec::Forecast) monitor, whose trained weights
/// are themselves data — a serialized
/// [`ForecastModel`](aps_ml::forecast::ForecastModel) file written by
/// `repro train`. Monitors requiring in-process training — CAWT's
/// learned thresholds, the DT/MLP/LSTM classifier baselines — are
/// constructed in code (e.g. via the bench crate's `Zoo`) and attached
/// with [`SessionBuilder::monitor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorSpec {
    /// The never-alerting baseline.
    Null,
    /// Medical-guidelines baseline (Table III).
    Guideline,
    /// Model-predictive-control baseline (Eq. 6).
    Mpc,
    /// Context-aware monitor with guideline-default thresholds.
    Cawot,
    /// Streaming BG-risk-index ground truth (the reaction-time floor).
    RiskIndex,
    /// Learned predictive glucose forecaster, loaded from a serialized
    /// `ForecastModel` JSON file (see `repro train`).
    Forecast {
        /// Path of the model file.
        path: String,
    },
}

impl MonitorSpec {
    /// Builds the monitor for a platform/patient pairing.
    ///
    /// # Errors
    ///
    /// [`SessionError::ForecastModel`] when a
    /// [`Forecast`](MonitorSpec::Forecast) spec's model file cannot be
    /// read or parsed.
    pub fn build(
        &self,
        platform: Platform,
        patient: &dyn PatientSim,
    ) -> Result<Box<dyn HazardMonitor>, SessionError> {
        Ok(match self {
            MonitorSpec::Null => Box::new(NullMonitor),
            MonitorSpec::Guideline => Box::new(GuidelineMonitor::new(GuidelineConfig::default())),
            MonitorSpec::Mpc => Box::new(MpcMonitor::population()),
            MonitorSpec::Cawot => Box::new(CawMonitor::new(
                "cawot",
                Scs::with_default_thresholds(platform.target()),
                platform.basal_for(patient),
            )),
            MonitorSpec::RiskIndex => Box::new(RiskIndexMonitor::default()),
            MonitorSpec::Forecast { path } => {
                let err = |detail: String| SessionError::ForecastModel {
                    path: path.clone(),
                    detail,
                };
                let json = std::fs::read_to_string(path).map_err(|e| err(e.to_string()))?;
                let model: aps_ml::forecast::ForecastModel =
                    serde_json::from_str(&json).map_err(|e| err(format!("{e:?}")))?;
                let (got, want) = (model.lstm.input_dim(), aps_ml::data::TraceDataset::DIM);
                if got != want {
                    return Err(err(format!(
                        "model expects {got}-dim per-cycle features, the monitor feeds {want}"
                    )));
                }
                Box::new(ForecastMonitor::from_model(&model, ForecastBand::default()))
            }
        })
    }
}

/// One closed-loop run described entirely as data.
///
/// ```json
/// {
///   "platform": "GlucosymOref0",
///   "patient": 0,
///   "monitors": ["Cawot", "RiskIndex"],
///   "fault": { "target": "rate", "kind": "Max", "start": 20, "duration": 36 }
/// }
/// ```
///
/// Every field except `platform` is optional; `config` defaults to the
/// paper's 150-step overnight run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Which simulator/controller pairing.
    pub platform: Platform,
    /// Cohort index of the patient (0..10).
    #[serde(default)]
    pub patient: usize,
    /// Monitors to run against the single physics pass, primary first.
    #[serde(default)]
    pub monitors: Vec<MonitorSpec>,
    /// Fault scenario to inject (None = fault-free).
    #[serde(default)]
    pub fault: Option<FaultScenario>,
    /// Loop configuration (steps, initial BG, CGM/pump models, meals…).
    #[serde(default)]
    pub config: LoopConfig,
}

impl SessionSpec {
    /// A fault-free overnight run on `platform`'s first patient.
    pub fn new(platform: Platform) -> SessionSpec {
        SessionSpec {
            platform,
            patient: 0,
            monitors: Vec::new(),
            fault: None,
            config: LoopConfig::default(),
        }
    }
}

/// How the builder was given a monitor: ready-made or as data.
enum MonitorSel {
    Boxed(Box<dyn HazardMonitor>),
    Spec(MonitorSpec),
}

/// A per-step observer callback (see [`SessionBuilder::observer`]).
pub type Observer<'obs> = Box<dyn FnMut(&StepRecord) + 'obs>;

/// Fluent assembly of a [`Session`]; see the [module docs](self).
///
/// The lifetime parameter bounds the optional observer callback; with
/// no observer it is inferred as `'static`.
pub struct SessionBuilder<'obs> {
    platform: Platform,
    patient_index: usize,
    patient: Option<BoxedPatient>,
    controller: Option<Box<dyn Controller>>,
    monitors: Vec<MonitorSel>,
    scenario: Option<FaultScenario>,
    config: LoopConfig,
    observer: Option<Observer<'obs>>,
}

impl<'obs> SessionBuilder<'obs> {
    fn new(platform: Platform) -> SessionBuilder<'obs> {
        SessionBuilder {
            platform,
            patient_index: 0,
            patient: None,
            controller: None,
            monitors: Vec::new(),
            scenario: None,
            config: LoopConfig::default(),
            observer: None,
        }
    }

    /// Selects the cohort patient by index (default 0; validated by
    /// [`build`](SessionBuilder::build)).
    pub fn patient(mut self, index: usize) -> Self {
        self.patient_index = index;
        self.patient = None;
        self
    }

    /// Supplies a custom patient simulator instead of a cohort member.
    pub fn patient_sim(mut self, patient: BoxedPatient) -> Self {
        self.patient = Some(patient);
        self
    }

    /// Supplies a custom controller (default: the platform's controller
    /// tuned to the patient's equilibrium basal).
    pub fn controller(mut self, controller: Box<dyn Controller>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Attaches a monitor. Repeatable: every monitor added here joins
    /// the session's [`MonitorBank`] and gets its own alert stream in
    /// [`SimTrace::monitor_tracks`]; the *first* monitor is the primary
    /// one whose alerts drive mitigation (when enabled) and fill the
    /// classic [`StepRecord::alert`] column.
    pub fn monitor(mut self, monitor: Box<dyn HazardMonitor>) -> Self {
        self.monitors.push(MonitorSel::Boxed(monitor));
        self
    }

    /// Attaches a monitor named as data (repeatable, same semantics as
    /// [`monitor`](SessionBuilder::monitor)); resolved against the
    /// platform/patient context at build time.
    pub fn monitor_spec(mut self, spec: MonitorSpec) -> Self {
        self.monitors.push(MonitorSel::Spec(spec));
        self
    }

    /// Attaches every member of a pre-assembled [`MonitorBank`] (in
    /// bank order, after any monitors already added).
    pub fn monitor_bank(mut self, bank: MonitorBank) -> Self {
        self.monitors
            .extend(bank.into_monitors().into_iter().map(MonitorSel::Boxed));
        self
    }

    /// Injects a fault scenario. The target variable is validated at
    /// build time against the controller's injectable surface.
    pub fn inject(mut self, scenario: FaultScenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Sets the loop configuration (default: [`LoopConfig::default`]).
    pub fn config(mut self, config: LoopConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers a per-step observer: called once per control cycle
    /// with the freshly recorded [`StepRecord`], *before* post-hoc
    /// hazard labeling (so `hazard` is always `None` in the callback).
    /// This is the hook for live sinks — progress bars, streaming
    /// writers, online dashboards.
    pub fn observer(mut self, observer: impl FnMut(&StepRecord) + 'obs) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Validates the configuration and assembles the [`Session`].
    ///
    /// # Errors
    ///
    /// [`SessionError::PatientIndex`] for an out-of-range cohort index;
    /// [`SessionError::UnknownFaultTarget`] when the fault scenario
    /// names a variable the controller does not expose (the legacy
    /// [`closed_loop::run`](crate::closed_loop::run) silently injected
    /// with infinite bounds instead).
    pub fn build(self) -> Result<Session<'obs>, SessionError> {
        let platform = self.platform;
        let patient = match self.patient {
            Some(p) => p,
            None => platform
                .patient(self.patient_index)
                .ok_or(SessionError::PatientIndex {
                    index: self.patient_index,
                    cohort: platform.cohort_size(),
                })?,
        };
        let controller = self
            .controller
            .unwrap_or_else(|| platform.controller_for(patient.as_ref()));

        if let Some(scenario) = &self.scenario {
            let mut valid: Vec<String> = controller
                .state_vars()
                .iter()
                .map(|v| v.name.to_owned())
                .collect();
            for builtin in ["rate", "glucose"] {
                if !valid.iter().any(|v| v == builtin) {
                    valid.push(builtin.to_owned());
                }
            }
            if !valid.iter().any(|v| v == &scenario.target) {
                return Err(SessionError::UnknownFaultTarget {
                    target: scenario.target.clone(),
                    valid,
                });
            }
        }

        let monitors = self
            .monitors
            .into_iter()
            .map(|sel| match sel {
                MonitorSel::Boxed(m) => Ok(m),
                MonitorSel::Spec(s) => s.build(platform, patient.as_ref()),
            })
            .collect::<Result<Vec<_>, SessionError>>()?;

        Ok(Session {
            platform,
            patient,
            controller,
            monitors: MonitorBank::from_monitors(monitors),
            injector: self.scenario.map(FaultInjector::new),
            config: self.config,
            observer: self.observer,
        })
    }

    /// [`build`](SessionBuilder::build) + [`Session::run`] in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`build`](SessionBuilder::build) errors.
    pub fn run(self) -> Result<SimTrace, SessionError> {
        Ok(self.build()?.run())
    }
}

/// A fully assembled closed-loop run, ready to execute (repeatedly —
/// every [`run`](Session::run) resets all components first, and runs
/// are deterministic).
pub struct Session<'obs> {
    platform: Platform,
    patient: BoxedPatient,
    controller: Box<dyn Controller>,
    monitors: MonitorBank,
    injector: Option<FaultInjector>,
    config: LoopConfig,
    observer: Option<Observer<'obs>>,
}

impl Session<'static> {
    /// Builds a session from its data description.
    ///
    /// # Errors
    ///
    /// Same as [`SessionBuilder::build`].
    pub fn from_spec(spec: &SessionSpec) -> Result<Session<'static>, SessionError> {
        let mut builder = Session::builder(spec.platform)
            .patient(spec.patient)
            .config(spec.config.clone());
        for m in &spec.monitors {
            builder = builder.monitor_spec(m.clone());
        }
        if let Some(fault) = &spec.fault {
            builder = builder.inject(fault.clone());
        }
        builder.build()
    }
}

impl<'obs> Session<'obs> {
    /// Starts assembling a session on `platform`.
    pub fn builder(platform: Platform) -> SessionBuilder<'obs> {
        SessionBuilder::new(platform)
    }

    /// The platform this session runs on.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The patient's qualified name.
    pub fn patient_name(&self) -> &str {
        self.patient.name()
    }

    /// Names of the attached monitors, primary first.
    pub fn monitor_names(&self) -> Vec<String> {
        self.monitors.names()
    }

    /// The loop configuration.
    pub fn config(&self) -> &LoopConfig {
        &self.config
    }

    /// Executes the closed loop once: a single physics pass, however
    /// many monitors are attached. Produces the labeled trace, with one
    /// [`AlertTrack`] per monitor in `monitor_tracks`.
    ///
    /// # Panics
    ///
    /// Panics if the patient ODE state becomes non-finite (NaN/∞)
    /// mid-run. Use [`try_run`](Session::try_run) to receive the
    /// typed [`SimError`] instead; the fault-tolerant campaign
    /// executor does, and ledgers it.
    pub fn run(&mut self) -> SimTrace {
        self.try_run()
            .unwrap_or_else(|e| panic!("session failed: {e}"))
    }

    /// Executes the closed loop once, surfacing mid-run failures as a
    /// typed [`SimError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// [`SimError::NonFinite`] when the patient ODE state leaves the
    /// representable range at some control cycle (caught by the RK4
    /// finiteness guard plus the engine's per-cycle
    /// [`PatientSim::state_is_finite`] check).
    pub fn try_run(&mut self) -> Result<SimTrace, SimError> {
        let mut refs = self.monitors.as_dyn_mut();
        run_engine(
            self.patient.as_mut(),
            self.controller.as_mut(),
            &mut refs,
            self.injector.as_mut(),
            &self.config,
            self.observer
                .as_mut()
                .map(|o| &mut **o as &mut dyn FnMut(&StepRecord)),
        )
    }
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("platform", &self.platform.name())
            .field("patient", &self.patient.name())
            .field("monitors", &self.monitors.names())
            .field(
                "fault",
                &self.injector.as_ref().map(|i| i.scenario().name()),
            )
            .field("steps", &self.config.steps)
            .finish()
    }
}

/// Where the scenario's target variable sits in the control loop.
/// Shared with the batched lockstep engine ([`crate::batch`]), which
/// resolves each lane's route exactly like the scalar engine does.
pub(crate) enum FaultRoute {
    /// Actuator command, perturbed after the controller decision.
    Rate,
    /// CGM input, perturbed before the decision.
    Glucose,
    /// Controller-internal variable.
    Internal,
}

/// The closed-loop engine every public entry point funnels into:
/// [`Session::run`], the legacy positional
/// [`closed_loop::run`](crate::closed_loop::run), and (through them)
/// the campaign executors.
///
/// The monitors slice is ordered: index 0 is the primary monitor whose
/// verdicts drive mitigation and fill [`StepRecord::alert`]; every
/// monitor's full verdict stream is recorded as an [`AlertTrack`].
/// With an empty slice the loop is monitor-free and `monitor_tracks`
/// stays empty — bit-identical to the pre-bank harness.
///
/// An unknown fault-target name falls back to unbounded injection here
/// (legacy behavior, kept for the positional API); [`SessionBuilder`]
/// validates the target before the engine ever sees it.
///
/// The engine is *checked*: after every patient step it verifies
/// [`PatientSim::state_is_finite`] and returns
/// [`SimError::NonFinite`] instead of letting NaN poison the rest of
/// the trace (physiological floors are `f64::max`-style and would
/// silently absorb it). The panicking wrappers ([`Session::run`],
/// [`closed_loop::run`](crate::closed_loop::run)) keep their
/// infallible signatures; the fault-tolerant campaign executor uses
/// the checked path and ledgers the error.
pub(crate) fn run_engine(
    patient: &mut dyn PatientSim,
    controller: &mut dyn Controller,
    monitors: &mut [&mut dyn HazardMonitor],
    mut injector: Option<&mut FaultInjector>,
    config: &LoopConfig,
    mut observer: Option<&mut dyn FnMut(&StepRecord)>,
) -> Result<SimTrace, SimError> {
    patient.reset(MgDl(config.initial_bg));
    controller.reset();
    for m in monitors.iter_mut() {
        m.reset();
    }
    if let Some(inj) = injector.as_deref_mut() {
        inj.reset();
    }
    // Configs are `Copy` scalars; constructing the per-run sensor and
    // pump performs no heap allocation.
    let mut cgm = Cgm::new(config.cgm);
    let mut pump = Pump::new(config.pump);
    let mut ctx_mitigator = config.context_mitigation.map(ContextMitigator::new);

    let vars = controller.state_vars();
    let var_bounds = |name: &str| -> (f64, f64) {
        vars.iter()
            .find(|v| v.name == name)
            .map(|v| (v.min, v.max))
            .unwrap_or((f64::NEG_INFINITY, f64::INFINITY))
    };

    // Resolve the fault target's route and legitimate bounds once per
    // run; the step loop then performs no string comparison against
    // the scenario and clones nothing.
    let fault_plan = injector.as_deref().map(|inj| {
        let target = &inj.scenario().target;
        let route = match target.as_str() {
            "rate" => FaultRoute::Rate,
            "glucose" => FaultRoute::Glucose,
            _ => FaultRoute::Internal,
        };
        (route, var_bounds(target), target.clone())
    });

    let mut meta = TraceMeta {
        patient: patient.name().to_owned(),
        initial_bg: config.initial_bg,
        ..TraceMeta::default()
    };
    if let Some(inj) = injector.as_deref_mut() {
        meta.fault_name = inj.scenario().name();
        meta.fault_start = Some(inj.scenario().start);
    }
    // Preallocated records: the recording path never reallocates.
    let mut trace = SimTrace::with_capacity(meta, config.steps as usize);
    // One preallocated verdict stream per monitor.
    let mut streams: Vec<Vec<Option<Hazard>>> = monitors
        .iter()
        .map(|_| Vec::with_capacity(config.steps as usize))
        .collect();
    // Action classification compares against the previous *commanded*
    // rate (the paper's u1..u4 alphabet is over the controller's
    // command stream). The seed compared against the previous
    // *delivered* rate, so pump quantization (e.g. 4.29 commanded vs
    // 4.30 delivered) misclassified a steady max-rate fault as
    // `DecreaseInsulin` every cycle and no SCS rule could ever fire.
    let mut prev_commanded = UnitsPerHour(controller.basal_rate().value());

    for s in 0..config.steps {
        let step = Step(s);
        for meal in config.meals.iter().filter(|m| m.step == step) {
            patient.ingest(meal.carbs_g);
            if meal.announced {
                controller.announce_meal(meal.carbs_g);
            }
        }
        for bout in config.exercise.iter().filter(|b| b.step == step) {
            patient.exert(bout.intensity, bout.duration_min);
        }
        let true_bg = patient.bg();
        let reading = cgm.sample(true_bg);

        // Fault injection on the controller's input/internal variables.
        if let (Some(inj), Some((route, (lo, hi), target))) =
            (injector.as_deref_mut(), fault_plan.as_ref())
        {
            match route {
                // Output faults are applied after the decision below.
                FaultRoute::Rate => {}
                FaultRoute::Glucose => {
                    let faulty = inj.perturb_target(step, reading.value(), *lo, *hi);
                    if inj.is_active(step) {
                        controller.set_state("glucose", faulty);
                    }
                }
                FaultRoute::Internal if inj.is_active(step) => {
                    // Internal variable: perturb last cycle's value (the
                    // freshest observable) and force it for this decision.
                    let base = controller.get_state(target).unwrap_or(0.5 * (lo + hi));
                    let faulty = inj.perturb_target(step, base, *lo, *hi);
                    controller.set_state(target, faulty);
                }
                FaultRoute::Internal => {
                    // Keep the injector's Hold history fresh pre-activation.
                    if let Some(base) = controller.get_state(target) {
                        inj.perturb_target(step, base, *lo, *hi);
                    }
                }
            }
        }

        let mut commanded = controller.decide(step, reading);

        // Output (actuator-command) faults.
        if let (Some(inj), Some((FaultRoute::Rate, (lo, hi), _))) =
            (injector.as_deref_mut(), fault_plan.as_ref())
        {
            commanded = UnitsPerHour(inj.perturb_target(step, commanded.value(), *lo, *hi));
        }

        let action = ControlAction::classify(commanded, prev_commanded);

        // Monitor bank check: every member sees the same input; the
        // primary's verdict feeds mitigation and the alert column.
        let input = MonitorInput {
            step,
            bg: reading,
            commanded,
            previous_rate: prev_commanded,
        };
        let mut alert = None;
        for (i, m) in monitors.iter_mut().enumerate() {
            let verdict = m.check(&input);
            streams[i].push(verdict);
            if i == 0 {
                alert = verdict;
            }
        }

        let mitigated = if let Some(cm) = ctx_mitigator.as_mut() {
            let mit_ctx = cm.observe_bg(reading);
            cm.mitigate(alert, &mit_ctx, commanded)
        } else {
            match (&config.mitigator, alert) {
                (Some(mit), Some(_)) => mit.mitigate(alert, commanded),
                _ => commanded,
            }
        };

        let delivered = pump.deliver(mitigated, CONTROL_CYCLE_MINUTES);
        controller.observe_delivery(delivered);
        for m in monitors.iter_mut() {
            m.observe_delivery(delivered);
        }
        if let Some(cm) = ctx_mitigator.as_mut() {
            cm.observe_delivery(delivered);
        }

        let fault_active = injector
            .as_deref()
            .map(|i| i.is_active(step))
            .unwrap_or(false);
        trace.push(StepRecord {
            step,
            bg: reading,
            bg_true: true_bg,
            iob: controller.iob(),
            commanded,
            delivered,
            action,
            fault_active,
            hazard: None,
            alert,
        });
        if let (Some(obs), Some(rec)) = (observer.as_mut(), trace.records.last()) {
            obs(rec);
        }

        patient.step(delivered, CONTROL_CYCLE_MINUTES);
        if !patient.state_is_finite() {
            return Err(SimError::NonFinite { cycle: s });
        }
        prev_commanded = commanded;
    }

    trace.monitor_tracks = monitors
        .iter()
        .zip(streams)
        .map(|(m, alerts)| AlertTrack {
            monitor: m.name().to_owned(),
            alerts,
        })
        .collect();

    aps_risk::label_trace(&mut trace, &config.labels);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_loop;
    use aps_fault::FaultKind;

    #[test]
    fn builder_run_matches_legacy_monitorless_run() {
        let platform = Platform::GlucosymOref0;
        let scenario = FaultScenario::new("rate", FaultKind::Max, Step(20), 36);

        let mut patient = platform.patients().remove(0);
        let mut controller = platform.controller_for(patient.as_ref());
        let mut injector = FaultInjector::new(scenario.clone());
        let legacy = closed_loop::run(
            patient.as_mut(),
            controller.as_mut(),
            None,
            Some(&mut injector),
            &LoopConfig::default(),
        );

        let session = Session::builder(platform)
            .patient(0)
            .inject(scenario)
            .run()
            .unwrap();
        assert_eq!(session, legacy);
    }

    #[test]
    fn bank_records_one_track_per_monitor() {
        let platform = Platform::GlucosymOref0;
        let trace = Session::builder(platform)
            .monitor_spec(MonitorSpec::Guideline)
            .monitor_spec(MonitorSpec::Cawot)
            .monitor_spec(MonitorSpec::RiskIndex)
            .inject(FaultScenario::new("rate", FaultKind::Max, Step(20), 36))
            .run()
            .unwrap();
        assert_eq!(trace.monitor_tracks.len(), 3);
        for track in &trace.monitor_tracks {
            assert_eq!(track.alerts.len(), trace.len(), "{}", track.monitor);
        }
        // Primary stream mirrors the classic alert column.
        let column: Vec<_> = trace.records.iter().map(|r| r.alert).collect();
        assert_eq!(trace.monitor_tracks[0].alerts, column);
        assert_eq!(trace.track("cawot").unwrap().alerts.len(), trace.len());
    }

    #[test]
    fn unknown_fault_target_is_rejected_at_build_time() {
        let platform = Platform::GlucosymOref0;
        let err = Session::builder(platform)
            .inject(FaultScenario::new("bogus_var", FaultKind::Max, Step(5), 5))
            .build()
            .unwrap_err();
        match &err {
            SessionError::UnknownFaultTarget { target, valid } => {
                assert_eq!(target, "bogus_var");
                assert!(valid.iter().any(|v| v == "glucose"));
                assert!(valid.iter().any(|v| v == "rate"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("bogus_var"));
    }

    #[test]
    fn forecast_spec_with_missing_model_errors() {
        let err = Session::builder(Platform::GlucosymOref0)
            .monitor_spec(MonitorSpec::Forecast {
                path: "/nonexistent/forecast_model.json".to_owned(),
            })
            .build()
            .unwrap_err();
        match &err {
            SessionError::ForecastModel { path, .. } => {
                assert!(path.contains("nonexistent"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("repro train"));
        // The spec itself round-trips as data.
        let spec = MonitorSpec::Forecast {
            path: "results/forecast_model.json".to_owned(),
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(spec, serde_json::from_str(&json).unwrap());
    }

    #[test]
    fn patient_index_is_validated() {
        let err = Session::builder(Platform::GlucosymOref0)
            .patient(99)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::PatientIndex {
                index: 99,
                cohort: 10
            }
        );
    }

    #[test]
    fn observer_sees_every_step_in_order() {
        let mut seen: Vec<u32> = Vec::new();
        let trace = Session::builder(Platform::GlucosymOref0)
            .config(LoopConfig {
                steps: 40,
                ..LoopConfig::default()
            })
            .observer(|rec: &StepRecord| seen.push(rec.step.0))
            .run()
            .unwrap();
        assert_eq!(trace.len(), 40);
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn sessions_rerun_deterministically() {
        let mut session = Session::builder(Platform::T1dsBasalBolus)
            .patient(2)
            .monitor_spec(MonitorSpec::Mpc)
            .inject(FaultScenario::new("glucose", FaultKind::Min, Step(30), 24))
            .build()
            .unwrap();
        let a = session.run();
        let b = session.run();
        assert_eq!(a, b);
    }

    #[test]
    fn spec_roundtrips_and_builds() {
        let spec = SessionSpec {
            platform: Platform::GlucosymOref0,
            patient: 1,
            monitors: vec![MonitorSpec::Cawot, MonitorSpec::RiskIndex],
            fault: Some(FaultScenario::new("iob", FaultKind::Hold, Step(10), 20)),
            config: LoopConfig {
                steps: 60,
                ..LoopConfig::default()
            },
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: SessionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);

        let trace = Session::from_spec(&back).unwrap().run();
        assert_eq!(trace.len(), 60);
        assert_eq!(trace.monitor_tracks.len(), 2);
        assert_eq!(trace.meta.fault_name, "hold_iob@t10x20");
    }

    #[test]
    fn minimal_spec_json_uses_defaults() {
        let spec: SessionSpec = serde_json::from_str(r#"{ "platform": "GlucosymOref0" }"#).unwrap();
        assert_eq!(spec, SessionSpec::new(Platform::GlucosymOref0));
        assert_eq!(spec.config.steps, 150);
    }
}
