//! Consensus glycemic outcome metrics (time-in-range and friends).
//!
//! The paper evaluates monitors with detection metrics plus the
//! Kovatchev risk index; clinical APS studies additionally report the
//! international-consensus CGM metrics (Battelino et al. 2019): time
//! in the 70–180 mg/dL target range, time below/above range at two
//! severity levels, glycemic variability (CV), and the Glucose
//! Management Indicator. These summarize *patient outcome* of a run
//! independent of any monitor, so mitigation strategies can be
//! compared on the endpoints clinicians actually use.

use aps_types::SimTrace;
use serde::{Deserialize, Serialize};

/// Consensus CGM thresholds (mg/dL).
pub mod thresholds {
    /// Lower bound of the target range.
    pub const TARGET_LO: f64 = 70.0;
    /// Upper bound of the target range.
    pub const TARGET_HI: f64 = 180.0;
    /// Level-2 (clinically significant) hypoglycemia bound.
    pub const VERY_LOW: f64 = 54.0;
    /// Level-2 hyperglycemia bound.
    pub const VERY_HIGH: f64 = 250.0;
}

/// Consensus glycemic summary of one or more BG series.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GlycemicSummary {
    /// Samples contributing.
    pub n: usize,
    /// Fraction of time in 70–180 mg/dL (TIR).
    pub tir: f64,
    /// Fraction below 70 mg/dL (TBR, level 1 + 2).
    pub tbr: f64,
    /// Fraction below 54 mg/dL (TBR level 2).
    pub tbr_level2: f64,
    /// Fraction above 180 mg/dL (TAR, level 1 + 2).
    pub tar: f64,
    /// Fraction above 250 mg/dL (TAR level 2).
    pub tar_level2: f64,
    /// Mean glucose (mg/dL).
    pub mean: f64,
    /// Coefficient of variation (SD / mean); consensus target < 0.36.
    pub cv: f64,
    /// Glucose Management Indicator (an HbA1c estimate, %):
    /// `3.31 + 0.02392 × mean`.
    pub gmi: f64,
}

impl GlycemicSummary {
    /// Computes the summary over a BG series (mg/dL). Returns the
    /// all-zero default for an empty series.
    pub fn from_series(bg: &[f64]) -> GlycemicSummary {
        let n = bg.len();
        if n == 0 {
            return GlycemicSummary::default();
        }
        let frac = |pred: &dyn Fn(f64) -> bool| -> f64 {
            bg.iter().filter(|&&v| pred(v)).count() as f64 / n as f64
        };
        use thresholds::*;
        let mean = bg.iter().sum::<f64>() / n as f64;
        let var = bg.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        GlycemicSummary {
            n,
            tir: frac(&|v| (TARGET_LO..=TARGET_HI).contains(&v)),
            tbr: frac(&|v| v < TARGET_LO),
            tbr_level2: frac(&|v| v < VERY_LOW),
            tar: frac(&|v| v > TARGET_HI),
            tar_level2: frac(&|v| v > VERY_HIGH),
            mean,
            cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
            gmi: 3.31 + 0.02392 * mean,
        }
    }

    /// Computes the summary over the *true* glucose of a recorded run.
    pub fn from_trace(trace: &SimTrace) -> GlycemicSummary {
        GlycemicSummary::from_series(&trace.bg_true_series())
    }

    /// Pools the true-glucose samples of many runs into one summary.
    pub fn from_traces<'a, I>(traces: I) -> GlycemicSummary
    where
        I: IntoIterator<Item = &'a SimTrace>,
    {
        let all: Vec<f64> = traces
            .into_iter()
            .flat_map(|t| t.bg_true_series())
            .collect();
        GlycemicSummary::from_series(&all)
    }

    /// `true` when the consensus adult-T1D targets are met: TIR > 70%,
    /// TBR < 4%, TBR level 2 < 1%, TAR < 25%, CV ≤ 0.36.
    pub fn meets_consensus_targets(&self) -> bool {
        self.tir > 0.70
            && self.tbr < 0.04
            && self.tbr_level2 < 0.01
            && self.tar < 0.25
            && self.cv <= 0.36
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_all_zero() {
        assert_eq!(
            GlycemicSummary::from_series(&[]),
            GlycemicSummary::default()
        );
    }

    #[test]
    fn fractions_partition_the_series() {
        let bg = vec![50.0, 60.0, 100.0, 150.0, 200.0, 300.0];
        let s = GlycemicSummary::from_series(&bg);
        assert!((s.tir + s.tbr + s.tar - 1.0).abs() < 1e-12);
        assert!((s.tir - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.tbr - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.tbr_level2 - 1.0 / 6.0).abs() < 1e-12);
        assert!((s.tar_level2 - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn boundaries_are_inclusive_of_the_target_range() {
        let s = GlycemicSummary::from_series(&[70.0, 180.0]);
        assert_eq!(s.tir, 1.0);
        assert_eq!(s.tbr, 0.0);
        assert_eq!(s.tar, 0.0);
    }

    #[test]
    fn gmi_matches_published_anchor() {
        // A mean glucose of 154 mg/dL corresponds to GMI ≈ 7.0%.
        let s = GlycemicSummary::from_series(&[154.0; 10]);
        assert!((s.gmi - 7.0).abs() < 0.02, "gmi = {}", s.gmi);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn cv_is_scale_free() {
        let a = GlycemicSummary::from_series(&[100.0, 120.0, 140.0]);
        let b = GlycemicSummary::from_series(&[200.0, 240.0, 280.0]);
        assert!((a.cv - b.cv).abs() < 1e-12);
        assert!(a.cv > 0.0);
    }

    #[test]
    fn consensus_targets() {
        // A tight in-range day passes.
        let good: Vec<f64> = (0..288)
            .map(|i| 110.0 + 20.0 * ((i as f64) / 30.0).sin())
            .collect();
        assert!(GlycemicSummary::from_series(&good).meets_consensus_targets());
        // A day with 10% of time at 55 mg/dL fails on TBR.
        let mut bad = good.clone();
        for v in bad.iter_mut().take(29) {
            *v = 55.0;
        }
        assert!(!GlycemicSummary::from_series(&bad).meets_consensus_targets());
    }
}
