//! Timing metrics: Time-to-Hazard, reaction time, early-detection rate.

use aps_types::{SimTrace, CONTROL_CYCLE_MINUTES};
use serde::{Deserialize, Serialize};

/// Time-to-Hazard in minutes: hazard onset minus fault activation.
/// Negative values mean the hazard pre-dated the fault (the paper's
/// 7.1% "controller inadequacy" cases). `None` when the trace has no
/// fault or no hazard.
pub fn time_to_hazard(trace: &SimTrace) -> Option<f64> {
    let tf = trace.meta.fault_start?;
    let th = trace.hazard_onset()?;
    Some((th - tf) as f64 * CONTROL_CYCLE_MINUTES)
}

/// Reaction time in minutes: hazard onset minus first alert. Positive
/// means the monitor alerted *before* the hazard (early detection).
/// `None` when the trace has no hazard or no alert.
pub fn reaction_time(trace: &SimTrace) -> Option<f64> {
    let th = trace.hazard_onset()?;
    let td = trace.first_alert()?;
    Some((th - td) as f64 * CONTROL_CYCLE_MINUTES)
}

/// Summary statistics over a set of timing values.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingStats {
    /// Number of contributing values.
    pub n: usize,
    /// Mean (minutes).
    pub mean: f64,
    /// Standard deviation (minutes).
    pub sd: f64,
    /// Minimum (minutes).
    pub min: f64,
    /// Maximum (minutes).
    pub max: f64,
}

impl TimingStats {
    /// Computes stats from values; all-zero when empty.
    pub fn from_values(values: &[f64]) -> TimingStats {
        let n = values.len();
        if n == 0 {
            return TimingStats::default();
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        TimingStats {
            n,
            mean,
            sd: var.sqrt(),
            min,
            max,
        }
    }
}

/// Early-detection rate: among hazardous traces, the fraction where the
/// first alert strictly precedes hazard onset.
pub fn early_detection_rate<'a, I>(traces: I) -> f64
where
    I: IntoIterator<Item = &'a SimTrace>,
{
    let mut hazardous = 0usize;
    let mut early = 0usize;
    for t in traces {
        if let Some(th) = t.hazard_onset() {
            hazardous += 1;
            if let Some(td) = t.first_alert() {
                if td < th {
                    early += 1;
                }
            }
        }
    }
    if hazardous == 0 {
        0.0
    } else {
        early as f64 / hazardous as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{Hazard, Step, StepRecord, TraceMeta};

    fn trace(fault: Option<u32>, hazard: Option<u32>, alert: Option<u32>) -> SimTrace {
        let meta = TraceMeta {
            fault_start: fault.map(Step),
            ..TraceMeta::default()
        };
        let mut t = SimTrace::new(meta);
        for i in 0..120u32 {
            let mut r = StepRecord::blank(Step(i));
            if hazard.map(|h| i >= h).unwrap_or(false) {
                r.hazard = Some(Hazard::H2);
            }
            if Some(i) == alert {
                r.alert = Some(Hazard::H2);
            }
            t.push(r);
        }
        t.refresh_meta();
        t
    }

    #[test]
    fn tth_in_minutes() {
        let t = trace(Some(20), Some(56), None);
        assert_eq!(time_to_hazard(&t), Some(180.0)); // 36 steps * 5 min
    }

    #[test]
    fn tth_negative_when_hazard_precedes_fault() {
        let t = trace(Some(50), Some(20), None);
        assert_eq!(time_to_hazard(&t), Some(-150.0));
    }

    #[test]
    fn tth_none_without_fault_or_hazard() {
        assert_eq!(time_to_hazard(&trace(None, Some(10), None)), None);
        assert_eq!(time_to_hazard(&trace(Some(10), None, None)), None);
    }

    #[test]
    fn reaction_time_positive_for_early_alert() {
        let t = trace(Some(20), Some(60), Some(36));
        assert_eq!(reaction_time(&t), Some(120.0));
    }

    #[test]
    fn reaction_time_negative_for_late_alert() {
        let t = trace(Some(20), Some(40), Some(50));
        assert_eq!(reaction_time(&t), Some(-50.0));
    }

    #[test]
    fn stats_basics() {
        let s = TimingStats::from_values(&[10.0, 20.0, 30.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert!((s.sd - (200.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert_eq!(TimingStats::from_values(&[]), TimingStats::default());
    }

    #[test]
    fn edr_counts_only_strictly_early() {
        let traces = vec![
            trace(Some(10), Some(50), Some(30)), // early
            trace(Some(10), Some(50), Some(50)), // exactly at onset: not early
            trace(Some(10), Some(50), None),     // missed
            trace(Some(10), None, Some(30)),     // no hazard: excluded
        ];
        let edr = early_detection_rate(&traces);
        assert!((edr - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edr_zero_when_no_hazards() {
        let traces = vec![trace(Some(10), None, None)];
        assert_eq!(early_detection_rate(&traces), 0.0);
    }
}
