//! Confusion-matrix counts and derived rates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// TP/FP/FN/TN counts with the derived rates the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl ConfusionCounts {
    /// All-zero counts.
    pub fn new() -> ConfusionCounts {
        ConfusionCounts::default()
    }

    /// Total number of classified items.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// False-positive rate `FP / (FP + TN)` (0 when undefined).
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// False-negative rate `FN / (FN + TP)` (0 when undefined).
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.fn_ + self.tp)
    }

    /// Accuracy `(TP + TN) / total` (0 when empty).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Precision `TP / (TP + FP)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall / sensitivity `TP / (TP + FN)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score `2TP / (2TP + FP + FN)` (0 when undefined).
    pub fn f1(&self) -> f64 {
        ratio(2 * self.tp, 2 * self.tp + self.fp + self.fn_)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for ConfusionCounts {
    type Output = ConfusionCounts;
    fn add(self, rhs: ConfusionCounts) -> ConfusionCounts {
        ConfusionCounts {
            tp: self.tp + rhs.tp,
            fp: self.fp + rhs.fp,
            fn_: self.fn_ + rhs.fn_,
            tn: self.tn + rhs.tn,
        }
    }
}

impl AddAssign for ConfusionCounts {
    fn add_assign(&mut self, rhs: ConfusionCounts) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ConfusionCounts {
    fn sum<I: Iterator<Item = ConfusionCounts>>(iter: I) -> ConfusionCounts {
        iter.fold(ConfusionCounts::new(), |a, b| a + b)
    }
}

impl fmt::Display for ConfusionCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TP={} FP={} FN={} TN={} | FPR={:.3} FNR={:.3} ACC={:.3} F1={:.3}",
            self.tp,
            self.fp,
            self.fn_,
            self.tn,
            self.fpr(),
            self.fnr(),
            self.accuracy(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_known_counts() {
        let c = ConfusionCounts {
            tp: 8,
            fp: 2,
            fn_: 1,
            tn: 9,
        };
        assert!((c.fpr() - 2.0 / 11.0).abs() < 1e-12);
        assert!((c.fnr() - 1.0 / 9.0).abs() < 1e-12);
        assert!((c.accuracy() - 17.0 / 20.0).abs() < 1e-12);
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 9.0).abs() < 1e-12);
        assert!((c.f1() - 16.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_define_zero_rates() {
        let c = ConfusionCounts::new();
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.fnr(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn sum_and_add() {
        let a = ConfusionCounts {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        let b = ConfusionCounts {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        };
        let s: ConfusionCounts = vec![a, b].into_iter().sum();
        assert_eq!(
            s,
            ConfusionCounts {
                tp: 11,
                fp: 22,
                fn_: 33,
                tn: 44
            }
        );
        assert_eq!(s.total(), 110);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ConfusionCounts::new().to_string().is_empty());
    }
}
