//! Simulation-level classification with the two-region split.
//!
//! Treating a whole trace as one case, an alert anywhere in a hazardous
//! trace is a TP regardless of timing — too generous on its own. The
//! paper therefore splits each faulty trace at the fault-activation
//! time `tf`: the pre-fault region `[0, tf)` must be alert-free, and
//! the post-fault region `[tf, te]` is judged as one case.

use crate::ConfusionCounts;
use aps_types::SimTrace;

/// Classifies one region: `alerted` vs `hazardous`.
fn classify(alerted: bool, hazardous: bool, c: &mut ConfusionCounts) {
    match (alerted, hazardous) {
        (true, true) => c.tp += 1,
        (true, false) => c.fp += 1,
        (false, true) => c.fn_ += 1,
        (false, false) => c.tn += 1,
    }
}

/// Simulation-level counts for one trace, split at the fault start
/// (fault-free traces contribute a single region).
pub fn simulation_counts(trace: &SimTrace) -> ConfusionCounts {
    let mut c = ConfusionCounts::new();
    match trace.meta.fault_start {
        Some(tf) => {
            let split = tf.index().min(trace.len());
            let pre = &trace.records[..split];
            let post = &trace.records[split..];
            classify(
                pre.iter().any(|r| r.alert.is_some()),
                pre.iter().any(|r| r.hazard.is_some()),
                &mut c,
            );
            classify(
                post.iter().any(|r| r.alert.is_some()),
                post.iter().any(|r| r.hazard.is_some()),
                &mut c,
            );
        }
        None => {
            classify(
                trace.records.iter().any(|r| r.alert.is_some()),
                trace.is_hazardous(),
                &mut c,
            );
        }
    }
    c
}

/// Aggregated simulation-level counts for a campaign of traces.
pub fn campaign_simulation_counts<'a, I>(traces: I) -> ConfusionCounts
where
    I: IntoIterator<Item = &'a SimTrace>,
{
    traces.into_iter().map(simulation_counts).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{Hazard, Step, StepRecord, TraceMeta};

    fn trace(
        len: u32,
        fault_start: Option<u32>,
        hazard_at: Option<u32>,
        alert_at: Option<u32>,
    ) -> SimTrace {
        let meta = TraceMeta {
            fault_start: fault_start.map(Step),
            ..TraceMeta::default()
        };
        let mut t = SimTrace::new(meta);
        for i in 0..len {
            let mut r = StepRecord::blank(Step(i));
            if Some(i) == hazard_at || hazard_at.map(|h| i >= h).unwrap_or(false) {
                r.hazard = Some(Hazard::H1);
            }
            if Some(i) == alert_at {
                r.alert = Some(Hazard::H1);
            }
            t.push(r);
        }
        t.refresh_meta();
        t
    }

    #[test]
    fn detected_hazard_after_fault_is_tp() {
        let t = trace(100, Some(30), Some(60), Some(50));
        let c = simulation_counts(&t);
        assert_eq!(c.tp, 1);
        assert_eq!(c.tn, 1); // clean pre-fault region
        assert_eq!(c.fp, 0);
        assert_eq!(c.fn_, 0);
    }

    #[test]
    fn missed_hazard_is_fn() {
        let t = trace(100, Some(30), Some(60), None);
        let c = simulation_counts(&t);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tn, 1);
    }

    #[test]
    fn pre_fault_alert_is_fp() {
        let t = trace(100, Some(30), Some(60), Some(10));
        let c = simulation_counts(&t);
        assert_eq!(c.fp, 1, "{c}");
        // Post-fault region has the hazard but no alert -> FN.
        assert_eq!(c.fn_, 1);
    }

    #[test]
    fn clean_faulty_run_is_two_tns() {
        let t = trace(100, Some(30), None, None);
        let c = simulation_counts(&t);
        assert_eq!(c.tn, 2);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn fault_free_run_is_single_region() {
        let t = trace(100, None, None, None);
        let c = simulation_counts(&t);
        assert_eq!(c.tn, 1);
        assert_eq!(c.total(), 1);
        let t = trace(100, None, None, Some(10));
        assert_eq!(simulation_counts(&t).fp, 1);
    }

    #[test]
    fn hazard_before_fault_counted_in_pre_region() {
        // TTH < 0 case of the paper: hazard precedes fault activation.
        let t = trace(100, Some(60), Some(20), None);
        let c = simulation_counts(&t);
        assert_eq!(c.fn_, 2, "{c}"); // hazardous in both regions (persists)
    }

    #[test]
    fn campaign_aggregation_sums() {
        let traces = vec![
            trace(50, Some(10), Some(20), Some(15)),
            trace(50, Some(10), None, None),
        ];
        let c = campaign_simulation_counts(&traces);
        assert_eq!(c.tp, 1);
        assert_eq!(c.tn, 3);
    }
}
