//! Evaluation metrics for real-time hazard prediction (paper §V-D).
//!
//! * [`confusion::ConfusionCounts`] — the 2×2 counts with derived
//!   FPR/FNR/ACC/F1;
//! * [`tolerance`] — sample-level classification with a tolerance
//!   window δ before hazard onset (paper Table IV / Fig. 6);
//! * [`simulation`] — simulation-level classification with the
//!   two-region split at fault-activation time;
//! * [`timing`] — Time-to-Hazard, reaction time, early-detection rate;
//! * [`outcome`] — hazard coverage, recovery rate, average risk (Eq. 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod glycemic;
pub mod outcome;
pub mod simulation;
pub mod timing;
pub mod tolerance;

pub use confusion::ConfusionCounts;
