//! Sample-level classification with a tolerance window (Table IV,
//! Fig. 6).
//!
//! A hazard *predictor* should alert **before** the hazard; point-wise
//! metrics would punish exactly the early alerts we want. Following the
//! paper's modified confusion matrix, each sample `t` is classified by
//! looking δ samples ahead for ground truth and δ samples back for
//! predictions:
//!
//! * hazard within `[t, t+δ]` and an alert within `[t−δ, t]` → **TP**;
//! * hazard within `[t, t+δ]` and no alert in `[t−δ, t]` → **FN**;
//! * no hazard within `[t, t+δ]` and an alert at `t` → **FP**;
//! * no hazard within `[t, t+δ]` and no alert at `t` → **TN**.

use crate::ConfusionCounts;
use aps_types::SimTrace;

/// Default tolerance window: 36 samples = 3 hours — the campaign's
/// mean Time-to-Hazard, i.e. the natural horizon over which a control
/// action can still cause a hazard. Alerts earlier than the window
/// ahead of onset count as false positives, so δ must match the
/// system's causal lead time (the paper's Fig. 7b shows the same
/// ~3-hour TTH scale).
pub const DEFAULT_TOLERANCE: usize = 36;

/// Classifies one trace of `predictions` against `ground` truth with
/// tolerance `delta`, returning the counts.
///
/// # Panics
///
/// Panics if the two series differ in length.
pub fn tolerance_counts(predictions: &[bool], ground: &[bool], delta: usize) -> ConfusionCounts {
    assert_eq!(predictions.len(), ground.len(), "series length mismatch");
    let n = ground.len();
    let mut c = ConfusionCounts::new();
    for t in 0..n {
        let ahead_hi = (t + delta).min(n.saturating_sub(1));
        let hazard_ahead = ground[t..=ahead_hi].iter().any(|&g| g);
        if hazard_ahead {
            let back_lo = t.saturating_sub(delta);
            let alerted = predictions[back_lo..=t].iter().any(|&p| p);
            if alerted {
                c.tp += 1;
            } else {
                c.fn_ += 1;
            }
        } else if predictions[t] {
            c.fp += 1;
        } else {
            c.tn += 1;
        }
    }
    c
}

/// Extracts prediction/ground series from a [`SimTrace`] and classifies
/// with tolerance `delta`.
pub fn trace_tolerance_counts(trace: &SimTrace, delta: usize) -> ConfusionCounts {
    let predictions: Vec<bool> = trace.records.iter().map(|r| r.alert.is_some()).collect();
    let ground: Vec<bool> = trace.records.iter().map(|r| r.hazard.is_some()).collect();
    tolerance_counts(&predictions, &ground, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_alert_is_tp_not_fp() {
        // Alert at t=2, hazard at t=5, delta=5.
        let mut pred = vec![false; 10];
        pred[2] = true;
        let mut gt = vec![false; 10];
        gt[5] = true;
        let c = tolerance_counts(&pred, &gt, 5);
        assert_eq!(c.fp, 0, "{c}");
        assert!(c.tp >= 1, "{c}");
    }

    #[test]
    fn late_alert_within_window_still_counts() {
        // Hazard at 3, alert at 5, delta 3: at t=3 the lookback [0,3]
        // has no alert yet -> FN accrues at t in [0,3]; at t=5 hazard is
        // not ahead anymore... ground truth only at 3, so t=2..3 are the
        // hazard-ahead samples.
        let mut pred = vec![false; 8];
        pred[5] = true;
        let mut gt = vec![false; 8];
        gt[3] = true;
        let c = tolerance_counts(&pred, &gt, 3);
        assert!(c.fn_ >= 1);
        // The alert itself lands after the hazard and outside any
        // hazard-ahead window -> counted as FP.
        assert_eq!(c.fp, 1);
    }

    #[test]
    fn point_wise_reduces_to_classic_at_delta_zero() {
        let pred = vec![true, false, true, false];
        let gt = vec![true, false, false, true];
        let c = tolerance_counts(&pred, &gt, 0);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tn, 1);
    }

    #[test]
    fn all_negative_series() {
        let c = tolerance_counts(&[false; 20], &[false; 20], 12);
        assert_eq!(c.tn, 20);
        assert_eq!(c.total(), 20);
    }

    #[test]
    fn counts_partition_every_sample() {
        let pred = vec![false, true, true, false, false, true, false];
        let gt = vec![false, false, true, true, false, false, false];
        let c = tolerance_counts(&pred, &gt, 2);
        assert_eq!(c.total(), 7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = tolerance_counts(&[true], &[true, false], 1);
    }

    #[test]
    fn trace_extraction_matches_manual() {
        use aps_types::{Hazard, Step, StepRecord, TraceMeta};
        let mut trace = SimTrace::new(TraceMeta::default());
        for i in 0..10u32 {
            let mut r = StepRecord::blank(Step(i));
            if i == 2 {
                r.alert = Some(Hazard::H1);
            }
            if i >= 5 {
                r.hazard = Some(Hazard::H1);
            }
            trace.push(r);
        }
        let c = trace_tolerance_counts(&trace, 5);
        assert_eq!(c.fp, 0);
        assert!(c.tp > 0);
    }
}
