//! Campaign-level outcome metrics: hazard coverage, recovery rate,
//! average risk (Eq. 9).

use aps_types::SimTrace;
use serde::{Deserialize, Serialize};

/// Hazard coverage: of the runs where a fault actually activated, the
/// fraction that ended in a hazard (paper §V-D).
pub fn hazard_coverage<'a, I>(traces: I) -> f64
where
    I: IntoIterator<Item = &'a SimTrace>,
{
    let mut faulted = 0usize;
    let mut hazardous = 0usize;
    for t in traces {
        if t.meta.fault_start.is_some() {
            faulted += 1;
            if t.is_hazardous() {
                hazardous += 1;
            }
        }
    }
    if faulted == 0 {
        0.0
    } else {
        hazardous as f64 / faulted as f64
    }
}

/// Recovery rate: of the scenarios that were hazardous *without*
/// mitigation, the fraction that are hazard-free *with* mitigation.
///
/// `pairs` yields `(unmitigated, mitigated)` traces of the same
/// scenario.
pub fn recovery_rate<'a, I>(pairs: I) -> f64
where
    I: IntoIterator<Item = (&'a SimTrace, &'a SimTrace)>,
{
    let mut baseline_hazards = 0usize;
    let mut prevented = 0usize;
    for (unmitigated, mitigated) in pairs {
        if unmitigated.is_hazardous() {
            baseline_hazards += 1;
            if !mitigated.is_hazardous() {
                prevented += 1;
            }
        }
    }
    if baseline_hazards == 0 {
        0.0
    } else {
        prevented as f64 / baseline_hazards as f64
    }
}

/// New hazards introduced by mitigation: scenarios that were safe
/// without mitigation but hazardous with it (the cost of false alarms).
pub fn new_hazards<'a, I>(pairs: I) -> usize
where
    I: IntoIterator<Item = (&'a SimTrace, &'a SimTrace)>,
{
    pairs
        .into_iter()
        .filter(|(unmitigated, mitigated)| !unmitigated.is_hazardous() && mitigated.is_hazardous())
        .count()
}

/// Per-simulation contribution to the average-risk metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskContribution {
    /// Mean BG risk index of the simulation (`R̄I(i)` in Eq. 9).
    pub mean_risk_index: f64,
    /// The simulation was a false negative (hazard, no warning).
    pub is_false_negative: bool,
    /// The simulation became hazardous only because of mitigation of a
    /// false alarm.
    pub is_new_hazard: bool,
}

/// Average risk (Eq. 9): mean over all N simulations of the risk
/// indices of FN cases and mitigation-induced new hazards.
pub fn average_risk(contributions: &[RiskContribution]) -> f64 {
    if contributions.is_empty() {
        return 0.0;
    }
    let harm: f64 = contributions
        .iter()
        .filter(|c| c.is_false_negative || c.is_new_hazard)
        .map(|c| c.mean_risk_index)
        .sum();
    harm / contributions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{Hazard, Step, StepRecord, TraceMeta};

    fn trace(faulted: bool, hazardous: bool) -> SimTrace {
        let meta = TraceMeta {
            fault_start: faulted.then_some(Step(10)),
            ..TraceMeta::default()
        };
        let mut t = SimTrace::new(meta);
        for i in 0..50u32 {
            let mut r = StepRecord::blank(Step(i));
            if hazardous && i >= 30 {
                r.hazard = Some(Hazard::H1);
            }
            t.push(r);
        }
        t.refresh_meta();
        t
    }

    #[test]
    fn coverage_over_faulted_runs_only() {
        let traces = vec![
            trace(true, true),
            trace(true, false),
            trace(true, false),
            trace(false, false), // fault-free: excluded from denominator
        ];
        assert!((hazard_coverage(&traces) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_zero_without_faults() {
        let traces = vec![trace(false, false)];
        assert_eq!(hazard_coverage(&traces), 0.0);
    }

    #[test]
    fn recovery_and_new_hazards() {
        let base_h = trace(true, true);
        let base_s = trace(true, false);
        let mit_h = trace(true, true);
        let mit_s = trace(true, false);
        // scenario 1: hazard prevented; scenario 2: hazard persists;
        // scenario 3: safe stays safe; scenario 4: mitigation hurt.
        let pairs = vec![
            (&base_h, &mit_s),
            (&base_h, &mit_h),
            (&base_s, &mit_s),
            (&base_s, &mit_h),
        ];
        assert!((recovery_rate(pairs.clone()) - 0.5).abs() < 1e-12);
        assert_eq!(new_hazards(pairs), 1);
    }

    #[test]
    fn average_risk_only_counts_fn_and_new_hazards() {
        let contributions = vec![
            RiskContribution {
                mean_risk_index: 10.0,
                is_false_negative: true,
                is_new_hazard: false,
            },
            RiskContribution {
                mean_risk_index: 6.0,
                is_false_negative: false,
                is_new_hazard: true,
            },
            RiskContribution {
                mean_risk_index: 100.0,
                is_false_negative: false,
                is_new_hazard: false,
            },
            RiskContribution {
                mean_risk_index: 100.0,
                is_false_negative: false,
                is_new_hazard: false,
            },
        ];
        assert!((average_risk(&contributions) - 4.0).abs() < 1e-12);
        assert_eq!(average_risk(&[]), 0.0);
    }
}
