//! `aps_tracestore` — versioned columnar binary container for
//! campaign trace corpora.
//!
//! The JSON shim is the right currency for specs and reports; it is
//! the wrong one for bulk trace data — cohort-scale campaigns (~10⁸
//! step records) cannot afford full-text deserialization and
//! per-record allocation on every replay or training pass. This crate
//! stores a corpus of [`SimTrace`]s in a compact little-endian binary
//! file that reads back with zero per-record allocation.
//!
//! # Layout (format version 1)
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────┐
//! │ header (32 B): "APSTRACE" | version u32 | flags u32            │
//! │                | code_version_hash u64 | spec_hash u64         │
//! ├────────────────────────────────────────────────────────────────┤
//! │ trace block 0                                                  │
//! │   n_records u32 | steps_len u32                                │
//! │   steps     : n zigzag-varint deltas (monotone ⇒ 1 B/record)   │
//! │   bg        : n × f64 bits      ┐                              │
//! │   bg_true   : n × f64 bits      │ one contiguous column        │
//! │   iob       : n × f64 bits      │ per StepRecord field         │
//! │   commanded : n × f64 bits      │                              │
//! │   delivered : n × f64 bits      ┘                              │
//! │   action    : n × u8 (paper index u1..u4)                      │
//! │   fault     : ⌈n/8⌉ B bitset (LSB-first)                       │
//! │   hazard    : n × u8 (0=None, 1=H1, 2=H2)                      │
//! │   alert     : n × u8                                           │
//! │   meta_len u32   | meta   (TraceMeta side table)               │
//! │   tracks_len u32 | tracks (AlertTrack side table)              │
//! ├────────────────────────────────────────────────────────────────┤
//! │ trace block 1 … trace block N-1                                │
//! ├────────────────────────────────────────────────────────────────┤
//! │ footer: N × u64 absolute block offsets                         │
//! │         | index_offset u64 | trace_count u64 | "APSTREND"      │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! # Compatibility
//!
//! - A reader rejects any file whose header version is **newer** than
//!   [`FORMAT_VERSION`] with the typed [`StoreError::Version`].
//! - Side tables are length-prefixed: a v1 reader defaults fields an
//!   older writer omitted and ignores bytes a newer writer appended,
//!   so additive evolution never needs a version bump.
//! - Truncation is detected structurally (trailing `"APSTREND"`
//!   magic plus offset-index bounds checks) before any trace decodes.
//!
//! # Example
//!
//! ```
//! use aps_tracestore::{read_store, write_store, TraceStoreReader};
//! use aps_types::{SimTrace, TraceMeta};
//!
//! let mut trace = SimTrace::new(TraceMeta {
//!     patient: "adult#001".into(),
//!     ..TraceMeta::default()
//! });
//! trace.push(aps_types::StepRecord::blank(aps_types::Step(0)));
//!
//! // In-memory round trip (files go through FileTraceWriter /
//! // TraceStoreReader::open).
//! let bytes = write_store(&[trace.clone()], 0).unwrap();
//! let reader = TraceStoreReader::from_bytes(bytes).unwrap();
//! assert_eq!(reader.len(), 1);
//! assert_eq!(reader.get(0), trace);
//! assert_eq!(read_store(&reader), vec![trace]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod reader;
pub mod writer;

pub use format::{code_version_hash, StoreError, FORMAT_VERSION};
pub use reader::{F64Column, RecordCursor, StoreHeader, TraceStoreReader, TraceView};
pub use writer::{FileTraceWriter, StoreStats, TraceWriter};

use aps_types::SimTrace;
use serde::{Deserialize, Serialize};

/// Human-readable summary of a store, serde-serializable for reports.
///
/// Header hashes are hex strings because the JSON shim routes numbers
/// through `f64` (exact only below 2^53); counts stay far below that.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(default)]
pub struct StoreInfo {
    /// Format version found in the file.
    pub format_version: u32,
    /// Hash of the code that wrote the store (hex).
    pub code_version_hash: String,
    /// Campaign spec fingerprint recorded at write time (hex).
    pub spec_hash: String,
    /// Number of traces.
    // lint: hex-exempt — trace counts stay far below 2^53.
    pub traces: u64,
    /// Total step records across all traces.
    // lint: hex-exempt — record counts stay far below 2^53.
    pub records: u64,
    /// File size in bytes.
    // lint: hex-exempt — file sizes stay far below 2^53.
    pub bytes: u64,
}

impl StoreInfo {
    /// Summarizes an open reader.
    pub fn of(reader: &TraceStoreReader) -> StoreInfo {
        let h = reader.header();
        StoreInfo {
            format_version: h.format_version,
            code_version_hash: to_hex(h.code_version_hash),
            spec_hash: to_hex(h.spec_hash),
            traces: reader.len() as u64,
            records: reader.total_records(),
            bytes: reader.byte_len(),
        }
    }
}

/// Formats a `u64` as a fixed-width lowercase hex string.
pub fn to_hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses a hex string written by [`to_hex`].
pub fn from_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// Encodes a corpus into an in-memory store image (header, blocks,
/// footer). The file path goes through [`FileTraceWriter`]; this is
/// the buffer-level equivalent used by tests and round-trip checks.
pub fn write_store(traces: &[SimTrace], spec_hash: u64) -> Result<Vec<u8>, StoreError> {
    let mut w = TraceWriter::new(Vec::new(), "<memory>", spec_hash)?;
    for t in traces {
        w.push(t)?;
    }
    let (buf, _) = w.finish()?;
    Ok(buf)
}

/// Materializes every trace in an open store (the bulk-read path).
pub fn read_store(reader: &TraceStoreReader) -> Vec<SimTrace> {
    reader.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{Step, StepRecord, TraceMeta};

    fn corpus() -> Vec<SimTrace> {
        let mut t0 = SimTrace::new(TraceMeta {
            patient: String::from("adult#001"),
            initial_bg: 140.0,
            ..TraceMeta::default()
        });
        for i in 0..10 {
            t0.push(StepRecord::blank(Step(i)));
        }
        let t1 = SimTrace::new(TraceMeta::default()); // empty trace
        vec![t0, t1]
    }

    #[test]
    fn roundtrip_through_memory() {
        let traces = corpus();
        let bytes = write_store(&traces, 0xDEAD_BEEF).unwrap();
        let reader = TraceStoreReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.header().spec_hash, 0xDEAD_BEEF);
        assert_eq!(read_store(&reader), traces);
    }

    #[test]
    fn info_summarizes_header_and_counts() {
        let bytes = write_store(&corpus(), u64::MAX).unwrap();
        let reader = TraceStoreReader::from_bytes(bytes).unwrap();
        let info = StoreInfo::of(&reader);
        assert_eq!(info.format_version, FORMAT_VERSION);
        assert_eq!(info.spec_hash, "ffffffffffffffff");
        assert_eq!(from_hex(&info.spec_hash), Some(u64::MAX));
        assert_eq!(info.traces, 2);
        assert_eq!(info.records, 10);
        assert_eq!(info.bytes, reader.byte_len());
    }

    #[test]
    fn info_serde_roundtrip() {
        let bytes = write_store(&corpus(), 42).unwrap();
        let reader = TraceStoreReader::from_bytes(bytes).unwrap();
        let info = StoreInfo::of(&reader);
        let json = serde_json::to_string(&info).unwrap();
        let back: StoreInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn hex_helpers_are_exact_above_2_53() {
        for v in [0u64, (1 << 53) + 1, u64::MAX] {
            assert_eq!(from_hex(&to_hex(v)), Some(v));
        }
    }
}
