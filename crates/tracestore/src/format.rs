//! On-disk format primitives: magic numbers, varints, enum byte codes.
//!
//! Everything in the store is **little-endian**. The file is
//!
//! ```text
//! [header | trace block 0 | trace block 1 | ... | footer]
//! ```
//!
//! See the crate docs for the full layout. This module holds the
//! pieces both the writer and the reader agree on: the 32-byte header,
//! the 24-byte footer tail, LEB128 varints with zigzag for signed
//! deltas, and the one-byte encodings of [`Hazard`] and
//! [`ControlAction`].

use aps_types::{ControlAction, Hazard};
use std::fmt;

/// File magic, first 8 bytes of every store.
pub const MAGIC: [u8; 8] = *b"APSTRACE";

/// Trailing magic, last 8 bytes of every store (detects truncation).
pub const END_MAGIC: [u8; 8] = *b"APSTREND";

/// Current format version written by [`TraceWriter`](crate::TraceWriter).
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header length: magic (8) + version (4) + flags (4) +
/// code-version hash (8) + spec hash (8).
pub const HEADER_LEN: usize = 32;

/// Fixed footer tail length: index offset (8) + trace count (8) +
/// [`END_MAGIC`] (8). The per-trace offset index sits immediately
/// before it.
pub const FOOTER_TAIL_LEN: usize = 24;

/// Why a store could not be written, opened, or decoded.
///
/// Every failure mode is a distinct variant so callers (and CLI exit
/// paths) can react without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure while reading or writing.
    Io {
        /// The file involved.
        path: String,
        /// What went wrong.
        detail: String,
    },
    /// The file does not start with [`MAGIC`] (not a trace store).
    BadMagic,
    /// The file's format version is newer than this build supports.
    Version {
        /// Version found in the header.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The file ends before the structure it promises (torn write,
    /// truncated download, missing footer).
    Truncated {
        /// What was being read when the file ran out.
        detail: String,
    },
    /// A structurally complete region decodes to impossible values
    /// (out-of-range offsets, invalid enum bytes, non-UTF-8 strings).
    Corrupt {
        /// Byte offset of the bad region.
        offset: usize,
        /// What failed to decode.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => {
                write!(f, "trace-store I/O error at `{path}`: {detail}")
            }
            StoreError::BadMagic => f.write_str("not a trace store (bad magic)"),
            StoreError::Version { found, supported } => write!(
                f,
                "trace-store format version {found} is newer than the supported version {supported}"
            ),
            StoreError::Truncated { detail } => {
                write!(f, "trace store is truncated: {detail}")
            }
            StoreError::Corrupt { offset, detail } => {
                write!(f, "trace store is corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Zigzag-encodes a signed delta so small magnitudes stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit =
/// continuation). At most 10 bytes; encodes via a stack scratch so the
/// only touch on `out` is one `extend_from_slice`.
#[inline]
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    let mut scratch = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        scratch[n] = if v == 0 { byte } else { byte | 0x80 };
        n += 1;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&scratch[..n]);
}

/// Reads one LEB128 varint at `*pos`, advancing it. `None` when the
/// buffer ends mid-varint or the value overflows 64 bits.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Reads a `f64` stored as little-endian bits at `pos` (bit-exact).
#[inline]
pub fn read_f64(buf: &[u8], pos: usize) -> f64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[pos..pos + 8]);
    f64::from_bits(u64::from_le_bytes(b))
}

/// Reads a little-endian `u32` at `pos`.
#[inline]
pub fn read_u32(buf: &[u8], pos: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[pos..pos + 4]);
    u32::from_le_bytes(b)
}

/// Reads a little-endian `u64` at `pos`.
#[inline]
pub fn read_u64(buf: &[u8], pos: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[pos..pos + 8]);
    u64::from_le_bytes(b)
}

/// One-byte encoding of an optional hazard (0 = none, 1 = H1, 2 = H2).
#[inline]
pub fn hazard_to_byte(h: Option<Hazard>) -> u8 {
    match h {
        None => 0,
        Some(Hazard::H1) => 1,
        Some(Hazard::H2) => 2,
    }
}

/// Inverse of [`hazard_to_byte`]; `None` for invalid bytes.
#[inline]
pub fn byte_to_hazard(b: u8) -> Option<Option<Hazard>> {
    match b {
        0 => Some(None),
        1 => Some(Some(Hazard::H1)),
        2 => Some(Some(Hazard::H2)),
        _ => None,
    }
}

/// One-byte encoding of a control action (the paper's 1-based `u1..u4`
/// index, so the byte matches [`ControlAction::paper_index`]).
#[inline]
pub fn action_to_byte(a: ControlAction) -> u8 {
    a.paper_index()
}

/// Inverse of [`action_to_byte`]; `None` for invalid bytes.
#[inline]
pub fn byte_to_action(b: u8) -> Option<ControlAction> {
    match b {
        1 => Some(ControlAction::DecreaseInsulin),
        2 => Some(ControlAction::IncreaseInsulin),
        3 => Some(ControlAction::StopInsulin),
        4 => Some(ControlAction::KeepInsulin),
        _ => None,
    }
}

/// FNV-1a over a byte slice, continuing from `acc` (the store's own
/// copy — the checkpoint module's digest lives above this crate in the
/// dependency graph).
pub fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// FNV-1a offset basis.
pub const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// 64-bit hash identifying the code that wrote a store: crate version
/// plus format version. Stored in the header so replay-heavy tooling
/// can tell which build produced a corpus.
pub fn code_version_hash() -> u64 {
    let acc = fnv1a(FNV_SEED, env!("CARGO_PKG_VERSION").as_bytes());
    fnv1a(acc, &FORMAT_VERSION.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        push_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_varint(&buf[..buf.len() - 1], &mut pos), None);
        // 11 continuation bytes can never be a valid u64.
        let over = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&over, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert!(zigzag(-1) < 4);
        assert!(zigzag(1) < 4);
    }

    #[test]
    fn enum_bytes_roundtrip() {
        for h in [None, Some(Hazard::H1), Some(Hazard::H2)] {
            assert_eq!(byte_to_hazard(hazard_to_byte(h)), Some(h));
        }
        assert_eq!(byte_to_hazard(3), None);
        for a in ControlAction::ALL {
            assert_eq!(byte_to_action(action_to_byte(a)), Some(a));
        }
        assert_eq!(byte_to_action(0), None);
        assert_eq!(byte_to_action(5), None);
    }

    #[test]
    fn f64_bits_are_exact() {
        let mut buf = Vec::new();
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, -f64::MAX] {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(read_f64(&buf, 0).to_bits(), 0.0f64.to_bits());
        assert_eq!(read_f64(&buf, 8).to_bits(), (-0.0f64).to_bits());
        assert_eq!(read_f64(&buf, 16), 1.5);
        assert_eq!(read_f64(&buf, 24), f64::MIN_POSITIVE);
    }

    #[test]
    fn code_version_hash_is_stable_within_a_build() {
        assert_eq!(code_version_hash(), code_version_hash());
        assert_ne!(code_version_hash(), 0);
    }

    #[test]
    fn errors_display_their_variant() {
        let e = StoreError::Version {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        let t = StoreError::Truncated {
            detail: "footer".into(),
        };
        assert!(t.to_string().contains("truncated"));
    }
}
