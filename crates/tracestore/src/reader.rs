//! Zero-copy store reader: validate once at open, then infallible,
//! allocation-free access.
//!
//! [`TraceStoreReader::open`] reads the whole file into one buffer and
//! eagerly validates every block — header, footer, offset index, step
//! varints, enum bytes, side-table framing. All the fallible work
//! happens there, so [`view`](TraceStoreReader::view) is infallible
//! and iterating a [`TraceView`]'s records decodes straight off the
//! column bytes without touching the heap. Owned [`SimTrace`]s are
//! materialized only on demand.

use crate::format::{
    byte_to_action, byte_to_hazard, read_f64, read_u32, read_u64, read_varint, unzigzag,
    StoreError, END_MAGIC, FOOTER_TAIL_LEN, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
use aps_types::{AlertTrack, MgDl, SimTrace, Step, StepRecord, TraceMeta, Units, UnitsPerHour};
use std::path::Path;

/// The five `f64` columns of a trace block, in on-disk order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F64Column {
    /// CGM-observed blood glucose (mg/dL).
    Bg,
    /// True (plant) blood glucose (mg/dL).
    BgTrue,
    /// Insulin on board (U).
    Iob,
    /// Commanded basal rate (U/h).
    Commanded,
    /// Delivered basal rate (U/h).
    Delivered,
}

/// Validated byte ranges of one trace block. All offsets are absolute
/// into the store buffer and pre-checked, so access through them never
/// fails.
#[derive(Debug, Clone)]
struct BlockLayout {
    n: usize,
    steps_off: usize,
    cols_off: usize,
    meta_off: usize,
    meta_len: usize,
    tracks_off: usize,
    tracks_len: usize,
}

impl BlockLayout {
    fn col_off(&self, col: F64Column) -> usize {
        let idx = match col {
            F64Column::Bg => 0,
            F64Column::BgTrue => 1,
            F64Column::Iob => 2,
            F64Column::Commanded => 3,
            F64Column::Delivered => 4,
        };
        self.cols_off + idx * 8 * self.n
    }

    fn action_off(&self) -> usize {
        self.cols_off + 40 * self.n
    }

    fn bitset_off(&self) -> usize {
        self.action_off() + self.n
    }

    fn hazard_off(&self) -> usize {
        self.bitset_off() + self.n.div_ceil(8)
    }

    fn alert_off(&self) -> usize {
        self.hazard_off() + self.n
    }
}

/// Header fields of an open store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreHeader {
    /// Format version found in the file (≤ [`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Hash of the code that wrote the store.
    pub code_version_hash: u64,
    /// Campaign spec fingerprint recorded at write time (0 = unknown).
    pub spec_hash: u64,
}

/// An open, fully validated trace store.
pub struct TraceStoreReader {
    buf: Vec<u8>,
    header: StoreHeader,
    blocks: Vec<BlockLayout>,
}

impl std::fmt::Debug for TraceStoreReader {
    /// Compact summary — the buffer itself can be cohort-scale.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStoreReader")
            .field("header", &self.header)
            .field("traces", &self.blocks.len())
            .field("bytes", &self.buf.len())
            .finish()
    }
}

impl TraceStoreReader {
    /// Reads `path` into memory and validates it end to end.
    pub fn open(path: &Path) -> Result<TraceStoreReader, StoreError> {
        let buf = std::fs::read(path).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        TraceStoreReader::from_bytes(buf)
    }

    /// Validates an in-memory store image. Every structural check the
    /// format allows happens here: anything that passes yields a
    /// reader whose accessors are infallible.
    pub fn from_bytes(buf: Vec<u8>) -> Result<TraceStoreReader, StoreError> {
        if buf.len() < 8 || buf[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        if buf.len() < HEADER_LEN + FOOTER_TAIL_LEN {
            return Err(StoreError::Truncated {
                detail: String::from("file shorter than header + footer"),
            });
        }
        let format_version = read_u32(&buf, 8);
        if format_version > FORMAT_VERSION {
            return Err(StoreError::Version {
                found: format_version,
                supported: FORMAT_VERSION,
            });
        }
        let header = StoreHeader {
            format_version,
            code_version_hash: read_u64(&buf, 16),
            spec_hash: read_u64(&buf, 24),
        };

        let tail = buf.len() - FOOTER_TAIL_LEN;
        if buf[buf.len() - 8..] != END_MAGIC {
            return Err(StoreError::Truncated {
                detail: String::from("end magic missing (torn write?)"),
            });
        }
        let index_offset = read_u64(&buf, tail) as usize;
        let trace_count = read_u64(&buf, tail + 8) as usize;
        let index_len = trace_count
            .checked_mul(8)
            .ok_or_else(|| StoreError::Corrupt {
                offset: tail + 8,
                detail: String::from("trace count overflows the index"),
            })?;
        if index_offset < HEADER_LEN || index_offset.checked_add(index_len) != Some(tail) {
            return Err(StoreError::Corrupt {
                offset: tail,
                detail: String::from("offset index does not fit between header and footer"),
            });
        }

        let mut blocks = Vec::with_capacity(trace_count);
        for i in 0..trace_count {
            let off = read_u64(&buf, index_offset + 8 * i) as usize;
            if off < HEADER_LEN || off >= index_offset {
                return Err(StoreError::Corrupt {
                    offset: index_offset + 8 * i,
                    detail: String::from("trace offset out of range"),
                });
            }
            blocks.push(validate_block(&buf, off, index_offset)?);
        }

        Ok(TraceStoreReader {
            buf,
            header,
            blocks,
        })
    }

    /// Number of traces in the store.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Header fields (format version, code-version hash, spec hash).
    pub fn header(&self) -> StoreHeader {
        self.header
    }

    /// Total step records across all traces.
    pub fn total_records(&self) -> u64 {
        self.blocks.iter().map(|b| b.n as u64).sum()
    }

    /// Store image size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Zero-copy view of trace `i`. Panics if `i >= len()` — the
    /// index is the caller's loop variable, not untrusted input.
    pub fn view(&self, i: usize) -> TraceView<'_> {
        TraceView {
            buf: &self.buf,
            layout: &self.blocks[i],
        }
    }

    /// Materializes trace `i` as an owned [`SimTrace`].
    pub fn get(&self, i: usize) -> SimTrace {
        self.view(i).materialize()
    }

    /// Iterates zero-copy views over all traces.
    pub fn iter(&self) -> impl Iterator<Item = TraceView<'_>> {
        (0..self.blocks.len()).map(|i| self.view(i))
    }

    /// Materializes the whole store (the JSONL-compatible bulk path).
    pub fn read_all(&self) -> Vec<SimTrace> {
        self.iter().map(|v| v.materialize()).collect()
    }
}

/// Checks one trace block's framing and contents; returns its layout.
fn validate_block(buf: &[u8], off: usize, end: usize) -> Result<BlockLayout, StoreError> {
    // Framing helper: ensure `want` bytes exist at `at` inside the block region.
    let need = |at: usize, want: usize| -> Result<(), StoreError> {
        match at.checked_add(want) {
            Some(e) if e <= end => Ok(()),
            _ => Err(StoreError::Truncated {
                detail: format!("trace block at byte {off} overruns the index"),
            }),
        }
    };

    need(off, 8)?;
    let n = read_u32(buf, off) as usize;
    let steps_len = read_u32(buf, off + 4) as usize;
    let steps_off = off + 8;
    need(steps_off, steps_len)?;

    // Step column: exactly n varints filling exactly steps_len bytes.
    let mut pos = steps_off;
    for _ in 0..n {
        if read_varint(&buf[..steps_off + steps_len], &mut pos).is_none() {
            return Err(StoreError::Corrupt {
                offset: pos,
                detail: String::from("step varint truncated"),
            });
        }
    }
    if pos != steps_off + steps_len {
        return Err(StoreError::Corrupt {
            offset: pos,
            detail: String::from("step column length does not match record count"),
        });
    }

    let cols_off = steps_off + steps_len;
    let cols_len = 43 * n + n.div_ceil(8);
    need(cols_off, cols_len)?;
    let layout = BlockLayout {
        n,
        steps_off,
        cols_off,
        meta_off: 0,
        meta_len: 0,
        tracks_off: 0,
        tracks_len: 0,
    };
    for i in 0..n {
        if byte_to_action(buf[layout.action_off() + i]).is_none() {
            return Err(StoreError::Corrupt {
                offset: layout.action_off() + i,
                detail: String::from("invalid action byte"),
            });
        }
        if byte_to_hazard(buf[layout.hazard_off() + i]).is_none() {
            return Err(StoreError::Corrupt {
                offset: layout.hazard_off() + i,
                detail: String::from("invalid hazard byte"),
            });
        }
        if byte_to_hazard(buf[layout.alert_off() + i]).is_none() {
            return Err(StoreError::Corrupt {
                offset: layout.alert_off() + i,
                detail: String::from("invalid alert byte"),
            });
        }
    }

    let mut cursor = cols_off + cols_len;
    need(cursor, 4)?;
    let meta_len = read_u32(buf, cursor) as usize;
    let meta_off = cursor + 4;
    need(meta_off, meta_len)?;
    if decode_meta(&buf[meta_off..meta_off + meta_len]).is_none() {
        return Err(StoreError::Corrupt {
            offset: meta_off,
            detail: String::from("trace meta fails to decode"),
        });
    }

    cursor = meta_off + meta_len;
    need(cursor, 4)?;
    let tracks_len = read_u32(buf, cursor) as usize;
    let tracks_off = cursor + 4;
    need(tracks_off, tracks_len)?;
    if decode_tracks(&buf[tracks_off..tracks_off + tracks_len]).is_none() {
        return Err(StoreError::Corrupt {
            offset: tracks_off,
            detail: String::from("monitor tracks fail to decode"),
        });
    }

    Ok(BlockLayout {
        meta_off,
        meta_len,
        tracks_off,
        tracks_len,
        ..layout
    })
}

/// Decodes a meta region. Fields missing entirely from a shorter
/// (older-writer) region default; a field that *starts* but cannot
/// finish is an error (`None`). Trailing bytes from a newer writer are
/// ignored.
fn decode_meta(buf: &[u8]) -> Option<TraceMeta> {
    let mut meta = TraceMeta::default();
    let mut pos = 0usize;

    let Some(len) = read_varint(buf, &mut pos) else {
        return if pos == 0 { Some(meta) } else { None };
    };
    let s = buf.get(pos..pos + len as usize)?;
    meta.patient = String::from_utf8(s.to_vec()).ok()?;
    pos += len as usize;

    let Some(len) = read_varint(buf, &mut pos) else {
        return if pos == buf.len() { Some(meta) } else { None };
    };
    let s = buf.get(pos..pos + len as usize)?;
    meta.fault_name = String::from_utf8(s.to_vec()).ok()?;
    pos += len as usize;

    if pos == buf.len() {
        return Some(meta);
    }
    let bits = buf.get(pos..pos + 8)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(bits);
    meta.initial_bg = f64::from_bits(u64::from_le_bytes(b));
    pos += 8;

    let Some(v) = read_varint(buf, &mut pos) else {
        return if pos == buf.len() { Some(meta) } else { None };
    };
    meta.fault_start = decode_opt_step(v)?;

    let Some(v) = read_varint(buf, &mut pos) else {
        return if pos == buf.len() { Some(meta) } else { None };
    };
    meta.hazard_onset = decode_opt_step(v)?;

    if pos == buf.len() {
        return Some(meta);
    }
    meta.hazard_type = byte_to_hazard(buf[pos])?;
    // Anything after this is a newer writer's extension: ignored.
    Some(meta)
}

/// Decodes the `0 = None, else step + 1` optional-step encoding.
fn decode_opt_step(v: u64) -> Option<Option<Step>> {
    if v == 0 {
        Some(None)
    } else if v - 1 <= u64::from(u32::MAX) {
        Some(Some(Step((v - 1) as u32)))
    } else {
        None
    }
}

/// Decodes the monitor-track side table; `None` on any framing error.
fn decode_tracks(buf: &[u8]) -> Option<Vec<AlertTrack>> {
    let mut pos = 0usize;
    if buf.is_empty() {
        return Some(Vec::new()); // older writer: no track table at all
    }
    let count = read_varint(buf, &mut pos)?;
    let mut tracks = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let name_len = read_varint(buf, &mut pos)? as usize;
        let name = buf.get(pos..pos + name_len)?;
        let monitor = String::from_utf8(name.to_vec()).ok()?;
        pos += name_len;
        let alerts_len = read_varint(buf, &mut pos)? as usize;
        let bytes = buf.get(pos..pos + alerts_len)?;
        let mut alerts = Vec::with_capacity(alerts_len);
        for &b in bytes {
            alerts.push(byte_to_hazard(b)?);
        }
        pos += alerts_len;
        tracks.push(AlertTrack { monitor, alerts });
    }
    Some(tracks)
}

/// Zero-copy view of one trace inside an open store.
///
/// All accessors are infallible: the block was validated when the
/// store was opened. Column reads and [`records`](Self::records)
/// decode directly off the store buffer without allocating; only
/// [`meta`](Self::meta), [`tracks`](Self::tracks), and
/// [`materialize`](Self::materialize) build owned values.
#[derive(Clone, Copy)]
pub struct TraceView<'a> {
    buf: &'a [u8],
    layout: &'a BlockLayout,
}

impl<'a> TraceView<'a> {
    /// Number of step records in this trace.
    pub fn len(&self) -> usize {
        self.layout.n
    }

    /// True when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.layout.n == 0
    }

    /// Reads one value from an `f64` column (bit-exact).
    pub fn f64_at(&self, col: F64Column, i: usize) -> f64 {
        debug_assert!(i < self.layout.n);
        read_f64(self.buf, self.layout.col_off(col) + 8 * i)
    }

    /// Copies a whole `f64` column into `out` (cleared first). The
    /// caller's buffer is reused across traces, so a campaign-long
    /// scan allocates only when a trace is longer than every previous
    /// one.
    pub fn copy_f64_column(&self, col: F64Column, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.layout.n);
        let base = self.layout.col_off(col);
        for i in 0..self.layout.n {
            out.extend_from_slice(&[read_f64(self.buf, base + 8 * i)]);
        }
    }

    /// Iterates the records of this trace, decoding each
    /// [`StepRecord`] straight off the columns without allocating.
    pub fn records(&self) -> RecordCursor<'a> {
        RecordCursor {
            buf: self.buf,
            layout: self.layout.clone(),
            i: 0,
            steps_pos: self.layout.steps_off,
            prev_step: 0,
        }
    }

    /// Decodes this trace's [`TraceMeta`] (allocates the strings).
    pub fn meta(&self) -> TraceMeta {
        let region = &self.buf[self.layout.meta_off..self.layout.meta_off + self.layout.meta_len];
        // Validated at open; default is unreachable.
        decode_meta(region).unwrap_or_default()
    }

    /// Decodes this trace's monitor side table.
    pub fn tracks(&self) -> Vec<AlertTrack> {
        let region =
            &self.buf[self.layout.tracks_off..self.layout.tracks_off + self.layout.tracks_len];
        // Validated at open; default is unreachable.
        decode_tracks(region).unwrap_or_default()
    }

    /// Materializes an owned [`SimTrace`] from this view.
    pub fn materialize(&self) -> SimTrace {
        SimTrace {
            meta: self.meta(),
            records: self.records().collect(),
            monitor_tracks: self.tracks(),
        }
    }
}

/// Allocation-free record iterator over one trace's columns.
pub struct RecordCursor<'a> {
    buf: &'a [u8],
    layout: BlockLayout,
    i: usize,
    steps_pos: usize,
    prev_step: i64,
}

impl Iterator for RecordCursor<'_> {
    type Item = StepRecord;

    fn next(&mut self) -> Option<StepRecord> {
        if self.i >= self.layout.n {
            return None;
        }
        let i = self.i;
        // Validated at open: the varint read cannot fail here.
        let delta = read_varint(self.buf, &mut self.steps_pos)?;
        self.prev_step += unzigzag(delta);
        let step = Step(self.prev_step as u32);
        let fault_byte = self.buf[self.layout.bitset_off() + i / 8];
        let rec = StepRecord {
            step,
            bg: MgDl(read_f64(
                self.buf,
                self.layout.col_off(F64Column::Bg) + 8 * i,
            )),
            bg_true: MgDl(read_f64(
                self.buf,
                self.layout.col_off(F64Column::BgTrue) + 8 * i,
            )),
            iob: Units(read_f64(
                self.buf,
                self.layout.col_off(F64Column::Iob) + 8 * i,
            )),
            commanded: UnitsPerHour(read_f64(
                self.buf,
                self.layout.col_off(F64Column::Commanded) + 8 * i,
            )),
            delivered: UnitsPerHour(read_f64(
                self.buf,
                self.layout.col_off(F64Column::Delivered) + 8 * i,
            )),
            action: byte_to_action(self.buf[self.layout.action_off() + i])?,
            fault_active: fault_byte & (1 << (i % 8)) != 0,
            hazard: byte_to_hazard(self.buf[self.layout.hazard_off() + i])?,
            alert: byte_to_hazard(self.buf[self.layout.alert_off() + i])?,
        };
        self.i += 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.layout.n - self.i;
        (rem, Some(rem))
    }
}
