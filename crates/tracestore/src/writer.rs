//! Streaming store writer: encode traces one at a time, finalize with
//! an atomic rename.
//!
//! [`TraceWriter`] is generic over any [`Write`] sink and is the
//! campaign-sink building block — wrap one in a closure and hand it to
//! `run_campaign_with` to stream a campaign straight to disk without
//! ever holding the corpus in memory. [`FileTraceWriter`] adds the
//! file-backed convenience: it writes to `<path>.tmp` and renames into
//! place on [`finalize`](FileTraceWriter::finalize), so a crashed or
//! killed campaign never leaves a half-written store at the final
//! path (the same atomicity idiom as the campaign checkpoints).

use crate::format::{
    action_to_byte, code_version_hash, hazard_to_byte, push_varint, zigzag, StoreError, END_MAGIC,
    FORMAT_VERSION, MAGIC,
};
use aps_types::{AlertTrack, SimTrace, StepRecord, TraceMeta};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Encodes the delta+varint step column: each step is stored as the
/// zigzag varint of its difference from the previous step (first delta
/// is from 0). Monotone step sequences — the normal case — pack to
/// one byte per record; arbitrary sequences still round-trip exactly.
pub fn encode_steps(records: &[StepRecord], out: &mut Vec<u8>) {
    let mut prev: i64 = 0;
    for rec in records {
        let cur = i64::from(rec.step.0);
        push_varint(out, zigzag(cur - prev));
        prev = cur;
    }
}

/// Encodes the fixed-width columns: five contiguous `f64`-bits columns
/// (`bg`, `bg_true`, `iob`, `commanded`, `delivered`), the one-byte
/// action column, the `fault_active` bitset (LSB-first, one bit per
/// record), and the one-byte `hazard` and `alert` columns.
pub fn encode_columns(records: &[StepRecord], out: &mut Vec<u8>) {
    let n = records.len();
    out.reserve(n * 43 + n.div_ceil(8));
    for rec in records {
        out.extend_from_slice(&rec.bg.value().to_bits().to_le_bytes());
    }
    for rec in records {
        out.extend_from_slice(&rec.bg_true.value().to_bits().to_le_bytes());
    }
    for rec in records {
        out.extend_from_slice(&rec.iob.value().to_bits().to_le_bytes());
    }
    for rec in records {
        out.extend_from_slice(&rec.commanded.value().to_bits().to_le_bytes());
    }
    for rec in records {
        out.extend_from_slice(&rec.delivered.value().to_bits().to_le_bytes());
    }
    for rec in records {
        out.extend_from_slice(&[action_to_byte(rec.action)]);
    }
    for chunk in records.chunks(8) {
        let mut byte = 0u8;
        for (bit, rec) in chunk.iter().enumerate() {
            if rec.fault_active {
                byte |= 1 << bit;
            }
        }
        out.extend_from_slice(&[byte]);
    }
    for rec in records {
        out.extend_from_slice(&[hazard_to_byte(rec.hazard)]);
    }
    for rec in records {
        out.extend_from_slice(&[hazard_to_byte(rec.alert)]);
    }
}

/// Encodes the `TraceMeta` side table: varint-length-prefixed UTF-8
/// strings, `initial_bg` as `f64` bits, optional steps as `0 = None`
/// else `step + 1`, hazard type as one byte. A v1 reader defaults any
/// fields a shorter (older) region omits and ignores trailing bytes a
/// longer (newer) region appends.
pub fn encode_meta(meta: &TraceMeta, out: &mut Vec<u8>) {
    push_varint(out, meta.patient.len() as u64);
    out.extend_from_slice(meta.patient.as_bytes());
    push_varint(out, meta.fault_name.len() as u64);
    out.extend_from_slice(meta.fault_name.as_bytes());
    out.extend_from_slice(&meta.initial_bg.to_bits().to_le_bytes());
    push_varint(out, meta.fault_start.map_or(0, |s| u64::from(s.0) + 1));
    push_varint(out, meta.hazard_onset.map_or(0, |s| u64::from(s.0) + 1));
    out.extend_from_slice(&[hazard_to_byte(meta.hazard_type)]);
}

/// Encodes the monitor side table: varint track count, then per track
/// a varint-length-prefixed monitor name and a varint-length-prefixed
/// run of one-byte alerts.
pub fn encode_tracks(tracks: &[AlertTrack], out: &mut Vec<u8>) {
    push_varint(out, tracks.len() as u64);
    for track in tracks {
        push_varint(out, track.monitor.len() as u64);
        out.extend_from_slice(track.monitor.as_bytes());
        push_varint(out, track.alerts.len() as u64);
        for &alert in &track.alerts {
            out.extend_from_slice(&[hazard_to_byte(alert)]);
        }
    }
}

/// Summary of a finished store, returned by the finalizing calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of traces written.
    pub traces: usize,
    /// Total step records across all traces.
    pub records: u64,
    /// Total file size in bytes, header and footer included.
    pub bytes: u64,
}

/// Streaming encoder over any [`Write`] sink.
///
/// The header goes out at construction; each [`push`](Self::push)
/// appends one self-contained trace block; [`finish`](Self::finish)
/// appends the offset index and footer tail. Scratch buffers are
/// reused across pushes, so steady-state writing allocates only when
/// a trace is larger than every previous one.
pub struct TraceWriter<W: Write> {
    out: W,
    /// Label used in I/O error messages (a path for file sinks).
    label: String,
    pos: u64,
    records: u64,
    offsets: Vec<u64>,
    block: Vec<u8>,
    side: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a store on `out`, writing the 32-byte header. `label`
    /// names the sink in error messages; `spec_hash` is the campaign
    /// spec fingerprint recorded in the header (0 if unknown).
    pub fn new(out: W, label: &str, spec_hash: u64) -> Result<TraceWriter<W>, StoreError> {
        let mut w = TraceWriter {
            out,
            label: String::from(label),
            pos: 0,
            records: 0,
            offsets: Vec::new(),
            block: Vec::new(),
            side: Vec::new(),
        };
        w.block.extend_from_slice(&MAGIC);
        w.block.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        w.block.extend_from_slice(&0u32.to_le_bytes()); // flags, reserved
        w.block
            .extend_from_slice(&code_version_hash().to_le_bytes());
        w.block.extend_from_slice(&spec_hash.to_le_bytes());
        w.flush_block()?;
        Ok(w)
    }

    /// Appends one trace as a self-contained block.
    pub fn push(&mut self, trace: &SimTrace) -> Result<(), StoreError> {
        self.offsets.extend_from_slice(&[self.pos]);
        self.records += trace.records.len() as u64;
        self.block.clear();
        self.block
            .extend_from_slice(&(trace.records.len() as u32).to_le_bytes());

        self.side.clear();
        encode_steps(&trace.records, &mut self.side);
        self.block
            .extend_from_slice(&(self.side.len() as u32).to_le_bytes());
        let side = std::mem::take(&mut self.side);
        self.block.extend_from_slice(&side);
        self.side = side;

        encode_columns(&trace.records, &mut self.block);

        self.side.clear();
        encode_meta(&trace.meta, &mut self.side);
        self.block
            .extend_from_slice(&(self.side.len() as u32).to_le_bytes());
        let side = std::mem::take(&mut self.side);
        self.block.extend_from_slice(&side);
        self.side = side;

        self.side.clear();
        encode_tracks(&trace.monitor_tracks, &mut self.side);
        self.block
            .extend_from_slice(&(self.side.len() as u32).to_le_bytes());
        let side = std::mem::take(&mut self.side);
        self.block.extend_from_slice(&side);
        self.side = side;

        self.flush_block()
    }

    /// Number of traces pushed so far.
    pub fn trace_count(&self) -> usize {
        self.offsets.len()
    }

    /// Bytes written so far (header included).
    pub fn bytes_written(&self) -> u64 {
        self.pos
    }

    /// Writes the offset index and footer tail, flushes, and returns
    /// the sink together with the store summary.
    pub fn finish(mut self) -> Result<(W, StoreStats), StoreError> {
        let index_offset = self.pos;
        self.block.clear();
        let offsets = std::mem::take(&mut self.offsets);
        for &off in &offsets {
            self.block.extend_from_slice(&off.to_le_bytes());
        }
        self.block.extend_from_slice(&index_offset.to_le_bytes());
        self.block
            .extend_from_slice(&(offsets.len() as u64).to_le_bytes());
        self.block.extend_from_slice(&END_MAGIC);
        self.offsets = offsets;
        self.flush_block()?;
        let stats = StoreStats {
            traces: self.offsets.len(),
            records: self.records,
            bytes: self.pos,
        };
        if let Err(e) = self.out.flush() {
            return Err(StoreError::Io {
                path: self.label,
                detail: e.to_string(),
            });
        }
        Ok((self.out, stats))
    }

    fn flush_block(&mut self) -> Result<(), StoreError> {
        if let Err(e) = self.out.write_all(&self.block) {
            return Err(StoreError::Io {
                path: self.label.clone(),
                detail: e.to_string(),
            });
        }
        self.pos += self.block.len() as u64;
        self.block.clear();
        Ok(())
    }
}

/// File-backed writer with atomic finalize.
///
/// Writes to `<path>.tmp` and renames to `path` only in
/// [`finalize`](Self::finalize); dropping the writer without
/// finalizing removes the temp file, so the destination path is either
/// absent or a complete store — never a torn one.
pub struct FileTraceWriter {
    inner: Option<TraceWriter<std::io::BufWriter<std::fs::File>>>,
    tmp: PathBuf,
    dst: PathBuf,
}

impl FileTraceWriter {
    /// Creates `<path>.tmp` and writes the store header to it.
    pub fn create(path: &Path, spec_hash: u64) -> Result<FileTraceWriter, StoreError> {
        let dst = path.to_path_buf();
        let mut tmp = dst.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let file = std::fs::File::create(&tmp).map_err(|e| StoreError::Io {
            path: tmp.display().to_string(),
            detail: e.to_string(),
        })?;
        let inner = TraceWriter::new(
            std::io::BufWriter::new(file),
            &dst.display().to_string(),
            spec_hash,
        )?;
        Ok(FileTraceWriter {
            inner: Some(inner),
            tmp,
            dst,
        })
    }

    /// Appends one trace. See [`TraceWriter::push`].
    pub fn push(&mut self, trace: &SimTrace) -> Result<(), StoreError> {
        match self.inner.as_mut() {
            Some(w) => w.push(trace),
            None => Err(StoreError::Io {
                path: self.dst.display().to_string(),
                detail: String::from("writer already finalized"),
            }),
        }
    }

    /// Number of traces pushed so far.
    pub fn trace_count(&self) -> usize {
        self.inner.as_ref().map_or(0, TraceWriter::trace_count)
    }

    /// Writes the footer, flushes, and atomically renames the temp
    /// file into place.
    pub fn finalize(mut self) -> Result<StoreStats, StoreError> {
        let inner = self.inner.take().ok_or_else(|| StoreError::Io {
            path: self.dst.display().to_string(),
            detail: String::from("writer already finalized"),
        })?;
        let (buf, stats) = inner.finish()?;
        drop(buf);
        std::fs::rename(&self.tmp, &self.dst).map_err(|e| StoreError::Io {
            path: self.dst.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(stats)
    }
}

/// Monotone per-process tag for [`FileTraceWriter::create_unique`]
/// temp names (combined with the pid so concurrent processes cannot
/// collide either; deliberately not time- or randomness-based).
static UNIQUE_TMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl FileTraceWriter {
    /// Like [`create`](Self::create), but with a writer-unique temp
    /// name (`<path>.<pid>.<n>.tmp`) so any number of concurrent
    /// writers can race toward the same destination without clobbering
    /// each other's in-progress bytes. Pair with
    /// [`finalize_if_absent`](Self::finalize_if_absent): the campaign
    /// service's content-addressed cache uses this pair, where the
    /// destination name is derived from the content key and every
    /// racer is writing identical bytes.
    pub fn create_unique(path: &Path, spec_hash: u64) -> Result<FileTraceWriter, StoreError> {
        let dst = path.to_path_buf();
        let tag = UNIQUE_TMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tmp = dst.clone().into_os_string();
        tmp.push(format!(".{}.{}.tmp", std::process::id(), tag));
        let tmp = PathBuf::from(tmp);
        let file = std::fs::File::create(&tmp).map_err(|e| StoreError::Io {
            path: tmp.display().to_string(),
            detail: e.to_string(),
        })?;
        let inner = TraceWriter::new(
            std::io::BufWriter::new(file),
            &dst.display().to_string(),
            spec_hash,
        )?;
        Ok(FileTraceWriter {
            inner: Some(inner),
            tmp,
            dst,
        })
    }

    /// Finalizes only if the destination does not exist yet: the
    /// first writer to finish links its complete temp file into
    /// place and returns `Some(stats)`; every later writer removes
    /// its temp file untouched and returns `None`. Unlike
    /// [`finalize`](Self::finalize) (whose rename silently replaces),
    /// this never overwrites an existing store, which is exactly the
    /// semantics a content-addressed cache needs — same key, same
    /// bytes, first writer wins, losers are free no-ops.
    pub fn finalize_if_absent(mut self) -> Result<Option<StoreStats>, StoreError> {
        let inner = self.inner.take().ok_or_else(|| StoreError::Io {
            path: self.dst.display().to_string(),
            detail: String::from("writer already finalized"),
        })?;
        let (buf, stats) = inner.finish()?;
        drop(buf);
        // `hard_link` (not `rename`) is the atomic publish: it fails
        // with `AlreadyExists` instead of replacing, so exactly one
        // racer's bytes become the store.
        let linked = std::fs::hard_link(&self.tmp, &self.dst);
        let _ = std::fs::remove_file(&self.tmp);
        match linked {
            Ok(()) => Ok(Some(stats)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => {
                if self.dst.exists() {
                    // Filesystems without precise error mapping: the
                    // destination is there, so some writer won.
                    Ok(None)
                } else {
                    Err(StoreError::Io {
                        path: self.dst.display().to_string(),
                        detail: e.to_string(),
                    })
                }
            }
        }
    }
}

impl Drop for FileTraceWriter {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            // Abandoned mid-write: drop the handle, then best-effort
            // remove the temp file so nothing torn lingers on disk.
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FOOTER_TAIL_LEN, HEADER_LEN};
    use aps_types::{Hazard, MgDl, Step, Units, UnitsPerHour};

    fn rec(step: u32, bg: f64) -> StepRecord {
        StepRecord {
            step: Step(step),
            bg: MgDl(bg),
            bg_true: MgDl(bg + 1.0),
            iob: Units(0.5),
            commanded: UnitsPerHour(1.0),
            delivered: UnitsPerHour(1.0),
            action: aps_types::ControlAction::KeepInsulin,
            fault_active: step.is_multiple_of(2),
            hazard: None,
            alert: Some(Hazard::H1),
        }
    }

    fn trace(n: u32) -> SimTrace {
        let meta = TraceMeta {
            patient: String::from("adult#001"),
            initial_bg: 120.0,
            fault_name: String::from("none"),
            fault_start: None,
            hazard_onset: Some(Step(3)),
            hazard_type: Some(Hazard::H2),
        };
        let mut t = SimTrace::new(meta);
        for i in 0..n {
            t.push(rec(i, 100.0 + f64::from(i)));
        }
        t
    }

    #[test]
    fn empty_store_is_header_plus_tail() {
        let (buf, stats) = TraceWriter::new(Vec::new(), "<mem>", 7)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(buf.len(), HEADER_LEN + FOOTER_TAIL_LEN);
        assert_eq!(stats.traces, 0);
        assert_eq!(stats.records, 0);
        assert_eq!(stats.bytes, buf.len() as u64);
        assert_eq!(&buf[..8], b"APSTRACE");
        assert_eq!(&buf[buf.len() - 8..], b"APSTREND");
    }

    #[test]
    fn monotone_steps_pack_to_one_byte_each() {
        let t = trace(100);
        let mut out = Vec::new();
        encode_steps(&t.records, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn stats_count_traces_and_records() {
        let mut w = TraceWriter::new(Vec::new(), "<mem>", 0).unwrap();
        w.push(&trace(5)).unwrap();
        w.push(&trace(0)).unwrap();
        w.push(&trace(3)).unwrap();
        assert_eq!(w.trace_count(), 3);
        let (_, stats) = w.finish().unwrap();
        assert_eq!(stats.traces, 3);
        assert_eq!(stats.records, 8);
    }

    #[test]
    fn file_writer_is_atomic() {
        let dir = std::env::temp_dir().join("aps_tracestore_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.apst");
        let _ = std::fs::remove_file(&path);

        // Abandoned writer leaves nothing at the destination.
        {
            let mut w = FileTraceWriter::create(&path, 0).unwrap();
            w.push(&trace(4)).unwrap();
        }
        assert!(!path.exists(), "abandoned writer must not leave a store");
        assert!(!path.with_extension("apst.tmp").exists());

        // Finalized writer leaves exactly one complete store.
        let mut w = FileTraceWriter::create(&path, 0).unwrap();
        w.push(&trace(4)).unwrap();
        let stats = w.finalize().unwrap();
        assert!(path.exists());
        assert_eq!(stats.traces, 1);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            stats.bytes,
            "stats.bytes matches the on-disk size"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_writers_first_finalize_wins() {
        let dir = std::env::temp_dir().join("aps_tracestore_unique_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache-entry.apst");
        let _ = std::fs::remove_file(&path);

        // Two writers race toward the same content-addressed name.
        let mut a = FileTraceWriter::create_unique(&path, 42).unwrap();
        let mut b = FileTraceWriter::create_unique(&path, 42).unwrap();
        a.push(&trace(4)).unwrap();
        b.push(&trace(4)).unwrap();

        let won = a.finalize_if_absent().unwrap();
        assert!(won.is_some(), "first finalize publishes the store");
        let lost = b.finalize_if_absent().unwrap();
        assert!(lost.is_none(), "second finalize is a skip, not an error");

        // The published store is complete and valid.
        let reader = crate::TraceStoreReader::open(&path).unwrap();
        assert_eq!(reader.len(), 1);
        assert_eq!(reader.header().spec_hash, 42);

        // No temp files linger in the directory.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be cleaned up");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finalize_if_absent_skips_existing_store() {
        let dir = std::env::temp_dir().join("aps_tracestore_unique_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("existing.apst");
        let _ = std::fs::remove_file(&path);

        let mut w = FileTraceWriter::create_unique(&path, 7).unwrap();
        w.push(&trace(2)).unwrap();
        assert!(w.finalize_if_absent().unwrap().is_some());
        let before = std::fs::metadata(&path).unwrap().len();

        // A later writer with different content for the same name
        // (cannot happen for a content-addressed key, but the API must
        // still never clobber) leaves the original bytes in place.
        let mut w = FileTraceWriter::create_unique(&path, 7).unwrap();
        w.push(&trace(9)).unwrap();
        w.push(&trace(9)).unwrap();
        assert!(w.finalize_if_absent().unwrap().is_none());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        let _ = std::fs::remove_file(&path);
    }
}
