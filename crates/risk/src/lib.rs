//! Kovatchev blood-glucose risk index and hazard labeling.
//!
//! The paper labels simulation samples as hazardous using the BG Risk
//! Index (Eq. 5):
//!
//! ```text
//! risk(BG) = 10 · (1.509 · (ln(BG)^1.084 − 5.381))²
//! ```
//!
//! The symmetrizing transform is zero at BG ≈ 112.5 mg/dL; its left
//! branch (BG below the zero point) accumulates into the Low BG Index
//! (LBGI) and the right branch into the High BG Index (HBGI) over a
//! window of readings. A window is hazardous when LBGI crosses 5 (H1,
//! hypoglycemia risk) or HBGI crosses 9 (H2) **and keeps increasing**.
//!
//! # Example
//!
//! ```
//! use aps_risk::{risk_bg, lbgi, hbgi};
//! assert!(risk_bg(112.5) < 0.01);          // zero point
//! assert!(lbgi(&[50.0; 12]) > 5.0);        // severe lows
//! assert!(hbgi(&[320.0; 12]) > 9.0);       // severe highs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aps_types::{Hazard, SimTrace};
use serde::{Deserialize, Serialize};

/// LBGI threshold above which hypoglycemia risk is "high" (Kovatchev).
pub const LBGI_HIGH_RISK: f64 = 5.0;
/// HBGI threshold above which hyperglycemia risk is "high".
pub const HBGI_HIGH_RISK: f64 = 9.0;
/// Default labeling window: one hour of 5-minute readings.
pub const DEFAULT_WINDOW: usize = 12;

/// The symmetrizing transform `f(BG) = 1.509·(ln(BG)^1.084 − 5.381)`,
/// negative below ≈112.5 mg/dL and positive above.
pub fn bg_transform(bg: f64) -> f64 {
    let bg = bg.max(1.0);
    1.509 * (bg.ln().powf(1.084) - 5.381)
}

/// The BG risk function of Eq. 5 (always non-negative, 0 at ≈112.5).
pub fn risk_bg(bg: f64) -> f64 {
    let f = bg_transform(bg);
    10.0 * f * f
}

/// Risk attributed to lows: `rl(BG) = risk(BG)` when the transform is
/// negative, else 0.
pub fn risk_low(bg: f64) -> f64 {
    if bg_transform(bg) < 0.0 {
        risk_bg(bg)
    } else {
        0.0
    }
}

/// Risk attributed to highs: `rh(BG) = risk(BG)` when the transform is
/// positive, else 0.
pub fn risk_high(bg: f64) -> f64 {
    if bg_transform(bg) > 0.0 {
        risk_bg(bg)
    } else {
        0.0
    }
}

/// Low Blood Glucose Index: mean low-side risk over a window.
pub fn lbgi(window: &[f64]) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    window.iter().map(|&bg| risk_low(bg)).sum::<f64>() / window.len() as f64
}

/// High Blood Glucose Index: mean high-side risk over a window.
pub fn hbgi(window: &[f64]) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    window.iter().map(|&bg| risk_high(bg)).sum::<f64>() / window.len() as f64
}

/// Mean total risk index of a whole BG series (the `R̄I` of the
/// average-risk metric, Eq. 9).
pub fn mean_risk_index(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|&bg| risk_bg(bg)).sum::<f64>() / series.len() as f64
}

/// Labeler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelConfig {
    /// Trailing window length in samples.
    pub window: usize,
    /// LBGI threshold for H1.
    pub lbgi_threshold: f64,
    /// HBGI threshold for H2.
    pub hbgi_threshold: f64,
}

impl Default for LabelConfig {
    fn default() -> LabelConfig {
        LabelConfig {
            window: DEFAULT_WINDOW,
            lbgi_threshold: LBGI_HIGH_RISK,
            hbgi_threshold: HBGI_HIGH_RISK,
        }
    }
}

/// Labels a BG series: when the trailing-window LBGI crosses its
/// threshold while still increasing, the **whole window** of readings
/// is marked `Some(H1)` (the paper "marked a window of BG readings as
/// hazardous"); likewise HBGI and `Some(H2)`. H1 wins overlaps
/// (hypoglycemia is the more acutely dangerous hazard).
pub fn label_series(series: &[f64], config: &LabelConfig) -> Vec<Option<Hazard>> {
    let n = series.len();
    let mut labels: Vec<Option<Hazard>> = vec![None; n];
    if n == 0 {
        return labels;
    }
    // Seed the "kept increasing" comparison from the first reading so
    // that a simulation *started* in a high-risk state is not labeled
    // hazardous until its risk actually grows (the initial condition is
    // the scenario's premise, not a controller-caused hazard).
    let mut prev_lbgi = lbgi(&series[0..1]);
    let mut prev_hbgi = hbgi(&series[0..1]);
    for t in 1..n {
        let lo = t.saturating_sub(config.window.saturating_sub(1));
        let w = &series[lo..=t];
        let l = lbgi(w);
        let h = hbgi(w);
        let rising_l = l > prev_lbgi + 1e-12;
        let rising_h = h > prev_hbgi + 1e-12;
        if l > config.lbgi_threshold && rising_l {
            for label in labels[lo..=t].iter_mut() {
                *label = Some(Hazard::H1);
            }
        } else if h > config.hbgi_threshold && rising_h {
            for label in labels[lo..=t].iter_mut() {
                // Don't overwrite an H1 mark from an overlapping window.
                if *label != Some(Hazard::H1) {
                    *label = Some(Hazard::H2);
                }
            }
        }
        prev_lbgi = l;
        prev_hbgi = h;
    }
    labels
}

/// Labels a [`SimTrace`] in place from its ground-truth BG series and
/// refreshes the trace metadata.
pub fn label_trace(trace: &mut SimTrace, config: &LabelConfig) {
    let series = trace.bg_true_series();
    let labels = label_series(&series, config);
    for (rec, label) in trace.records.iter_mut().zip(labels) {
        rec.hazard = label;
    }
    trace.refresh_meta();
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{MgDl, Step, StepRecord, TraceMeta};

    #[test]
    fn zero_point_near_112_5() {
        assert!(risk_bg(112.5) < 0.01);
        assert!(bg_transform(112.0) < 0.0);
        assert!(bg_transform(113.0) > 0.0);
    }

    #[test]
    fn risk_is_asymmetric_like_kovatchev() {
        // 50 mg/dL and 400 mg/dL should both be severe; lows steeper.
        assert!(risk_low(50.0) > 20.0);
        assert!(risk_high(400.0) > 20.0);
        // Equidistant in mg/dL from the zero point, the low side risks more.
        assert!(risk_bg(62.5) > risk_bg(162.5));
    }

    #[test]
    fn branches_are_exclusive() {
        for bg in [40.0, 80.0, 112.5, 150.0, 300.0] {
            let low = risk_low(bg);
            let high = risk_high(bg);
            assert!(low == 0.0 || high == 0.0, "bg={bg}");
            assert!((low + high - risk_bg(bg)).abs() < 1e-9);
        }
    }

    #[test]
    fn indices_on_flat_series() {
        assert!(lbgi(&[110.0; 12]) < 0.1);
        assert!(hbgi(&[110.0; 12]) < 0.1);
        assert_eq!(lbgi(&[]), 0.0);
        assert_eq!(hbgi(&[]), 0.0);
        assert_eq!(mean_risk_index(&[]), 0.0);
    }

    fn falling_series() -> Vec<f64> {
        // 120 down to 40 over 40 steps, then flat at 40.
        let mut s: Vec<f64> = (0..40).map(|i| 120.0 - 2.0 * i as f64).collect();
        s.extend(std::iter::repeat_n(40.0, 20));
        s
    }

    #[test]
    fn labeler_flags_hypoglycemia_descent_as_h1() {
        let labels = label_series(&falling_series(), &LabelConfig::default());
        let first = labels.iter().position(|l| l.is_some());
        assert!(first.is_some(), "no hazard found");
        assert_eq!(labels[first.unwrap()], Some(Hazard::H1));
    }

    #[test]
    fn labeler_flags_hyperglycemia_ascent_as_h2() {
        let series: Vec<f64> = (0..60).map(|i| 140.0 + 4.0 * i as f64).collect();
        let labels = label_series(&series, &LabelConfig::default());
        let kinds: Vec<Hazard> = labels.iter().flatten().copied().collect();
        assert!(!kinds.is_empty());
        assert!(kinds.iter().all(|&h| h == Hazard::H2));
    }

    #[test]
    fn stable_high_risk_is_not_flagged_when_plateaued() {
        // Once the series plateaus at 40, the index stops rising and the
        // "kept increasing" condition clears the label.
        let labels = label_series(&falling_series(), &LabelConfig::default());
        assert_eq!(labels[59], None, "plateau should not keep the label");
    }

    #[test]
    fn normal_series_is_unlabeled() {
        let series: Vec<f64> = (0..150)
            .map(|i| 110.0 + 15.0 * ((i as f64) * 0.1).sin())
            .collect();
        let labels = label_series(&series, &LabelConfig::default());
        assert!(labels.iter().all(|l| l.is_none()));
    }

    #[test]
    fn label_trace_updates_meta() {
        let mut trace = SimTrace::new(TraceMeta::default());
        for (i, bg) in falling_series().into_iter().enumerate() {
            let mut r = StepRecord::blank(Step(i as u32));
            r.bg_true = MgDl(bg);
            r.bg = MgDl(bg);
            trace.push(r);
        }
        label_trace(&mut trace, &LabelConfig::default());
        assert!(trace.is_hazardous());
        assert_eq!(trace.meta.hazard_type, Some(Hazard::H1));
        assert!(trace.meta.hazard_onset.is_some());
    }

    #[test]
    fn mean_risk_index_orders_scenarios() {
        let safe = vec![110.0; 50];
        let risky: Vec<f64> = (0..50).map(|i| 110.0 - i as f64).collect();
        assert!(mean_risk_index(&risky) > mean_risk_index(&safe));
    }
}
