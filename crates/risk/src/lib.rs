//! Kovatchev blood-glucose risk index and hazard labeling.
//!
//! The paper labels simulation samples as hazardous using the BG Risk
//! Index (Eq. 5):
//!
//! ```text
//! risk(BG) = 10 · (1.509 · (ln(BG)^1.084 − 5.381))²
//! ```
//!
//! The symmetrizing transform is zero at BG ≈ 112.5 mg/dL; its left
//! branch (BG below the zero point) accumulates into the Low BG Index
//! (LBGI) and the right branch into the High BG Index (HBGI) over a
//! window of readings. A window is hazardous when LBGI crosses 5 (H1,
//! hypoglycemia risk) or HBGI crosses 9 (H2) **and keeps increasing**.
//!
//! Labeling is built on a streaming [`RiskTracker`] that maintains the
//! trailing-window indices in O(1) per sample, so the same engine
//! serves batch post-hoc labeling ([`label_series`], O(n)) and
//! run-time hazard awareness inside the closed loop (see
//! `aps_core::monitors::RiskIndexMonitor`).
//!
//! # Example
//!
//! ```
//! use aps_risk::{risk_bg, lbgi, hbgi};
//! assert!(risk_bg(112.5) < 0.01);          // zero point
//! assert!(lbgi(&[50.0; 12]) > 5.0);        // severe lows
//! assert!(hbgi(&[320.0; 12]) > 9.0);       // severe highs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aps_types::{Hazard, SimTrace};
use serde::{Deserialize, Serialize};

/// LBGI threshold above which hypoglycemia risk is "high" (Kovatchev).
pub const LBGI_HIGH_RISK: f64 = 5.0;
/// HBGI threshold above which hyperglycemia risk is "high".
pub const HBGI_HIGH_RISK: f64 = 9.0;
/// Default labeling window: one hour of 5-minute readings.
pub const DEFAULT_WINDOW: usize = 12;

/// The symmetrizing transform `f(BG) = 1.509·(ln(BG)^1.084 − 5.381)`,
/// negative below ≈112.5 mg/dL and positive above.
pub fn bg_transform(bg: f64) -> f64 {
    let bg = bg.max(1.0);
    1.509 * (bg.ln().powf(1.084) - 5.381)
}

/// The BG risk function of Eq. 5 (always non-negative, 0 at ≈112.5).
pub fn risk_bg(bg: f64) -> f64 {
    let f = bg_transform(bg);
    10.0 * f * f
}

/// Risk attributed to lows: `rl(BG) = risk(BG)` when the transform is
/// negative, else 0.
pub fn risk_low(bg: f64) -> f64 {
    if bg_transform(bg) < 0.0 {
        risk_bg(bg)
    } else {
        0.0
    }
}

/// Risk attributed to highs: `rh(BG) = risk(BG)` when the transform is
/// positive, else 0.
pub fn risk_high(bg: f64) -> f64 {
    if bg_transform(bg) > 0.0 {
        risk_bg(bg)
    } else {
        0.0
    }
}

/// Low Blood Glucose Index: mean low-side risk over a window.
pub fn lbgi(window: &[f64]) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    window.iter().map(|&bg| risk_low(bg)).sum::<f64>() / window.len() as f64
}

/// High Blood Glucose Index: mean high-side risk over a window.
pub fn hbgi(window: &[f64]) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    window.iter().map(|&bg| risk_high(bg)).sum::<f64>() / window.len() as f64
}

/// Mean total risk index of a whole BG series (the `R̄I` of the
/// average-risk metric, Eq. 9).
pub fn mean_risk_index(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|&bg| risk_bg(bg)).sum::<f64>() / series.len() as f64
}

/// Labeler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelConfig {
    /// Trailing window length in samples.
    pub window: usize,
    /// LBGI threshold for H1.
    pub lbgi_threshold: f64,
    /// HBGI threshold for H2.
    pub hbgi_threshold: f64,
}

impl Default for LabelConfig {
    fn default() -> LabelConfig {
        LabelConfig {
            window: DEFAULT_WINDOW,
            lbgi_threshold: LBGI_HIGH_RISK,
            hbgi_threshold: HBGI_HIGH_RISK,
        }
    }
}

/// Minimum increase of a risk index between consecutive windows for
/// the "kept increasing" condition to hold (absorbs floating-point
/// noise in the windowed means).
const RISING_EPS: f64 = 1e-12;

/// One streaming update produced by [`RiskTracker::push`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskSample {
    /// Index of the sample that produced this update (0-based).
    pub index: usize,
    /// First sample index inside the current trailing window.
    pub window_start: usize,
    /// Trailing-window Low BG Index.
    pub lbgi: f64,
    /// Trailing-window High BG Index.
    pub hbgi: f64,
    /// `true` while the LBGI keeps increasing window-over-window.
    pub rising_low: bool,
    /// `true` while the HBGI keeps increasing window-over-window.
    pub rising_high: bool,
    /// The hazard the current window is in **right now** (`H1` when
    /// the LBGI crossed its threshold while rising, else `H2` for the
    /// HBGI), or `None` when the window is safe.
    pub hazard: Option<Hazard>,
}

impl RiskSample {
    /// `true` when the trailing window is hazardous.
    pub fn is_hazardous(&self) -> bool {
        self.hazard.is_some()
    }
}

/// Incremental BG risk engine: maintains the trailing-window LBGI /
/// HBGI and the "kept increasing" state in **O(1) per sample**, so
/// hazard awareness is available *during* a run (run-time monitors,
/// the HMS layer) and not only from post-hoc labeling.
///
/// Feeding a whole series through [`push`](RiskTracker::push) produces
/// exactly the per-window decisions of the batch
/// [`label_series`] — which is itself implemented on top of this
/// tracker, turning labeling from O(n·window) into O(n).
///
/// # Numerical faithfulness
///
/// The rolling sums are maintained incrementally, with two guards:
///
/// * an incoming sample whose risk equals the outgoing one leaves the
///   sums untouched (a plateau never jitters the "rising" test);
/// * every time the ring buffer wraps, the sums are recomputed from
///   the ring in window order (amortized O(1)), so rounding drift
///   cannot accumulate beyond one window length.
///
/// Growing windows, plateaus, and every wrap point are therefore
/// bit-exact against a fresh left-to-right window sum; between wraps
/// the sums may differ from a fresh sum by a few ulps, which both
/// decision comparisons absorb — the "rising" test carries an explicit
/// `1e-12` epsilon, and a threshold crossing flips only if a window
/// mean lands within that ulp-scale band of the 5.0/9.0 constants.
/// Label agreement with the reference is pinned by proptests and the
/// quick-campaign corpus test in `tests/risk_equivalence.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskTracker {
    config: LabelConfig,
    /// `(risk_low, risk_high)` of the last `window` samples; circular.
    ring: Vec<(f64, f64)>,
    /// Next write position in `ring`.
    head: usize,
    /// Samples pushed so far.
    count: usize,
    sum_low: f64,
    sum_high: f64,
    prev_lbgi: f64,
    prev_hbgi: f64,
}

impl RiskTracker {
    /// Creates a tracker (windows of length 0 behave as length 1, like
    /// the batch labeler).
    pub fn new(config: LabelConfig) -> RiskTracker {
        let window = config.window.max(1);
        RiskTracker {
            config,
            ring: Vec::with_capacity(window),
            head: 0,
            count: 0,
            sum_low: 0.0,
            sum_high: 0.0,
            prev_lbgi: 0.0,
            prev_hbgi: 0.0,
        }
    }

    /// The labeling configuration in use.
    pub fn config(&self) -> &LabelConfig {
        &self.config
    }

    /// Number of samples pushed since the last reset.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Clears all state for a fresh series.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.count = 0;
        self.sum_low = 0.0;
        self.sum_high = 0.0;
        self.prev_lbgi = 0.0;
        self.prev_hbgi = 0.0;
    }

    /// Consumes one BG reading and returns the updated window state.
    /// O(1) (amortized — the rolling sums are re-anchored once per
    /// ring wrap).
    pub fn push(&mut self, bg: f64) -> RiskSample {
        let window = self.config.window.max(1);
        let rl = risk_low(bg);
        let rh = risk_high(bg);
        if self.ring.len() < window {
            // Growing window: sums accumulate left-to-right, exactly
            // like a fresh sum over `series[0..=t]`.
            self.ring.push((rl, rh));
            self.head = self.ring.len() % window;
            self.sum_low += rl;
            self.sum_high += rh;
        } else {
            let (ol, oh) = self.ring[self.head];
            // A bit-equal replacement must leave the sums untouched:
            // `(s - r) + r` can round away from `s`, and a plateau must
            // never look like a rising index.
            if ol.to_bits() != rl.to_bits() {
                self.sum_low = self.sum_low - ol + rl;
            }
            if oh.to_bits() != rh.to_bits() {
                self.sum_high = self.sum_high - oh + rh;
            }
            self.ring[self.head] = (rl, rh);
            self.head = (self.head + 1) % window;
            if self.head == 0 {
                // Ring wrapped: `ring[0..]` is the window in series
                // order — re-anchor the sums to the exact
                // left-to-right value to cancel rounding drift.
                self.sum_low = self.ring.iter().map(|p| p.0).sum();
                self.sum_high = self.ring.iter().map(|p| p.1).sum();
            }
        }

        let index = self.count;
        self.count += 1;
        let len = self.ring.len() as f64;
        let l = self.sum_low / len;
        let h = self.sum_high / len;

        // The first sample seeds the "kept increasing" comparison: a
        // simulation *started* in a high-risk state is not hazardous
        // until its risk actually grows (the initial condition is the
        // scenario's premise, not a controller-caused hazard).
        let (rising_low, rising_high, hazard) = if index == 0 {
            (false, false, None)
        } else {
            let rising_l = l > self.prev_lbgi + RISING_EPS;
            let rising_h = h > self.prev_hbgi + RISING_EPS;
            let hazard = if l > self.config.lbgi_threshold && rising_l {
                Some(Hazard::H1)
            } else if h > self.config.hbgi_threshold && rising_h {
                Some(Hazard::H2)
            } else {
                None
            };
            (rising_l, rising_h, hazard)
        };
        self.prev_lbgi = l;
        self.prev_hbgi = h;

        RiskSample {
            index,
            window_start: index.saturating_sub(window - 1),
            lbgi: l,
            hbgi: h,
            rising_low,
            rising_high,
            hazard,
        }
    }
}

/// Labels a BG series: when the trailing-window LBGI crosses its
/// threshold while still increasing, the **whole window** of readings
/// is marked `Some(H1)` (the paper "marked a window of BG readings as
/// hazardous"); likewise HBGI and `Some(H2)`. H1 wins overlaps
/// (hypoglycemia is the more acutely dangerous hazard).
///
/// O(n) — one [`RiskTracker`] pass. [`label_series_reference`] is the
/// original O(n·window) formulation, kept for equivalence testing.
pub fn label_series(series: &[f64], config: &LabelConfig) -> Vec<Option<Hazard>> {
    let mut labels: Vec<Option<Hazard>> = vec![None; series.len()];
    let mut tracker = RiskTracker::new(config.clone());
    for (t, &bg) in series.iter().enumerate() {
        let sample = tracker.push(bg);
        match sample.hazard {
            Some(Hazard::H1) => {
                for label in labels[sample.window_start..=t].iter_mut() {
                    *label = Some(Hazard::H1);
                }
            }
            Some(Hazard::H2) => {
                for label in labels[sample.window_start..=t].iter_mut() {
                    // Don't overwrite an H1 mark from an overlapping window.
                    if *label != Some(Hazard::H1) {
                        *label = Some(Hazard::H2);
                    }
                }
            }
            None => {}
        }
    }
    labels
}

/// The original windowed labeler: recomputes the full LBGI/HBGI window
/// sums at every step (O(n·window)). Semantically identical to
/// [`label_series`]; retained as the reference implementation that the
/// equivalence tests pin the streaming engine against.
pub fn label_series_reference(series: &[f64], config: &LabelConfig) -> Vec<Option<Hazard>> {
    let n = series.len();
    let mut labels: Vec<Option<Hazard>> = vec![None; n];
    if n == 0 {
        return labels;
    }
    let mut prev_lbgi = lbgi(&series[0..1]);
    let mut prev_hbgi = hbgi(&series[0..1]);
    for t in 1..n {
        let lo = t.saturating_sub(config.window.saturating_sub(1));
        let w = &series[lo..=t];
        let l = lbgi(w);
        let h = hbgi(w);
        let rising_l = l > prev_lbgi + RISING_EPS;
        let rising_h = h > prev_hbgi + RISING_EPS;
        if l > config.lbgi_threshold && rising_l {
            for label in labels[lo..=t].iter_mut() {
                *label = Some(Hazard::H1);
            }
        } else if h > config.hbgi_threshold && rising_h {
            for label in labels[lo..=t].iter_mut() {
                if *label != Some(Hazard::H1) {
                    *label = Some(Hazard::H2);
                }
            }
        }
        prev_lbgi = l;
        prev_hbgi = h;
    }
    labels
}

/// Labels a [`SimTrace`] in place from its ground-truth BG series and
/// refreshes the trace metadata.
pub fn label_trace(trace: &mut SimTrace, config: &LabelConfig) {
    let series = trace.bg_true_series();
    let labels = label_series(&series, config);
    for (rec, label) in trace.records.iter_mut().zip(labels) {
        rec.hazard = label;
    }
    trace.refresh_meta();
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::{MgDl, Step, StepRecord, TraceMeta};

    #[test]
    fn zero_point_near_112_5() {
        assert!(risk_bg(112.5) < 0.01);
        assert!(bg_transform(112.0) < 0.0);
        assert!(bg_transform(113.0) > 0.0);
    }

    #[test]
    fn risk_is_asymmetric_like_kovatchev() {
        // 50 mg/dL and 400 mg/dL should both be severe; lows steeper.
        assert!(risk_low(50.0) > 20.0);
        assert!(risk_high(400.0) > 20.0);
        // Equidistant in mg/dL from the zero point, the low side risks more.
        assert!(risk_bg(62.5) > risk_bg(162.5));
    }

    #[test]
    fn branches_are_exclusive() {
        for bg in [40.0, 80.0, 112.5, 150.0, 300.0] {
            let low = risk_low(bg);
            let high = risk_high(bg);
            assert!(low == 0.0 || high == 0.0, "bg={bg}");
            assert!((low + high - risk_bg(bg)).abs() < 1e-9);
        }
    }

    #[test]
    fn indices_on_flat_series() {
        assert!(lbgi(&[110.0; 12]) < 0.1);
        assert!(hbgi(&[110.0; 12]) < 0.1);
        assert_eq!(lbgi(&[]), 0.0);
        assert_eq!(hbgi(&[]), 0.0);
        assert_eq!(mean_risk_index(&[]), 0.0);
    }

    fn falling_series() -> Vec<f64> {
        // 120 down to 40 over 40 steps, then flat at 40.
        let mut s: Vec<f64> = (0..40).map(|i| 120.0 - 2.0 * i as f64).collect();
        s.extend(std::iter::repeat_n(40.0, 20));
        s
    }

    #[test]
    fn labeler_flags_hypoglycemia_descent_as_h1() {
        let labels = label_series(&falling_series(), &LabelConfig::default());
        let first = labels.iter().position(|l| l.is_some());
        assert!(first.is_some(), "no hazard found");
        assert_eq!(labels[first.unwrap()], Some(Hazard::H1));
    }

    #[test]
    fn labeler_flags_hyperglycemia_ascent_as_h2() {
        let series: Vec<f64> = (0..60).map(|i| 140.0 + 4.0 * i as f64).collect();
        let labels = label_series(&series, &LabelConfig::default());
        let kinds: Vec<Hazard> = labels.iter().flatten().copied().collect();
        assert!(!kinds.is_empty());
        assert!(kinds.iter().all(|&h| h == Hazard::H2));
    }

    #[test]
    fn stable_high_risk_is_not_flagged_when_plateaued() {
        // Once the series plateaus at 40, the index stops rising and the
        // "kept increasing" condition clears the label.
        let labels = label_series(&falling_series(), &LabelConfig::default());
        assert_eq!(labels[59], None, "plateau should not keep the label");
    }

    #[test]
    fn normal_series_is_unlabeled() {
        let series: Vec<f64> = (0..150)
            .map(|i| 110.0 + 15.0 * ((i as f64) * 0.1).sin())
            .collect();
        let labels = label_series(&series, &LabelConfig::default());
        assert!(labels.iter().all(|l| l.is_none()));
    }

    #[test]
    fn label_trace_updates_meta() {
        let mut trace = SimTrace::new(TraceMeta::default());
        for (i, bg) in falling_series().into_iter().enumerate() {
            let mut r = StepRecord::blank(Step(i as u32));
            r.bg_true = MgDl(bg);
            r.bg = MgDl(bg);
            trace.push(r);
        }
        label_trace(&mut trace, &LabelConfig::default());
        assert!(trace.is_hazardous());
        assert_eq!(trace.meta.hazard_type, Some(Hazard::H1));
        assert!(trace.meta.hazard_onset.is_some());
    }

    #[test]
    fn mean_risk_index_orders_scenarios() {
        let safe = vec![110.0; 50];
        let risky: Vec<f64> = (0..50).map(|i| 110.0 - i as f64).collect();
        assert!(mean_risk_index(&risky) > mean_risk_index(&safe));
    }

    #[test]
    fn streaming_labels_match_reference_on_test_series() {
        let mut plateau_high = vec![300.0; 30];
        plateau_high.extend((0..30).map(|i| 300.0 + 2.0 * i as f64));
        let series_set: Vec<Vec<f64>> = vec![
            falling_series(),
            (0..60).map(|i| 140.0 + 4.0 * i as f64).collect(),
            (0..150)
                .map(|i| 110.0 + 15.0 * ((i as f64) * 0.1).sin())
                .collect(),
            plateau_high,
            vec![40.0; 40],
            vec![120.0],
            vec![],
        ];
        for window in [1, 2, 6, 12, 24] {
            let config = LabelConfig {
                window,
                ..LabelConfig::default()
            };
            for series in &series_set {
                assert_eq!(
                    label_series(series, &config),
                    label_series_reference(series, &config),
                    "window {window}, series len {}",
                    series.len()
                );
            }
        }
    }

    #[test]
    fn tracker_flags_hypoglycemia_descent_online() {
        let mut tracker = RiskTracker::new(LabelConfig::default());
        let mut first_alert = None;
        for (i, bg) in falling_series().into_iter().enumerate() {
            let sample = tracker.push(bg);
            assert_eq!(sample.index, i);
            if first_alert.is_none() && sample.is_hazardous() {
                first_alert = Some((i, sample.hazard));
            }
        }
        let (onset, hazard) = first_alert.expect("descent to 40 never flagged");
        assert_eq!(hazard, Some(Hazard::H1));
        // Online detection fires while the descent is still in
        // progress (the series reaches 40 at step 40).
        assert!(onset < 40, "alert too late: step {onset}");
    }

    #[test]
    fn tracker_plateau_clears_the_hazard() {
        let mut tracker = RiskTracker::new(LabelConfig::default());
        let mut last = None;
        for bg in falling_series() {
            last = Some(tracker.push(bg));
        }
        let last = last.unwrap();
        // Flat at 40 for 20 steps: the window risk stopped rising.
        assert_eq!(last.hazard, None);
        assert!(last.lbgi > LBGI_HIGH_RISK, "lows still dominate the window");
        assert!(!last.rising_low);
    }

    #[test]
    fn tracker_first_sample_never_alerts() {
        let mut tracker = RiskTracker::new(LabelConfig::default());
        let sample = tracker.push(20.0);
        assert_eq!(sample.hazard, None);
        assert!(!sample.rising_low && !sample.rising_high);
        assert!(sample.lbgi > LBGI_HIGH_RISK);
    }

    #[test]
    fn tracker_reset_restarts_the_series() {
        let config = LabelConfig::default();
        let mut tracker = RiskTracker::new(config.clone());
        let series = falling_series();
        let first: Vec<RiskSample> = series.iter().map(|&bg| tracker.push(bg)).collect();
        tracker.reset();
        assert!(tracker.is_empty());
        let second: Vec<RiskSample> = series.iter().map(|&bg| tracker.push(bg)).collect();
        assert_eq!(first, second);
        assert_eq!(tracker.len(), series.len());
    }

    #[test]
    fn tracker_window_indices_match_batch_windows() {
        let config = LabelConfig {
            window: 6,
            ..LabelConfig::default()
        };
        let mut tracker = RiskTracker::new(config);
        for t in 0..20usize {
            let sample = tracker.push(120.0 + t as f64);
            assert_eq!(sample.window_start, t.saturating_sub(5));
        }
    }

    #[test]
    fn zero_window_behaves_as_one() {
        let config = LabelConfig {
            window: 0,
            ..LabelConfig::default()
        };
        let series = falling_series();
        assert_eq!(
            label_series(&series, &config),
            label_series_reference(&series, &config)
        );
    }
}
