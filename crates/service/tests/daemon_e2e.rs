//! End-to-end daemon tests over a real Unix socket: kill/resume
//! bit-identity, the content-addressed cache hit path, cancellation,
//! and shutdown draining subscribers.

use std::path::{Path, PathBuf};
use std::time::Duration;

use aps_service::daemon::{run_daemon, ServiceConfig};
use aps_service::{CacheStats, Client, ServiceError};
use aps_sim::campaign::{run_campaign_ft, CampaignOptions, CampaignSpec};
use aps_sim::platform::Platform;
use aps_tracestore::{read_store, TraceStoreReader};

/// Short-lived unique scratch dir (sockets have a ~107-byte path
/// limit, so everything stays under /tmp with terse names).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apssvc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::quick(Platform::GlucosymOref0);
    spec.initial_bgs = vec![120.0, 160.0];
    spec.steps = 20;
    spec
}

/// Connects with retries while the daemon binds its socket.
fn connect(socket: &Path) -> Client {
    for _ in 0..500 {
        if let Ok(client) = Client::connect(socket) {
            return client;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {}", socket.display());
}

/// Polls status until the job is terminal (for restarts where a
/// subscription from the old daemon is gone).
fn wait_done(socket: &Path, job: &str) -> aps_service::JobManifest {
    for _ in 0..3000 {
        let mut client = connect(socket);
        if let Ok(jobs) = client.status(job) {
            if let Some(m) = jobs.first() {
                if m.is_terminal() {
                    return m.clone();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("job {job} never finished");
}

#[test]
fn kill_resume_is_bit_identical_and_resubmit_hits_cache() {
    let dir = scratch("resume");
    let socket = dir.join("s1.sock");
    let data = dir.join("data");
    let spec = small_spec();

    // Uninterrupted reference: the serial fault-tolerant run.
    let reference = run_campaign_ft(&spec, None, &CampaignOptions::default()).expect("reference");
    let total = reference.report.total_jobs;
    assert!(total > 60, "spec should be non-trivial, got {total}");

    // Daemon #1: configured to behave as if SIGKILLed after 40
    // executed jobs, mid-shard.
    let mut config = ServiceConfig::new(&socket, &data);
    config.checkpoint_every = 3;
    config.interrupt_after = Some(40);
    let daemon = std::thread::spawn(move || run_daemon(config));

    let mut client = connect(&socket);
    let submitted = client.submit(spec.clone(), 4, 0, "0").expect("submit");
    assert!(!submitted.cached, "first submission cannot be cached");
    assert_eq!(submitted.total_jobs, total);
    let job = submitted.job.clone();

    daemon.join().expect("daemon thread").expect("daemon run");

    // The kill left the job incomplete on disk.
    let manifest = aps_service::JobManifest::load(&data.join("jobs").join(&job))
        .expect("manifest survives the kill");
    assert!(
        !manifest.is_terminal(),
        "job must not be terminal after kill"
    );
    assert!(manifest.executed_jobs < total);

    // Daemon #2: same data dir, no interrupt — the rescan re-queues
    // and resumes every incomplete shard.
    let socket2 = dir.join("s2.sock");
    let config2 = ServiceConfig::new(&socket2, &data);
    let daemon2 = std::thread::spawn(move || run_daemon(config2));

    let manifest = wait_done(&socket2, &job);
    assert_eq!(manifest.state, "done");
    assert_eq!(
        manifest.digest, reference.report.digest,
        "resumed digest must be bit-identical to the uninterrupted run"
    );
    assert_eq!(manifest.completed_jobs, total);
    assert_eq!(manifest.failed_jobs, 0);

    // Trace-level bit-identity through fetch.
    let mut client = connect(&socket2);
    let (path, info) = client.fetch(&job).expect("fetch");
    assert_eq!(info.traces as usize, total);
    let reader = TraceStoreReader::open(Path::new(&path)).expect("open store");
    let merged = read_store(&reader);
    let serial: Vec<_> = reference
        .outcomes
        .iter()
        .filter_map(|o| o.trace().cloned())
        .collect();
    assert_eq!(merged, serial, "merged traces != uninterrupted serial run");

    // Resubmitting the identical spec is served entirely from cache:
    // zero newly executed jobs.
    let executed_before = manifest.executed_jobs;
    let resubmit = client.submit(spec.clone(), 4, 0, "0").expect("resubmit");
    assert!(resubmit.cached, "identical resubmission must hit");
    assert_eq!(resubmit.job, job);
    let manifest = wait_done(&socket2, &job);
    assert_eq!(
        manifest.executed_jobs, executed_before,
        "cache hit must not execute jobs"
    );

    // A different seed lane misses (new job id, queued not cached).
    let other = client
        .submit(spec.clone(), 4, 0, "7")
        .expect("seeded submit");
    assert_ne!(other.job, job, "seed must change the content address");
    assert!(!other.cached);
    let _ = client.cancel(&other.job);

    let mut client = connect(&socket2);
    client.shutdown().expect("shutdown");
    daemon2
        .join()
        .expect("daemon2 thread")
        .expect("daemon2 run");

    // Cross-daemon hit: wipe the job registry but keep the cache; a
    // fresh daemon must serve the submission from the cache file.
    std::fs::remove_dir_all(data.join("jobs")).expect("wipe jobs");
    let socket3 = dir.join("s3.sock");
    let config3 = ServiceConfig::new(&socket3, &data);
    let daemon3 = std::thread::spawn(move || run_daemon(config3));
    let mut client = connect(&socket3);
    let cold = client.submit(spec, 4, 0, "0").expect("cold submit");
    assert!(cold.cached, "cache file alone must serve the hit");
    assert_eq!(cold.job, job);
    let manifest = wait_done(&socket3, &job);
    assert_eq!(manifest.digest, reference.report.digest);
    assert_eq!(manifest.executed_jobs, 0, "no executor work on a cache hit");

    let stats: CacheStats = serde_json::from_str(
        &std::fs::read_to_string(data.join("cache").join("stats.json")).expect("stats"),
    )
    .expect("parse stats");
    assert!(stats.hits >= 2, "expected at least two hits, got {stats:?}");
    assert!(stats.writes >= 1);

    client.shutdown().expect("shutdown 3");
    daemon3
        .join()
        .expect("daemon3 thread")
        .expect("daemon3 run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_is_terminal_and_shutdown_drains_subscribers() {
    let dir = scratch("cancel");
    let socket = dir.join("s.sock");
    let data = dir.join("data");

    let mut config = ServiceConfig::new(&socket, &data);
    // Slow the executor down so cancellation lands mid-run.
    config.throttle_ms = 5;
    let daemon = std::thread::spawn(move || run_daemon(config));

    let mut client = connect(&socket);
    let submitted = client.submit(small_spec(), 2, 0, "0").expect("submit");
    let job = submitted.job.clone();

    // Cancel while running (or still queued — both are legal).
    let waiter = {
        let socket = socket.clone();
        let job = job.clone();
        std::thread::spawn(move || connect(&socket).wait(&job))
    };
    std::thread::sleep(Duration::from_millis(50));
    client.cancel(&job).expect("cancel");
    let (state, _) = waiter
        .join()
        .expect("waiter thread")
        .expect("subscription delivers the terminal event");
    assert_eq!(state, "cancelled");
    let manifest = wait_done(&socket, &job);
    assert_eq!(manifest.state, "cancelled");

    // A subscriber to a job that never finishes must be drained with
    // Closing on shutdown, not left hanging.
    let mut spec = small_spec();
    spec.steps = 25; // different spec → different job
    let submitted = client.submit(spec, 2, 0, "0").expect("submit 2");
    let waiter = {
        let socket = socket.clone();
        let job = submitted.job.clone();
        std::thread::spawn(move || connect(&socket).wait(&job))
    };
    std::thread::sleep(Duration::from_millis(30));
    connect(&socket).shutdown().expect("shutdown");
    match waiter.join().expect("waiter thread") {
        // Daemon closed before the job finished: drained via Closing.
        Err(ServiceError::Remote { code, .. }) => assert_eq!(code, "closing"),
        // Or the tiny campaign actually finished first — also fine.
        Ok((state, _)) => assert_eq!(state, "done"),
        Err(other) => panic!("subscriber saw unexpected error: {other}"),
    }
    daemon.join().expect("daemon thread").expect("daemon run");
    let _ = std::fs::remove_dir_all(&dir);
}
