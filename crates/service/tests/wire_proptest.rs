//! Property tests for the wire protocol: arbitrary, truncated,
//! oversized, and future-version frames must produce typed
//! [`WireError`]s — never a panic, and never a hang (every decode
//! consumes a finite buffer).

use aps_service::wire::{
    decode_event, decode_request, decode_response, encode_request, read_frame, write_frame,
    Request, WireError, MAX_FRAME, PROTOCOL_VERSION,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_payloads_decode_to_typed_errors(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // None of the decoders may panic on attacker-controlled bytes.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = decode_event(&bytes);
    }

    #[test]
    fn arbitrary_streams_read_to_typed_errors(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut cursor = &bytes[..];
        match read_frame(&mut cursor) {
            Ok(payload) => prop_assert!(payload.len() <= bytes.len()),
            Err(
                WireError::Closed
                | WireError::Truncated
                | WireError::Oversized { .. }
                | WireError::Io { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    #[test]
    fn truncating_a_valid_frame_is_closed_or_truncated(cut in 0usize..40) {
        let payload = encode_request(&Request::Status {
            job: String::from("abc"),
        })
        .expect("encode");
        let mut frame = Vec::new();
        write_frame(&mut frame, &payload).expect("frame");
        let cut = cut.min(frame.len());
        let mut cursor = &frame[..cut];
        let got = read_frame(&mut cursor);
        if cut == 0 {
            prop_assert_eq!(got, Err(WireError::Closed));
        } else if cut < frame.len() {
            prop_assert_eq!(got, Err(WireError::Truncated));
        } else {
            prop_assert!(got.is_ok());
        }
    }

    #[test]
    fn future_versions_are_typed_version_errors(version in 2u64..4_000_000_000) {
        let payload = format!(
            "{{\"version\": {version}, \"request\": {{\"SomeFutureThing\": 1}}}}"
        );
        let got = decode_request(payload.as_bytes());
        prop_assert_eq!(
            got,
            Err(WireError::Version {
                found: u32::try_from(version).unwrap_or(u32::MAX),
                supported: PROTOCOL_VERSION,
            })
        );
    }

    #[test]
    fn oversized_prefixes_are_rejected_without_reading_payload(
        extra in 1usize..4096,
    ) {
        let len = MAX_FRAME + extra;
        let mut frame = Vec::new();
        frame.extend_from_slice(&(len as u32).to_le_bytes());
        // Deliberately provide no payload at all: the length check
        // must fire before any payload read or allocation.
        let mut cursor = &frame[..];
        prop_assert_eq!(
            read_frame(&mut cursor),
            Err(WireError::Oversized { len, max: MAX_FRAME })
        );
    }
}
