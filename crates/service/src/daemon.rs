//! The campaign service daemon: socket accept loop, request handling,
//! and the shard scheduler.
//!
//! One daemon owns one data directory (`jobs/` + `cache/`) and one
//! Unix socket. Connections are handled a thread apiece; a single
//! scheduler thread runs jobs one at a time (each job's shards run
//! sequentially, and each shard is internally parallel through the
//! existing campaign executor). Every piece of job state lives on
//! disk in crash-safe form — atomic manifests, the executor's own
//! versioned checkpoints, flushed-ahead result logs — so a SIGKILLed
//! daemon restarts, re-queues every incomplete job, and resumes each
//! shard bit-identically.

use std::collections::BTreeMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::cache::{cache_key, ResultCache};
use crate::job::{
    read_shard_log, truncate_shard_log, JobManifest, LogLine, ShardLogWriter, MANIFEST_VERSION,
    STATE_CANCELLED, STATE_DONE, STATE_FAILED, STATE_QUEUED, STATE_RUNNING,
};
use crate::wire::{
    encode_event, encode_response, read_frame, write_frame, Event, Request, Response, WireError,
};
use crate::ServiceError;
use aps_sim::campaign::{
    campaign_size, run_campaign_resumable, CampaignOptions, CampaignSpec, CheckpointPolicy,
};
use aps_sim::checkpoint::{from_hex, spec_hash, to_hex, AggregatePartials, CampaignCheckpoint};
use aps_sim::outcome::JobOutcome;
use aps_sim::shard::plan_shards;
use aps_tracestore::{code_version_hash, read_store, FileTraceWriter, StoreInfo, TraceStoreReader};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Data directory (holds `jobs/` and `cache/`).
    pub data_dir: PathBuf,
    /// Worker-count override for the campaign executor
    /// (`None` = `APS_WORKERS` env, then detection).
    pub workers: Option<usize>,
    /// Checkpoint cadence: snapshot after every N emitted jobs.
    pub checkpoint_every: usize,
    /// Artificial per-job delay in milliseconds (0 = none). Lets the
    /// CI smoke test open a kill window inside a quick campaign.
    pub throttle_ms: u64,
    /// Test hook: behave as if killed after this many lifetime job
    /// executions — the scheduler stops mid-shard, leaving checkpoint
    /// and log exactly as a real SIGKILL would, and the daemon
    /// returns. CI exercises the real `kill -9`; in-process tests use
    /// this.
    pub interrupt_after: Option<usize>,
}

impl ServiceConfig {
    /// Config with default cadence and no throttling.
    pub fn new(socket: impl Into<PathBuf>, data_dir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            socket: socket.into(),
            data_dir: data_dir.into(),
            workers: None,
            checkpoint_every: 8,
            throttle_ms: 0,
            interrupt_after: None,
        }
    }
}

struct JobEntry {
    manifest: JobManifest,
    cancel: Arc<AtomicBool>,
    subscribers: Vec<UnixStream>,
    seq: u64,
}

struct Inner {
    jobs: BTreeMap<String, JobEntry>,
    seq: u64,
}

struct Shared {
    config: ServiceConfig,
    cache: ResultCache,
    inner: Mutex<Inner>,
    cv: Condvar,
    stop: AtomicBool,
    /// Jobs executed by this daemon process, across all campaigns —
    /// the cache-hit assertions ("zero executor jobs") read this.
    executed_total: AtomicUsize,
}

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

fn jobs_dir(config: &ServiceConfig) -> PathBuf {
    config.data_dir.join("jobs")
}

/// How one scheduled job run ended.
enum RunEnd {
    Done,
    Cancelled,
    Interrupted,
}

/// Runs the daemon until a `Shutdown` request (or the
/// `interrupt_after` test hook) stops it. Blocking; returns after
/// subscribers are drained and the socket is removed.
///
/// # Errors
///
/// Only startup failures (data dir, socket bind) are fatal; per-job
/// failures are recorded in the job's manifest instead.
pub fn run_daemon(config: ServiceConfig) -> Result<(), ServiceError> {
    let jobs = jobs_dir(&config);
    std::fs::create_dir_all(&jobs).map_err(|e| ServiceError::Io {
        path: jobs.display().to_string(),
        detail: e.to_string(),
    })?;
    let cache = ResultCache::open(&config.data_dir)?;

    let mut inner = Inner {
        jobs: BTreeMap::new(),
        seq: 0,
    };
    rescan_jobs(&jobs, &mut inner);

    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket).map_err(|e| ServiceError::Io {
        path: config.socket.display().to_string(),
        detail: e.to_string(),
    })?;

    let shared = Arc::new(Shared {
        config,
        cache,
        inner: Mutex::new(inner),
        cv: Condvar::new(),
        stop: AtomicBool::new(false),
        executed_total: AtomicUsize::new(0),
    });

    let scheduler = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || scheduler_loop(&shared))
    };

    log_line(&shared.config, "daemon listening");
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        match conn {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(&shared, stream));
            }
            Err(_) => break,
        }
    }

    // Shutdown path: stop the scheduler, drain every subscriber with
    // a Closing event, and remove the socket.
    shared.stop.store(true, Ordering::Release);
    shared.cv.notify_all();
    let _ = scheduler.join();
    if let Ok(payload) = encode_event(&Event::Closing) {
        let mut inner = lock(&shared);
        for entry in inner.jobs.values_mut() {
            for mut sub in entry.subscribers.drain(..) {
                let _ = write_frame(&mut sub, &payload);
            }
        }
    }
    let _ = std::fs::remove_file(&shared.config.socket);
    log_line(&shared.config, "daemon stopped");
    Ok(())
}

fn log_line(config: &ServiceConfig, msg: &str) {
    println!("[serve {}] {msg}", config.socket.display());
}

/// Re-registers every job directory found on disk; incomplete jobs
/// (`queued`/`running` at the time of the kill) go back to the queue.
fn rescan_jobs(jobs: &Path, inner: &mut Inner) {
    let entries = match std::fs::read_dir(jobs) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() {
            continue;
        }
        let mut manifest = match JobManifest::load(&dir) {
            Ok(m) => m,
            Err(_) => continue,
        };
        if manifest.state == STATE_RUNNING {
            manifest.state = String::from(STATE_QUEUED);
            let _ = manifest.save(&dir);
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.jobs.insert(
            manifest.job.clone(),
            JobEntry {
                manifest,
                cancel: Arc::new(AtomicBool::new(false)),
                subscribers: Vec::new(),
                seq,
            },
        );
    }
}

fn handle_connection(shared: &Shared, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(WireError::Closed) => return,
            Err(e) => {
                // Typed protocol error back to the peer, then drop the
                // connection — after a framing error the stream
                // position is unreliable.
                respond_error(&mut stream, &e);
                return;
            }
        };
        let request = match crate::wire::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary is intact, so the connection can
                // continue after a payload-level error.
                respond_error(&mut stream, &e);
                continue;
            }
        };
        match request {
            Request::SubmitCampaign {
                spec,
                shards,
                priority,
                seed,
            } => {
                let resp = handle_submit(shared, spec, shards, priority, &seed);
                respond(&mut stream, &resp);
            }
            Request::Status { job } => {
                let resp = handle_status(shared, &job);
                respond(&mut stream, &resp);
            }
            Request::Cancel { job } => {
                let resp = handle_cancel(shared, &job);
                respond(&mut stream, &resp);
            }
            Request::Fetch { job } => {
                let resp = handle_fetch(shared, &job);
                respond(&mut stream, &resp);
            }
            Request::Subscribe { job } => {
                // Terminal request for this connection: the stream
                // becomes the event channel.
                handle_subscribe(shared, &job, stream);
                return;
            }
            Request::Shutdown => {
                shared.stop.store(true, Ordering::Release);
                shared.cv.notify_all();
                respond(&mut stream, &Response::Done);
                // Wake the accept loop so it observes the stop flag.
                let _ = UnixStream::connect(&shared.config.socket);
                return;
            }
        }
    }
}

fn respond(stream: &mut UnixStream, response: &Response) {
    if let Ok(payload) = encode_response(response) {
        let _ = write_frame(stream, &payload);
    }
}

fn respond_error(stream: &mut UnixStream, e: &WireError) {
    let code = match e {
        WireError::Version { .. } => "version",
        WireError::Oversized { .. } => "oversized",
        WireError::Truncated => "truncated",
        WireError::Malformed { .. } => "malformed",
        WireError::Io { .. } | WireError::Closed => "io",
    };
    respond(
        stream,
        &Response::Error {
            code: String::from(code),
            detail: e.to_string(),
        },
    );
}

/// Digest and trace count of a complete cached store, folded exactly
/// the way the campaign executor folds a zero-failure run.
fn fold_store(reader: &TraceStoreReader) -> (String, usize) {
    let mut partials = AggregatePartials::default();
    let traces = read_store(reader);
    for trace in &traces {
        partials.fold_completed(trace);
    }
    (partials.digest, traces.len())
}

fn handle_submit(
    shared: &Shared,
    spec: Box<CampaignSpec>,
    shards: usize,
    priority: u32,
    seed: &str,
) -> Response {
    let seed_u64 = if seed.is_empty() {
        0
    } else {
        match from_hex(seed).or_else(|| seed.parse::<u64>().ok().filter(|_| seed.len() < 16)) {
            Some(s) => s,
            None => {
                return Response::Error {
                    code: String::from("bad-seed"),
                    detail: format!("seed `{seed}` is not a hex u64"),
                }
            }
        }
    };
    let spec_hash_u64 = spec_hash(spec.as_ref());
    let key = cache_key(spec_hash_u64, seed_u64, code_version_hash());
    let id = to_hex(key);
    let total = campaign_size(&spec);
    let dir = JobManifest::dir(&jobs_dir(&shared.config), &id);

    let mut inner = lock(shared);
    if let Some(entry) = inner.jobs.get(&id) {
        let cached = entry.manifest.state == STATE_DONE;
        if cached {
            bump_stats(shared, |s| s.hits += 1);
        }
        return Response::Submitted {
            job: id,
            state: entry.manifest.state.clone(),
            total_jobs: entry.manifest.total_jobs,
            cached,
        };
    }

    // Normalize the requested shard count to what the planner can
    // actually cut (a grid with 2 patients × 1 BG caps at 2 shards).
    // The planned count is a fixed point of `plan_shards`, so the
    // executor re-planning from the manifest reproduces this plan.
    let shards = plan_shards(&spec, shards.max(1)).len();
    let mut manifest = JobManifest {
        version: MANIFEST_VERSION,
        job: id.clone(),
        spec: Some(*spec),
        spec_hash: to_hex(spec_hash_u64),
        seed: to_hex(seed_u64),
        shards,
        priority,
        state: String::from(STATE_QUEUED),
        total_jobs: total,
        ..JobManifest::default()
    };

    // Content-addressed cache front: an existing, validated entry
    // makes the job terminal without ever touching the executor.
    let cached = if let Some(reader) = shared.cache.lookup(key, spec_hash_u64) {
        let (digest, completed) = fold_store(&reader);
        manifest.state = String::from(STATE_DONE);
        manifest.cached = true;
        manifest.completed_jobs = completed;
        manifest.digest = digest;
        bump_stats(shared, |s| s.hits += 1);
        true
    } else {
        bump_stats(shared, |s| s.misses += 1);
        false
    };

    if let Err(e) = manifest.save(&dir) {
        return Response::Error {
            code: String::from("io"),
            detail: e.to_string(),
        };
    }
    let state = manifest.state.clone();
    let seq = inner.seq;
    inner.seq += 1;
    inner.jobs.insert(
        id.clone(),
        JobEntry {
            manifest,
            cancel: Arc::new(AtomicBool::new(false)),
            subscribers: Vec::new(),
            seq,
        },
    );
    drop(inner);
    shared.cv.notify_all();
    log_line(
        &shared.config,
        &format!("submit {id}: state {state} cached {cached}"),
    );
    Response::Submitted {
        job: id,
        state,
        total_jobs: total,
        cached,
    }
}

fn bump_stats(shared: &Shared, f: impl FnOnce(&mut crate::cache::CacheStats)) {
    let mut stats = shared.cache.load_stats();
    stats.version = 1;
    f(&mut stats);
    let _ = shared.cache.save_stats(&stats);
}

fn handle_status(shared: &Shared, job: &str) -> Response {
    let inner = lock(shared);
    let jobs: Vec<JobManifest> = if job.is_empty() {
        inner.jobs.values().map(|e| e.manifest.clone()).collect()
    } else {
        match inner.jobs.get(job) {
            Some(e) => vec![e.manifest.clone()],
            None => {
                return Response::Error {
                    code: String::from("unknown-job"),
                    detail: format!("no job {job}"),
                }
            }
        }
    };
    Response::Status { jobs }
}

fn handle_cancel(shared: &Shared, job: &str) -> Response {
    let mut inner = lock(shared);
    let jobs = jobs_dir(&shared.config);
    match inner.jobs.get_mut(job) {
        Some(entry) => {
            if entry.manifest.is_terminal() {
                return Response::Error {
                    code: String::from("terminal"),
                    detail: format!("job {job} is already {}", entry.manifest.state),
                };
            }
            entry.cancel.store(true, Ordering::Release);
            if entry.manifest.state == STATE_QUEUED {
                entry.manifest.state = String::from(STATE_CANCELLED);
                entry.manifest.detail = String::from("cancelled while queued");
                let _ = entry.manifest.save(&JobManifest::dir(&jobs, job));
                notify_terminal(entry);
            }
            Response::Done
        }
        None => Response::Error {
            code: String::from("unknown-job"),
            detail: format!("no job {job}"),
        },
    }
}

fn handle_fetch(shared: &Shared, job: &str) -> Response {
    let inner = lock(shared);
    let entry = match inner.jobs.get(job) {
        Some(e) => e,
        None => {
            return Response::Error {
                code: String::from("unknown-job"),
                detail: format!("no job {job}"),
            }
        }
    };
    if entry.manifest.state != STATE_DONE {
        return Response::Error {
            code: String::from("not-done"),
            detail: format!("job {job} is {}", entry.manifest.state),
        };
    }
    if entry.manifest.failed_jobs > 0 {
        return Response::Error {
            code: String::from("has-failures"),
            detail: format!(
                "job {job} has {} failed jobs; only zero-failure campaigns are cached",
                entry.manifest.failed_jobs
            ),
        };
    }
    let key = match from_hex(job) {
        Some(k) => k,
        None => {
            return Response::Error {
                code: String::from("unknown-job"),
                detail: format!("job id {job} is not a hex key"),
            }
        }
    };
    let path = shared.cache.entry_path(key);
    match TraceStoreReader::open(&path) {
        Ok(reader) => Response::Fetched {
            path: path.display().to_string(),
            info: StoreInfo::of(&reader),
        },
        Err(e) => Response::Error {
            code: String::from("missing-store"),
            detail: e.to_string(),
        },
    }
}

fn handle_subscribe(shared: &Shared, job: &str, mut stream: UnixStream) {
    let mut inner = lock(shared);
    match inner.jobs.get_mut(job) {
        Some(entry) => {
            respond(&mut stream, &Response::Done);
            if entry.manifest.is_terminal() {
                // Already terminal: deliver the final event at once.
                let event = Event::JobDone {
                    job: entry.manifest.job.clone(),
                    state: entry.manifest.state.clone(),
                    digest: entry.manifest.digest.clone(),
                };
                if let Ok(payload) = encode_event(&event) {
                    let _ = write_frame(&mut stream, &payload);
                }
            } else {
                // Event delivery has no bounded cadence, so the
                // subscriber read side must not time out.
                let _ = stream.set_read_timeout(None);
                entry.subscribers.push(stream);
            }
        }
        None => {
            respond(
                &mut stream,
                &Response::Error {
                    code: String::from("unknown-job"),
                    detail: format!("no job {job}"),
                },
            );
        }
    }
}

/// Sends `event` to every subscriber of `entry`, dropping subscribers
/// whose stream has failed.
fn broadcast(entry: &mut JobEntry, event: &Event) {
    let payload = match encode_event(event) {
        Ok(p) => p,
        Err(_) => return,
    };
    entry
        .subscribers
        .retain_mut(|sub| write_frame(sub, &payload).is_ok());
}

/// Broadcasts the terminal event and closes every subscriber.
fn notify_terminal(entry: &mut JobEntry) {
    let event = Event::JobDone {
        job: entry.manifest.job.clone(),
        state: entry.manifest.state.clone(),
        digest: entry.manifest.digest.clone(),
    };
    broadcast(entry, &event);
    entry.subscribers.clear();
}

fn scheduler_loop(shared: &Shared) {
    loop {
        let job_id = {
            let mut inner = lock(shared);
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    drop(inner);
                    // Wake the accept loop in case the stop came from
                    // the interrupt hook rather than a Shutdown frame.
                    let _ = UnixStream::connect(&shared.config.socket);
                    return;
                }
                if let Some(id) = pick_next(&inner) {
                    if let Some(entry) = inner.jobs.get_mut(&id) {
                        entry.manifest.state = String::from(STATE_RUNNING);
                        let _ = entry
                            .manifest
                            .save(&JobManifest::dir(&jobs_dir(&shared.config), &id));
                    }
                    break id;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(inner, Duration::from_millis(200))
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
        };
        log_line(&shared.config, &format!("start {job_id}"));
        let end = run_one_job(shared, &job_id);
        let mut inner = lock(shared);
        let dir = JobManifest::dir(&jobs_dir(&shared.config), &job_id);
        if let Some(entry) = inner.jobs.get_mut(&job_id) {
            match end {
                Ok(RunEnd::Done) => {
                    log_line(
                        &shared.config,
                        &format!("done {job_id}: digest {}", entry.manifest.digest),
                    );
                    notify_terminal(entry);
                }
                Ok(RunEnd::Cancelled) => {
                    entry.manifest.state = String::from(STATE_CANCELLED);
                    entry.manifest.detail = String::from("cancelled by request");
                    let _ = entry.manifest.save(&dir);
                    log_line(&shared.config, &format!("cancelled {job_id}"));
                    notify_terminal(entry);
                }
                Ok(RunEnd::Interrupted) => {
                    // Leave the on-disk state as the kill would have:
                    // manifest `running`, checkpoint and log mid-shard.
                    // The next daemon's rescan re-queues and resumes.
                    log_line(&shared.config, &format!("interrupted {job_id}"));
                }
                Err(e) => {
                    entry.manifest.state = String::from(STATE_FAILED);
                    entry.manifest.detail = e.to_string();
                    let _ = entry.manifest.save(&dir);
                    log_line(&shared.config, &format!("failed {job_id}: {e}"));
                    notify_terminal(entry);
                }
            }
        }
    }
}

/// Highest priority first, then submission order.
fn pick_next(inner: &Inner) -> Option<String> {
    inner
        .jobs
        .values()
        .filter(|e| e.manifest.state == STATE_QUEUED)
        .max_by_key(|e| (e.manifest.priority, std::cmp::Reverse(e.seq)))
        .map(|e| e.manifest.job.clone())
}

fn run_one_job(shared: &Shared, id: &str) -> Result<RunEnd, ServiceError> {
    let dir = JobManifest::dir(&jobs_dir(&shared.config), id);
    let (spec, shards_requested, user_cancel) = {
        let inner = lock(shared);
        let entry = inner.jobs.get(id).ok_or_else(|| ServiceError::Corrupt {
            path: id.to_string(),
            detail: String::from("job vanished from the registry"),
        })?;
        let spec = entry
            .manifest
            .spec
            .clone()
            .ok_or_else(|| ServiceError::Corrupt {
                path: dir.display().to_string(),
                detail: String::from("manifest has no spec"),
            })?;
        (spec, entry.manifest.shards, Arc::clone(&entry.cancel))
    };

    let spec_hash_u64 = spec_hash(&spec);
    let key = from_hex(id).unwrap_or_else(|| cache_key(spec_hash_u64, 0, code_version_hash()));

    // Late cache check: another daemon sharing the data dir may have
    // published this key since submission.
    if let Some(reader) = shared.cache.lookup(key, spec_hash_u64) {
        let (digest, completed) = fold_store(&reader);
        let mut inner = lock(shared);
        if let Some(entry) = inner.jobs.get_mut(id) {
            entry.manifest.state = String::from(STATE_DONE);
            entry.manifest.cached = true;
            entry.manifest.completed_jobs = completed;
            entry.manifest.digest = digest;
            entry.manifest.save(&dir)?;
        }
        bump_stats(shared, |s| s.hits += 1);
        return Ok(RunEnd::Done);
    }

    let plans = plan_shards(&spec, shards_requested.max(1));
    let total_shards = plans.len();

    for plan in &plans {
        if user_cancel.load(Ordering::Acquire) {
            return Ok(RunEnd::Cancelled);
        }
        if shared.stop.load(Ordering::Acquire) {
            return Ok(RunEnd::Interrupted);
        }
        let ckpt_path = JobManifest::ckpt_path(&dir, plan.index);
        let log_path = JobManifest::log_path(&dir, plan.index);
        let shard_hash_hex = to_hex(spec_hash(&plan.spec));

        // Recover the shard's resume state: a checkpoint is only
        // honored when it validates against this shard's spec AND the
        // result log covers at least its completed count (the sink
        // flushes each line before the covering checkpoint can be
        // written, so a shorter log means tampering/corruption —
        // restart the shard from scratch rather than guess).
        let mut resume: Option<CampaignCheckpoint> = None;
        if ckpt_path.exists() {
            let valid = CampaignCheckpoint::load(&ckpt_path).ok().filter(|c| {
                c.validate_for(&shard_hash_hex, None, plan.job_count)
                    .is_ok()
            });
            match valid {
                Some(ckpt) => {
                    let done = ckpt.completed.count();
                    let lines = read_shard_log(&log_path)?;
                    if lines.len() < done {
                        let _ = std::fs::remove_file(&ckpt_path);
                        let _ = std::fs::remove_file(&log_path);
                    } else {
                        if lines.len() > done {
                            // Emissions past the checkpoint frontier
                            // will re-run; drop them from the log so
                            // the merge sees each job exactly once.
                            truncate_shard_log(&log_path, &lines[..done])?;
                        }
                        resume = Some(ckpt);
                    }
                }
                None => {
                    let _ = std::fs::remove_file(&ckpt_path);
                    let _ = std::fs::remove_file(&log_path);
                }
            }
        }

        let already_done = resume
            .as_ref()
            .is_some_and(|c| c.completed.count() == plan.job_count);
        if !already_done {
            let mut log = ShardLogWriter::append(&log_path)?;
            let run_cancel = Arc::new(AtomicBool::new(false));
            let options = CampaignOptions {
                workers: shared.config.workers,
                checkpoint: Some(CheckpointPolicy {
                    path: ckpt_path.clone(),
                    every_jobs: shared.config.checkpoint_every.max(1),
                }),
                cancel: Some(Arc::clone(&run_cancel)),
                ..CampaignOptions::default()
            };
            let mut sink_err: Option<ServiceError> = None;
            let report = run_campaign_resumable(
                &plan.spec,
                None,
                &options,
                resume.as_ref(),
                |i, outcome| {
                    if sink_err.is_some() {
                        run_cancel.store(true, Ordering::Release);
                        return;
                    }
                    let line = match outcome {
                        JobOutcome::Completed(trace) => LogLine {
                            job_index: i,
                            trace: Some(trace),
                            error: String::new(),
                            attempts: 0,
                        },
                        JobOutcome::Failed { error, attempts } => LogLine {
                            job_index: i,
                            trace: None,
                            error: error.to_string(),
                            attempts,
                        },
                    };
                    // The log line must be durable before the executor
                    // can write a checkpoint covering it — that
                    // ordering is the resume-correctness invariant.
                    if let Err(e) = log.push(&line) {
                        sink_err = Some(e);
                        run_cancel.store(true, Ordering::Release);
                        return;
                    }
                    let executed = shared.executed_total.fetch_add(1, Ordering::AcqRel) + 1;
                    {
                        let mut inner = lock(shared);
                        if let Some(entry) = inner.jobs.get_mut(id) {
                            entry.manifest.executed_jobs += 1;
                            let event = Event::Progress {
                                job: id.to_string(),
                                executed: entry.manifest.executed_jobs,
                                total: entry.manifest.total_jobs,
                            };
                            broadcast(entry, &event);
                        }
                    }
                    if shared.config.throttle_ms > 0 {
                        std::thread::sleep(Duration::from_millis(shared.config.throttle_ms));
                    }
                    if shared.config.interrupt_after.is_some_and(|n| executed >= n) {
                        shared.stop.store(true, Ordering::Release);
                        shared.cv.notify_all();
                    }
                    if user_cancel.load(Ordering::Acquire) || shared.stop.load(Ordering::Acquire) {
                        run_cancel.store(true, Ordering::Release);
                    }
                },
            )
            .map_err(|e| ServiceError::Corrupt {
                path: ckpt_path.display().to_string(),
                detail: e.to_string(),
            })?;
            if let Some(e) = sink_err {
                return Err(e);
            }
            if user_cancel.load(Ordering::Acquire) {
                return Ok(RunEnd::Cancelled);
            }
            if report.cancelled || shared.stop.load(Ordering::Acquire) {
                // Persist progress so the restart sees the counters.
                let mut inner = lock(shared);
                if let Some(entry) = inner.jobs.get_mut(id) {
                    entry.manifest.save(&dir)?;
                }
                return Ok(RunEnd::Interrupted);
            }
        }

        let mut inner = lock(shared);
        if let Some(entry) = inner.jobs.get_mut(id) {
            entry.manifest.shards_done = plan.index + 1;
            entry.manifest.save(&dir)?;
            let event = Event::ShardDone {
                job: id.to_string(),
                shard: plan.index,
                shards: total_shards,
            };
            broadcast(entry, &event);
        }
    }

    merge_job(shared, id, &dir, &plans, spec_hash_u64, key)
}

/// Merges the complete shard logs — in shard order — into the final
/// campaign aggregate, publishes the trace store to the cache when
/// the campaign had zero failures, and marks the job done.
fn merge_job(
    shared: &Shared,
    id: &str,
    dir: &Path,
    plans: &[aps_sim::shard::ShardPlan],
    spec_hash_u64: u64,
    key: u64,
) -> Result<RunEnd, ServiceError> {
    let mut partials = AggregatePartials::default();
    let entry_path = shared.cache.entry_path(key);
    let mut writer = FileTraceWriter::create_unique(&entry_path, spec_hash_u64).map_err(|e| {
        ServiceError::Io {
            path: entry_path.display().to_string(),
            detail: e.to_string(),
        }
    })?;

    for plan in plans {
        let log_path = JobManifest::log_path(dir, plan.index);
        let lines = read_shard_log(&log_path)?;
        if lines.len() != plan.job_count {
            return Err(ServiceError::Corrupt {
                path: log_path.display().to_string(),
                detail: format!(
                    "shard log has {} lines, expected {}",
                    lines.len(),
                    plan.job_count
                ),
            });
        }
        for line in &lines {
            match &line.trace {
                Some(trace) => {
                    partials.fold_completed(trace);
                    writer.push(trace).map_err(|e| ServiceError::Io {
                        path: entry_path.display().to_string(),
                        detail: e.to_string(),
                    })?;
                }
                None => partials.fold_failed(&line.error, line.attempts),
            }
        }
    }

    // Only zero-failure campaigns are cached: the cache contract is
    // "these traces ARE the campaign", which failed jobs would break.
    if partials.failed_jobs == 0 {
        match writer.finalize_if_absent() {
            Ok(Some(_)) => bump_stats(shared, |s| s.writes += 1),
            Ok(None) => bump_stats(shared, |s| s.skipped_writes += 1),
            Err(e) => {
                return Err(ServiceError::Io {
                    path: entry_path.display().to_string(),
                    detail: e.to_string(),
                })
            }
        }
    } else {
        // Abandon the writer; its Drop removes the unique temp file.
        drop(writer);
    }

    let mut inner = lock(shared);
    if let Some(entry) = inner.jobs.get_mut(id) {
        entry.manifest.state = String::from(STATE_DONE);
        entry.manifest.completed_jobs = partials.completed_jobs;
        entry.manifest.failed_jobs = partials.failed_jobs;
        entry.manifest.digest = partials.digest.clone();
        entry.manifest.save(dir)?;
    }
    Ok(RunEnd::Done)
}
