//! On-disk job state: the per-job manifest and the per-shard result
//! log.
//!
//! A job directory (`<data>/jobs/<id>/`) holds:
//!
//! * `manifest.json` — the versioned [`JobManifest`], written with the
//!   same atomic tmp+rename idiom as campaign checkpoints, so a killed
//!   daemon always restarts from a coherent view;
//! * `shard-<k>.ckpt.json` — the existing versioned
//!   `CampaignCheckpoint` for shard `k`, written by
//!   `run_campaign_resumable` itself (the service invents no new
//!   checkpoint format);
//! * `shard-<k>.log.jsonl` — one [`LogLine`] per emitted job outcome,
//!   flushed from the emission sink *before* the checkpoint that
//!   covers it can be written. The sink runs ahead of the checkpoint,
//!   so the log always holds at least as many lines as the
//!   checkpoint's completed count — resume truncates the log to the
//!   checkpoint and re-runs the remainder, keeping the merged result
//!   bit-identical to an uninterrupted run.

use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use crate::ServiceError;
use aps_sim::campaign::CampaignSpec;
use aps_types::SimTrace;

/// Manifest schema version.
pub const MANIFEST_VERSION: u32 = 1;

/// Queued, waiting for the scheduler.
pub const STATE_QUEUED: &str = "queued";
/// Claimed by the scheduler (also the on-disk state of a job whose
/// daemon was killed — the restart rescan re-queues it).
pub const STATE_RUNNING: &str = "running";
/// All shards complete, results merged.
pub const STATE_DONE: &str = "done";
/// An internal error stopped the job (detail in the manifest).
pub const STATE_FAILED: &str = "failed";
/// Cancelled by request; terminal.
pub const STATE_CANCELLED: &str = "cancelled";

/// Serde view of one job, persisted as `manifest.json` and returned
/// verbatim by `Status`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct JobManifest {
    /// Manifest schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Job id: hex content-address of (spec hash, seed, code hash).
    pub job: String,
    /// The submitted campaign spec (absent only in corrupt files).
    pub spec: Option<CampaignSpec>,
    /// Campaign spec fingerprint (hex u64).
    pub spec_hash: String,
    /// Seed lane of the cache key (hex u64).
    pub seed: String,
    /// Requested shard count.
    pub shards: usize,
    /// Scheduling priority (higher first).
    pub priority: u32,
    /// Lifecycle state: one of the `STATE_*` constants.
    pub state: String,
    /// `true` when the result came from the content-addressed cache
    /// with zero executor work.
    pub cached: bool,
    /// Total jobs in the campaign grid.
    pub total_jobs: usize,
    /// Jobs actually executed for this submission (0 on a cache hit;
    /// resumed restarts count only the jobs run after the restart).
    pub executed_jobs: usize,
    /// Completed jobs across all merged shards.
    pub completed_jobs: usize,
    /// Failed jobs across all merged shards.
    pub failed_jobs: usize,
    /// Shards that have fully completed.
    pub shards_done: usize,
    /// Campaign digest (hex u64) once terminal; byte-equal to the
    /// uninterrupted serial run's digest.
    pub digest: String,
    /// Human-readable detail for `failed` / `cancelled`.
    pub detail: String,
}

impl JobManifest {
    /// Directory of this job under `jobs_dir`.
    pub fn dir(jobs_dir: &Path, job: &str) -> PathBuf {
        jobs_dir.join(job)
    }

    /// Path of shard `k`'s checkpoint file.
    pub fn ckpt_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard}.ckpt.json"))
    }

    /// Path of shard `k`'s result log.
    pub fn log_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard}.log.jsonl"))
    }

    /// Loads a manifest from `dir/manifest.json`.
    pub fn load(dir: &Path) -> Result<JobManifest, ServiceError> {
        let path = dir.join("manifest.json");
        let text = std::fs::read_to_string(&path).map_err(|e| ServiceError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        let manifest: JobManifest =
            serde_json::from_str(&text).map_err(|e| ServiceError::Corrupt {
                path: path.display().to_string(),
                detail: e.to_string(),
            })?;
        if manifest.version > MANIFEST_VERSION {
            return Err(ServiceError::Corrupt {
                path: path.display().to_string(),
                detail: format!(
                    "manifest version {} newer than supported {MANIFEST_VERSION}",
                    manifest.version
                ),
            });
        }
        Ok(manifest)
    }

    /// Atomically writes the manifest to `dir/manifest.json`
    /// (tmp + rename, the checkpoint idiom).
    pub fn save(&self, dir: &Path) -> Result<(), ServiceError> {
        std::fs::create_dir_all(dir).map_err(|e| ServiceError::Io {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        let path = dir.join("manifest.json");
        let tmp = dir.join("manifest.json.tmp");
        let text = serde_json::to_string_pretty(self).map_err(|e| ServiceError::Corrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        let io = |p: &Path| {
            let p = p.display().to_string();
            move |e: std::io::Error| ServiceError::Io {
                path: p.clone(),
                detail: e.to_string(),
            }
        };
        std::fs::write(&tmp, text).map_err(io(&tmp))?;
        std::fs::rename(&tmp, &path).map_err(io(&path))
    }

    /// `true` for `done`/`failed`/`cancelled`.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.state.as_str(),
            STATE_DONE | STATE_FAILED | STATE_CANCELLED
        )
    }
}

/// One emitted job outcome in a shard result log. A completed job
/// carries its full trace; a failed one carries the rendered error
/// exactly as the campaign ledger/digest saw it, so replaying the log
/// reproduces the campaign digest bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct LogLine {
    /// Index of the job within its shard.
    pub job_index: usize,
    /// The trace, for completed jobs.
    pub trace: Option<SimTrace>,
    /// Rendered error message, for failed jobs (empty otherwise).
    pub error: String,
    /// Attempts consumed, for failed jobs.
    pub attempts: u32,
}

/// Append-mode shard log writer; every line is flushed before the
/// write returns, so the log never lags the checkpoint.
pub struct ShardLogWriter {
    out: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
}

impl ShardLogWriter {
    /// Opens `path` for appending (creating it if absent).
    pub fn append(path: &Path) -> Result<ShardLogWriter, ServiceError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ServiceError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            })?;
        Ok(ShardLogWriter {
            out: std::io::BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Appends one line and flushes it to the OS.
    pub fn push(&mut self, line: &LogLine) -> Result<(), ServiceError> {
        let io = |e: std::io::Error| ServiceError::Io {
            path: self.path.display().to_string(),
            detail: e.to_string(),
        };
        let text = serde_json::to_string(line).map_err(|e| ServiceError::Corrupt {
            path: self.path.display().to_string(),
            detail: e.to_string(),
        })?;
        self.out.write_all(text.as_bytes()).map_err(io)?;
        self.out.write_all(b"\n").map_err(io)?;
        self.out.flush().map_err(io)
    }
}

/// Reads every parseable line of a shard log, stopping at the first
/// torn/corrupt line (a crash can tear only the final line, because
/// each push is flushed whole).
pub fn read_shard_log(path: &Path) -> Result<Vec<LogLine>, ServiceError> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ServiceError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            })
        }
    };
    let mut lines = Vec::new();
    for raw in std::io::BufReader::new(file).lines() {
        let raw = match raw {
            Ok(r) => r,
            Err(_) => break,
        };
        if raw.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<LogLine>(&raw) {
            Ok(line) => lines.push(line),
            Err(_) => break,
        }
    }
    Ok(lines)
}

/// Rewrites the shard log to exactly `lines` (atomic tmp + rename).
/// Used on resume to drop emissions past the checkpoint frontier
/// before the executor re-runs them.
pub fn truncate_shard_log(path: &Path, lines: &[LogLine]) -> Result<(), ServiceError> {
    let tmp = path.with_extension("jsonl.tmp");
    let io = |p: &Path| {
        let p = p.display().to_string();
        move |e: std::io::Error| ServiceError::Io {
            path: p.clone(),
            detail: e.to_string(),
        }
    };
    let mut text = String::new();
    for line in lines {
        let rendered = serde_json::to_string(line).map_err(|e| ServiceError::Corrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        text.push_str(&rendered);
        text.push('\n');
    }
    std::fs::write(&tmp, text).map_err(io(&tmp))?;
    std::fs::rename(&tmp, path).map_err(io(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_atomically() {
        let dir = std::env::temp_dir().join("aps_service_job_test");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = JobManifest {
            version: MANIFEST_VERSION,
            job: String::from("00000000deadbeef"),
            spec_hash: String::from("00000000deadbeef"),
            seed: String::from("0"),
            shards: 3,
            priority: 1,
            state: String::from(STATE_QUEUED),
            total_jobs: 62,
            ..JobManifest::default()
        };
        manifest.save(&dir).unwrap();
        let back = JobManifest::load(&dir).unwrap();
        assert_eq!(back, manifest);
        assert!(!dir.join("manifest.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_manifest_version_is_rejected() {
        let dir = std::env::temp_dir().join("aps_service_job_test_v");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = JobManifest {
            version: MANIFEST_VERSION + 1,
            ..JobManifest::default()
        };
        manifest.save(&dir).unwrap();
        assert!(matches!(
            JobManifest::load(&dir),
            Err(ServiceError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_log_survives_a_torn_final_line() {
        let dir = std::env::temp_dir().join("aps_service_log_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.log.jsonl");
        let mut w = ShardLogWriter::append(&path).unwrap();
        for i in 0..3 {
            w.push(&LogLine {
                job_index: i,
                error: format!("err {i}"),
                attempts: 1,
                ..LogLine::default()
            })
            .unwrap();
        }
        drop(w);
        // Simulate a crash mid-append: a torn, unparseable last line.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"{\"job_index\": 3, \"tr").unwrap();
        drop(file);

        let lines = read_shard_log(&path).unwrap();
        assert_eq!(lines.len(), 3, "torn tail is dropped, prefix kept");

        // Resume truncates to the checkpoint frontier (here: 2).
        truncate_shard_log(&path, &lines[..2]).unwrap();
        let lines = read_shard_log(&path).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].error, "err 1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_log_reads_as_empty() {
        let path = std::env::temp_dir().join("aps_service_no_such_log.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(read_shard_log(&path).unwrap().is_empty());
    }
}
