//! Length-prefixed JSON wire protocol for the campaign service.
//!
//! Frame layout: a 4-byte little-endian payload length followed by
//! exactly that many bytes of UTF-8 JSON. The JSON payload is a
//! versioned envelope — `{"version": 1, "request": {...}}` (and
//! `response`/`event` for the other directions) — so a reader first
//! probes the `version` field and rejects frames from a newer
//! protocol with a typed [`WireError::Version`] instead of a parse
//! error. The campaign specs inside `SubmitCampaign` are the existing
//! `aps_sim` serde types; the protocol adds no second schema.
//!
//! Every decode failure is a typed [`WireError`] — malformed JSON,
//! truncated frames, oversized lengths, and unknown future versions
//! all return errors, never panic (pinned by proptests).

use aps_sim::campaign::CampaignSpec;
use aps_tracestore::StoreInfo;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Highest protocol version this build understands.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one frame's payload, to keep a malicious or
/// corrupt length prefix from ballooning memory.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Client-to-daemon request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a campaign: shard it, run it (or serve it from cache).
    SubmitCampaign {
        /// The campaign to run — the existing serde spec, verbatim
        /// (boxed only to keep the request enum small on the stack;
        /// the JSON encoding is unchanged).
        spec: Box<CampaignSpec>,
        /// Requested shard count (the planner may use fewer).
        shards: usize,
        /// Higher runs first among queued jobs.
        priority: u32,
        /// Campaign seed lane folded into the cache key (hex u64;
        /// "0" for the default deterministic campaign).
        #[serde(default)]
        seed: String,
    },
    /// Report one job (`job` = its id) or all jobs (`job` empty).
    Status {
        /// Job id, or empty for every known job.
        #[serde(default)]
        job: String,
    },
    /// Stream progress events for a job until it reaches a terminal
    /// state; this is the connection's final request.
    Subscribe {
        /// Job id to follow.
        job: String,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id to cancel.
        job: String,
    },
    /// Locate a finished job's result store on disk.
    Fetch {
        /// Job id to fetch.
        job: String,
    },
    /// Stop the daemon: the scheduler halts after persisting state,
    /// every subscriber is drained with [`Event::Closing`].
    Shutdown,
}

/// Daemon-to-client reply (one per request).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Submission accepted (or recognized as already present).
    Submitted {
        /// Job id: the hex content-address of (spec, seed, code).
        job: String,
        /// Job state right after submission.
        state: String,
        /// Total jobs in the campaign grid.
        total_jobs: usize,
        /// `true` when no executor work is needed: the result was
        /// already complete (content-addressed cache hit).
        cached: bool,
    },
    /// Job manifests, most useful with [`Request::Status`].
    Status {
        /// One manifest per known job (one entry for a named job).
        jobs: Vec<crate::job::JobManifest>,
    },
    /// Result store location for [`Request::Fetch`].
    Fetched {
        /// Absolute path of the cached `aps_tracestore` file.
        path: String,
        /// Store summary (hashes, trace/record counts).
        info: StoreInfo,
    },
    /// Request acknowledged, nothing further to report.
    Done,
    /// Request failed; `code` is stable, `detail` human-readable.
    Error {
        /// Stable machine-readable error class.
        code: String,
        /// Human-readable explanation.
        detail: String,
    },
}

/// Daemon-to-subscriber progress stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Executor progress: `executed` of `total` jobs emitted.
    Progress {
        /// Job id.
        job: String,
        /// Jobs executed so far in this daemon lifetime.
        executed: usize,
        /// Total jobs in the campaign.
        total: usize,
    },
    /// One shard finished (checkpoint complete).
    ShardDone {
        /// Job id.
        job: String,
        /// Shard index (0-based).
        shard: usize,
        /// Total planned shards.
        shards: usize,
    },
    /// The job reached a terminal state.
    JobDone {
        /// Job id.
        job: String,
        /// Terminal state: `done`, `failed`, or `cancelled`.
        state: String,
        /// Campaign digest (hex), empty unless `done`.
        digest: String,
    },
    /// The daemon is shutting down; no further events will arrive.
    Closing,
}

/// Versioned request envelope (the JSON payload of a frame).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RequestFrame {
    /// Protocol version of the sender.
    pub version: u32,
    /// The request; `None` marks a malformed envelope.
    pub request: Option<Request>,
}

/// Versioned response envelope.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ResponseFrame {
    /// Protocol version of the sender.
    pub version: u32,
    /// The response; `None` marks a malformed envelope.
    pub response: Option<Response>,
}

/// Versioned event envelope.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct EventFrame {
    /// Protocol version of the sender.
    pub version: u32,
    /// The event; `None` marks a malformed envelope.
    pub event: Option<Event>,
}

/// Typed wire failure. Every protocol-level problem maps here;
/// nothing in the codec panics on attacker-controlled bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying socket/file I/O failed.
    Io {
        /// Rendered `std::io::Error`.
        detail: String,
    },
    /// Peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Stream ended mid-frame (inside the prefix or the payload).
    Truncated,
    /// Length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The enforced ceiling ([`MAX_FRAME`]).
        max: usize,
    },
    /// Payload is not valid UTF-8 JSON of the expected shape.
    Malformed {
        /// What failed to parse.
        detail: String,
    },
    /// Envelope is from a newer protocol than this build supports.
    Version {
        /// Version advertised by the peer.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { detail } => write!(f, "wire i/o error: {detail}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "frame truncated mid-stream"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            WireError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            WireError::Version { found, supported } => {
                write!(
                    f,
                    "protocol version {found} newer than supported {supported}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Reads one frame payload. A clean EOF before any prefix byte is
/// [`WireError::Closed`]; EOF anywhere inside a frame is
/// [`WireError::Truncated`].
pub fn read_frame(from: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match from.read(&mut prefix[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(WireError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match from.read(&mut payload[got..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(WireError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }
    Ok(payload)
}

/// Writes one frame (prefix + payload) and flushes.
pub fn write_frame(to: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            len: payload.len(),
            max: MAX_FRAME,
        });
    }
    let io = |e: std::io::Error| WireError::Io {
        detail: e.to_string(),
    };
    to.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io)?;
    to.write_all(payload).map_err(io)?;
    to.flush().map_err(io)
}

/// Probes the envelope version, then decodes the payload with `get`.
/// The version check runs first so a frame from a future protocol —
/// which may contain variants this build cannot parse — reports
/// [`WireError::Version`], not a confusing parse error.
fn decode_envelope<T>(
    payload: &[u8],
    get: impl FnOnce(&serde::Value) -> Result<T, WireError>,
) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload).map_err(|e| WireError::Malformed {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    let value: serde::Value = serde_json::from_str(text).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })?;
    let version = value
        .get("version")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| WireError::Malformed {
            detail: String::from("envelope has no numeric `version`"),
        })?;
    if version > u64::from(PROTOCOL_VERSION) {
        return Err(WireError::Version {
            found: u32::try_from(version).unwrap_or(u32::MAX),
            supported: PROTOCOL_VERSION,
        });
    }
    get(&value)
}

fn decode_slot<E: serde::Deserialize, T>(
    value: &serde::Value,
    slot: &str,
    pick: impl FnOnce(E) -> Option<T>,
) -> Result<T, WireError> {
    let envelope = E::from_value(value).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })?;
    pick(envelope).ok_or_else(|| WireError::Malformed {
        detail: format!("envelope has no `{slot}`"),
    })
}

/// Encodes a request into a frame payload.
pub fn encode_request(request: &Request) -> Result<Vec<u8>, WireError> {
    encode(&RequestFrame {
        version: PROTOCOL_VERSION,
        request: Some(request.clone()),
    })
}

/// Decodes a frame payload into a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    decode_envelope(payload, |v| {
        decode_slot(v, "request", |e: RequestFrame| e.request)
    })
}

/// Encodes a response into a frame payload.
pub fn encode_response(response: &Response) -> Result<Vec<u8>, WireError> {
    encode(&ResponseFrame {
        version: PROTOCOL_VERSION,
        response: Some(response.clone()),
    })
}

/// Decodes a frame payload into a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    decode_envelope(payload, |v| {
        decode_slot(v, "response", |e: ResponseFrame| e.response)
    })
}

/// Encodes an event into a frame payload.
pub fn encode_event(event: &Event) -> Result<Vec<u8>, WireError> {
    encode(&EventFrame {
        version: PROTOCOL_VERSION,
        event: Some(event.clone()),
    })
}

/// Decodes a frame payload into an event.
pub fn decode_event(payload: &[u8]) -> Result<Event, WireError> {
    decode_envelope(payload, |v| {
        decode_slot(v, "event", |e: EventFrame| e.event)
    })
}

fn encode<T: Serialize>(envelope: &T) -> Result<Vec<u8>, WireError> {
    serde_json::to_string(envelope)
        .map(String::into_bytes)
        .map_err(|e| WireError::Malformed {
            detail: e.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_sim::platform::Platform;

    #[test]
    fn request_round_trips_through_a_frame() {
        let req = Request::SubmitCampaign {
            spec: Box::new(CampaignSpec::quick(Platform::GlucosymOref0)),
            shards: 4,
            priority: 2,
            seed: String::from("0"),
        };
        let payload = encode_request(&req).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(decode_request(&back).unwrap(), req);
        assert_eq!(read_frame(&mut cursor), Err(WireError::Closed));
    }

    #[test]
    fn future_version_is_a_typed_error_even_with_unknown_variants() {
        let payload = br#"{"version": 99, "request": {"WarpCore": {"dilithium": 7}}}"#;
        assert_eq!(
            decode_request(payload),
            Err(WireError::Version {
                found: 99,
                supported: PROTOCOL_VERSION
            })
        );
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"xx");
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor),
            Err(WireError::Oversized {
                len: u32::MAX as usize,
                max: MAX_FRAME
            })
        );
    }

    #[test]
    fn truncation_inside_prefix_or_payload_is_typed() {
        let mut cursor: &[u8] = &[1, 0];
        assert_eq!(read_frame(&mut cursor), Err(WireError::Truncated));
        let mut cursor: &[u8] = &[5, 0, 0, 0, b'h', b'i'];
        assert_eq!(read_frame(&mut cursor), Err(WireError::Truncated));
    }

    #[test]
    fn events_and_responses_round_trip() {
        let ev = Event::ShardDone {
            job: String::from("abc"),
            shard: 1,
            shards: 3,
        };
        assert_eq!(decode_event(&encode_event(&ev).unwrap()).unwrap(), ev);
        let resp = Response::Error {
            code: String::from("unknown-job"),
            detail: String::from("no job xyz"),
        };
        assert_eq!(
            decode_response(&encode_response(&resp).unwrap()).unwrap(),
            resp
        );
    }
}
