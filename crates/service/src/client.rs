//! Client side of the campaign service protocol: a thin synchronous
//! wrapper over one Unix-socket connection.

use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::job::JobManifest;
use crate::wire::{
    decode_event, decode_response, encode_request, read_frame, write_frame, Event, Request,
    Response,
};
use crate::ServiceError;
use aps_sim::campaign::CampaignSpec;
use aps_tracestore::StoreInfo;

/// One connection to a running daemon.
pub struct Client {
    stream: UnixStream,
}

/// Outcome of a submission, unpacked from [`Response::Submitted`].
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// Job id (the hex content-address).
    pub job: String,
    /// State right after submission.
    pub state: String,
    /// Campaign grid size.
    pub total_jobs: usize,
    /// `true` when served with zero executor work.
    pub cached: bool,
}

impl Client {
    /// Connects to the daemon socket.
    pub fn connect(socket: &Path) -> Result<Client, ServiceError> {
        let stream = UnixStream::connect(socket).map_err(|e| ServiceError::Io {
            path: socket.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(Client { stream })
    }

    /// Sends one request and reads its response. [`Response::Error`]
    /// becomes [`ServiceError::Remote`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let payload = encode_request(request)?;
        write_frame(&mut self.stream, &payload)?;
        let reply = read_frame(&mut self.stream)?;
        match decode_response(&reply)? {
            Response::Error { code, detail } => Err(ServiceError::Remote { code, detail }),
            other => Ok(other),
        }
    }

    /// Submits a campaign.
    pub fn submit(
        &mut self,
        spec: CampaignSpec,
        shards: usize,
        priority: u32,
        seed: &str,
    ) -> Result<Submitted, ServiceError> {
        match self.request(&Request::SubmitCampaign {
            spec: Box::new(spec),
            shards,
            priority,
            seed: String::from(seed),
        })? {
            Response::Submitted {
                job,
                state,
                total_jobs,
                cached,
            } => Ok(Submitted {
                job,
                state,
                total_jobs,
                cached,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches manifests: one for `job`, or all when `job` is empty.
    pub fn status(&mut self, job: &str) -> Result<Vec<JobManifest>, ServiceError> {
        match self.request(&Request::Status {
            job: String::from(job),
        })? {
            Response::Status { jobs } => Ok(jobs),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a queued or running job.
    pub fn cancel(&mut self, job: &str) -> Result<(), ServiceError> {
        match self.request(&Request::Cancel {
            job: String::from(job),
        })? {
            Response::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Locates a finished job's result store.
    pub fn fetch(&mut self, job: &str) -> Result<(String, StoreInfo), ServiceError> {
        match self.request(&Request::Fetch {
            job: String::from(job),
        })? {
            Response::Fetched { path, info } => Ok((path, info)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        match self.request(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Turns this connection into an event stream for `job`. The
    /// daemon acknowledges, then pushes [`Event`] frames until the
    /// job is terminal or the daemon closes.
    pub fn subscribe(mut self, job: &str) -> Result<EventStream, ServiceError> {
        match self.request(&Request::Subscribe {
            job: String::from(job),
        })? {
            Response::Done => Ok(EventStream {
                stream: self.stream,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Subscribes and blocks until the job is terminal, returning
    /// `(state, digest)`. A daemon shutdown before completion is a
    /// [`ServiceError::Remote`] with code `closing`.
    pub fn wait(self, job: &str) -> Result<(String, String), ServiceError> {
        let mut events = self.subscribe(job)?;
        loop {
            match events.next_event()? {
                Event::JobDone { state, digest, .. } => return Ok((state, digest)),
                Event::Closing => {
                    return Err(ServiceError::Remote {
                        code: String::from("closing"),
                        detail: String::from("daemon shut down before the job finished"),
                    })
                }
                Event::Progress { .. } | Event::ShardDone { .. } => {}
            }
        }
    }
}

fn unexpected(response: &Response) -> ServiceError {
    ServiceError::Remote {
        code: String::from("unexpected-response"),
        detail: format!("unexpected response variant: {response:?}"),
    }
}

/// Receiving half of a [`Client::subscribe`] connection.
pub struct EventStream {
    stream: UnixStream,
}

impl EventStream {
    /// Blocks for the next event.
    pub fn next_event(&mut self) -> Result<Event, ServiceError> {
        let payload = read_frame(&mut self.stream)?;
        Ok(decode_event(&payload)?)
    }
}
