//! Campaign-as-a-service: a single-node asynchronous campaign
//! orchestrator over a local Unix socket.
//!
//! The daemon ([`daemon::run_daemon`], `repro serve`) accepts jobs
//! over the length-prefixed JSON protocol in [`wire`]
//! (`SubmitCampaign`/`Status`/`Subscribe`/`Cancel`/`Fetch`/
//! `Shutdown`); the existing `aps_sim` serde specs are the currency —
//! the protocol adds no second schema. Each submission is:
//!
//! 1. **content-addressed** — [`cache::cache_key`] over (spec hash,
//!    seed, code-version hash), the same fingerprints the tracestore
//!    header carries, fronts a result cache of `aps_tracestore`
//!    files: a resubmitted campaign returns cached traces with zero
//!    executor work;
//! 2. **sharded** — `aps_sim::shard::plan_shards` splits the grid
//!    into standalone sub-specs whose expansions concatenate to
//!    exactly the parent job list;
//! 3. **resumable** — every shard runs through the existing
//!    `run_campaign_resumable` with its versioned
//!    `CampaignCheckpoint` persisted per shard and a flushed-ahead
//!    result log, so a SIGKILLed daemon restarts, resumes every
//!    incomplete shard, and merges a result bit-identical to an
//!    uninterrupted serial run (pinned by tests and the CI
//!    `service-smoke` job).
//!
//! The client half ([`client::Client`], `repro submit`/`status`/
//! `fetch`/`cancel`) speaks the same protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod job;
pub mod wire;

pub use cache::{cache_key, CacheStats, ResultCache};
pub use client::Client;
pub use daemon::{run_daemon, ServiceConfig};
pub use job::{JobManifest, LogLine};
pub use wire::{Event, Request, Response, WireError, MAX_FRAME, PROTOCOL_VERSION};

/// Service-level failure (I/O, corrupt state, protocol errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Filesystem or socket I/O failed.
    Io {
        /// Path (or socket) involved.
        path: String,
        /// Rendered OS error.
        detail: String,
    },
    /// On-disk state failed to parse or is from a newer version.
    Corrupt {
        /// Offending file.
        path: String,
        /// What failed.
        detail: String,
    },
    /// A wire-protocol failure, wrapped for daemon/client callers.
    Wire(WireError),
    /// The peer reported an error response.
    Remote {
        /// Stable machine-readable error class.
        code: String,
        /// Human-readable explanation.
        detail: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
            ServiceError::Corrupt { path, detail } => {
                write!(f, "corrupt state in {path}: {detail}")
            }
            ServiceError::Wire(e) => write!(f, "{e}"),
            ServiceError::Remote { code, detail } => {
                write!(f, "service error [{code}]: {detail}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> ServiceError {
        ServiceError::Wire(e)
    }
}
