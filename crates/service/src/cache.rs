//! Content-addressed campaign result cache.
//!
//! A finished campaign with zero failed jobs is written — through the
//! concurrent-safe `FileTraceWriter::create_unique` /
//! `finalize_if_absent` pair — to `<data>/cache/<key>.apst`, where
//! `key` is [`cache_key`] over the same three fingerprints the
//! tracestore header already carries:
//!
//! ```text
//! key = fnv1a(spec_hash ‖ seed ‖ code_version_hash)   (u64, hex name)
//! ```
//!
//! Resubmitting an identical campaign therefore resolves to the same
//! file name and is served without touching the executor; changing
//! the spec, the seed lane, or the code version changes the key and
//! misses. A hit additionally validates the store header's
//! `spec_hash` and `code_version_hash` against the expected values,
//! so a hash-collision or hand-copied file can never masquerade as a
//! cached result.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

use crate::ServiceError;
use aps_tracestore::{code_version_hash, to_hex, StoreError, TraceStoreReader};

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Content address of one campaign result: FNV-1a over the little-
/// endian bytes of (spec hash, seed, code-version hash) — the exact
/// fingerprints the tracestore header records.
pub fn cache_key(spec_hash: u64, seed: u64, code_hash: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for word in [spec_hash, seed, code_hash] {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Hit/miss counters, persisted to `<cache>/stats.json` so service
/// smoke runs can assert cache behavior from artifacts alone.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct CacheStats {
    /// Stats schema version.
    pub version: u32,
    /// Submissions served from an existing cache entry.
    pub hits: usize,
    /// Submissions that had to execute.
    pub misses: usize,
    /// Entries written by this daemon.
    pub writes: usize,
    /// Finalizes skipped because another writer won the race.
    pub skipped_writes: usize,
}

/// The on-disk cache directory.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `data_dir/cache`.
    pub fn open(data_dir: &Path) -> Result<ResultCache, ServiceError> {
        let dir = data_dir.join("cache");
        std::fs::create_dir_all(&dir).map_err(|e| ServiceError::Io {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(ResultCache { dir })
    }

    /// Path of the entry for `key` (present or not).
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.apst", to_hex(key)))
    }

    /// Opens and validates the entry for `key`: the store must parse
    /// and its header must carry exactly the expected `spec_hash` and
    /// the current code-version hash. Anything else is a miss
    /// (`None`) — a corrupt or foreign file never serves a hit.
    pub fn lookup(&self, key: u64, spec_hash: u64) -> Option<TraceStoreReader> {
        let path = self.entry_path(key);
        if !path.exists() {
            return None;
        }
        match TraceStoreReader::open(&path) {
            Ok(reader) => {
                let header = reader.header();
                if header.spec_hash == spec_hash && header.code_version_hash == code_version_hash()
                {
                    Some(reader)
                } else {
                    None
                }
            }
            Err(StoreError::Io { .. }) => None,
            Err(_) => None,
        }
    }

    /// Loads persisted stats (default when absent or unreadable).
    pub fn load_stats(&self) -> CacheStats {
        let path = self.dir.join("stats.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_default(),
            Err(_) => CacheStats::default(),
        }
    }

    /// Atomically persists stats to `<cache>/stats.json`.
    pub fn save_stats(&self, stats: &CacheStats) -> Result<(), ServiceError> {
        let path = self.dir.join("stats.json");
        let tmp = self.dir.join("stats.json.tmp");
        let text = serde_json::to_string_pretty(stats).map_err(|e| ServiceError::Corrupt {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        let io = |p: &Path| {
            let p = p.display().to_string();
            move |e: std::io::Error| ServiceError::Io {
                path: p.clone(),
                detail: e.to_string(),
            }
        };
        std::fs::write(&tmp, text).map_err(io(&tmp))?;
        std::fs::rename(&tmp, &path).map_err(io(&path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_changes_with_every_component() {
        let base = cache_key(1, 2, 3);
        assert_ne!(base, cache_key(9, 2, 3), "spec hash must matter");
        assert_ne!(base, cache_key(1, 9, 3), "seed must matter");
        assert_ne!(base, cache_key(1, 2, 9), "code hash must matter");
        assert_eq!(base, cache_key(1, 2, 3), "key is deterministic");
    }

    #[test]
    fn lookup_misses_on_absent_and_mismatched_entries() {
        let data = std::env::temp_dir().join("aps_service_cache_test");
        let _ = std::fs::remove_dir_all(&data);
        let cache = ResultCache::open(&data).unwrap();
        let key = cache_key(11, 0, code_version_hash());
        assert!(cache.lookup(key, 11).is_none(), "empty cache misses");

        // Write a valid store under the key, but with a different
        // spec hash in the header: must still miss.
        let stored = aps_tracestore::write_store(&[], 99).unwrap();
        std::fs::write(cache.entry_path(key), stored).unwrap();
        assert!(cache.lookup(key, 11).is_none(), "wrong spec hash misses");

        // Matching header hits.
        let stored = aps_tracestore::write_store(&[], 11).unwrap();
        std::fs::write(cache.entry_path(key), stored).unwrap();
        assert!(cache.lookup(key, 11).is_some());

        // Corrupt file misses rather than erroring.
        std::fs::write(cache.entry_path(key), b"not a store").unwrap();
        assert!(cache.lookup(key, 11).is_none());
        let _ = std::fs::remove_dir_all(&data);
    }

    #[test]
    fn stats_persist_and_reload() {
        let data = std::env::temp_dir().join("aps_service_cache_stats_test");
        let _ = std::fs::remove_dir_all(&data);
        let cache = ResultCache::open(&data).unwrap();
        assert_eq!(cache.load_stats(), CacheStats::default());
        let stats = CacheStats {
            version: 1,
            hits: 2,
            misses: 5,
            writes: 4,
            skipped_writes: 1,
        };
        cache.save_stats(&stats).unwrap();
        assert_eq!(cache.load_stats(), stats);
        let _ = std::fs::remove_dir_all(&data);
    }
}
