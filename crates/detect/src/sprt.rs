//! Wald's Sequential Probability Ratio Test.
//!
//! The classic sequential hypothesis test (§II cites "classic
//! Sequential Probability Ratio Test (SPRT) of Wald" as a sensor-fault
//! defense): observations are assumed Gaussian with known variance;
//! the test accumulates the log-likelihood ratio between an
//! out-of-control mean `mu1` and an in-control mean `mu0` and decides
//! as soon as the ratio leaves the `(B, A)` band derived from the
//! target error rates.

use crate::{ChangeDetector, Decision};
use serde::{Deserialize, Serialize};

/// SPRT parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SprtConfig {
    /// In-control mean of the residual stream.
    pub mu0: f64,
    /// Out-of-control mean to test against (the smallest shift worth
    /// detecting). The test is run two-sided: a mirrored `−mu1` branch
    /// covers downward shifts.
    pub mu1: f64,
    /// Residual standard deviation.
    pub sigma: f64,
    /// Target false-alarm probability α.
    pub alpha: f64,
    /// Target missed-detection probability β.
    pub beta: f64,
}

impl Default for SprtConfig {
    fn default() -> SprtConfig {
        SprtConfig {
            mu0: 0.0,
            mu1: 3.0,
            sigma: 1.0,
            alpha: 0.01,
            beta: 0.01,
        }
    }
}

/// Two-sided Wald SPRT over a Gaussian residual stream.
///
/// When either one-sided log-likelihood ratio crosses the upper
/// boundary `ln((1−β)/α)` the detector reports [`Decision::Anomalous`]
/// and stays there until reset; crossing the lower boundary
/// `ln(β/(1−α))` accepts the in-control hypothesis and restarts that
/// branch (the standard "resetting SPRT" used for monitoring).
///
/// ```
/// use aps_detect::{ChangeDetector, Sprt, SprtConfig};
///
/// let mut test = Sprt::new(SprtConfig::default());
/// assert!(!test.update(0.2).is_anomalous()); // in control
/// let fired = (0..10).any(|_| test.update(3.5).is_anomalous());
/// assert!(fired); // a mu1-sized shift is decided within a few samples
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sprt {
    config: SprtConfig,
    llr_up: f64,
    llr_down: f64,
    tripped: bool,
}

impl Sprt {
    /// Creates the test from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sigma`, `alpha`, or `beta` are not positive, if
    /// `alpha + beta >= 1`, or if `mu1 == mu0` (no shift to test).
    pub fn new(config: SprtConfig) -> Sprt {
        assert!(config.sigma > 0.0, "sigma must be positive");
        assert!(
            config.alpha > 0.0 && config.beta > 0.0,
            "error rates must be positive"
        );
        assert!(config.alpha + config.beta < 1.0, "alpha + beta must be < 1");
        assert!(config.mu1 != config.mu0, "mu1 must differ from mu0");
        Sprt {
            config,
            llr_up: 0.0,
            llr_down: 0.0,
            tripped: false,
        }
    }

    /// Upper decision boundary `ln((1−β)/α)`.
    pub fn boundary_a(&self) -> f64 {
        ((1.0 - self.config.beta) / self.config.alpha).ln()
    }

    /// Lower decision boundary `ln(β/(1−α))`.
    pub fn boundary_b(&self) -> f64 {
        (self.config.beta / (1.0 - self.config.alpha)).ln()
    }

    /// Current log-likelihood ratios (upward, downward branches).
    pub fn llr(&self) -> (f64, f64) {
        (self.llr_up, self.llr_down)
    }

    fn step_branch(llr: &mut f64, x: f64, mu0: f64, mu1: f64, sigma: f64, a: f64, b: f64) -> bool {
        // Gaussian LLR increment: ((mu1-mu0)/sigma^2) * (x - (mu0+mu1)/2).
        *llr += (mu1 - mu0) / (sigma * sigma) * (x - 0.5 * (mu0 + mu1));
        if *llr >= a {
            return true;
        }
        if *llr <= b {
            *llr = 0.0; // accept H0, restart the branch
        }
        false
    }
}

impl ChangeDetector for Sprt {
    fn name(&self) -> &str {
        "sprt"
    }

    fn update(&mut self, value: f64) -> Decision {
        if self.tripped {
            return Decision::Anomalous;
        }
        let c = self.config;
        let (a, b) = (self.boundary_a(), self.boundary_b());
        let up = Self::step_branch(&mut self.llr_up, value, c.mu0, c.mu1, c.sigma, a, b);
        let down = Self::step_branch(
            &mut self.llr_down,
            value,
            c.mu0,
            2.0 * c.mu0 - c.mu1, // mirrored shift
            c.sigma,
            a,
            b,
        );
        if up || down {
            self.tripped = true;
            Decision::Anomalous
        } else {
            Decision::Normal
        }
    }

    fn reset(&mut self) {
        self.llr_up = 0.0;
        self.llr_down = 0.0;
        self.tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_have_expected_signs() {
        let s = Sprt::new(SprtConfig::default());
        assert!(s.boundary_a() > 0.0);
        assert!(s.boundary_b() < 0.0);
    }

    #[test]
    fn sustained_positive_shift_trips_quickly() {
        let mut s = Sprt::new(SprtConfig::default());
        let mut n = 0;
        while !s.update(3.0).is_anomalous() {
            n += 1;
            assert!(n < 20, "took too long to detect a mu1-sized shift");
        }
        // Detection in a handful of samples for a shift at exactly mu1.
        assert!(n <= 10, "n = {n}");
    }

    #[test]
    fn sustained_negative_shift_also_trips() {
        let mut s = Sprt::new(SprtConfig::default());
        let mut fired = false;
        for _ in 0..20 {
            fired |= s.update(-3.0).is_anomalous();
        }
        assert!(fired, "two-sided test missed a downward shift");
    }

    #[test]
    fn branch_restarts_keep_llr_bounded_in_control() {
        let mut s = Sprt::new(SprtConfig::default());
        for i in 0..1000 {
            let v = if i % 2 == 0 { 0.5 } else { -0.5 };
            s.update(v);
            let (up, down) = s.llr();
            assert!(up < s.boundary_a() && down < s.boundary_a());
            assert!(up >= s.boundary_b() - 5.0 && down >= s.boundary_b() - 5.0);
        }
    }

    #[test]
    fn alarm_latches_until_reset() {
        let mut s = Sprt::new(SprtConfig::default());
        for _ in 0..30 {
            s.update(5.0);
        }
        assert!(s.update(0.0).is_anomalous(), "alarm must latch");
        s.reset();
        assert!(!s.update(0.0).is_anomalous());
    }

    #[test]
    fn tighter_error_rates_widen_the_band() {
        let loose = Sprt::new(SprtConfig::default());
        let tight = Sprt::new(SprtConfig {
            alpha: 0.0001,
            beta: 0.0001,
            ..SprtConfig::default()
        });
        assert!(tight.boundary_a() > loose.boundary_a());
        assert!(tight.boundary_b() < loose.boundary_b());
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_is_rejected() {
        Sprt::new(SprtConfig {
            sigma: 0.0,
            ..SprtConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "mu1 must differ")]
    fn degenerate_hypotheses_are_rejected() {
        Sprt::new(SprtConfig {
            mu1: 0.0,
            mu0: 0.0,
            ..SprtConfig::default()
        });
    }
}
