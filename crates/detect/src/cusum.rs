//! Two-sided CUSUM control chart.
//!
//! The cumulative-sum chart of Page, cited by the paper (§II, via
//! Cárdenas et al.) as the standard change-detection defense for
//! process-control sensor streams. Each side accumulates evidence of a
//! mean shift beyond an allowance (`drift`) and alarms when the sum
//! exceeds `threshold`.

use crate::{ChangeDetector, Decision};
use serde::{Deserialize, Serialize};

/// CUSUM parameters, in units of the monitored residual.
///
/// With residuals standardized to unit variance, the classic tuning is
/// `drift = δ/2` (half the shift to detect, in sigmas) and
/// `threshold ≈ 4–5` for an in-control average run length of a few
/// hundred samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumConfig {
    /// Allowance `k` subtracted from each deviation before summing.
    pub drift: f64,
    /// Decision threshold `h`.
    pub threshold: f64,
}

impl Default for CusumConfig {
    fn default() -> CusumConfig {
        CusumConfig {
            drift: 0.5,
            threshold: 5.0,
        }
    }
}

/// Two-sided CUSUM over a residual stream with in-control mean zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cusum {
    config: CusumConfig,
    s_hi: f64,
    s_lo: f64,
    tripped: bool,
}

impl Cusum {
    /// Creates the chart from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `drift` is negative or `threshold` is not positive.
    pub fn new(config: CusumConfig) -> Cusum {
        assert!(config.drift >= 0.0, "drift must be non-negative");
        assert!(config.threshold > 0.0, "threshold must be positive");
        Cusum {
            config,
            s_hi: 0.0,
            s_lo: 0.0,
            tripped: false,
        }
    }

    /// Current upper/lower cumulative sums.
    pub fn sums(&self) -> (f64, f64) {
        (self.s_hi, self.s_lo)
    }
}

impl ChangeDetector for Cusum {
    fn name(&self) -> &str {
        "cusum"
    }

    fn update(&mut self, value: f64) -> Decision {
        if self.tripped {
            return Decision::Anomalous;
        }
        self.s_hi = (self.s_hi + value - self.config.drift).max(0.0);
        self.s_lo = (self.s_lo - value - self.config.drift).max(0.0);
        if self.s_hi > self.config.threshold || self.s_lo > self.config.threshold {
            self.tripped = true;
            Decision::Anomalous
        } else {
            Decision::Normal
        }
    }

    fn reset(&mut self) {
        self.s_hi = 0.0;
        self.s_lo = 0.0;
        self.tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_stay_at_zero_for_sub_drift_noise() {
        let mut c = Cusum::new(CusumConfig::default());
        for i in 0..500 {
            let v = if i % 2 == 0 { 0.4 } else { -0.4 };
            c.update(v);
        }
        assert_eq!(c.sums(), (0.0, 0.0));
    }

    #[test]
    fn detection_delay_shrinks_with_shift_size() {
        let delay = |shift: f64| -> usize {
            let mut c = Cusum::new(CusumConfig::default());
            let mut n = 0;
            while !c.update(shift).is_anomalous() {
                n += 1;
                assert!(n < 1000);
            }
            n
        };
        assert!(
            delay(4.0) < delay(1.0),
            "bigger shifts must be caught sooner"
        );
    }

    #[test]
    fn downward_shifts_are_caught_by_the_low_side() {
        let mut c = Cusum::new(CusumConfig::default());
        let mut fired = false;
        for _ in 0..20 {
            fired |= c.update(-2.0).is_anomalous();
        }
        assert!(fired);
        assert!(c.sums().1 > c.sums().0);
    }

    #[test]
    fn one_outlier_does_not_trip_a_well_tuned_chart() {
        let mut c = Cusum::new(CusumConfig::default());
        for _ in 0..100 {
            c.update(0.0);
        }
        assert!(
            !c.update(4.0).is_anomalous(),
            "single 4-sigma spike tripped"
        );
        // ... but the evidence is retained:
        assert!(c.sums().0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_is_rejected() {
        Cusum::new(CusumConfig {
            threshold: 0.0,
            ..CusumConfig::default()
        });
    }
}
