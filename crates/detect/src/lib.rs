//! Sensor-stream anomaly detectors for APS sensor data.
//!
//! The paper's threat model assumes "the sensor data received by the
//! controller and the monitor are fault-free or protected using
//! existing methods" — naming Wald's Sequential Probability Ratio Test
//! and CUSUM change detection as those methods (§II). This crate
//! implements that protection layer so the full defense-in-depth stack
//! can be exercised in one workspace:
//!
//! * [`Sprt`] — Wald's SPRT deciding between an in-control and an
//!   out-of-control Gaussian hypothesis on a residual stream;
//! * [`Cusum`] — two-sided cumulative-sum control chart;
//! * [`Ewma`] — exponentially-weighted moving-average control chart;
//! * [`CgmGuard`] — adapts any [`ChangeDetector`] to a CGM stream by
//!   monitoring the *innovation* (reading minus a trend-extrapolated
//!   prediction), so physiological drift does not alarm but step,
//!   stuck-at, and runaway sensor faults do.
//!
//! These detectors guard the *sensor path*; the context-aware monitor
//! of `aps-core` guards the *controller*. [`CgmGuard`] composes with it
//! in the closed loop (see the `sensor_attack` example).
//!
//! # Example
//!
//! ```
//! use aps_detect::{ChangeDetector, Cusum, CusumConfig};
//!
//! let mut det = Cusum::new(CusumConfig { drift: 0.5, threshold: 5.0 });
//! for _ in 0..50 {
//!     assert!(!det.update(0.1).is_anomalous()); // in control
//! }
//! let mut fired = false;
//! for _ in 0..10 {
//!     fired |= det.update(4.0).is_anomalous(); // mean shift
//! }
//! assert!(fired);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cusum;
mod ewma;
mod guard;
mod sprt;

pub use cusum::{Cusum, CusumConfig};
pub use ewma::{Ewma, EwmaConfig};
pub use guard::{CgmGuard, GuardConfig};
pub use sprt::{Sprt, SprtConfig};

use serde::{Deserialize, Serialize};

/// Verdict of a detector after one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// The stream looks in-control so far.
    Normal,
    /// A change/anomaly has been detected at this observation.
    Anomalous,
}

impl Decision {
    /// `true` for [`Decision::Anomalous`].
    pub fn is_anomalous(self) -> bool {
        self == Decision::Anomalous
    }
}

/// An online change detector over a scalar stream.
///
/// Implementations are fed one residual per control cycle and answer
/// whether the stream has left its in-control behavior. After an
/// anomalous decision the detector keeps alarming until [`reset`];
/// callers decide whether to latch, reset, or escalate.
///
/// [`reset`]: ChangeDetector::reset
pub trait ChangeDetector: Send {
    /// Detector identifier (e.g. `"cusum"`).
    fn name(&self) -> &str;

    /// Consumes one observation and returns the current verdict.
    fn update(&mut self, value: f64) -> Decision;

    /// Returns the detector to its initial (in-control) state.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All three detectors, identically parameterized where possible,
    /// must stay quiet on a zero stream and fire on a large shift.
    fn zoo() -> Vec<Box<dyn ChangeDetector>> {
        vec![
            Box::new(Sprt::new(SprtConfig::default())),
            Box::new(Cusum::new(CusumConfig::default())),
            Box::new(Ewma::new(EwmaConfig::default())),
        ]
    }

    #[test]
    fn detectors_are_quiet_in_control() {
        for mut d in zoo() {
            for i in 0..200 {
                let v = if i % 2 == 0 { 0.3 } else { -0.3 };
                assert!(
                    !d.update(v).is_anomalous(),
                    "{} fired on an in-control stream at {i}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn detectors_fire_on_large_shift() {
        for mut d in zoo() {
            for _ in 0..50 {
                d.update(0.0);
            }
            let mut fired = false;
            for _ in 0..20 {
                fired |= d.update(8.0).is_anomalous();
            }
            assert!(fired, "{} missed an 8-sigma shift", d.name());
        }
    }

    #[test]
    fn reset_restores_quiet_state() {
        for mut d in zoo() {
            for _ in 0..50 {
                d.update(10.0);
            }
            d.reset();
            assert!(
                !d.update(0.0).is_anomalous(),
                "{} still alarming after reset",
                d.name()
            );
        }
    }
}
