//! CGM sensor guard: adapts a change detector to a glucose stream.
//!
//! Raw BG values drift physiologically, so feeding them straight into
//! a control chart would alarm on every meal. The guard instead
//! monitors the *innovation* — the difference between the reading and
//! a linear trend extrapolation of the previous two readings — which
//! is small and zero-mean for genuine glucose dynamics (the body is a
//! slow system; 5-minute curvature is tiny) but jumps on step,
//! offset, and runaway sensor faults. A run-length check catches
//! stuck-at (DoS/hold) faults that the innovation cannot see.

use crate::{ChangeDetector, Decision};
use aps_types::MgDl;
use serde::{Deserialize, Serialize};

/// Guard parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Innovation standard deviation used to standardize residuals
    /// before the detector (mg/dL; CGM noise plus model error).
    pub sigma: f64,
    /// Consecutive *identical* readings before declaring a stuck
    /// sensor. CGMs quantize to 1 mg/dL, so runs of identical readings
    /// are normal near equilibrium: a noise-free closed loop regulated
    /// at target genuinely emits 12–15 identical quantized readings in
    /// a row. The default (24 = two hours) stays beyond that while
    /// still catching hold/DoS faults well inside one control horizon.
    pub stuck_limit: usize,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            sigma: 3.0,
            stuck_limit: 24,
        }
    }
}

/// Sensor-path anomaly guard wrapping any [`ChangeDetector`].
///
/// Feed it each CGM reading; it standardizes the trend innovation,
/// drives the inner detector, and additionally tracks stuck-at runs.
///
/// # Example
///
/// ```
/// use aps_detect::{CgmGuard, Cusum, CusumConfig, GuardConfig};
/// use aps_types::MgDl;
///
/// let mut guard = CgmGuard::new(Cusum::new(CusumConfig::default()), GuardConfig::default());
/// // A plausible rising trace: no alarms.
/// for i in 0..20 {
///     assert!(!guard.observe(MgDl(120.0 + i as f64)).is_anomalous());
/// }
/// // A 60 mg/dL spoofed step: caught.
/// let mut fired = false;
/// for _ in 0..5 {
///     fired |= guard.observe(MgDl(200.0)).is_anomalous();
/// }
/// assert!(fired);
/// ```
#[derive(Debug, Clone)]
pub struct CgmGuard<D> {
    detector: D,
    config: GuardConfig,
    prev: Option<f64>,
    prev2: Option<f64>,
    flat_run: usize,
}

impl<D: ChangeDetector> CgmGuard<D> {
    /// Wraps `detector` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive or `stuck_limit` is zero.
    pub fn new(detector: D, config: GuardConfig) -> CgmGuard<D> {
        assert!(config.sigma > 0.0, "sigma must be positive");
        assert!(config.stuck_limit > 0, "stuck_limit must be positive");
        CgmGuard {
            detector,
            config,
            prev: None,
            prev2: None,
            flat_run: 0,
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Consumes one CGM reading and returns the verdict.
    pub fn observe(&mut self, reading: MgDl) -> Decision {
        let x = reading.value();
        let predicted = match (self.prev, self.prev2) {
            (Some(p), Some(pp)) => 2.0 * p - pp, // linear extrapolation
            (Some(p), None) => p,
            _ => x,
        };
        let innovation = (x - predicted) / self.config.sigma;

        if self.prev == Some(x) {
            self.flat_run += 1;
        } else {
            self.flat_run = 0;
        }
        self.prev2 = self.prev;
        self.prev = Some(x);

        let chart = self.detector.update(innovation);
        if chart.is_anomalous() || self.flat_run >= self.config.stuck_limit {
            Decision::Anomalous
        } else {
            Decision::Normal
        }
    }

    /// Resets the guard and its inner detector.
    pub fn reset(&mut self) {
        self.detector.reset();
        self.prev = None;
        self.prev2 = None;
        self.flat_run = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cusum, CusumConfig, Ewma, EwmaConfig, Sprt, SprtConfig};

    fn guard() -> CgmGuard<Cusum> {
        CgmGuard::new(Cusum::new(CusumConfig::default()), GuardConfig::default())
    }

    /// A smooth post-meal-like excursion: rise then fall, ±3 mg/dL per
    /// cycle of curvature at most.
    fn physiological(n: usize) -> Vec<MgDl> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                MgDl((140.0 + 40.0 * (t / 20.0).sin()).round())
            })
            .collect()
    }

    #[test]
    fn physiological_excursions_do_not_alarm() {
        let mut g = guard();
        for r in physiological(100) {
            assert!(!g.observe(r).is_anomalous(), "alarm at {r:?}");
        }
    }

    #[test]
    fn spoofed_step_is_caught() {
        let mut g = guard();
        for r in physiological(30) {
            g.observe(r);
        }
        let mut fired = false;
        for _ in 0..5 {
            fired |= g.observe(MgDl(400.0)).is_anomalous();
        }
        assert!(fired);
    }

    #[test]
    fn stuck_sensor_is_caught_by_run_length() {
        // Hold the reading perfectly constant: innovations are zero, so
        // only the run-length check can see it.
        let mut g = guard();
        let mut fired = false;
        for _ in 0..30 {
            fired |= g.observe(MgDl(120.0)).is_anomalous();
        }
        assert!(fired, "stuck-at fault missed");
    }

    #[test]
    fn slow_quantized_drift_does_not_look_stuck() {
        let mut g = guard();
        // One mg/dL step every 4 cycles: flat runs of 3, never 12.
        for i in 0..100 {
            let r = MgDl(120.0 + (i / 4) as f64);
            assert!(!g.observe(r).is_anomalous(), "false stuck alarm at {i}");
        }
    }

    #[test]
    fn reset_clears_history_and_runs() {
        let mut g = guard();
        for _ in 0..11 {
            g.observe(MgDl(120.0));
        }
        g.reset();
        for _ in 0..11 {
            assert!(!g.observe(MgDl(120.0)).is_anomalous());
        }
    }

    #[test]
    fn works_with_every_detector_kind() {
        let traces = physiological(50);
        let spoof = MgDl(500.0);
        // CUSUM
        let mut g = CgmGuard::new(Cusum::new(CusumConfig::default()), GuardConfig::default());
        traces.iter().for_each(|r| {
            g.observe(*r);
        });
        assert!((0..5).any(|_| g.observe(spoof).is_anomalous()));
        // EWMA
        let mut g = CgmGuard::new(Ewma::new(EwmaConfig::default()), GuardConfig::default());
        traces.iter().for_each(|r| {
            g.observe(*r);
        });
        assert!((0..5).any(|_| g.observe(spoof).is_anomalous()));
        // SPRT
        let mut g = CgmGuard::new(Sprt::new(SprtConfig::default()), GuardConfig::default());
        traces.iter().for_each(|r| {
            g.observe(*r);
        });
        assert!((0..5).any(|_| g.observe(spoof).is_anomalous()));
    }
}
