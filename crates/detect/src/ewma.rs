//! EWMA control chart.
//!
//! The exponentially-weighted moving-average chart smooths the residual
//! stream with factor `lambda` and alarms when the smoothed statistic
//! leaves its `±L·sigma_z` control limits (with the standard
//! steady-state variance `sigma² · λ/(2−λ)`). A light-weight
//! complement to CUSUM that reacts to small sustained drifts.

use crate::{ChangeDetector, Decision};
use serde::{Deserialize, Serialize};

/// EWMA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaConfig {
    /// Smoothing factor λ ∈ (0, 1]; small = long memory.
    pub lambda: f64,
    /// Control-limit width in steady-state sigmas.
    pub limit: f64,
    /// Residual standard deviation.
    pub sigma: f64,
}

impl Default for EwmaConfig {
    fn default() -> EwmaConfig {
        EwmaConfig {
            lambda: 0.2,
            limit: 4.0,
            sigma: 1.0,
        }
    }
}

/// EWMA chart over a residual stream with in-control mean zero.
///
/// ```
/// use aps_detect::{ChangeDetector, Ewma, EwmaConfig};
///
/// let mut chart = Ewma::new(EwmaConfig::default());
/// for _ in 0..20 {
///     assert!(!chart.update(0.1).is_anomalous());
/// }
/// let fired = (0..30).any(|_| chart.update(2.0).is_anomalous());
/// assert!(fired); // a sustained 2-sigma drift leaves the control band
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    config: EwmaConfig,
    z: f64,
    tripped: bool,
}

impl Ewma {
    /// Creates the chart from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]` or `sigma`/`limit` are
    /// not positive.
    pub fn new(config: EwmaConfig) -> Ewma {
        assert!(
            config.lambda > 0.0 && config.lambda <= 1.0,
            "lambda must be in (0, 1]"
        );
        assert!(config.sigma > 0.0, "sigma must be positive");
        assert!(config.limit > 0.0, "limit must be positive");
        Ewma {
            config,
            z: 0.0,
            tripped: false,
        }
    }

    /// Current smoothed statistic.
    pub fn statistic(&self) -> f64 {
        self.z
    }

    /// Steady-state control limit (absolute value).
    pub fn control_limit(&self) -> f64 {
        let c = self.config;
        c.limit * c.sigma * (c.lambda / (2.0 - c.lambda)).sqrt()
    }
}

impl ChangeDetector for Ewma {
    fn name(&self) -> &str {
        "ewma"
    }

    fn update(&mut self, value: f64) -> Decision {
        if self.tripped {
            return Decision::Anomalous;
        }
        let l = self.config.lambda;
        self.z = l * value + (1.0 - l) * self.z;
        if self.z.abs() > self.control_limit() {
            self.tripped = true;
            Decision::Anomalous
        } else {
            Decision::Normal
        }
    }

    fn reset(&mut self) {
        self.z = 0.0;
        self.tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistic_converges_to_the_stream_mean() {
        let mut e = Ewma::new(EwmaConfig {
            limit: 100.0,
            ..EwmaConfig::default()
        });
        for _ in 0..200 {
            e.update(1.0);
        }
        assert!((e.statistic() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn small_sustained_drift_is_eventually_caught() {
        let mut e = Ewma::new(EwmaConfig::default());
        let mut fired = false;
        for _ in 0..100 {
            fired |= e.update(2.0).is_anomalous();
        }
        assert!(fired, "EWMA missed a 2-sigma sustained drift");
    }

    #[test]
    fn control_limit_formula() {
        let e = Ewma::new(EwmaConfig {
            lambda: 0.2,
            limit: 3.0,
            sigma: 2.0,
        });
        let expected = 3.0 * 2.0 * (0.2f64 / 1.8).sqrt();
        assert!((e.control_limit() - expected).abs() < 1e-12);
    }

    #[test]
    fn lambda_one_degenerates_to_shewhart() {
        // With lambda = 1 the statistic is the raw observation, so a
        // single sample past L·sigma alarms.
        let mut e = Ewma::new(EwmaConfig {
            lambda: 1.0,
            limit: 3.0,
            sigma: 1.0,
        });
        assert!(!e.update(2.9).is_anomalous());
        assert!(e.update(3.1).is_anomalous());
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0, 1]")]
    fn zero_lambda_is_rejected() {
        Ewma::new(EwmaConfig {
            lambda: 0.0,
            ..EwmaConfig::default()
        });
    }
}
