//! `lint.toml` parsing — a hand-rolled subset of TOML (no vendored
//! dependency, matching the analyzer's zero-dependency rule).
//!
//! Supported grammar, which is all the lint config needs:
//!
//! ```toml
//! # comment
//! [section]
//! key = ["a", "b",     # trailing comments allowed
//!        "c"]          # arrays may span lines
//! other = "scalar"
//! ```
//!
//! Anything else (tables-in-arrays, numbers, booleans, dotted keys) is
//! a parse error — loudly, so a typo in `lint.toml` can't silently
//! disable a rule.

use std::collections::BTreeMap;

/// Lint configuration: which functions/modules/containers each rule
/// family applies to. Empty lists disable the corresponding rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// `alloc`: qualified (`Type::method`) or bare function names whose
    /// bodies must stay allocation-free.
    pub deny_alloc_functions: Vec<String>,
    /// `nan`: path prefixes (files or directories, repo-relative) where
    /// NaN-masking float folds must sit in finite-guarded functions.
    pub nan_trap_modules: Vec<String>,
    /// `det`: path prefixes where wall-clock/OS-entropy/hash-order
    /// nondeterminism is forbidden.
    pub determinism_modules: Vec<String>,
    /// `serde`: container type names that round-trip through
    /// checkpoints/models/reports.
    pub serde_containers: Vec<String>,
    /// `sound`: path prefixes where every atomic `Ordering` use and
    /// `unsafe` block needs an adjacent `// sound:` justification.
    pub sound_audit_modules: Vec<String>,
    /// `unwrap`: path prefixes where library-code `.unwrap()`/
    /// `.expect()` are tracked (baselined, ratcheted down).
    pub unwrap_audit_modules: Vec<String>,
}

impl LintConfig {
    /// Parses a [`LintConfig`] from `lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a line number) for any
    /// construct outside the supported subset, and for unknown
    /// sections or keys — unknown names are typos until proven
    /// otherwise.
    pub fn parse(src: &str) -> Result<LintConfig, String> {
        let raw = parse_toml(src)?;
        let mut cfg = LintConfig::default();
        for (section, keys) in &raw {
            for (key, values) in keys {
                let slot = match (section.as_str(), key.as_str()) {
                    ("deny_alloc", "functions") => &mut cfg.deny_alloc_functions,
                    ("nan_trap", "modules") => &mut cfg.nan_trap_modules,
                    ("determinism", "modules") => &mut cfg.determinism_modules,
                    ("serde_compat", "containers") => &mut cfg.serde_containers,
                    ("sound_audit", "modules") => &mut cfg.sound_audit_modules,
                    ("unwrap_audit", "modules") => &mut cfg.unwrap_audit_modules,
                    _ => return Err(format!("unknown config entry [{section}] {key}")),
                };
                slot.extend(values.iter().cloned());
            }
        }
        Ok(cfg)
    }
}

/// Raw parse: section → key → list of strings (a scalar string parses
/// as a one-element list).
fn parse_toml(src: &str) -> Result<BTreeMap<String, BTreeMap<String, Vec<String>>>, String> {
    let mut out: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((n, raw_line)) = lines.next() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", n + 1))?
                .trim();
            if name.is_empty() || name.contains(['[', ']', '"']) {
                return Err(format!("line {}: bad section name {name:?}", n + 1));
            }
            section = name.to_owned();
            out.entry(section.clone()).or_default();
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
        let key = key.trim();
        if key.is_empty() || key.contains('"') {
            return Err(format!("line {}: bad key {key:?}", n + 1));
        }
        if section.is_empty() {
            return Err(format!("line {}: key {key:?} outside any [section]", n + 1));
        }
        // Accumulate the value, pulling more lines until the array
        // closes (strings in this subset never contain `]`, `#`, or
        // escapes, which keeps the line-wise scan honest).
        let mut value = rest.trim().to_owned();
        while value.starts_with('[') && !value.contains(']') {
            let (_, more) = lines
                .next()
                .ok_or_else(|| format!("line {}: unterminated array for {key:?}", n + 1))?;
            value.push(' ');
            value.push_str(strip_comment(more).trim());
        }
        let items = parse_value(&value).map_err(|e| format!("line {}: {e}", n + 1))?;
        out.entry(section.clone())
            .or_default()
            .entry(key.to_owned())
            .or_default()
            .extend(items);
    }
    Ok(out)
}

/// Drops a `#` comment, respecting (subset) string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"scalar"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(body) = value.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_owned())?;
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(part)?);
        }
        return Ok(items);
    }
    Ok(vec![parse_string(value)?])
}

/// Parses one double-quoted string (no escapes in this subset).
fn parse_string(s: &str) -> Result<String, String> {
    let body = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got {s:?}"))?;
    if body.contains(['"', '\\']) {
        return Err(format!("escapes/quotes not supported in {s:?}"));
    }
    Ok(body.to_owned())
}

/// `true` when repo-relative path `rel` is covered by config `entry`
/// (an exact file or a directory prefix).
pub fn path_matches(rel: &str, entry: &str) -> bool {
    let entry = entry.trim_end_matches('/');
    rel == entry || rel.starts_with(entry) && rel.as_bytes().get(entry.len()) == Some(&b'/')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = LintConfig::parse(
            "# top comment\n\
             [deny_alloc]\n\
             functions = [\"Rk4Scratch::integrate\", # inline\n\
                 \"LstmTrainer::train_batch\",\n\
             ]\n\
             [determinism]\n\
             modules = [\"crates/sim/src/campaign.rs\"]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.deny_alloc_functions,
            ["Rk4Scratch::integrate", "LstmTrainer::train_batch"]
        );
        assert_eq!(cfg.determinism_modules, ["crates/sim/src/campaign.rs"]);
        assert!(cfg.serde_containers.is_empty());
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(LintConfig::parse("[deny_alloc]\nfuncs = []\n").is_err());
        assert!(LintConfig::parse("[typo_section]\nmodules = []\n").is_err());
    }

    #[test]
    fn keys_outside_sections_are_errors() {
        assert!(LintConfig::parse("functions = []\n").is_err());
    }

    #[test]
    fn unterminated_constructs_are_errors() {
        assert!(LintConfig::parse("[x\n").is_err());
        assert!(LintConfig::parse("[deny_alloc]\nfunctions = [\"a\"\n").is_err());
    }

    #[test]
    fn path_matching_is_prefix_on_dir_boundaries() {
        assert!(path_matches(
            "crates/sim/src/campaign.rs",
            "crates/sim/src/campaign.rs"
        ));
        assert!(path_matches("crates/risk/src/lib.rs", "crates/risk/src"));
        assert!(!path_matches("crates/risky/src/lib.rs", "crates/risk/src"));
        assert!(!path_matches(
            "crates/sim/src/campaign_extra.rs",
            "crates/sim/src/campaign.rs"
        ));
    }
}
