//! Item-level scanner: turns a lexed token stream into an index of
//! functions, structs/enums, attributes, and `#[cfg(test)]` regions.
//!
//! Like the lexer, this is deliberately *not* a full Rust parser. It
//! tracks exactly what the rules need:
//!
//! - every `fn` with its qualified name (`Type::method` when inside an
//!   `impl`/`trait` block), its body token range, and whether it lives
//!   in test code;
//! - every `struct`/`enum` with its outer attributes and (for structs
//!   with named fields) each field's name, type tokens, and line;
//! - token-index ranges covered by `#[cfg(test)] mod … { … }` so rules
//!   can skip test code wholesale.
//!
//! Unrecognized constructs are skipped token-by-token; the scanner
//! never fails.

use crate::lexer::{lex, Lexed, Tok, TokKind};

/// A scanned function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `Type::name` when declared inside `impl Type`/`impl Trait for
    /// Type`/`trait Type` blocks, otherwise the bare name.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body (exclusive of the braces). Empty
    /// for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// `true` when the item sits inside a `#[cfg(test)]` region or
    /// carries a test-ish attribute (`#[test]`, `#[cfg(test)]`).
    pub in_test: bool,
}

/// One named field of a scanned struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// Type token texts, in order (e.g. `["Option", "<", "u64", ">"]`).
    pub ty: Vec<String>,
    /// 1-based line of the field name.
    pub line: u32,
}

/// A scanned `struct` or `enum` item.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: u32,
    /// Outer attribute texts, tokens joined with single spaces (e.g.
    /// `"derive ( Debug , Serialize )"`, `"serde ( default )"`).
    pub attrs: Vec<String>,
    /// Named fields (empty for enums and tuple/unit structs).
    pub fields: Vec<FieldItem>,
    /// `true` for `enum` items.
    pub is_enum: bool,
    /// `true` when declared inside a test region.
    pub in_test: bool,
}

/// Scanner output for one file.
#[derive(Debug)]
pub struct FileIndex {
    /// The underlying token stream and comments.
    pub lexed: Lexed,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
    /// All struct/enum items, in source order.
    pub structs: Vec<StructItem>,
    /// Token-index ranges (start, end-exclusive) covered by
    /// `#[cfg(test)]` modules.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileIndex {
    /// Whether the token at `idx` lies inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Qualified name of the function whose body contains token `idx`,
    /// if any (innermost wins since nested fns appear later in order).
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns.iter().rev().find(|f| f.body.contains(&idx))
    }
}

/// Scans `src` into a [`FileIndex`].
pub fn scan(src: &str) -> FileIndex {
    let lexed = lex(src);
    let close = match_braces(&lexed.toks);
    let mut idx = FileIndex {
        fns: Vec::new(),
        structs: Vec::new(),
        test_ranges: Vec::new(),
        lexed,
    };
    let toks = &idx.lexed.toks;

    // Stack of (impl/trait type name, token index where its block
    // closes). Popped lazily as the cursor passes the close index.
    let mut ctx: Vec<(String, usize)> = Vec::new();
    // Close indexes of `#[cfg(test)]` mod bodies currently containing
    // the cursor.
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut fns = Vec::new();
    let mut structs = Vec::new();
    let mut test_ranges = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        while ctx.last().map(|&(_, c)| i > c).unwrap_or(false) {
            ctx.pop();
        }
        while test_stack.last().map(|&c| i > c).unwrap_or(false) {
            test_stack.pop();
        }
        let t = &toks[i];

        // Outer attribute `#[…]` (inner `#![…]` is skipped without
        // being recorded).
        if t.is_punct("#") {
            let inner = toks.get(i + 1).map(|t| t.is_punct("!")).unwrap_or(false);
            let open = i + 1 + usize::from(inner);
            if toks.get(open).map(|t| t.is_punct("[")).unwrap_or(false) {
                let end = match_bracket(toks, open);
                if !inner {
                    pending_attrs.push(join(&toks[open + 1..end]));
                }
                i = end + 1;
                continue;
            }
        }

        if t.is_ident("mod") {
            let is_test_mod = pending_attrs.iter().any(|a| attr_is_test(a));
            pending_attrs.clear();
            // `mod name {` — find the brace (or `;` for out-of-line).
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                if is_test_mod {
                    let c = close[j].unwrap_or(toks.len());
                    test_ranges.push((j, c));
                    test_stack.push(c);
                }
                i = j + 1; // descend into the module body
            } else {
                i = j + 1;
            }
            continue;
        }

        if t.is_ident("impl") || t.is_ident("trait") {
            pending_attrs.clear();
            // Find the block brace; remember the last type-position
            // ident seen at angle-depth 0 (after `for`, if present).
            let mut name: Option<String> = None;
            let mut angle = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.is_punct("{") && angle <= 0 {
                    break;
                }
                if tj.is_punct(";") {
                    break; // e.g. `trait Foo: Bar;` won't occur, but stay safe
                }
                if tj.is_punct("<") {
                    angle += 1;
                } else if tj.is_punct(">") {
                    let arrow = j > 0 && toks[j - 1].is_punct("-");
                    if !arrow {
                        angle -= 1;
                    }
                } else if angle <= 0 && tj.kind == TokKind::Ident {
                    if tj.text == "for" {
                        name = None;
                    } else if tj.text != "where" && tj.text != "dyn" && tj.text != "const" {
                        name = Some(tj.text.clone());
                    }
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                let c = close[j].unwrap_or(toks.len());
                ctx.push((name.unwrap_or_default(), c));
                i = j + 1; // descend
            } else {
                i = j + 1;
            }
            continue;
        }

        if t.is_ident("fn") {
            let attr_test = pending_attrs.iter().any(|a| attr_is_test(a));
            pending_attrs.clear();
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let line = t.line;
            // Scan the signature for the body `{` (or `;`), ignoring
            // braces nested in parens/brackets (closure bodies in
            // default-arg positions don't exist; const-generic braces
            // hide inside brackets).
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.is_punct("(") || tj.is_punct("[") {
                    depth += 1;
                } else if tj.is_punct(")") || tj.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && (tj.is_punct("{") || tj.is_punct(";")) {
                    break;
                }
                j += 1;
            }
            let qualified = match ctx.last() {
                Some((ty, _)) if !ty.is_empty() => format!("{ty}::{name}"),
                _ => name.clone(),
            };
            let (body, next) = if j < toks.len() && toks[j].is_punct("{") {
                let c = close[j].unwrap_or(toks.len());
                ((j + 1)..c, j + 1)
            } else {
                (0..0, j + 1)
            };
            fns.push(FnItem {
                name,
                qualified,
                line,
                body,
                in_test: attr_test || !test_stack.is_empty(),
            });
            // Descend into the body: nested fns/items still get
            // scanned (with the enclosing impl context).
            i = next;
            continue;
        }

        if t.is_ident("struct") || t.is_ident("enum") {
            let is_enum = t.is_ident("enum");
            let attrs = std::mem::take(&mut pending_attrs);
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let mut item = StructItem {
                name: name_tok.text.clone(),
                line: t.line,
                attrs,
                fields: Vec::new(),
                is_enum,
                in_test: !test_stack.is_empty(),
            };
            // Skip generics to the body delimiter.
            let mut angle = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let tj = &toks[j];
                if angle <= 0 && (tj.is_punct("{") || tj.is_punct("(") || tj.is_punct(";")) {
                    break;
                }
                if tj.is_punct("<") {
                    angle += 1;
                } else if tj.is_punct(">") && !(j > 0 && toks[j - 1].is_punct("-")) {
                    angle -= 1;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") && !is_enum {
                let body_close = close[j].unwrap_or(toks.len());
                parse_fields(toks, j + 1, body_close, &mut item.fields);
                i = body_close + 1;
            } else if j < toks.len() && toks[j].is_punct("{") {
                i = close[j].map(|c| c + 1).unwrap_or(toks.len());
            } else if j < toks.len() && toks[j].is_punct("(") {
                // Tuple struct: skip to the closing paren + `;`.
                let mut depth = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct("(") {
                        depth += 1;
                    } else if toks[j].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
            } else {
                i = j + 1;
            }
            structs.push(item);
            continue;
        }

        // Visibility and item qualifiers sit between attributes and
        // the item keyword — keep pending attributes alive across
        // them (`#[serde(default)] pub struct …`).
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "pub" | "unsafe" | "async" | "extern" | "default"
            )
        {
            i += 1;
            if t.is_ident("pub") && toks.get(i).map(|n| n.is_punct("(")).unwrap_or(false) {
                let mut depth = 0i32;
                while i < toks.len() {
                    if toks[i].is_punct("(") {
                        depth += 1;
                    } else if toks[i].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Any other token: attributes pending on non-item constructs
        // (statements, expressions) stay valid only until the next
        // non-attribute token.
        if t.kind == TokKind::Ident || t.kind == TokKind::Punct {
            pending_attrs.clear();
        }
        i += 1;
    }

    idx.fns = fns;
    idx.structs = structs;
    idx.test_ranges = test_ranges;
    idx
}

/// `true` when an attribute body marks test-only code. Matches
/// `test`, `cfg ( test )`, `cfg ( any ( test , … ) )`, and the
/// vendored `proptest !` wrappers.
fn attr_is_test(attr: &str) -> bool {
    // Joined attrs put single spaces around every token, so the bare
    // `test` ident always appears as ` test ` inside a cfg body —
    // while `feature = "test-utils"` stays inside its string literal
    // and cannot match.
    attr == "test"
        || attr.starts_with("test ")
        || (attr.starts_with("cfg") && attr.contains(" test "))
}

/// Parses named fields between token indexes `from..to` (the struct
/// body, braces exclusive).
fn parse_fields(toks: &[Tok], from: usize, to: usize, out: &mut Vec<FieldItem>) {
    let mut i = from;
    while i < to {
        // Skip field attributes.
        while i < to && toks[i].is_punct("#") {
            if toks.get(i + 1).map(|t| t.is_punct("[")).unwrap_or(false) {
                i = match_bracket(toks, i + 1) + 1;
            } else {
                i += 1;
            }
        }
        // Skip visibility: `pub` or `pub ( crate )`.
        if i < to && toks[i].is_ident("pub") {
            i += 1;
            if i < to && toks[i].is_punct("(") {
                let mut depth = 0i32;
                while i < to {
                    if toks[i].is_punct("(") {
                        depth += 1;
                    } else if toks[i].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        if i >= to || toks[i].kind != TokKind::Ident {
            break;
        }
        let name = toks[i].text.clone();
        let line = toks[i].line;
        i += 1;
        if i >= to || !toks[i].is_punct(":") {
            break;
        }
        i += 1;
        // Capture type tokens up to the field-separating comma.
        let mut ty = Vec::new();
        let mut depth = 0i32;
        while i < to {
            let t = &toks[i];
            if depth == 0 && t.is_punct(",") {
                i += 1;
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(")")
                || t.is_punct("]")
                // `>` closes an angle bracket unless it is the tail of
                // a `->` return arrow inside an fn-pointer type.
                || (t.is_punct(">") && !(i > 0 && toks[i - 1].is_punct("-")))
            {
                depth -= 1;
            }
            ty.push(t.text.clone());
            i += 1;
        }
        out.push(FieldItem { name, ty, line });
    }
}

/// For each `{` token, the index of its matching `}`.
fn match_braces(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut close = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                close[open] = Some(i);
            }
        }
    }
    close
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Joins token texts with single spaces.
fn join(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_names_from_impl_blocks() {
        let idx = scan(
            "impl Rk4Scratch { pub fn integrate(&mut self) -> f64 { 1.0 } }\n\
             impl Monitor for ForecastMonitor { fn check(&mut self) {} }\n\
             fn free() {}",
        );
        let names: Vec<&str> = idx.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            names,
            ["Rk4Scratch::integrate", "ForecastMonitor::check", "free"]
        );
    }

    #[test]
    fn generic_impl_names() {
        let idx = scan("impl<T: Clone> Stack<T> { fn push_item(&mut self, t: T) {} }");
        assert_eq!(idx.fns[0].qualified, "Stack::push_item");
    }

    #[test]
    fn cfg_test_regions_mark_fns() {
        let idx = scan(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() {}\n}",
        );
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test);
        assert!(idx.fns[2].in_test);
    }

    #[test]
    fn test_attr_alone_marks_fn() {
        let idx = scan("#[test]\nfn t() {}");
        assert!(idx.fns[0].in_test);
    }

    #[test]
    fn struct_fields_and_attrs() {
        let idx = scan(
            "#[derive(Serialize, Deserialize)]\n#[serde(default)]\n\
             pub struct Ckpt {\n  pub version: u32,\n  pub seed: Option<u64>,\n  words: Vec<u32>,\n}",
        );
        let s = &idx.structs[0];
        assert_eq!(s.name, "Ckpt");
        assert!(s
            .attrs
            .iter()
            .any(|a| a.contains("serde") && a.contains("default")));
        let fields: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, ["version", "seed", "words"]);
        assert_eq!(s.fields[1].ty, ["Option", "<", "u64", ">"]);
    }

    #[test]
    fn enums_are_marked() {
        let idx = scan("#[derive(Serialize)]\nenum E { A, B(u64) }");
        assert!(idx.structs[0].is_enum);
        assert!(idx.structs[0].fields.is_empty());
    }

    #[test]
    fn fn_body_ranges_cover_their_tokens() {
        let idx = scan("fn a() { inner_marker(); }\nfn b() { other(); }");
        let a = &idx.fns[0];
        let marker = idx
            .lexed
            .toks
            .iter()
            .position(|t| t.is_ident("inner_marker"))
            .unwrap();
        assert!(a.body.contains(&marker));
        let b = &idx.fns[1];
        assert!(!b.body.contains(&marker));
    }

    #[test]
    fn enclosing_fn_lookup() {
        let idx = scan("impl T { fn m(&self) { marker(); } }");
        let marker = idx
            .lexed
            .toks
            .iter()
            .position(|t| t.is_ident("marker"))
            .unwrap();
        assert_eq!(idx.enclosing_fn(marker).unwrap().qualified, "T::m");
    }
}
