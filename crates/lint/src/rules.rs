//! The five rule families (plus the unwrap audit) over a scanned
//! [`FileIndex`].
//!
//! Every rule reports [`Violation`]s with a stable identity
//! (`rule · file · scope · what`) that deliberately excludes line
//! numbers, so unrelated edits above a baselined site don't churn the
//! baseline; line numbers are still carried for display.

use crate::config::{path_matches, LintConfig};
use crate::lexer::{Tok, TokKind};
use crate::scanner::FileIndex;
use std::collections::BTreeSet;

/// Rule family identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Registered hot functions must not allocate.
    DenyAlloc,
    /// NaN-masking float ops outside finite-guarded scopes.
    NanTrap,
    /// Wall-clock / OS-entropy / hash-order nondeterminism in
    /// checkpointed or replayed modules.
    Determinism,
    /// Serde containers without container-level `#[serde(default)]`
    /// (or a version field), and raw `u64` fields that would lose
    /// precision in the f64-backed JSON shim.
    SerdeCompat,
    /// Atomic `Ordering` uses / `unsafe` blocks without an adjacent
    /// `// sound:` justification.
    SoundAudit,
    /// `.unwrap()` / `.expect()` in library (non-test) code.
    UnwrapAudit,
}

impl RuleId {
    /// Short stable id used in reports and the baseline file.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::DenyAlloc => "alloc",
            RuleId::NanTrap => "nan",
            RuleId::Determinism => "det",
            RuleId::SerdeCompat => "serde",
            RuleId::SoundAudit => "sound",
            RuleId::UnwrapAudit => "unwrap",
        }
    }

    /// All rule ids, in report order.
    pub const ALL: [RuleId; 6] = [
        RuleId::DenyAlloc,
        RuleId::NanTrap,
        RuleId::Determinism,
        RuleId::SerdeCompat,
        RuleId::SoundAudit,
        RuleId::UnwrapAudit,
    ];
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Repo-relative file path (or `lint.toml` for config-level
    /// violations).
    pub file: String,
    /// 1-based line for display (not part of the baseline identity).
    pub line: u32,
    /// Enclosing scope: qualified function or container name.
    pub scope: String,
    /// What was found (e.g. `Vec::new`, `Ordering::Release`).
    pub what: String,
}

impl Violation {
    /// Stable baseline identity (excludes the line number).
    pub fn key(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}",
            self.rule.as_str(),
            self.file,
            self.scope,
            self.what
        )
    }
}

/// Cross-file bookkeeping: config entries that matched something,
/// collected so the workspace driver can flag dead entries (renamed
/// functions/containers silently un-protecting themselves).
#[derive(Debug, Default)]
pub struct SeenEntries {
    /// `deny_alloc.functions` entries that matched a scanned fn.
    pub fns: BTreeSet<String>,
    /// `serde_compat.containers` entries that matched a scanned type.
    pub containers: BTreeSet<String>,
}

/// Runs every rule family over one file.
pub fn run_all(
    rel: &str,
    idx: &FileIndex,
    cfg: &LintConfig,
    seen: &mut SeenEntries,
    out: &mut Vec<Violation>,
) {
    deny_alloc(rel, idx, cfg, seen, out);
    nan_trap(rel, idx, cfg, out);
    determinism(rel, idx, cfg, out);
    serde_compat(rel, idx, cfg, seen, out);
    sound_audit(rel, idx, cfg, out);
    unwrap_audit(rel, idx, cfg, out);
}

/// Emits one violation per config entry that never matched any scanned
/// item — a registered hot function or container that was renamed away
/// is a *gap in coverage*, not a pass.
pub fn check_dead_entries(cfg: &LintConfig, seen: &SeenEntries, out: &mut Vec<Violation>) {
    for f in &cfg.deny_alloc_functions {
        if !seen.fns.contains(f) {
            out.push(Violation {
                rule: RuleId::DenyAlloc,
                file: "lint.toml".to_owned(),
                line: 0,
                scope: f.clone(),
                what: "registered-fn-not-found".to_owned(),
            });
        }
    }
    for c in &cfg.serde_containers {
        if !seen.containers.contains(c) {
            out.push(Violation {
                rule: RuleId::SerdeCompat,
                file: "lint.toml".to_owned(),
                line: 0,
                scope: c.clone(),
                what: "registered-container-not-found".to_owned(),
            });
        }
    }
}

/// `true` when any configured module entry covers `rel`.
fn in_modules(rel: &str, modules: &[String]) -> bool {
    modules.iter().any(|m| path_matches(rel, m))
}

// ---------------------------------------------------------------- alloc

/// Token sequences that allocate. Returns `(line, what)` per hit.
fn scan_alloc_tokens(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let path_call = |ctor: &[&str]| -> Option<String> {
            let a = toks.get(i + 1)?;
            let b = toks.get(i + 2)?;
            let m = toks.get(i + 3)?;
            (a.is_punct(":")
                && b.is_punct(":")
                && m.kind == TokKind::Ident
                && ctor.contains(&m.text.as_str()))
            .then(|| format!("{}::{}", t.text, m.text))
        };
        match t.text.as_str() {
            "Vec" => {
                if let Some(w) = path_call(&["new", "with_capacity", "from"]) {
                    hits.push((t.line, w));
                }
            }
            "String" => {
                if let Some(w) = path_call(&["new", "with_capacity", "from"]) {
                    hits.push((t.line, w));
                }
            }
            "Box" => {
                if let Some(w) = path_call(&["new"]) {
                    hits.push((t.line, w));
                }
            }
            "vec" | "format" if toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false) => {
                hits.push((t.line, format!("{}!", t.text)));
            }
            "clone" | "to_vec" | "to_owned" | "to_string" | "collect" | "push" => {
                let method = i > 0
                    && toks[i - 1].is_punct(".")
                    && toks
                        .get(i + 1)
                        .map(|n| n.is_punct("(") || n.is_punct(":"))
                        .unwrap_or(false);
                if method {
                    hits.push((t.line, format!(".{}()", t.text)));
                }
            }
            _ => {}
        }
    }
    hits
}

/// Rule 1: registered functions must not reach an allocating call.
fn deny_alloc(
    rel: &str,
    idx: &FileIndex,
    cfg: &LintConfig,
    seen: &mut SeenEntries,
    out: &mut Vec<Violation>,
) {
    for f in &idx.fns {
        let Some(entry) = cfg
            .deny_alloc_functions
            .iter()
            .find(|e| f.qualified == **e || f.name == **e)
        else {
            continue;
        };
        seen.fns.insert(entry.clone());
        if f.in_test {
            continue;
        }
        for (line, what) in scan_alloc_tokens(&idx.lexed.toks[f.body.clone()]) {
            out.push(Violation {
                rule: RuleId::DenyAlloc,
                file: rel.to_owned(),
                line,
                scope: f.qualified.clone(),
                what,
            });
        }
    }
}

// ------------------------------------------------------------------ nan

/// Idents whose presence in a function body marks it finite-guarded:
/// either it checks finiteness itself or it delegates to the checked
/// integrator entry points.
const FINITE_GUARDS: [&str; 4] = ["is_finite", "state_is_finite", "try_step", "try_integrate"];

/// Rule 2: NaN-masking float ops must sit in finite-guarded functions.
///
/// `f64::max(NaN, floor)` returns `floor` — it silently *masks* a
/// diverged ODE state instead of propagating it (the PR 5 bug class).
fn nan_trap(rel: &str, idx: &FileIndex, cfg: &LintConfig, out: &mut Vec<Violation>) {
    if !in_modules(rel, &cfg.nan_trap_modules) {
        return;
    }
    for f in &idx.fns {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        let body = &idx.lexed.toks[f.body.clone()];
        if body
            .iter()
            .any(|t| t.kind == TokKind::Ident && FINITE_GUARDS.contains(&t.text.as_str()))
        {
            continue;
        }
        for (i, t) in body.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            // `f64::max` / `f64::min` / `f64::clamp`, including bare
            // path form passed to `fold`.
            if t.text == "f64"
                && body.get(i + 1).map(|a| a.is_punct(":")).unwrap_or(false)
                && body.get(i + 2).map(|a| a.is_punct(":")).unwrap_or(false)
            {
                if let Some(m) = body.get(i + 3) {
                    if m.kind == TokKind::Ident
                        && matches!(m.text.as_str(), "max" | "min" | "clamp")
                    {
                        out.push(Violation {
                            rule: RuleId::NanTrap,
                            file: rel.to_owned(),
                            line: t.line,
                            scope: f.qualified.clone(),
                            what: format!("f64::{}", m.text),
                        });
                    }
                }
            }
            // `.clamp(` method form (float clamping with a NaN input
            // returns a bound — same masking trap).
            if t.text == "clamp"
                && i > 0
                && body[i - 1].is_punct(".")
                && body.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
            {
                out.push(Violation {
                    rule: RuleId::NanTrap,
                    file: rel.to_owned(),
                    line: t.line,
                    scope: f.qualified.clone(),
                    what: ".clamp()".to_owned(),
                });
            }
            // `partial_cmp(…).unwrap()` — panics on NaN at the
            // latest possible moment; `unwrap_or` forms are fine.
            if t.text == "partial_cmp" && i > 0 && body[i - 1].is_punct(".") {
                let window = &body[i..body.len().min(i + 12)];
                let unwraps = window
                    .windows(2)
                    .any(|w| w[0].is_punct(".") && w[1].is_ident("unwrap"));
                if unwraps {
                    out.push(Violation {
                        rule: RuleId::NanTrap,
                        file: rel.to_owned(),
                        line: t.line,
                        scope: f.qualified.clone(),
                        what: "partial_cmp().unwrap()".to_owned(),
                    });
                }
            }
        }
    }
}

// ------------------------------------------------------------------ det

/// Rule 3: forbidden nondeterminism sources in checkpointed modules.
fn determinism(rel: &str, idx: &FileIndex, cfg: &LintConfig, out: &mut Vec<Violation>) {
    if !in_modules(rel, &cfg.determinism_modules) {
        return;
    }
    let toks = &idx.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || idx.in_test_region(i) {
            continue;
        }
        let what = match t.text.as_str() {
            "Instant" => {
                let now = toks.get(i + 1).map(|a| a.is_punct(":")).unwrap_or(false)
                    && toks.get(i + 2).map(|a| a.is_punct(":")).unwrap_or(false)
                    && toks.get(i + 3).map(|m| m.is_ident("now")).unwrap_or(false);
                if !now {
                    continue;
                }
                "Instant::now".to_owned()
            }
            // Any use: wall-clock reads and OS entropy have no
            // deterministic call form.
            "SystemTime" => "SystemTime".to_owned(),
            "thread_rng" => "thread_rng".to_owned(),
            // Any use: iteration order is seeded per-process, so a
            // map that exists will eventually be iterated. BTreeMap /
            // BTreeSet are the sanctioned replacements.
            "HashMap" => "HashMap".to_owned(),
            "HashSet" => "HashSet".to_owned(),
            _ => continue,
        };
        out.push(Violation {
            rule: RuleId::Determinism,
            file: rel.to_owned(),
            line: t.line,
            scope: idx
                .enclosing_fn(i)
                .map(|f| f.qualified.clone())
                .unwrap_or_else(|| "<module>".to_owned()),
            what,
        });
    }
}

// ---------------------------------------------------------------- serde

/// `true` when a `// lint: hex-exempt(reason)` comment sits within
/// `span` lines above `line`.
fn hex_exempt_near(idx: &FileIndex, line: u32, span: u32) -> bool {
    idx.lexed
        .comments
        .iter()
        .any(|c| c.line <= line && c.line + span >= line && c.text.contains("lint: hex-exempt"))
}

/// Rule 4: registered serde containers need container-level
/// `#[serde(default)]` (or a `version` field), and raw `u64` fields
/// must be hex-encoded (the f64-backed JSON shim is exact only below
/// 2^53).
fn serde_compat(
    rel: &str,
    idx: &FileIndex,
    cfg: &LintConfig,
    seen: &mut SeenEntries,
    out: &mut Vec<Violation>,
) {
    for s in &idx.structs {
        let Some(entry) = cfg.serde_containers.iter().find(|e| s.name == **e) else {
            continue;
        };
        seen.containers.insert(entry.clone());
        if s.in_test {
            continue;
        }
        if s.is_enum {
            // The vendored serde_derive shim has no enum-default
            // support; enum compat is carried by their containing
            // structs' defaults. Nothing checkable here.
            continue;
        }
        let has_default = s
            .attrs
            .iter()
            .any(|a| a.starts_with("serde") && a.contains("default"));
        let has_version = s.fields.iter().any(|f| f.name == "version");
        if !has_default && !has_version {
            out.push(Violation {
                rule: RuleId::SerdeCompat,
                file: rel.to_owned(),
                line: s.line,
                scope: s.name.clone(),
                what: "missing-container-default".to_owned(),
            });
        }
        for f in &s.fields {
            if f.ty.iter().any(|t| t == "u64") && !hex_exempt_near(idx, f.line, 3) {
                out.push(Violation {
                    rule: RuleId::SerdeCompat,
                    file: rel.to_owned(),
                    line: f.line,
                    scope: s.name.clone(),
                    what: format!("u64-field-{}", f.name),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- sound

/// `true` when a `// sound:` comment justifies `line`: the comment
/// sits on the line or within `span` lines above it, or anywhere in a
/// contiguous comment block that reaches into that window (multi-line
/// justifications wrap, so only continuation lines may be adjacent).
fn sound_comment_near(idx: &FileIndex, line: u32, span: u32) -> bool {
    let comments = &idx.lexed.comments;
    let Some(mut lo) = comments
        .iter()
        .filter(|c| c.line <= line && c.line + span >= line)
        .map(|c| c.line)
        .min()
    else {
        return false;
    };
    while comments.iter().any(|c| c.line + 1 == lo) {
        lo -= 1;
    }
    comments
        .iter()
        .any(|c| (lo..=line).contains(&c.line) && c.text.starts_with("sound:"))
}

/// Rule 5: every atomic `Ordering` use and `unsafe` block in the
/// lock-free executor needs an adjacent `// sound:` justification.
fn sound_audit(rel: &str, idx: &FileIndex, cfg: &LintConfig, out: &mut Vec<Violation>) {
    if !in_modules(rel, &cfg.sound_audit_modules) {
        return;
    }
    let toks = &idx.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || idx.in_test_region(i) {
            continue;
        }
        let what = if t.text == "Ordering" {
            let m = toks.get(i + 3);
            let path = toks.get(i + 1).map(|a| a.is_punct(":")).unwrap_or(false)
                && toks.get(i + 2).map(|a| a.is_punct(":")).unwrap_or(false);
            match (path, m) {
                (true, Some(m))
                    if matches!(
                        m.text.as_str(),
                        "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                    ) =>
                {
                    format!("Ordering::{}", m.text)
                }
                _ => continue,
            }
        } else if t.text == "unsafe" {
            "unsafe".to_owned()
        } else {
            continue;
        };
        if sound_comment_near(idx, t.line, 3) {
            continue;
        }
        out.push(Violation {
            rule: RuleId::SoundAudit,
            file: rel.to_owned(),
            line: t.line,
            scope: idx
                .enclosing_fn(i)
                .map(|f| f.qualified.clone())
                .unwrap_or_else(|| "<module>".to_owned()),
            what,
        });
    }
}

// --------------------------------------------------------------- unwrap

/// Rule 6 (audit): `.unwrap()` / `.expect()` in library code. Fully
/// baselined at introduction; the baseline only ratchets down.
fn unwrap_audit(rel: &str, idx: &FileIndex, cfg: &LintConfig, out: &mut Vec<Violation>) {
    if !in_modules(rel, &cfg.unwrap_audit_modules) {
        return;
    }
    for f in &idx.fns {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        let body = &idx.lexed.toks[f.body.clone()];
        for (i, t) in body.iter().enumerate() {
            if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "unwrap" | "expect") {
                continue;
            }
            let method = i > 0
                && body[i - 1].is_punct(".")
                && body.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false);
            if method {
                out.push(Violation {
                    rule: RuleId::UnwrapAudit,
                    file: rel.to_owned(),
                    line: t.line,
                    scope: f.qualified.clone(),
                    what: format!(".{}()", t.text),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn cfg_all(rel: &str) -> LintConfig {
        LintConfig {
            deny_alloc_functions: vec!["Hot::step".to_owned()],
            nan_trap_modules: vec![rel.to_owned()],
            determinism_modules: vec![rel.to_owned()],
            serde_containers: vec!["Ckpt".to_owned()],
            sound_audit_modules: vec![rel.to_owned()],
            unwrap_audit_modules: vec![rel.to_owned()],
        }
    }

    fn run(src: &str) -> Vec<Violation> {
        let idx = scan(src);
        let mut seen = SeenEntries::default();
        let mut out = Vec::new();
        run_all("f.rs", &idx, &cfg_all("f.rs"), &mut seen, &mut out);
        out
    }

    #[test]
    fn alloc_in_registered_fn_fires() {
        let v = run("impl Hot { fn step(&mut self) { let v = Vec::new(); v.push(1); } }");
        let whats: Vec<&str> = v
            .iter()
            .filter(|v| v.rule == RuleId::DenyAlloc)
            .map(|v| v.what.as_str())
            .collect();
        assert_eq!(whats, ["Vec::new", ".push()"]);
    }

    #[test]
    fn alloc_in_unregistered_fn_is_quiet() {
        let v = run("impl Cold { fn step(&mut self) { let v = Vec::new(); } }");
        assert!(v.iter().all(|v| v.rule != RuleId::DenyAlloc));
    }

    #[test]
    fn nan_trap_guarded_fn_is_quiet() {
        let guarded =
            run("fn f(x: f64) -> f64 { if !x.is_finite() { return 0.0; } x.clamp(0.0, 1.0) }");
        assert!(guarded.iter().all(|v| v.rule != RuleId::NanTrap));
        let bare = run("fn f(x: f64) -> f64 { x.clamp(0.0, 1.0) }");
        assert_eq!(bare.iter().filter(|v| v.rule == RuleId::NanTrap).count(), 1);
    }

    #[test]
    fn nan_trap_partial_cmp_unwrap_vs_unwrap_or() {
        let bad = run("fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }");
        assert!(bad.iter().any(|v| v.what == "partial_cmp().unwrap()"));
        let ok = run("fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal); }");
        assert!(ok.iter().all(|v| v.what != "partial_cmp().unwrap()"));
    }

    #[test]
    fn determinism_sources_fire_outside_tests_only() {
        let v = run("fn f() { let t = Instant::now(); }");
        assert!(v
            .iter()
            .any(|v| v.rule == RuleId::Determinism && v.what == "Instant::now"));
        let t = run("#[cfg(test)] mod tests { use std::collections::HashMap; fn f() { let t = Instant::now(); } }");
        assert!(t.iter().all(|v| v.rule != RuleId::Determinism));
    }

    #[test]
    fn serde_container_checks() {
        let bad = run("#[derive(Deserialize)] struct Ckpt { seed: u64, n: usize }");
        let whats: Vec<&str> = bad
            .iter()
            .filter(|v| v.rule == RuleId::SerdeCompat)
            .map(|v| v.what.as_str())
            .collect();
        assert_eq!(whats, ["missing-container-default", "u64-field-seed"]);

        let ok = run("#[derive(Deserialize)] #[serde(default)] struct Ckpt {\n\
             // lint: hex-exempt(stored via to_hex at the call site)\n\
             seed: u64, n: usize }");
        assert!(ok.iter().all(|v| v.rule != RuleId::SerdeCompat));

        let versioned = run("#[derive(Deserialize)] struct Ckpt { version: u32 }");
        assert!(versioned
            .iter()
            .all(|v| v.what != "missing-container-default"));
    }

    #[test]
    fn sound_audit_requires_adjacent_comment() {
        let bad = run("fn f(a: &AtomicUsize) { a.load(Ordering::Acquire); }");
        assert!(bad
            .iter()
            .any(|v| v.rule == RuleId::SoundAudit && v.what == "Ordering::Acquire"));
        let ok = run("fn f(a: &AtomicUsize) {\n\
             // sound: pairs with the Release store in g()\n\
             a.load(Ordering::Acquire);\n}");
        assert!(ok.iter().all(|v| v.rule != RuleId::SoundAudit));
        let un = run("fn f() { unsafe { core() } }");
        assert!(un
            .iter()
            .any(|v| v.rule == RuleId::SoundAudit && v.what == "unsafe"));
        // A wrapped justification counts even when the `sound:` prefix
        // line sits above the adjacency window, as long as the comment
        // block is contiguous down to it.
        let wrapped = run("fn f(a: &AtomicUsize) {\n\
             // sound: Relaxed suffices for the claim counter because\n\
             // fetch_add is an atomic read-modify-write, so every\n\
             // worker still observes a unique value; ordering of the\n\
             // surrounding data is published elsewhere.\n\
             a.fetch_add(1, Ordering::Relaxed);\n}");
        assert!(wrapped.iter().all(|v| v.rule != RuleId::SoundAudit));
    }

    #[test]
    fn unwrap_audit_counts_library_code_only() {
        let v = run("fn f(x: Option<u8>) { x.unwrap(); }\n#[cfg(test)] mod t { fn g(x: Option<u8>) { x.unwrap(); } }");
        assert_eq!(
            v.iter().filter(|v| v.rule == RuleId::UnwrapAudit).count(),
            1
        );
        let or = run("fn f(x: Option<u8>) { x.unwrap_or(0); }");
        assert!(or.iter().all(|v| v.rule != RuleId::UnwrapAudit));
    }

    #[test]
    fn dead_config_entries_are_flagged() {
        let cfg = cfg_all("f.rs");
        let mut seen = SeenEntries::default();
        let mut out = Vec::new();
        run_all(
            "f.rs",
            &scan("fn unrelated() {}"),
            &cfg,
            &mut seen,
            &mut out,
        );
        check_dead_entries(&cfg, &seen, &mut out);
        assert!(out.iter().any(|v| v.what == "registered-fn-not-found"));
        assert!(out
            .iter()
            .any(|v| v.what == "registered-container-not-found"));
    }
}
