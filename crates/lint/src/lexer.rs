//! A minimal Rust lexer: source text → a flat token stream with line
//! numbers, plus a side list of comments.
//!
//! This is *not* a conforming Rust lexer — it is just enough to drive
//! the token-pattern rules in [`crate::rules`]:
//!
//! - identifiers and keywords come out as [`TokKind::Ident`],
//! - string/char/raw-string/byte-string literals are opaque
//!   [`TokKind::Str`]/[`TokKind::Char`] tokens (their *contents* never
//!   match an ident pattern, which is what keeps the analyzer from
//!   flagging its own rule tables),
//! - comments are captured with their starting line so rules can check
//!   for adjacent `// sound:` / `// lint:` annotations,
//! - lifetimes are distinguished from char literals.
//!
//! Multi-character punctuation (`::`, `->`, …) is emitted as
//! single-character [`TokKind::Punct`] tokens; rules match the
//! sequences they need.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Vec`, `unwrap`, …).
    Ident,
    /// Single punctuation character (`:`, `.`, `{`, …).
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (lexed loosely; never inspected by rules).
    Num,
    /// Lifetime (`'a`) — distinguished from a char literal.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. For [`TokKind::Str`]/[`TokKind::Char`] this is
    /// the raw literal including quotes; rules never look inside it.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` when the token is a punctuation char with this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A comment captured during lexing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text *without* the `//` / `/*` markers, trimmed.
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unexpected bytes
/// are emitted as punctuation and the scan continues, so a file the
/// lexer half-understands still gets linted rather than skipped.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances past `chars[from..to]`, counting newlines.
    let count_lines = |chars: &[char], from: usize, to: usize, line: &mut u32| {
        for c in &chars[from..to] {
            if *c == '\n' {
                *line += 1;
            }
        }
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            out.comments.push(Comment {
                line,
                text: text.trim_start_matches(['/', '!']).trim().to_owned(),
            });
            i = j;
            continue;
        }
        // Block comment, nestable.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i + 2;
            let mut j = start;
            let mut depth = 1usize;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            count_lines(&chars, i, j, &mut line);
            let end = j.saturating_sub(2).max(start);
            let text: String = chars[start..end].iter().collect();
            out.comments.push(Comment {
                line: start_line,
                text: text.trim_matches(['*', '!', ' ', '\n']).to_owned(),
            });
            i = j;
            continue;
        }
        // Identifier / keyword — possibly a raw/byte string prefix.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            let next = chars.get(j).copied();
            let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br")
                && (next == Some('"') || (text != "b" && next == Some('#')));
            if is_str_prefix {
                let tok_line = line;
                let (end, ok) =
                    scan_raw_or_plain_string(&chars, j, text.starts_with('r') || text == "br");
                if ok {
                    count_lines(&chars, start, end, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: chars[start..end].iter().collect(),
                        line: tok_line,
                    });
                    i = end;
                    continue;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let tok_line = line;
            let end = scan_string_body(&chars, i + 1);
            count_lines(&chars, i, end, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: chars[i..end].iter().collect(),
                line: tok_line,
            });
            i = end;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_lifetime_start = next.map(|n| n.is_alphabetic() || n == '_').unwrap_or(false);
            if is_lifetime_start {
                let mut j = i + 2;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                // `'a'` is a char literal; `'a` (no closing quote) is
                // a lifetime.
                if chars.get(j) != Some(&'\'') {
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            // Char literal with escapes: `'\''`, `'\n'`, `'x'`.
            let mut j = i + 1;
            if chars.get(j) == Some(&'\\') {
                j += 2;
            } else {
                j += 1;
            }
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            j = (j + 1).min(chars.len());
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numeric literal (loose: covers 0xFF, 1_000, 1.5, 1e-3's
        // mantissa; the exponent sign splits off as punctuation, which
        // is fine because rules never inspect numbers).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < chars.len()
                && (chars[j].is_alphanumeric()
                    || chars[j] == '_'
                    || (chars[j] == '.'
                        && chars
                            .get(j + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false)))
            {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Everything else: single punctuation char.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Scans a string body starting just after the opening `"`; returns
/// the index one past the closing quote.
fn scan_string_body(chars: &[char], mut j: usize) -> usize {
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Scans a raw (`r#*"…"#*`) or plain-after-prefix (`b"…"`) string
/// starting at `j` (the first `#` or `"`). Returns `(end, ok)`.
fn scan_raw_or_plain_string(chars: &[char], mut j: usize, raw: bool) -> (usize, bool) {
    let mut hashes = 0usize;
    while raw && chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return (j, false);
    }
    j += 1;
    if !raw {
        return (scan_string_body(chars, j), true);
    }
    // Raw string: no escapes; terminated by `"` followed by `hashes`
    // `#` characters.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return (j + 1 + hashes, true);
            }
        }
        j += 1;
    }
    (j, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let l = lex("fn f() { Vec::new() }");
        assert_eq!(idents("fn f() { Vec::new() }"), ["fn", "f", "Vec", "new"]);
        assert!(l.toks.iter().any(|t| t.is_punct("{")));
    }

    #[test]
    fn string_contents_do_not_leak_idents() {
        assert_eq!(
            idents(r#"let s = "Vec::new() Instant::now";"#),
            ["let", "s"]
        );
        assert_eq!(idents(r##"let s = r#"thread_rng"#;"##), ["let", "s"]);
        assert_eq!(idents(r#"let s = b"SystemTime";"#), ["let", "s"]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("// sound: Relaxed is enough\nlet x = 1; /* block\ncomment */ let y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].text, "sound: Relaxed is enough");
        assert_eq!(l.comments[1].line, 2);
        // Line counting survives the multi-line block comment.
        let y = l.toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let l = lex(r"let q = '\''; let n = '\n';");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
