//! The committed violation baseline and its ratchet.
//!
//! The baseline is a plain sorted text file, one line per *accepted*
//! violation instance:
//!
//! ```text
//! rule<TAB>file<TAB>scope<TAB>what
//! ```
//!
//! Duplicate lines are meaningful — they carry the instance count, so
//! the comparison is a multiset diff. Line numbers are deliberately
//! absent: moving a baselined site within its function must not churn
//! the file.
//!
//! Two operations:
//!
//! - [`diff_new`]: violations whose count exceeds the baseline's (what
//!   `--deny-new` fails on);
//! - [`write_ratchet`]: regenerates the baseline, but *refuses* when
//!   any count would grow — the baseline only ratchets down. New
//!   violations must be fixed (or, for genuinely accepted debt, the
//!   line added by hand in review, where the diff is visible).

use crate::rules::Violation;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Header written at the top of every generated baseline file.
const HEADER: &str = "\
# aps-lint baseline: accepted violations, one line per instance
# (rule<TAB>file<TAB>scope<TAB>what). Regenerate with
# `repro lint --write-baseline`; it refuses to grow this file.
";

/// A loaded baseline: violation key → accepted instance count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses baseline text (comments and blank lines ignored).
    pub fn parse(text: &str) -> Baseline {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_owned()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Loads a baseline file; `Ok(None)` when the file doesn't exist.
    ///
    /// # Errors
    ///
    /// Propagates any filesystem error other than not-found.
    pub fn load(path: &Path) -> io::Result<Option<Baseline>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Some(Baseline::parse(&text))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Builds the multiset for a violation list.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts = BTreeMap::new();
        for v in violations {
            *counts.entry(v.key()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Total accepted instances.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Accepted instance count for a key.
    pub fn count(&self, key: &str) -> usize {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Renders the baseline file body (sorted, duplicates repeated).
    pub fn render(&self) -> String {
        let mut out = String::from(HEADER);
        for (key, n) in &self.counts {
            for _ in 0..*n {
                out.push_str(key);
                out.push('\n');
            }
        }
        out
    }
}

/// Violations not covered by the baseline: for each key, the instances
/// beyond the accepted count (in input order — their line numbers make
/// the report actionable).
pub fn diff_new<'a>(violations: &'a [Violation], baseline: &Baseline) -> Vec<&'a Violation> {
    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    let mut new = Vec::new();
    for v in violations {
        let key = v.key();
        let seen = used.entry(key.clone()).or_insert(0);
        *seen += 1;
        if *seen > baseline.count(&key) {
            new.push(v);
        }
    }
    new
}

/// Outcome of a successful [`write_ratchet`].
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// No baseline existed; one was created with `accepted` instances.
    Created {
        /// Instances recorded.
        accepted: usize,
    },
    /// Baseline rewritten; `removed` accepted instances were dropped.
    Ratcheted {
        /// Instances removed relative to the previous baseline.
        removed: usize,
    },
}

/// Regenerates the baseline from `violations`, enforcing the ratchet.
///
/// The inner `Result` is `Err(offending_keys)` when any violation
/// count would *grow* relative to the existing baseline: the file is
/// left untouched and the caller reports the keys instead.
///
/// # Errors
///
/// The outer `Result` carries filesystem errors.
#[allow(clippy::type_complexity)]
pub fn write_ratchet(
    path: &Path,
    violations: &[Violation],
) -> io::Result<Result<WriteOutcome, Vec<String>>> {
    let current = Baseline::from_violations(violations);
    let old = Baseline::load(path)?;
    let outcome = match old {
        None => WriteOutcome::Created {
            accepted: current.total(),
        },
        Some(old) => {
            let grown: Vec<String> = current
                .counts
                .iter()
                .filter(|(k, n)| **n > old.count(k))
                .map(|(k, _)| k.clone())
                .collect();
            if !grown.is_empty() {
                return Ok(Err(grown));
            }
            WriteOutcome::Ratcheted {
                removed: old.total() - current.total(),
            }
        }
    };
    std::fs::write(path, current.render())?;
    Ok(Ok(outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleId, Violation};

    fn v(rule: RuleId, file: &str, scope: &str, what: &str) -> Violation {
        Violation {
            rule,
            file: file.to_owned(),
            line: 1,
            scope: scope.to_owned(),
            what: what.to_owned(),
        }
    }

    #[test]
    fn multiset_diff() {
        let vs = vec![
            v(RuleId::UnwrapAudit, "a.rs", "f", ".unwrap()"),
            v(RuleId::UnwrapAudit, "a.rs", "f", ".unwrap()"),
            v(RuleId::Determinism, "b.rs", "g", "Instant::now"),
        ];
        let base = Baseline::parse("unwrap\ta.rs\tf\t.unwrap()\n");
        let new: Vec<String> = diff_new(&vs, &base).iter().map(|v| v.key()).collect();
        // One of the two unwraps is accepted; the second plus the det
        // violation are new.
        assert_eq!(
            new,
            ["unwrap\ta.rs\tf\t.unwrap()", "det\tb.rs\tg\tInstant::now"]
        );
    }

    #[test]
    fn render_parse_roundtrip() {
        let vs = vec![
            v(RuleId::NanTrap, "a.rs", "f", ".clamp()"),
            v(RuleId::NanTrap, "a.rs", "f", ".clamp()"),
        ];
        let b = Baseline::from_violations(&vs);
        assert_eq!(Baseline::parse(&b.render()), b);
        assert_eq!(b.total(), 2);
    }
}
