//! `aps-lint` — an offline, dependency-free static analyzer for this
//! workspace's hand-checked invariants.
//!
//! Every invariant the reproduction depends on is guarded dynamically
//! somewhere (counting-allocator tests, proptests, bit-identity
//! replays) — but dynamic guards only fire on the paths a test
//! happens to drive. This crate makes five invariant classes
//! *machine-checked on every push* by scanning source text directly:
//!
//! | id       | family        | invariant                                           |
//! |----------|---------------|-----------------------------------------------------|
//! | `alloc`  | deny-alloc    | registered hot functions never allocate             |
//! | `nan`    | nan-trap      | NaN-masking float ops only in finite-guarded scopes |
//! | `det`    | determinism   | no wall clock / OS entropy / hash order in          |
//! |          |               | checkpointed or replayed modules                    |
//! | `serde`  | serde-compat  | round-tripping containers carry `#[serde(default)]` |
//! |          |               | or a version field; `u64` fields are hex-encoded    |
//! | `sound`  | sound-audit   | every atomic `Ordering` / `unsafe` has a `// sound:`|
//! |          |               | justification                                       |
//! | `unwrap` | unwrap-audit  | library-code `.unwrap()`/`.expect()` only ratchets  |
//! |          |               | down                                                |
//!
//! There is no `syn` (crates.io is unavailable), so the analyzer is a
//! hand-rolled [`lexer`] plus an item-level [`scanner`] — precise
//! enough for token-sequence rules, honest about what it is not (no
//! type inference, no call graphs; deny-alloc checks the *bodies* of
//! registered functions, so inner helpers must be registered too).
//!
//! Findings are diffed against a committed [`baseline`] so existing
//! debt doesn't block CI, while `--deny-new` fails on anything not in
//! the baseline and `--write-baseline` refuses to grow it.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod scanner;

use config::LintConfig;
use rules::{SeenEntries, Violation};
use std::io;
use std::path::{Path, PathBuf};

/// Result of a workspace lint pass.
#[derive(Debug)]
pub struct LintRun {
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints a single source string (fixture tests use this entry point).
pub fn lint_source(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Violation> {
    let mut seen = SeenEntries::default();
    let mut out = Vec::new();
    rules::run_all(rel, &scanner::scan(src), cfg, &mut seen, &mut out);
    out
}

/// Lints the whole workspace under `root`: `src/` plus every
/// `crates/*/src/` tree. Test/bench/example/fixture directories and
/// `vendor/` are never scanned; `#[cfg(test)]` regions inside scanned
/// files are skipped by the rules themselves.
///
/// Also flags configured deny-alloc functions and serde containers
/// that no longer exist anywhere (`registered-*-not-found`): a renamed
/// hot function must not silently lose its protection.
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk or file reads.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<LintRun> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut seen = SeenEntries::default();
    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        rules::run_all(&rel, &scanner::scan(&src), cfg, &mut seen, &mut violations);
    }
    rules::check_dead_entries(cfg, &seen, &mut violations);
    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.what.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.what.as_str(),
        ))
    });
    Ok(LintRun {
        violations,
        files_scanned: files.len(),
    })
}

/// Recursively collects `.rs` files, skipping directories whose name
/// marks non-library code.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: [&str; 6] = [
        "tests", "benches", "examples", "fixtures", "target", "vendor",
    ];
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path.clone());
        }
    }
    Ok(())
}
