//! Fixture-driven gates for the analyzer: every rule family has a
//! known-bad fixture (each marked line must fire) and a known-good
//! rewrite (zero findings), plus baseline-ratchet round-trips and a
//! whole-workspace gate against the committed `lint.toml` +
//! `lint.baseline`.

use aps_lint::baseline::{diff_new, write_ratchet, Baseline, WriteOutcome};
use aps_lint::config::LintConfig;
use aps_lint::rules::{RuleId, Violation};
use aps_lint::{lint_source, lint_workspace};
use std::path::{Path, PathBuf};

/// `what` strings of all violations for one rule, in file order.
fn whats(vs: &[Violation], rule: RuleId) -> Vec<String> {
    vs.iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.what.clone())
        .collect()
}

fn assert_clean(vs: &[Violation], rule: RuleId, fixture: &str) {
    let leftover = whats(vs, rule);
    assert!(
        leftover.is_empty(),
        "{fixture} must be clean for {rule:?}, found: {leftover:?}"
    );
}

#[test]
fn deny_alloc_fixtures() {
    let cfg = LintConfig {
        deny_alloc_functions: vec!["Scratch::step".to_owned()],
        ..LintConfig::default()
    };
    let bad = lint_source("alloc_bad.rs", include_str!("fixtures/alloc_bad.rs"), &cfg);
    let found = whats(&bad, RuleId::DenyAlloc);
    for expected in [
        "Vec::new",
        ".push()",
        ".clone()",
        "format!",
        "Box::new",
        ".collect()",
        ".to_string()",
    ] {
        assert!(
            found.contains(&expected.to_owned()),
            "missing {expected}: {found:?}"
        );
    }
    assert!(bad.iter().all(|v| v.scope == "Scratch::step"));

    let good = lint_source(
        "alloc_good.rs",
        include_str!("fixtures/alloc_good.rs"),
        &cfg,
    );
    // `debug_dump` allocates but is not registered — only the hot
    // function is held to the invariant.
    assert_clean(&good, RuleId::DenyAlloc, "alloc_good.rs");
}

#[test]
fn nan_trap_fixtures() {
    let cfg = LintConfig {
        nan_trap_modules: vec!["nan_bad.rs".to_owned(), "nan_good.rs".to_owned()],
        ..LintConfig::default()
    };
    let bad = lint_source("nan_bad.rs", include_str!("fixtures/nan_bad.rs"), &cfg);
    assert_eq!(
        whats(&bad, RuleId::NanTrap),
        ["f64::max", "f64::min", ".clamp()", "partial_cmp().unwrap()"]
    );
    let good = lint_source("nan_good.rs", include_str!("fixtures/nan_good.rs"), &cfg);
    assert_clean(&good, RuleId::NanTrap, "nan_good.rs");
}

#[test]
fn determinism_fixtures() {
    let cfg = LintConfig {
        determinism_modules: vec!["det_bad.rs".to_owned(), "det_good.rs".to_owned()],
        ..LintConfig::default()
    };
    let bad = lint_source("det_bad.rs", include_str!("fixtures/det_bad.rs"), &cfg);
    let found = whats(&bad, RuleId::Determinism);
    assert_eq!(found.iter().filter(|w| *w == "Instant::now").count(), 1);
    // Every HashMap mention fires: import, signature, constructor.
    assert_eq!(found.iter().filter(|w| *w == "HashMap").count(), 3);

    let good = lint_source("det_good.rs", include_str!("fixtures/det_good.rs"), &cfg);
    // The good fixture reads the wall clock inside `#[cfg(test)]` —
    // test regions are exempt, so it must still be clean.
    assert_clean(&good, RuleId::Determinism, "det_good.rs");
}

#[test]
fn serde_compat_fixtures() {
    let cfg = LintConfig {
        serde_containers: vec!["Checkpoint".to_owned()],
        ..LintConfig::default()
    };
    let bad = lint_source("serde_bad.rs", include_str!("fixtures/serde_bad.rs"), &cfg);
    assert_eq!(
        whats(&bad, RuleId::SerdeCompat),
        ["missing-container-default", "u64-field-seed"]
    );
    let good = lint_source(
        "serde_good.rs",
        include_str!("fixtures/serde_good.rs"),
        &cfg,
    );
    assert_clean(&good, RuleId::SerdeCompat, "serde_good.rs");
}

#[test]
fn sound_audit_fixtures() {
    let cfg = LintConfig {
        sound_audit_modules: vec!["sound_bad.rs".to_owned(), "sound_good.rs".to_owned()],
        ..LintConfig::default()
    };
    let bad = lint_source("sound_bad.rs", include_str!("fixtures/sound_bad.rs"), &cfg);
    assert_eq!(
        whats(&bad, RuleId::SoundAudit),
        ["Ordering::Relaxed", "Ordering::Acquire", "unsafe"]
    );
    // The good fixture includes a justification that wraps over
    // several comment lines — the contiguous block must count.
    let good = lint_source(
        "sound_good.rs",
        include_str!("fixtures/sound_good.rs"),
        &cfg,
    );
    assert_clean(&good, RuleId::SoundAudit, "sound_good.rs");
}

#[test]
fn unwrap_audit_fixtures() {
    let cfg = LintConfig {
        unwrap_audit_modules: vec!["unwrap_bad.rs".to_owned(), "unwrap_good.rs".to_owned()],
        ..LintConfig::default()
    };
    let bad = lint_source(
        "unwrap_bad.rs",
        include_str!("fixtures/unwrap_bad.rs"),
        &cfg,
    );
    // Two library sites; the test-module unwrap must not count.
    assert_eq!(whats(&bad, RuleId::UnwrapAudit), [".unwrap()", ".expect()"]);
    let good = lint_source(
        "unwrap_good.rs",
        include_str!("fixtures/unwrap_good.rs"),
        &cfg,
    );
    assert_clean(&good, RuleId::UnwrapAudit, "unwrap_good.rs");
}

// ------------------------------------------------------------- ratchet

fn viol(file: &str, scope: &str, what: &str) -> Violation {
    Violation {
        rule: RuleId::UnwrapAudit,
        file: file.to_owned(),
        line: 1,
        scope: scope.to_owned(),
        what: what.to_owned(),
    }
}

/// Scratch directory for ratchet files; cleaned up on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("aps-lint-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn baseline_ratchets_down_and_refuses_growth() {
    let tmp = TempDir::new("ratchet");
    let path = tmp.0.join("lint.baseline");

    let three = vec![
        viol("a.rs", "f", ".unwrap()"),
        viol("a.rs", "f", ".unwrap()"),
        viol("b.rs", "g", ".expect()"),
    ];
    let created = write_ratchet(&path, &three)
        .expect("io")
        .expect("first write");
    assert_eq!(created, WriteOutcome::Created { accepted: 3 });

    // Fixing a site shrinks the baseline.
    let two = &three[..2];
    let shrunk = write_ratchet(&path, two).expect("io").expect("shrink");
    assert_eq!(shrunk, WriteOutcome::Ratcheted { removed: 1 });
    let after_shrink = std::fs::read_to_string(&path).expect("read baseline");
    assert_eq!(Baseline::parse(&after_shrink).total(), 2);

    // Reintroducing it (or adding anything) is refused and the file
    // is left untouched.
    let grown = write_ratchet(&path, &three).expect("io");
    let offending = grown.expect_err("growth must be refused");
    assert_eq!(offending, ["unwrap\tb.rs\tg\t.expect()"]);
    assert_eq!(
        std::fs::read_to_string(&path).expect("re-read"),
        after_shrink
    );

    // The refused run still reports exactly the new instance.
    let base = Baseline::load(&path).expect("io").expect("exists");
    let new: Vec<_> = diff_new(&three, &base).iter().map(|v| v.key()).collect();
    assert_eq!(new, ["unwrap\tb.rs\tg\t.expect()"]);
}

// ----------------------------------------------------------- workspace

/// The real gate: the committed baseline covers the workspace exactly —
/// zero new violations, and (two-sided) zero stale surplus entries.
#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let cfg = LintConfig::parse(&cfg_text).expect("valid lint.toml");
    let run = lint_workspace(&root, &cfg).expect("workspace scan");
    assert!(
        run.files_scanned > 50,
        "suspiciously few files scanned: {}",
        run.files_scanned
    );

    let base = Baseline::load(&root.join("lint.baseline"))
        .expect("io")
        .expect("committed baseline exists");
    let new: Vec<_> = diff_new(&run.violations, &base)
        .iter()
        .map(|v| format!("{}:{} {}", v.file, v.line, v.key()))
        .collect();
    assert!(new.is_empty(), "new lint violations: {new:#?}");
    assert!(
        run.violations.len() >= base.total(),
        "baseline has stale entries: {} accepted vs {} found — \
         regenerate with `repro lint --write-baseline`",
        base.total(),
        run.violations.len()
    );
}
