//! Sound-audit fixture: atomic orderings and an `unsafe` block with
//! no adjacent `// sound:` justification. Each marked line must be
//! flagged.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn claim(next: &AtomicUsize) -> usize {
    next.fetch_add(1, Ordering::Relaxed) // flagged: Ordering::Relaxed
}

pub fn frontier(emitted: &AtomicUsize) -> usize {
    emitted.load(Ordering::Acquire) // flagged: Ordering::Acquire
}

pub fn reinterpret(bytes: &[u8; 8]) -> u64 {
    unsafe { std::mem::transmute(*bytes) } // flagged: unsafe
}
