//! Deny-alloc fixture: the same registered hot function written the
//! way the hot path actually works — preallocated scratch, in-place
//! writes, no heap traffic. Must produce zero `alloc` violations.

pub struct Scratch {
    k: [f64; 4],
    out: [f64; 4],
}

impl Scratch {
    pub fn step(&mut self, dt: f64) -> f64 {
        for (i, k) in self.k.iter().enumerate() {
            self.out[i] = k * dt;
        }
        self.out.iter().sum()
    }

    /// Unregistered helper: allocation here is allowed.
    pub fn debug_dump(&self) -> Vec<f64> {
        self.out.to_vec()
    }
}
