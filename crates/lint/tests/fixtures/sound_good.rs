//! Sound-audit fixture: every atomic ordering and `unsafe` block
//! carries an adjacent `// sound:` justification — including one that
//! wraps over several comment lines, which must still count. Must
//! produce zero `sound` violations.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn claim(next: &AtomicUsize) -> usize {
    // sound: Relaxed suffices for the claim counter — fetch_add is an
    // atomic read-modify-write, so every caller observes a unique
    // value regardless of ordering; the data a claim guards is
    // published through the channel send, not through this counter.
    next.fetch_add(1, Ordering::Relaxed)
}

pub fn frontier(emitted: &AtomicUsize) -> usize {
    // sound: Acquire pairs with the emitter's Release store.
    emitted.load(Ordering::Acquire)
}

pub fn reinterpret(bytes: &[u8; 8]) -> u64 {
    // sound: [u8; 8] and u64 have identical size and no invalid bit
    // patterns; alignment is by-value.
    unsafe { std::mem::transmute(*bytes) }
}
