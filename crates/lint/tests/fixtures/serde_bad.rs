//! Serde-compat fixture: a registered round-tripping container with
//! no container-level `#[serde(default)]` and no version field, plus a
//! bare `u64` field (exact only below 2^53 through the f64-backed JSON
//! shim). Both must be flagged.

#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    pub seed: u64, // flagged: u64-field-seed
    pub done: Vec<u32>,
}
