//! Determinism fixture: ordered containers and an explicit seed
//! instead of wall clock / OS entropy. Must produce zero `det`
//! violations. The `#[cfg(test)]` module may use the wall clock —
//! test regions are exempt.

use std::collections::BTreeMap;

pub fn stamp_jobs(ids: &[u64], seed: u64) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for (k, &id) in ids.iter().enumerate() {
        out.insert(id, seed.wrapping_add(k as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
