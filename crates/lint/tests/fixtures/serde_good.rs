//! Serde-compat fixture: the same container made evolution-safe —
//! container-level `#[serde(default)]` so old files load after fields
//! are added, and the `u64` either hex-encoded at the boundary (here:
//! exempted with a reason) or versioned. Must produce zero `serde`
//! violations.

#[derive(Serialize, Deserialize, Default)]
#[serde(default)]
pub struct Checkpoint {
    pub version: u32,
    // lint: hex-exempt(seed is a small human-chosen value, far below
    // the f64 shim's 2^53 exactness bound)
    pub seed: u64,
    pub done: Vec<u32>,
}
