//! Deny-alloc fixture: a registered hot function that allocates in
//! every way the rule knows about. Each marked line must be flagged.

pub struct Scratch {
    k: [f64; 4],
}

impl Scratch {
    pub fn step(&mut self, dt: f64) -> Vec<f64> {
        let mut out = Vec::new(); // flagged: Vec::new
        out.push(dt); // flagged: .push
        let copy = out.clone(); // flagged: .clone
        let label = format!("dt={dt}"); // flagged: format!
        let boxed = Box::new(copy); // flagged: Box::new
        let squares: Vec<f64> = boxed.iter().map(|x| x * x).collect(); // flagged: .collect
        let _ = label.to_string(); // flagged: .to_string
        squares
    }
}
