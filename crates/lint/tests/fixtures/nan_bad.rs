//! Nan-trap fixture: NaN-masking float ops in a scope with no finite
//! guard in sight. Each marked line must be flagged.

pub fn blend(a: f64, b: f64) -> f64 {
    let hi = f64::max(a, b); // flagged: f64::max
    let lo = f64::min(a, b); // flagged: f64::min
    let mid = a.clamp(lo, hi); // flagged: .clamp
    let ord = a.partial_cmp(&b).unwrap(); // flagged: partial_cmp unwrap
    match ord {
        std::cmp::Ordering::Less => lo,
        _ => mid,
    }
}
