//! Unwrap-audit fixture: the same library code with the panics
//! designed out — combinators and let-else instead of `.unwrap()`.
//! Must produce zero `unwrap` violations.

pub fn first_line(text: &str) -> &str {
    text.lines().next().unwrap_or("")
}

pub fn parse_port(s: &str) -> Option<u16> {
    let Ok(port) = s.parse() else {
        return None;
    };
    Some(port)
}
