//! Unwrap-audit fixture: `.unwrap()` / `.expect()` in library code of
//! an audited module. Both library sites must be flagged; the test
//! module's unwrap must not.

pub fn first_line(text: &str) -> &str {
    text.lines().next().unwrap() // flagged: .unwrap()
}

pub fn parse_port(s: &str) -> u16 {
    s.parse().expect("port must be numeric") // flagged: .expect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::first_line("a\nb"), "a");
        let n: Option<u16> = Some(8080);
        assert_eq!(n.unwrap(), 8080);
    }
}
