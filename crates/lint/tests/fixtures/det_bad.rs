//! Determinism fixture: wall clock, OS entropy, and hash-order
//! iteration in a module that feeds checkpoints. Each marked use must
//! be flagged.

use std::collections::HashMap; // flagged: HashMap
use std::time::Instant;

pub fn stamp_jobs(ids: &[u64]) -> HashMap<u64, u128> {
    let t0 = Instant::now(); // flagged: Instant::now
    let mut out = HashMap::new();
    for &id in ids {
        out.insert(id, t0.elapsed().as_nanos());
    }
    out
}
