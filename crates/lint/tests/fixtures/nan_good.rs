//! Nan-trap fixture: the same masking ops inside a finite-guarded
//! scope — the guard turns a silent NaN swallow into a checked
//! precondition. Must produce zero `nan` violations.

pub fn blend_checked(a: f64, b: f64) -> Option<f64> {
    if !a.is_finite() || !b.is_finite() {
        return None;
    }
    let hi = f64::max(a, b);
    let lo = f64::min(a, b);
    Some(a.clamp(lo, hi))
}
