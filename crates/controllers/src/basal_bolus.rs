//! Basal–bolus protocol controller.
//!
//! The paper pairs the UVA-Padova simulator with a basal–bolus
//! controller: a scheduled basal infusion plus correction doses when
//! glucose runs above target (the standard hospital protocol for
//! insulin-treated inpatients). Corrections are computed with a
//! correction factor (mg/dL per U), rate-limited by an IOB guard so
//! doses do not stack, and delivery is suspended below a safety
//! threshold.

use crate::{Controller, StateVar};
use aps_glucose::iob::{IobCurve, IobEstimator};
use aps_types::{MgDl, Step, Units, UnitsPerHour, CONTROL_CYCLE_MINUTES};
use serde::{Deserialize, Serialize};

/// Tunable profile of the basal–bolus controller.
///
/// `Copy`: nine scalars, copied by value in the decision hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BasalBolusProfile {
    /// Scheduled basal rate (U/h).
    pub basal: f64,
    /// Correction target (mg/dL).
    pub target_bg: f64,
    /// Correction factor (mg/dL per U).
    pub correction_factor: f64,
    /// Band above target inside which no correction is dosed (mg/dL).
    pub correction_band: f64,
    /// Suspend threshold (mg/dL).
    pub suspend_bg: f64,
    /// Maximum net IOB before corrections are withheld (U).
    pub max_iob: f64,
    /// Maximum rate (U/h).
    pub max_rate: f64,
    /// Minutes over which one correction dose is spread.
    pub correction_spread_min: f64,
    /// Carbohydrate ratio for announced meals (grams covered per unit
    /// of prandial insulin).
    pub carb_ratio_g_per_u: f64,
}

impl Default for BasalBolusProfile {
    fn default() -> BasalBolusProfile {
        BasalBolusProfile {
            basal: 1.0,
            target_bg: 120.0,
            correction_factor: 50.0,
            correction_band: 30.0,
            suspend_bg: 80.0,
            max_iob: 3.0,
            max_rate: 6.0,
            correction_spread_min: 60.0,
            carb_ratio_g_per_u: 10.0,
        }
    }
}

/// The basal–bolus controller.
#[derive(Debug, Clone)]
pub struct BasalBolusController {
    profile: BasalBolusProfile,
    estimator: IobEstimator,
    prev_rate: UnitsPerHour,
    pending_bolus: f64,
    /// Values the FI engine forces for the next decision cycle,
    /// indexed by [`var_slot`]. Fixed arrays instead of `HashMap`s:
    /// the decision loop touches every variable every cycle, and the
    /// per-cycle SipHash lookups were measurable campaign overhead
    /// (same rework as the oref0 controller).
    overrides: [Option<f64>; N_VARS],
    /// Last cycle's observable internal values (FI read surface).
    last_vars: [Option<f64>; N_VARS],
}

const VAR_GLUCOSE: &str = "glucose";
const VAR_IOB: &str = "iob";
const VAR_RATE: &str = "rate";
const VAR_TARGET: &str = "target_bg";
const VAR_CF: &str = "correction_factor";

/// Number of observable/overridable controller variables.
const N_VARS: usize = 5;

/// Slot index of a controller variable name.
fn var_slot(name: &str) -> Option<usize> {
    match name {
        "glucose" => Some(0),
        "iob" => Some(1),
        "rate" => Some(2),
        "target_bg" => Some(3),
        "correction_factor" => Some(4),
        _ => None,
    }
}

impl BasalBolusController {
    /// Creates a controller with the given profile at basal equilibrium.
    pub fn new(profile: BasalBolusProfile) -> BasalBolusController {
        let mut estimator =
            IobEstimator::new(IobCurve::default_exponential(), CONTROL_CYCLE_MINUTES);
        estimator.set_basal_baseline(UnitsPerHour(profile.basal));
        estimator.prefill_basal(UnitsPerHour(profile.basal));
        let prev_rate = UnitsPerHour(profile.basal);
        BasalBolusController {
            profile,
            estimator,
            prev_rate,
            pending_bolus: 0.0,
            overrides: [None; N_VARS],
            last_vars: [None; N_VARS],
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &BasalBolusProfile {
        &self.profile
    }

    /// Announced-meal insulin not yet delivered (U).
    pub fn pending_bolus(&self) -> f64 {
        self.pending_bolus
    }

    fn take_override(&mut self, var: &'static str, fallback: f64) -> f64 {
        let slot = var_slot(var).expect("known variable");
        self.overrides[slot].take().unwrap_or(fallback)
    }
}

impl Controller for BasalBolusController {
    fn name(&self) -> &str {
        "basal-bolus"
    }

    fn decide(&mut self, _step: Step, bg: MgDl) -> UnitsPerHour {
        let p = self.profile;
        let glucose = self.take_override(VAR_GLUCOSE, bg.value());
        let iob = self.take_override(VAR_IOB, self.estimator.iob().value());
        let target = self.take_override(VAR_TARGET, p.target_bg);
        let cf = self.take_override(VAR_CF, p.correction_factor).max(1.0);

        let suspended = glucose < p.suspend_bg;
        let mut rate = if suspended {
            0.0
        } else if glucose > target + p.correction_band && iob < p.max_iob {
            // Correction dose spread over the configured window, net of
            // insulin already on board.
            let dose = ((glucose - target) / cf - iob).max(0.0);
            p.basal + dose * 60.0 / p.correction_spread_min
        } else {
            p.basal
        };
        rate = rate.clamp(0.0, p.max_rate);

        // Deliver any announced-meal bolus as fast as the rate ceiling
        // allows (a pump bolus is a short burst of rate) — but never
        // while suspended for hypoglycemia: a prandial dose on top of a
        // low-glucose suspend would infuse at up to `max_rate` exactly
        // when insulin is most dangerous. The bolus stays pending until
        // glucose clears the suspend threshold.
        if !suspended && self.pending_bolus > 1e-9 {
            let headroom = (p.max_rate - rate).max(0.0);
            let add = headroom.min(self.pending_bolus * 60.0 / CONTROL_CYCLE_MINUTES);
            rate += add;
            self.pending_bolus = (self.pending_bolus - add * CONTROL_CYCLE_MINUTES / 60.0).max(0.0);
        }

        let rate = self.take_override(VAR_RATE, rate);
        let rate = UnitsPerHour(rate.clamp(0.0, p.max_rate));

        self.last_vars = [
            Some(glucose),
            Some(iob),
            Some(rate.value()),
            Some(target),
            Some(cf),
        ];
        self.prev_rate = rate;
        rate
    }

    fn iob(&self) -> Units {
        self.estimator.iob()
    }

    fn previous_rate(&self) -> UnitsPerHour {
        self.prev_rate
    }

    fn target_bg(&self) -> MgDl {
        MgDl(self.profile.target_bg)
    }

    fn basal_rate(&self) -> UnitsPerHour {
        UnitsPerHour(self.profile.basal)
    }

    fn reset(&mut self) {
        self.estimator
            .set_basal_baseline(UnitsPerHour(self.profile.basal));
        self.estimator
            .prefill_basal(UnitsPerHour(self.profile.basal));
        self.prev_rate = UnitsPerHour(self.profile.basal);
        self.pending_bolus = 0.0;
        self.overrides = [None; N_VARS];
        self.last_vars = [None; N_VARS];
    }

    fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.estimator.record(delivered);
    }

    fn state_vars(&self) -> Vec<StateVar> {
        let p = &self.profile;
        vec![
            StateVar {
                name: VAR_GLUCOSE,
                min: 40.0,
                max: 400.0,
            },
            StateVar {
                name: VAR_IOB,
                min: 0.0,
                max: p.max_iob * 2.0,
            },
            StateVar {
                name: VAR_RATE,
                min: 0.0,
                max: p.max_rate,
            },
            StateVar {
                name: VAR_TARGET,
                min: 80.0,
                max: 200.0,
            },
            StateVar {
                name: VAR_CF,
                min: 10.0,
                max: 120.0,
            },
        ]
    }

    fn get_state(&self, var: &str) -> Option<f64> {
        var_slot(var).and_then(|slot| self.last_vars[slot])
    }

    fn set_state(&mut self, var: &str, value: f64) -> bool {
        match var_slot(var) {
            Some(slot) => {
                self.overrides[slot] = Some(value);
                true
            }
            None => false,
        }
    }

    fn announce_meal(&mut self, carbs_g: f64) {
        self.pending_bolus += carbs_g.max(0.0) / self.profile.carb_ratio_g_per_u.max(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> BasalBolusController {
        BasalBolusController::new(BasalBolusProfile::default())
    }

    fn run_cycle(c: &mut BasalBolusController, step: u32, bg: f64) -> UnitsPerHour {
        let rate = c.decide(Step(step), MgDl(bg));
        c.observe_delivery(rate);
        rate
    }

    #[test]
    fn basal_inside_band() {
        let mut c = ctl();
        assert_eq!(run_cycle(&mut c, 0, 120.0), UnitsPerHour(1.0));
        assert_eq!(run_cycle(&mut c, 1, 140.0), UnitsPerHour(1.0));
    }

    #[test]
    fn corrects_above_band() {
        let mut c = ctl();
        let rate = run_cycle(&mut c, 0, 250.0);
        assert!(rate.value() > 1.0, "{rate:?}");
    }

    #[test]
    fn suspends_when_low() {
        let mut c = ctl();
        assert_eq!(run_cycle(&mut c, 0, 75.0), UnitsPerHour(0.0));
    }

    #[test]
    fn iob_guard_withholds_corrections() {
        // Sustained hyperglycemia: the IOB guard must keep net IOB
        // bounded near the ceiling instead of stacking corrections.
        let mut c = ctl();
        let mut max_iob_seen: f64 = 0.0;
        for s in 0..72 {
            run_cycle(&mut c, s, 300.0);
            max_iob_seen = max_iob_seen.max(c.iob().value());
        }
        assert!(
            max_iob_seen <= c.profile().max_iob + 0.5,
            "net IOB ran away to {max_iob_seen}"
        );
        assert!(
            max_iob_seen > 1.0,
            "controller never corrected: {max_iob_seen}"
        );
    }

    #[test]
    fn correction_nets_out_existing_iob() {
        let mut c = ctl();
        let fresh = run_cycle(&mut c, 0, 250.0);
        // Now with IOB piled on, the same reading yields a smaller dose.
        for s in 1..6 {
            run_cycle(&mut c, s, 250.0);
        }
        let later = run_cycle(&mut c, 6, 250.0);
        assert!(later <= fresh, "{fresh:?} -> {later:?}");
    }

    #[test]
    fn overrides_and_reset() {
        let mut c = ctl();
        assert!(c.set_state("rate", 5.0));
        let rate = run_cycle(&mut c, 0, 120.0);
        assert_eq!(rate, UnitsPerHour(5.0));
        c.reset();
        assert_eq!(c.previous_rate(), UnitsPerHour(1.0));
        assert!(!c.set_state("bogus", 1.0));
    }

    #[test]
    fn max_rate_cap() {
        let mut c = ctl();
        c.set_state("glucose", 400.0);
        let rate = run_cycle(&mut c, 0, 120.0);
        assert!(rate.value() <= c.profile().max_rate);
    }

    #[test]
    fn suspend_blocks_pending_bolus() {
        // Regression: the seed delivered announced-meal boluses at up
        // to max_rate *while suspended for hypoglycemia* — the pending
        // headroom was added after the suspend branch zeroed the rate.
        let mut c = ctl();
        c.announce_meal(30.0); // 3 U pending at the default carb ratio
        let pending_before = c.pending_bolus();
        assert!(pending_before > 2.9);

        // BG below suspend_bg: no insulin at all, bolus stays pending.
        let rate = run_cycle(&mut c, 0, 70.0);
        assert_eq!(rate, UnitsPerHour(0.0), "bolus infused while suspended");
        assert_eq!(c.pending_bolus(), pending_before, "pending bolus consumed");

        // Glucose recovers above the threshold: the withheld bolus is
        // delivered now, as fast as the rate ceiling allows.
        let rate = run_cycle(&mut c, 1, 130.0);
        assert_eq!(rate, UnitsPerHour(c.profile().max_rate));
        assert!(c.pending_bolus() < pending_before);
    }

    #[test]
    fn pending_bolus_drains_across_cycles() {
        let mut c = ctl();
        c.announce_meal(20.0); // 2 U pending
        let mut delivered_above_basal = 0.0;
        for s in 0..12 {
            let rate = run_cycle(&mut c, s, 120.0);
            delivered_above_basal +=
                (rate.value() - c.profile().basal) * CONTROL_CYCLE_MINUTES / 60.0;
        }
        assert!(c.pending_bolus() < 1e-9, "bolus never fully delivered");
        assert!(
            (delivered_above_basal - 2.0).abs() < 1e-9,
            "prandial insulin delivered {delivered_above_basal} U, announced 2 U"
        );
    }
}
