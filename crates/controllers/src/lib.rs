//! APS controllers: the decision logic the safety monitor wraps.
//!
//! Two controllers matching the paper's two platforms:
//!
//! * [`oref0::Oref0Controller`] — a Rust port of the OpenAPS
//!   `determine-basal` decision structure (eventual-BG prediction from
//!   IOB and trend, low-glucose suspend, temp-basal corrections,
//!   max-IOB / max-basal safety caps).
//! * [`basal_bolus::BasalBolusController`] — the hospital basal–bolus
//!   protocol (scheduled basal plus correction dosing above target).
//!
//! Every controller implements [`Controller`], which includes the
//! *fault-injection surface*: named internal state variables that the
//! FI engine can read and override, mirroring the paper's source-level
//! fault injector perturbing "inputs, outputs, and the internal state
//! variables of the APS control software".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basal_bolus;
pub mod oref0;

use aps_types::{MgDl, Step, Units, UnitsPerHour};

/// Description of one injectable controller state variable.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVar {
    /// Variable name (stable identifier used by FI scenarios).
    pub name: &'static str,
    /// Smallest value the variable can legitimately take.
    pub min: f64,
    /// Largest value the variable can legitimately take.
    pub max: f64,
}

/// A closed-loop APS controller.
///
/// The harness calls [`decide`](Controller::decide) once per 5-minute
/// control cycle with the current CGM reading; the controller returns
/// the insulin rate to command.
pub trait Controller: Send {
    /// Controller identifier (e.g. `"oref0"`).
    fn name(&self) -> &str;

    /// Computes the rate command for this cycle.
    fn decide(&mut self, step: Step, bg: MgDl) -> UnitsPerHour;

    /// The controller's current insulin-on-board estimate.
    fn iob(&self) -> Units;

    /// The rate commanded on the previous cycle.
    fn previous_rate(&self) -> UnitsPerHour;

    /// The glucose target the controller regulates toward (the SCS
    /// rules' `BGT`).
    fn target_bg(&self) -> MgDl;

    /// The controller's configured basal rate.
    fn basal_rate(&self) -> UnitsPerHour;

    /// Returns to the initial state for a fresh simulation.
    fn reset(&mut self);

    /// Informs the controller what was *actually* delivered this cycle
    /// (post-mitigation, post-pump); controllers track IOB from this.
    fn observe_delivery(&mut self, delivered: UnitsPerHour);

    /// The injectable state variables and their legitimate ranges.
    fn state_vars(&self) -> Vec<StateVar>;

    /// Reads an injectable variable (last cycle's value).
    fn get_state(&self, var: &str) -> Option<f64>;

    /// Overrides an injectable variable for the *next* decision; the
    /// override is consumed by one `decide` call. Returns `false` for
    /// unknown names.
    fn set_state(&mut self, var: &str, value: f64) -> bool;

    /// Announces a meal of `carbs_g` grams about to be eaten, so the
    /// controller can dose a prandial bolus.
    ///
    /// The default is a no-op: a purely reactive controller (like the
    /// oref0 port here) handles meals through its correction logic.
    /// The basal-bolus protocol overrides this with carb-ratio dosing.
    fn announce_meal(&mut self, carbs_g: f64) {
        let _ = carbs_g;
    }
}
